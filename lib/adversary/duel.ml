module Engine = Doda_core.Engine
module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Int_vec = Doda_dynamic.Int_vec

(* The adversary is just a pull source for the engine's run-core: the
   view is built from the live state right before each interaction is
   chosen, and everything the adversary plays is kept (packed) so the
   caller can re-analyse the exact sequence offline. Model enforcement
   happens inside the engine — there is no second copy of the loop. *)
let run ?(knowledge = Doda_core.Knowledge.empty) ?record ?observers ~max_steps
    ~n ~sink (algo : Doda_core.Algorithm.t) (adv : Adversary.t) =
  if n < 2 then invalid_arg "Duel.run: need at least two nodes";
  if sink < 0 || sink >= n then invalid_arg "Duel.run: sink out of range";
  let played = Int_vec.create () in
  let source st =
    let view =
      {
        Adversary.time = Engine.time st;
        holders = Engine.live_holders st;
        last_transmission = Engine.last_transmission st;
      }
    in
    match adv.Adversary.next view with
    | None -> None
    | Some i ->
        if Interaction.v i >= n then
          invalid_arg "Duel.run: adversary played a node id >= n";
        Int_vec.push played (Interaction.to_int i);
        Some i
  in
  let st =
    Engine.start_source ~knowledge ?record ?observers ~n ~sink ~source algo
  in
  let result = Engine.run_state st ~max_steps in
  let sequence =
    Sequence.of_array
      (Array.map Interaction.of_int_unchecked (Int_vec.to_array played))
  in
  (result, sequence)
