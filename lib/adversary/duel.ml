module Engine = Doda_core.Engine
module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence

let run ?(knowledge = Doda_core.Knowledge.empty) ~max_steps ~n ~sink
    (algo : Doda_core.Algorithm.t) (adv : Adversary.t) =
  if n < 2 then invalid_arg "Duel.run: need at least two nodes";
  if sink < 0 || sink >= n then invalid_arg "Duel.run: sink out of range";
  Doda_core.Algorithm.check_knowledge algo.name knowledge algo.requires;
  let instance = algo.make ~n ~sink knowledge in
  let holds = Array.make n true in
  let owners = ref n in
  let transmissions = ref [] in
  let tx_count = ref 0 in
  let last : Engine.transmission option ref = ref None in
  let played = ref [] in
  let steps = ref 0 in
  let stop = ref None in
  while !stop = None do
    if !owners = 1 then stop := Some Engine.All_aggregated
    else if !steps >= max_steps then stop := Some Engine.Step_limit
    else begin
      let view =
        { Adversary.time = !steps; holders = holds; last_transmission = !last }
      in
      match adv.next view with
      | None -> stop := Some Engine.Schedule_exhausted
      | Some i ->
          if Interaction.v i >= n then
            invalid_arg "Duel.run: adversary played a node id >= n";
          played := i :: !played;
          let t = !steps in
          instance.observe ~time:t i;
          let a = Interaction.u i and b = Interaction.v i in
          if holds.(a) && holds.(b) then begin
            match instance.decide ~time:t i with
            | None -> ()
            | Some receiver ->
                if not (Interaction.involves i receiver) then
                  invalid_arg
                    (Printf.sprintf "Duel.run: %s returned a non-endpoint receiver"
                       algo.name);
                let sender = Interaction.other i receiver in
                if sender = sink then
                  invalid_arg
                    (Printf.sprintf "Duel.run: %s made the sink transmit" algo.name);
                holds.(sender) <- false;
                decr owners;
                let tr = { Engine.time = t; sender; receiver } in
                transmissions := tr :: !transmissions;
                incr tx_count;
                last := Some tr
          end;
          incr steps
    end
  done;
  let stop = Option.get !stop in
  let duration =
    match (stop, !last) with
    | Engine.All_aggregated, Some tr -> Some tr.Engine.time
    | Engine.All_aggregated, None -> Some (-1)  (* n = 1: vacuous *)
    | (Engine.Schedule_exhausted | Engine.Step_limit), _ -> None
  in
  let result =
    {
      Engine.stop;
      duration;
      steps = !steps;
      transmissions = List.rev !transmissions;
      transmission_count = !tx_count;
      holders = holds;
    }
  in
  (result, Sequence.of_list (List.rev !played))
