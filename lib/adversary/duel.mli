(** Plays an algorithm against an (adaptive) adversary.

    Unlike {!Doda_core.Engine.run}, the interaction at time [t] is
    chosen {e during} the run, after the adversary has seen everything
    up to [t - 1] — the adaptive online adversary of Section 2.2. The
    adversary is plugged into the engine's run-core as a pull source
    ({!Doda_core.Engine.start_source}), so the model rules enforced are
    {e the same code} as the engine's, not a copy. The recorded
    sequence is returned so offline analyses (cost, optimal
    convergecasts) can be applied to exactly what the adversary
    played. *)

val run :
  ?knowledge:Doda_core.Knowledge.t ->
  ?record:[ `All | `Count ] ->
  ?observers:Doda_core.Engine.observer list ->
  max_steps:int ->
  n:int -> sink:int ->
  Doda_core.Algorithm.t -> Adversary.t ->
  Doda_core.Engine.result * Doda_dynamic.Sequence.t
(** [run ~max_steps ~n ~sink algo adv] stops at aggregation, adversary
    exhaustion, or [max_steps]. [knowledge] defaults to
    {!Doda_core.Knowledge.empty} — an adaptive adversary's future does
    not exist ahead of time, so no future-dependent oracle can be
    offered; underlying-graph knowledge can be injected by the caller
    when the adversary guarantees it by construction. [record] and
    [observers] as in {!Doda_core.Engine.run}.

    @raise Invalid_argument on knowledge the algorithm requires but the
    caller did not supply, on invalid [n]/[sink], or on an adversary
    returning an interaction mentioning ids [>= n]. *)
