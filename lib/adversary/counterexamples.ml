module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Engine = Doda_core.Engine

(* Shared machinery: probe a cyclic pattern until the algorithm commits
   a transmission between two non-sink nodes (or, for theorem 1, a
   specific delivery), then lock into a punishing loop chosen by a case
   table. [trap] maps (sender, receiver) to the loop, or None to keep
   probing (e.g. plain deliveries to the sink). *)
type state = Probing | Looping of Interaction.t array

let reactive ~name ~probe ~trap =
  let state = ref Probing in
  let position = ref 0 in
  let seen_time = ref (-1) in  (* time of the last transmission reacted to *)
  let next (view : Adversary.view) =
    (match (!state, view.last_transmission) with
    | Probing, Some { Engine.time; sender; receiver }
      when time > !seen_time -> begin
        seen_time := time;
        match trap ~sender ~receiver with
        | Some cycle ->
            state := Looping cycle;
            position := 0
        | None -> ()
      end
    | _ -> ());
    let cycle = match !state with Probing -> probe | Looping c -> c in
    let i = cycle.(!position mod Array.length cycle) in
    incr position;
    Some i
  in
  { Adversary.name; next }

let theorem1_nodes = 3

let theorem1 () =
  let s = 0 and a = 1 and b = 2 in
  let ab = Interaction.make a b and bs = Interaction.make b s in
  let a_s = Interaction.make a s in
  let probe = [| ab; bs |] in
  let trap ~sender ~receiver =
    if sender = a && receiver = b then Some [| a_s; ab |]
    else if sender = b && receiver = a then Some [| bs; ab |]
    else if sender = b && receiver = s then Some [| ab; bs |]
    else None
  in
  reactive ~name:"theorem1-adaptive" ~probe ~trap

let theorem3_nodes = 4

let theorem3_graph () =
  Doda_graph.Static_graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let theorem3 () =
  let s = 0 and u1 = 1 and u2 = 2 and u3 = 3 in
  let e a b = Interaction.make a b in
  let probe = [| e u1 s; e u3 s; e u2 u1; e u2 u3 |] in
  let trap ~sender ~receiver =
    (* Case table from the proof, completed for every direction the
       algorithm can choose; each loop keeps the trapped receiver away
       from the sink while one optimal convergecast per period stays
       possible. Deliveries to the sink keep the probe going. *)
    if sender = u2 && receiver = u1 then Some [| e u1 u2; e u2 u3; e u3 s |]
    else if sender = u1 && receiver = u2 then Some [| e u2 u3; e u2 u1; e u1 s |]
    else if sender = u2 && receiver = u3 then Some [| e u3 u2; e u2 u1; e u1 s |]
    else if sender = u3 && receiver = u2 then Some [| e u2 u1; e u2 u3; e u3 s |]
    else None
  in
  reactive ~name:"theorem3-adaptive" ~probe ~trap

type theorem2_parameters = {
  l0 : int;
  d : int;
  survival : float;
  transmit_rate : float;
}

let meeting_prefix ~n l =
  Doda_dynamic.Sequence.of_list
    (List.init l (fun i -> Interaction.make (1 + (i mod (n - 1))) 0))

let theorem2_search ?(trials = 100) ?(max_l = 0) ~n (algo : Doda_core.Algorithm.t) =
  if n < 4 then invalid_arg "Counterexamples.theorem2_search: need n >= 4";
  let max_l = if max_l <= 0 then 8 * n else max_l in
  (* One Monte-Carlo pass per prefix length: fraction of runs with no
     transmission at all, and per-node survival frequencies. *)
  let estimate l =
    let seq = meeting_prefix ~n l in
    let sched () = Doda_dynamic.Schedule.of_sequence ~n ~sink:0 seq in
    let silent = ref 0 in
    let survived = Array.make n 0 in
    for _ = 1 to trials do
      let r = Doda_core.Engine.run algo (sched ()) in
      if r.Doda_core.Engine.transmission_count = 0 then incr silent;
      Array.iteri
        (fun v holds -> if holds then survived.(v) <- survived.(v) + 1)
        r.Doda_core.Engine.holders
    done;
    let p_silent = float_of_int !silent /. float_of_int trials in
    let survival v = float_of_int survived.(v) /. float_of_int trials in
    (p_silent, survival)
  in
  let threshold = 1.0 /. float_of_int n in
  let rec search l =
    if l > max_l then None
    else begin
      let p_silent, survival = estimate l in
      if p_silent < threshold then begin
        (* Pick the most-likely survivor among the valid gadget
           positions d in [1, n-2] (node u_d has id d + 1). *)
        let best = ref 1 in
        for d = 2 to n - 2 do
          if survival (d + 1) > survival (!best + 1) then best := d
        done;
        Some
          {
            l0 = l;
            d = !best;
            survival = survival (!best + 1);
            transmit_rate = 1.0 -. p_silent;
          }
      end
      else search (l + 1)
    end
  in
  search 1

let theorem2_sequence ~n ~l0 ~d ~periods =
  if n < 3 then invalid_arg "Counterexamples.theorem2_sequence: need n >= 3";
  if l0 < 0 then invalid_arg "Counterexamples.theorem2_sequence: negative l0";
  if d < 1 || d > n - 2 then
    invalid_arg "Counterexamples.theorem2_sequence: d out of [1, n-2]";
  if periods < 0 then invalid_arg "Counterexamples.theorem2_sequence: negative periods";
  let s = 0 in
  let u i = 1 + (i mod (n - 1)) in
  let prefix = List.init l0 (fun i -> Interaction.make (u i) s) in
  let gadget =
    List.init (n - 1) (fun i ->
        if i = d - 1 then Interaction.make (u (d - 1)) s
        else Interaction.make (u i) (u (i + 1)))
  in
  let rec repeat k acc = if k = 0 then acc else repeat (k - 1) (acc @ gadget) in
  Sequence.of_list (prefix @ repeat periods [])
