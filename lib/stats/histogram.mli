(** Fixed-width histograms, with an ASCII rendering for terminal
    reports. Used by benches to show the distribution of termination
    times around the mean (e.g. the concentration claimed by the
    Chebyshev arguments of Theorems 8-10). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins;
    samples outside the range are counted in outlier counters.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val of_samples : ?bins:int -> float array -> t
(** [of_samples xs] builds a histogram spanning the sample range
    (default 20 bins). @raise Invalid_argument on an empty sample. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Total samples recorded, including outliers. *)

val underflow : t -> int
val overflow : t -> int

val bin_count : t -> int -> int
(** [bin_count h i] is the number of samples in bin [i]. *)

val bin_bounds : t -> int -> float * float
(** [bin_bounds h i] is the [\[lo, hi)] range of bin [i]. *)

val bins : t -> int

val quantile : t -> float -> float option
(** [quantile h q] estimates the [q]-quantile from the binned mass:
    linear interpolation inside the bin holding the target rank, with
    underflow mass pinned at [lo] and overflow mass at [hi]. Total on
    every input: [None] when the histogram is empty, and a finite
    value (never NaN) otherwise — including single-sample and
    all-outlier histograms. @raise Invalid_argument unless
    [0 <= q <= 1]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram with the summed counts of [a] and
    [b] (bins, underflow, overflow). Safe on empty inputs.
    @raise Invalid_argument unless both share the same [lo], [hi] and
    bin count. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per bin. *)
