type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add h x =
  h.total <- h.total + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let i = int_of_float ((x -. h.lo) /. h.width) in
    let i = Stdlib.min i (Array.length h.counts - 1) in
    h.counts.(i) <- h.counts.(i) + 1
  end

let of_samples ?(bins = 20) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_samples: empty sample";
  let lo = Descriptive.min xs and hi = Descriptive.max xs in
  let hi = if hi = lo then lo +. 1.0 else hi +. ((hi -. lo) *. 1e-9) in
  let h = create ~lo ~hi ~bins in
  Array.iter (add h) xs;
  h

let count h = h.total
let underflow h = h.under
let overflow h = h.over
let bins h = Array.length h.counts
let bin_count h i = h.counts.(i)

let bin_bounds h i =
  let lo = h.lo +. (float_of_int i *. h.width) in
  (lo, lo +. h.width)

(* Quantile from the binned mass: walk bins in order to the one
   holding the target rank and interpolate linearly inside it.
   Underflow mass sits at [lo], overflow at [hi]. Guards make this
   total: empty histograms return [None]; a single sample (or any mass
   concentrated in one bin) interpolates inside that bin's finite
   bounds — never NaN, never a division by zero (only bins with
   positive count divide). *)
let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Histogram.quantile: q must be in [0, 1]";
  if h.total = 0 then None
  else begin
    let target = Stdlib.max 1.0 (q *. float_of_int h.total) in
    if float_of_int h.under >= target then Some h.lo
    else begin
      let cum = ref (float_of_int h.under) in
      let res = ref None in
      let i = ref 0 in
      let nb = Array.length h.counts in
      while !res = None && !i < nb do
        let c = float_of_int h.counts.(!i) in
        if c > 0.0 && !cum +. c >= target then begin
          let blo, bhi = bin_bounds h !i in
          let frac = (target -. !cum) /. c in
          res := Some (blo +. (frac *. (bhi -. blo)))
        end
        else begin
          cum := !cum +. c;
          i := !i + 1
        end
      done;
      (* Whatever mass remains is overflow, pinned at [hi]. *)
      match !res with Some v -> Some v | None -> Some h.hi
    end
  end

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi
     || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Histogram.merge: histograms have different binning";
  {
    lo = a.lo;
    hi = a.hi;
    width = a.width;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    under = a.under + b.under;
    over = a.over + b.over;
    total = a.total + b.total;
  }

let render ?(width = 50) h =
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds h i in
      let bar_len = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%12.1f, %12.1f) %6d %s\n" lo hi c (String.make bar_len '#')))
    h.counts;
  if h.under > 0 then Buffer.add_string buf (Printf.sprintf "underflow: %d\n" h.under);
  if h.over > 0 then Buffer.add_string buf (Printf.sprintf "overflow: %d\n" h.over);
  Buffer.contents buf
