module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction
module Int_vec = Doda_dynamic.Int_vec

let check_n_dense n =
  if n > 20 then
    invalid_arg "Brute_force: n too large for the dense subset search";
  if n < 1 then invalid_arg "Brute_force: n must be positive"

(* Sparse masks are tagged OCaml ints, so [1 lsl n] must not reach the
   sign bit of a 63-bit word. *)
let check_n_sparse n =
  if n > 61 then
    invalid_arg "Brute_force: n too large for subset search (62-bit masks)";
  if n < 1 then invalid_arg "Brute_force: n must be positive"

(* Reachable ownership states as a bitvector over the 2^n mask space:
   bit [mask] is set iff [mask] is reachable. One cache-linear sweep
   per interaction replaces the old Int_set fold that allocated a
   successor list per state per interaction.

   From state [mask] at interaction {a, b}, the successors are: do
   nothing, or (when both endpoints own data and the sender is not the
   sink) one endpoint transmits to the other, clearing the sender's
   bit. Updating in place during the sweep is sound: a successor
   differs from [mask] by a cleared endpoint bit, so re-examining it
   under the same interaction fails the both-endpoints-own test and
   generates nothing new. *)

let bit_test bv mask =
  Char.code (Bytes.unsafe_get bv (mask lsr 3)) land (1 lsl (mask land 7)) <> 0

let bit_set bv mask =
  let byte = mask lsr 3 in
  Bytes.unsafe_set bv byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bv byte) lor (1 lsl (mask land 7))))

let sweep ~sink bv ~full i =
  let a = Interaction.u i and b = Interaction.v i in
  let both = (1 lsl a) lor (1 lsl b) in
  let bit_a = 1 lsl a and bit_b = 1 lsl b in
  for mask = full downto 0 do
    if mask land both = both && bit_test bv mask then begin
      if a <> sink then bit_set bv (mask lxor bit_a);
      if b <> sink then bit_set bv (mask lxor bit_b)
    end
  done

let optimal_duration_dense ~n ~sink s ~start =
  check_n_dense n;
  let goal = 1 lsl sink in
  let full = (1 lsl n) - 1 in
  if full = goal then Some start
  else begin
    let len = Sequence.length s in
    let bv = Bytes.make (((full + 1) + 7) lsr 3) '\000' in
    bit_set bv full;
    let result = ref None in
    let t = ref start in
    while !result = None && !t < len do
      sweep ~sink bv ~full (Sequence.get s !t);
      if bit_test bv goal then result := Some !t;
      incr t
    done;
    !result
  end

let reachable_states_dense ~n ~sink s =
  check_n_dense n;
  let full = (1 lsl n) - 1 in
  let bv = Bytes.make (((full + 1) + 7) lsr 3) '\000' in
  bit_set bv full;
  Sequence.iteri (fun _ i -> sweep ~sink bv ~full i) s;
  let acc = ref [] in
  for mask = full downto 0 do
    if bit_test bv mask then acc := mask :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Sparse variant: the reachable set as a hash table plus an insertion-
   order vector, sized by the states actually *touched* instead of the
   full 2^n bitvector (which costs 2^n / 8 bytes even when a short
   sequence reaches a handful of states). Successors never cascade
   within one interaction — they lack the cleared endpoint — so
   bounding the scan by the pre-interaction length gives exactly the
   dense sweep's semantics. *)

type sparse = { tbl : (int, unit) Hashtbl.t; order : Int_vec.t }

let sparse_create full =
  let tbl = Hashtbl.create 256 in
  Hashtbl.replace tbl full ();
  let order = Int_vec.create ~capacity:256 () in
  Int_vec.push order full;
  { tbl; order }

let sparse_add sp mask =
  if not (Hashtbl.mem sp.tbl mask) then begin
    Hashtbl.replace sp.tbl mask ();
    Int_vec.push sp.order mask
  end

let sparse_sweep ~sink sp i =
  let a = Interaction.u i and b = Interaction.v i in
  let both = (1 lsl a) lor (1 lsl b) in
  let bit_a = 1 lsl a and bit_b = 1 lsl b in
  let len = Int_vec.length sp.order in
  for k = 0 to len - 1 do
    let mask = Int_vec.unsafe_get sp.order k in
    if mask land both = both then begin
      if a <> sink then sparse_add sp (mask lxor bit_a);
      if b <> sink then sparse_add sp (mask lxor bit_b)
    end
  done

let optimal_duration_sparse ~n ~sink s ~start =
  check_n_sparse n;
  let goal = 1 lsl sink in
  let full = (1 lsl n) - 1 in
  if full = goal then Some start
  else begin
    let len = Sequence.length s in
    let sp = sparse_create full in
    let result = ref None in
    let t = ref start in
    while !result = None && !t < len do
      sparse_sweep ~sink sp (Sequence.get s !t);
      if Hashtbl.mem sp.tbl goal then result := Some !t;
      incr t
    done;
    !result
  end

let reachable_states_sparse ~n ~sink s =
  check_n_sparse n;
  let full = (1 lsl n) - 1 in
  let sp = sparse_create full in
  Sequence.iteri (fun _ i -> sparse_sweep ~sink sp i) s;
  List.sort compare (Int_vec.to_array sp.order |> Array.to_list)

(* Dense wins below its 2^20-bit ceiling (cache-linear sweeps, no
   hashing); sparse extends the reachable-set search beyond it. *)
let optimal_duration ~n ~sink s ~start =
  if n <= 20 then optimal_duration_dense ~n ~sink s ~start
  else optimal_duration_sparse ~n ~sink s ~start

let reachable_states ~n ~sink s =
  if n <= 20 then reachable_states_dense ~n ~sink s
  else reachable_states_sparse ~n ~sink s
