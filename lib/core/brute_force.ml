module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

let check_n n =
  if n > 20 then invalid_arg "Brute_force: n too large for subset search";
  if n < 1 then invalid_arg "Brute_force: n must be positive"

(* Reachable ownership states as a bitvector over the 2^n mask space:
   bit [mask] is set iff [mask] is reachable. One cache-linear sweep
   per interaction replaces the old Int_set fold that allocated a
   successor list per state per interaction.

   From state [mask] at interaction {a, b}, the successors are: do
   nothing, or (when both endpoints own data and the sender is not the
   sink) one endpoint transmits to the other, clearing the sender's
   bit. Updating in place during the sweep is sound: a successor
   differs from [mask] by a cleared endpoint bit, so re-examining it
   under the same interaction fails the both-endpoints-own test and
   generates nothing new. *)

let bit_test bv mask =
  Char.code (Bytes.unsafe_get bv (mask lsr 3)) land (1 lsl (mask land 7)) <> 0

let bit_set bv mask =
  let byte = mask lsr 3 in
  Bytes.unsafe_set bv byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bv byte) lor (1 lsl (mask land 7))))

let sweep ~sink bv ~full i =
  let a = Interaction.u i and b = Interaction.v i in
  let both = (1 lsl a) lor (1 lsl b) in
  let bit_a = 1 lsl a and bit_b = 1 lsl b in
  for mask = full downto 0 do
    if mask land both = both && bit_test bv mask then begin
      if a <> sink then bit_set bv (mask lxor bit_a);
      if b <> sink then bit_set bv (mask lxor bit_b)
    end
  done

let optimal_duration ~n ~sink s ~start =
  check_n n;
  let goal = 1 lsl sink in
  let full = (1 lsl n) - 1 in
  if full = goal then Some start
  else begin
    let len = Sequence.length s in
    let bv = Bytes.make (((full + 1) + 7) lsr 3) '\000' in
    bit_set bv full;
    let result = ref None in
    let t = ref start in
    while !result = None && !t < len do
      sweep ~sink bv ~full (Sequence.get s !t);
      if bit_test bv goal then result := Some !t;
      incr t
    done;
    !result
  end

let reachable_states ~n ~sink s =
  check_n n;
  let full = (1 lsl n) - 1 in
  let bv = Bytes.make (((full + 1) + 7) lsr 3) '\000' in
  bit_set bv full;
  Sequence.iteri (fun _ i -> sweep ~sink bv ~full i) s;
  let acc = ref [] in
  for mask = full downto 0 do
    if bit_test bv mask then acc := mask :: !acc
  done;
  !acc
