module Interaction = Doda_dynamic.Interaction
module Prng = Doda_prng.Prng

let check_p p =
  if p <= 0.0 || p > 1.0 then
    invalid_arg "Coin_algorithms: p must lie in (0, 1]"

let coin_waiting master ~p =
  check_p p;
  {
    Algorithm.name = Printf.sprintf "coin-waiting(p=%.2f)" p;
    oblivious = true;
    requires = [];
    batch = Some (Algorithm.Coin_sink p);
    make =
      (fun ~n:_ ~sink _knowledge ->
        let rng = Prng.split master in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time:_ i ->
              if Interaction.involves i sink && Prng.bernoulli rng p then Some sink
              else None);
        });
  }

let coin_gathering master ~p =
  check_p p;
  {
    Algorithm.name = Printf.sprintf "coin-gathering(p=%.2f)" p;
    oblivious = true;
    requires = [];
    batch = Some (Algorithm.Coin_gather p);
    make =
      (fun ~n:_ ~sink _knowledge ->
        let rng = Prng.split master in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time:_ i ->
              if Interaction.involves i sink then Some sink
              else if Prng.bernoulli rng p then Some (Interaction.u i)
              else None);
        });
  }
