(** Exhaustive offline optimum over all aggregation schedules, by a
    reachability sweep over data-ownership states: a bitvector over the
    2^n bitmask subsets, one cache-linear pass per interaction.

    Exponential in [n] — intended for [n <= 12] — and used by the test
    suite to cross-validate the polynomial {!Convergecast} solver built
    on the broadcast duality. *)

val optimal_duration :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> start:int -> int option
(** [optimal_duration ~n ~sink s ~start] is the earliest possible
    ending time of a complete aggregation starting at [start] —
    semantically identical to [Convergecast.opt ~n ~sink s start].
    @raise Invalid_argument if [n > 20] (state space too large). *)

val reachable_states : n:int -> sink:int -> Doda_dynamic.Sequence.t -> int list
(** All ownership states (bitmasks over nodes) reachable by some
    schedule over the whole sequence, in increasing mask order; for
    inspection and tests. *)
