(** Exhaustive offline optimum over all aggregation schedules, by a
    reachability sweep over data-ownership states. Two backings share
    the same successor relation:

    - {e dense}: a bitvector over the full 2^n bitmask space, one
      cache-linear pass per interaction — fastest while 2^n bits fit a
      cache-friendly buffer ([n <= 20]);
    - {e sparse}: a hash table plus insertion-order vector holding only
      the states actually {e reached}, so memory scales with touched
      states rather than 2^n — usable up to [n <= 61] when the
      sequence keeps the reachable set small.

    Exponential in the worst case either way — intended for small [n] —
    and used by the test suite to cross-validate the polynomial
    {!Convergecast} solver built on the broadcast duality. *)

val optimal_duration :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> start:int -> int option
(** [optimal_duration ~n ~sink s ~start] is the earliest possible
    ending time of a complete aggregation starting at [start] —
    semantically identical to [Convergecast.opt ~n ~sink s start].
    Dispatches to the dense sweep for [n <= 20] and the sparse one
    beyond. @raise Invalid_argument if [n > 61]. *)

val optimal_duration_dense :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> start:int -> int option
(** The bitvector backing, explicitly.
    @raise Invalid_argument if [n > 20] (2^n-bit state space). *)

val optimal_duration_sparse :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> start:int -> int option
(** The hashed backing, explicitly: answers identical to
    {!optimal_duration_dense} wherever both are defined (the
    differential tests pin this), memory proportional to reached
    states. @raise Invalid_argument if [n > 61] (masks are tagged
    63-bit ints). *)

val reachable_states : n:int -> sink:int -> Doda_dynamic.Sequence.t -> int list
(** All ownership states (bitmasks over nodes) reachable by some
    schedule over the whole sequence, in increasing mask order; for
    inspection and tests. Dispatches like {!optimal_duration}. *)

val reachable_states_dense :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> int list

val reachable_states_sparse :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> int list
