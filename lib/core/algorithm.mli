(** The interface of distributed online data aggregation algorithms.

    A DODA algorithm (Section 2.1) takes an interaction [I_t = {u, v}]
    and its time [t] and outputs [u], [v] or [⊥]: the output node, if
    any, {e receives} the other node's data. The engine consults
    {!instance.decide} only when both endpoints still own data (the
    paper ignores the output otherwise), and returning [Some r] is a
    commitment: the engine applies the transmission, so an instance may
    update its internal memory inside [decide].

    [instance.observe] is called on {e every} interaction, before any
    [decide], and models the exchange of control information between
    the interacting nodes (the paper allows nodes to "exchange control
    information before deciding whether they transmit"); it is where
    non-oblivious algorithms update per-node memory. *)

type instance = {
  observe : time:int -> Doda_dynamic.Interaction.t -> unit;
      (** Control-information exchange; invoked on every interaction. *)
  decide : time:int -> Doda_dynamic.Interaction.t -> int option;
      (** [decide ~time i] is [Some receiver] (an endpoint of [i]) or
          [None]. Only invoked when both endpoints own data. *)
}

(** {1 Batch kernels}

    A batch rule is a declarative description of an algorithm's
    decision function, precise enough for [Batch_engine] to advance
    many lockstep runs without consulting per-run {!instance} closures
    — token-style rules update a whole word of replications with one
    [land]/[lor]. An algorithm that carries one {b must} decide
    identically to its scalar instance on every interaction (the batch
    differential tests enforce this); algorithms whose decisions need
    arbitrary state (tree aggregation, full knowledge, future gossip)
    leave [batch = None] and run on the batch engine's generic
    instance lane. *)

type gather_tiebreak =
  | To_smaller  (** receiver is the smaller endpoint (plain Gathering) *)
  | To_larger
  | To_hash  (** receiver picked by {!hash_coin} *)
  | To_heavier
      (** receiver is the endpoint holding the larger aggregate
          (ties to the smaller id) — needs per-run payload state. *)

type batch_rule =
  | Token_sink
      (** Transmit to the sink on every sink interaction; otherwise do
          nothing (Waiting). *)
  | Coin_sink of float
      (** Token_sink gated by an independent Bernoulli(p) per
          opportunity (coin-waiting). *)
  | Gather of gather_tiebreak
      (** Always transmit when both endpoints hold; the sink receives
          when involved, else the tiebreak picks (Gathering family). *)
  | Coin_gather of float
      (** Gather to the smaller endpoint, non-sink transmissions gated
          by Bernoulli(p) (coin-gathering). *)
  | Meet_policy of {
      limit_of : time:int -> int;
      fire : time:int -> int option -> bool;
    }
      (** The meet-time policy shape shared by Waiting Greedy, its
          doubling variant, pure-greedy and sliding-window: compare the
          endpoints' meet times capped at [limit_of ~time]; the
          earlier-known endpoint receives if [fire] accepts the
          sender's (possibly unknown) meet time; two unknowns fall back
          to {!hash_coin}. *)

type t = {
  name : string;
  oblivious : bool;
      (** True when the algorithm keeps no per-node memory between
          interactions (the class [D∅ODA] of the paper). *)
  requires : Knowledge.requirement list;
      (** Oracles the algorithm needs; checked by the engine. *)
  batch : batch_rule option;
      (** Batch kernel equivalent to [make]'s instances, if any. *)
  make : n:int -> sink:int -> Knowledge.t -> instance;
      (** Fresh instance for one run.
          @raise Invalid_argument when knowledge is insufficient. *)
}

val no_observation : time:int -> Doda_dynamic.Interaction.t -> unit
(** A no-op [observe], for oblivious algorithms. *)

val hash_coin : time:int -> int -> int -> bool
(** The deterministic tiebreak coin shared by the meet-time policies,
    the hash gathering variant and their batch kernels: a fixed
    avalanche of [(time, a, b)], admissible wherever the two endpoints
    are exchangeable. *)

val check_knowledge : string -> Knowledge.t -> Knowledge.requirement list -> unit
(** @raise Invalid_argument naming the algorithm and the missing
    oracles when the knowledge does not satisfy the requirements. *)
