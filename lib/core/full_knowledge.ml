module Interaction = Doda_dynamic.Interaction

let make ?horizon () =
  {
    Algorithm.name = "full-knowledge";
    oblivious = false;
    requires = [ Knowledge.Full_schedule ];
    batch = None;
    make =
      (fun ~n ~sink:_ knowledge ->
        let sched = Option.get knowledge.Knowledge.full in
        let horizon = match horizon with Some h -> h | None -> 64 * n * n in
        let plan =
          Option.map fst (Convergecast.optimal_duration_lazy sched ~start:0 ~horizon)
        in
        match plan with
        | None ->
            {
              Algorithm.observe = Algorithm.no_observation;
              decide = (fun ~time:_ _ -> None);
            }
        | Some plan ->
            {
              Algorithm.observe = Algorithm.no_observation;
              decide =
                (fun ~time i ->
                  let a = Interaction.u i and b = Interaction.v i in
                  if plan.Convergecast.fire_time.(a) = time then Some b
                  else if plan.Convergecast.fire_time.(b) = time then Some a
                  else None);
            });
  }

let algorithm = make ()
