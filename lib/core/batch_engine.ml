module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction
module Prng = Doda_prng.Prng

(* Native ints carry 63 usable bits (the 64th is the tag); Int64 planes
   would box on every load without flambda, so one word packs 63
   replications and the sign bit is just bit 62 of the plane. *)
let word_bits = 63

type stats = { mutable decodes : int; mutable lane_steps : int }

let fresh_stats () = { decodes = 0; lane_steps = 0 }
let stats = fresh_stats
let batch_supported (algo : Algorithm.t) = algo.batch <> None

(* Index of the single set bit of [b] (which may be the sign bit):
   branchy binary reduction — portable, no popcount intrinsic. *)
let ntz b =
  let n = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then (n := !n + 32; b := !b lsr 32);
  if !b land 0xFFFF = 0 then (n := !n + 16; b := !b lsr 16);
  if !b land 0xFF = 0 then (n := !n + 8; b := !b lsr 8);
  if !b land 0xF = 0 then (n := !n + 4; b := !b lsr 4);
  if !b land 0x3 = 0 then (n := !n + 2; b := !b lsr 2);
  if !b land 0x1 = 0 then incr n;
  !n

(* [k] low bits set; [-1] is all 63 ones. *)
let mask_of k = if k >= word_bits then -1 else (1 lsl k) - 1

(* Same limit rule as [Engine.run]. *)
let limit_for ?max_steps schedule ~what =
  match (max_steps, Schedule.length schedule) with
  | Some m, Some len -> Stdlib.min m len
  | Some m, None -> m
  | None, Some len -> len
  | None, None ->
      invalid_arg (what ^ ": max_steps is mandatory for unbounded schedules")

(* Same stop-reason rule as [Engine.run]: the clock is compared against
   the schedule length, not the effective limit, so [max_steps = len]
   still reports exhaustion. *)
let stop_for schedule ~final_clock ~aggregated =
  if aggregated then Engine.All_aggregated
  else
    match Schedule.length schedule with
    | Some len when final_clock >= len -> Engine.Schedule_exhausted
    | Some _ | None -> Engine.Step_limit

(* Decode closure shared by the lockstep loops. Frozen/finite
   schedules read the flat backing directly. Chunked schedules cache
   the current block view, so the per-step cost is one bounds check
   and the advance (with its forward-only/length guards, and under
   prefetch the buffer swap) runs once per block. The cached array is
   only read for times inside its window, and the loops decode at
   monotonically increasing t, so by the time a swapped-out buffer is
   reused by the producer the consumer has already re-viewed — stale
   reads cannot happen. Everything else goes through a stepper. *)
let decoder schedule ~backing ~stp =
  match backing with
  | Some seq -> fun t -> Sequence.unsafe_get seq t
  | None when Schedule.is_chunked schedule ->
      let blk = ref [||] and base = ref 0 and hi = ref 0 in
      fun t ->
        if t >= !hi || t < !base then begin
          let b, off, avail = Schedule.chunk_view schedule t in
          blk := b;
          base := t - off;
          hi := t + avail
        end;
        Interaction.of_int_unchecked (Array.unsafe_get !blk (t - !base))
  | None ->
      let stp = Option.get stp in
      fun t -> Schedule.stepper_get stp t

(* ------------------------------------------------------------------ *)
(* Bit-parallel replications. *)

let run_reps ?max_steps ?(record = `All) ?rngs ?(stats = fresh_stats ())
    (algo : Algorithm.t) schedule r =
  if r < 0 then invalid_arg "Batch_engine.run_reps: negative replication count";
  let rule =
    match algo.batch with
    | Some rule -> rule
    | None ->
        invalid_arg
          (Printf.sprintf
             "Batch_engine.run_reps: %s has no batch rule (Token_sink / \
              Coin_sink / Coin_gather / Gather / Meet_policy); fall back to \
              the scalar Engine.run per replication \
              (Experiment.replicate_par)"
             algo.name)
  in
  let rngs =
    match rule with
    | Algorithm.Coin_sink _ | Algorithm.Coin_gather _ -> (
        match rngs with
        | Some a when Array.length a >= r -> a
        | Some _ ->
            invalid_arg
              "Batch_engine.run_reps: fewer rngs than replications"
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Batch_engine.run_reps: %s needs one rng per replication"
                 algo.name))
    | Algorithm.Token_sink | Algorithm.Gather _ | Algorithm.Meet_policy _ ->
        [||]
  in
  let limit = limit_for ?max_steps schedule ~what:"Batch_engine.run_reps" in
  let n = Schedule.n schedule and sink = Schedule.sink schedule in
  (* Success criterion from the problem family, not hard-coded: the
     batch executes single-sink aggregation, whose target owner count
     is [Problem.target_owners]. *)
  let target = Problem.target_owners (Problem.aggregation ~sink) in
  let w = (r + word_bits - 1) / word_bits in
  (* Plane word [v * w + word]: bit [b] set iff node [v] still holds
     data in replication [word * word_bits + b]. *)
  let planes = Array.make (n * w) 0 in
  let live = Array.make w 0 in
  for word = 0 to w - 1 do
    let k = Stdlib.min word_bits (r - (word * word_bits)) in
    let full = mask_of k in
    if n > target then live.(word) <- full;
    for v = 0 to n - 1 do
      planes.((v * w) + word) <- full
    done
  done;
  let alive = ref (if n > target then r else 0) in
  let owners = Array.make r n in
  let tx = Array.make r 0 in
  let last_time = Array.make r (-1) in
  let record_all = record = `All in
  let logs =
    if record_all then Array.init r (fun _ -> Run_log.create ~capacity:n ())
    else [||]
  in
  let backing = Schedule.backing schedule in
  let needs_stepper =
    backing = None
    || (match rule with Algorithm.Meet_policy _ -> true | _ -> false)
  in
  let stp = if needs_stepper then Some (Schedule.stepper schedule) else None in
  let decode = decoder schedule ~backing ~stp in
  (* Commit sender [s] -> receiver [rcv] at time [t] for every
     replication in [m] of plane word [word]: one word-parallel holder
     clear, then per-bit bookkeeping (bounded by the transmit-once
     model: at most [r * (n - 1)] commits over the whole batch). *)
  let commit_word ~t word m ~s ~rcv =
    planes.((s * w) + word) <- planes.((s * w) + word) land lnot m;
    let rem = ref m in
    while !rem <> 0 do
      let bit = !rem land (- !rem) in
      rem := !rem lxor bit;
      let rep = (word * word_bits) + ntz bit in
      owners.(rep) <- owners.(rep) - 1;
      tx.(rep) <- tx.(rep) + 1;
      last_time.(rep) <- t;
      if record_all then Run_log.add logs.(rep) ~time:t ~sender:s ~receiver:rcv;
      if owners.(rep) = target then begin
        live.(word) <- live.(word) land lnot bit;
        decr alive
      end
    done
  in
  let t = ref 0 in
  (match rule with
  | Algorithm.Token_sink ->
      while !alive > 0 && !t < limit do
        let i = decode !t in
        stats.decodes <- stats.decodes + 1;
        stats.lane_steps <- stats.lane_steps + !alive;
        let u = Interaction.u i and v = Interaction.v i in
        if u = sink || v = sink then begin
          let s = if u = sink then v else u in
          let bu = u * w and bv = v * w in
          for word = 0 to w - 1 do
            let m = planes.(bu + word) land planes.(bv + word) land live.(word) in
            if m <> 0 then commit_word ~t:!t word m ~s ~rcv:sink
          done
        end;
        incr t
      done
  | Algorithm.Coin_sink p ->
      while !alive > 0 && !t < limit do
        let i = decode !t in
        stats.decodes <- stats.decodes + 1;
        stats.lane_steps <- stats.lane_steps + !alive;
        let u = Interaction.u i and v = Interaction.v i in
        if u = sink || v = sink then begin
          (* The scalar decide short-circuits: the coin is drawn only
             on sink-involving interactions where both endpoints still
             hold, so draw exactly there and nowhere else. *)
          let s = if u = sink then v else u in
          let bu = u * w and bv = v * w in
          for word = 0 to w - 1 do
            let m = planes.(bu + word) land planes.(bv + word) land live.(word) in
            let rem = ref m in
            while !rem <> 0 do
              let bit = !rem land (- !rem) in
              rem := !rem lxor bit;
              let rep = (word * word_bits) + ntz bit in
              if Prng.bernoulli rngs.(rep) p then
                commit_word ~t:!t word bit ~s ~rcv:sink
            done
          done
        end;
        incr t
      done
  | Algorithm.Coin_gather p ->
      while !alive > 0 && !t < limit do
        let i = decode !t in
        stats.decodes <- stats.decodes + 1;
        stats.lane_steps <- stats.lane_steps + !alive;
        let u = Interaction.u i and v = Interaction.v i in
        let bu = u * w and bv = v * w in
        if u = sink || v = sink then begin
          (* Sink meetings transmit unconditionally — no draw. *)
          let s = if u = sink then v else u in
          for word = 0 to w - 1 do
            let m = planes.(bu + word) land planes.(bv + word) land live.(word) in
            if m <> 0 then commit_word ~t:!t word m ~s ~rcv:sink
          done
        end
        else
          for word = 0 to w - 1 do
            let m = planes.(bu + word) land planes.(bv + word) land live.(word) in
            let rem = ref m in
            while !rem <> 0 do
              let bit = !rem land (- !rem) in
              rem := !rem lxor bit;
              let rep = (word * word_bits) + ntz bit in
              if Prng.bernoulli rngs.(rep) p then
                commit_word ~t:!t word bit ~s:v ~rcv:u
            done
          done;
        incr t
      done
  | Algorithm.Gather tb ->
      let payloads =
        match tb with
        | Algorithm.To_heavier -> Array.make (r * n) 1
        | _ -> [||]
      in
      while !alive > 0 && !t < limit do
        let i = decode !t in
        stats.decodes <- stats.decodes + 1;
        stats.lane_steps <- stats.lane_steps + !alive;
        let u = Interaction.u i and v = Interaction.v i in
        let bu = u * w and bv = v * w in
        (match tb with
        | Algorithm.To_heavier ->
            (* Receiver depends on per-replication payloads, so the
               whole commit is per-bit. *)
            for word = 0 to w - 1 do
              let m =
                planes.(bu + word) land planes.(bv + word) land live.(word)
              in
              let rem = ref m in
              while !rem <> 0 do
                let bit = !rem land (- !rem) in
                rem := !rem lxor bit;
                let rep = (word * word_bits) + ntz bit in
                let base = rep * n in
                let rcv =
                  if u = sink || v = sink then sink
                  else if payloads.(base + u) > payloads.(base + v) then u
                  else if payloads.(base + v) > payloads.(base + u) then v
                  else u
                in
                let s = if rcv = u then v else u in
                payloads.(base + rcv) <-
                  payloads.(base + rcv) + payloads.(base + s);
                payloads.(base + s) <- 0;
                commit_word ~t:!t word bit ~s ~rcv
              done
            done
        | Algorithm.To_smaller | Algorithm.To_larger | Algorithm.To_hash ->
            (* Receiver is a pure function of (t, u, v): shared across
               the batch, committed word-parallel. *)
            let rcv =
              if u = sink || v = sink then sink
              else
                match tb with
                | Algorithm.To_smaller -> u
                | Algorithm.To_larger -> v
                | Algorithm.To_hash | Algorithm.To_heavier ->
                    if Algorithm.hash_coin ~time:!t u v then u else v
            in
            let s = if rcv = u then v else u in
            for word = 0 to w - 1 do
              let m =
                planes.(bu + word) land planes.(bv + word) land live.(word)
              in
              if m <> 0 then commit_word ~t:!t word m ~s ~rcv
            done);
        incr t
      done
  | Algorithm.Meet_policy { limit_of; fire } ->
      let stp = Option.get stp in
      while !alive > 0 && !t < limit do
        let i = decode !t in
        stats.decodes <- stats.decodes + 1;
        stats.lane_steps <- stats.lane_steps + !alive;
        let u = Interaction.u i and v = Interaction.v i in
        let bu = u * w and bv = v * w in
        let any = ref false in
        for word = 0 to w - 1 do
          if planes.(bu + word) land planes.(bv + word) land live.(word) <> 0
          then any := true
        done;
        (* The decision is a pure function of (t, u, v, oracle) — the
           same for every replication — so compute it once, and only
           when some replication can transmit (the oracle probe is the
           expensive part). *)
        if !any then begin
          let time = !t in
          let lim = limit_of ~time in
          let meet node =
            if node = sink then Some time
            else Schedule.stepper_next_meet stp ~node ~after:time ~limit:lim
          in
          let rcv =
            match (meet u, meet v) with
            | Some m1, Some m2 ->
                if m1 <= m2 then
                  if fire ~time (Some m2) then Some u else None
                else if fire ~time (Some m1) then Some v
                else None
            | Some _, None -> if fire ~time None then Some u else None
            | None, Some _ -> if fire ~time None then Some v else None
            | None, None ->
                if fire ~time None then
                  if Algorithm.hash_coin ~time u v then Some u else Some v
                else None
          in
          match rcv with
          | None -> ()
          | Some rcv ->
              let s = if rcv = u then v else u in
              for word = 0 to w - 1 do
                let m =
                  planes.(bu + word) land planes.(bv + word) land live.(word)
                in
                if m <> 0 then commit_word ~t:!t word m ~s ~rcv
              done
        end;
        incr t
      done);
  let final_clock = !t in
  Array.init r (fun rep ->
      let aggregated = owners.(rep) = target in
      let word = rep / word_bits and bit = 1 lsl (rep mod word_bits) in
      {
        Engine.stop = stop_for schedule ~final_clock ~aggregated;
        duration = (if aggregated then Some last_time.(rep) else None);
        steps = (if aggregated then last_time.(rep) + 1 else final_clock);
        log = (if record_all then logs.(rep) else Run_log.create ());
        transmission_count = tx.(rep);
        holders =
          Array.init n (fun v -> planes.((v * w) + word) land bit <> 0);
      })

(* ------------------------------------------------------------------ *)
(* Lockstep algorithm sweep: one lane per rival, packed into one word. *)

type lane =
  | Token
  | Gather_to of Algorithm.gather_tiebreak * int array
      (* payload plane, size n for To_heavier, empty otherwise *)
  | Meet of (time:int -> int) * (time:int -> int option -> bool)
  | Generic of Algorithm.instance

let sweep_chunk ?max_steps ~record ~stats algos schedule =
  let limit = limit_for ?max_steps schedule ~what:"Batch_engine.sweep" in
  let n = Schedule.n schedule and sink = Schedule.sink schedule in
  let target = Problem.target_owners (Problem.aggregation ~sink) in
  let lanes = Array.of_list algos in
  let l = Array.length lanes in
  let names = Array.map (fun (a : Algorithm.t) -> a.Algorithm.name) lanes in
  (* Instances are created up front in list order: consecutive scalar
     [Engine.run]s would create them in the same order, so coin
     algorithms split their captured master streams identically. *)
  let kinds =
    Array.map
      (fun (algo : Algorithm.t) ->
        match algo.batch with
        | Some Algorithm.Token_sink -> Token
        | Some (Algorithm.Gather tb) ->
            Gather_to
              ( tb,
                match tb with
                | Algorithm.To_heavier -> Array.make n 1
                | _ -> [||] )
        | Some (Algorithm.Meet_policy { limit_of; fire }) ->
            Meet (limit_of, fire)
        | Some (Algorithm.Coin_sink _) | Some (Algorithm.Coin_gather _) | None
          ->
            let knowledge = Knowledge.for_schedule schedule algo.requires in
            Algorithm.check_knowledge algo.name knowledge algo.requires;
            Generic (algo.make ~n ~sink knowledge))
      lanes
  in
  let meet_mask = ref 0 in
  let generics = ref [] in
  Array.iteri
    (fun lane kind ->
      match kind with
      | Meet _ -> meet_mask := !meet_mask lor (1 lsl lane)
      | Generic inst -> generics := (lane, inst) :: !generics
      | Token | Gather_to _ -> ())
    kinds;
  let meet_mask = !meet_mask in
  let generics = Array.of_list (List.rev !generics) in
  let full = mask_of l in
  (* planes.(v) bit [lane]: node [v] still holds data in that lane. *)
  let planes = Array.make n full in
  let live = ref (if n > target then full else 0) in
  let alive = ref (if n > target then l else 0) in
  let owners = Array.make l n in
  let tx = Array.make l 0 in
  let last_time = Array.make l (-1) in
  let record_all = record = `All in
  let logs =
    if record_all then Array.init l (fun _ -> Run_log.create ~capacity:n ())
    else [||]
  in
  let lims = Array.make l 0 in
  let backing = Schedule.backing schedule in
  let stp =
    if backing = None || meet_mask <> 0 then Some (Schedule.stepper schedule)
    else None
  in
  let decode = decoder schedule ~backing ~stp in
  let t = ref 0 in
  while !alive > 0 && !t < limit do
    let time = !t in
    let i = decode time in
    stats.decodes <- stats.decodes + 1;
    stats.lane_steps <- stats.lane_steps + !alive;
    let u = Interaction.u i and v = Interaction.v i in
    (* Scalar engines call [observe] on every step while their run is
       live, transmission or not. *)
    for k = 0 to Array.length generics - 1 do
      let lane, inst = generics.(k) in
      if !live land (1 lsl lane) <> 0 then inst.Algorithm.observe ~time i
    done;
    let m = planes.(u) land planes.(v) land !live in
    if m <> 0 then begin
      (* Shared meet probes: one stepper query per endpoint under the
         maximum live lane limit; per-lane answers filter by their own
         limit, which is equivalent because every lane wants the same
         first meet after [time]. *)
      let mm = m land meet_mask in
      let mu = ref None and mv = ref None in
      if mm <> 0 then begin
        let cap = ref min_int in
        let rem = ref mm in
        while !rem <> 0 do
          let bit = !rem land (- !rem) in
          rem := !rem lxor bit;
          let lane = ntz bit in
          let lim =
            match kinds.(lane) with
            | Meet (limit_of, _) -> limit_of ~time
            | _ -> assert false
          in
          lims.(lane) <- lim;
          if lim > !cap then cap := lim
        done;
        let stp = Option.get stp in
        if u <> sink then
          mu := Schedule.stepper_next_meet stp ~node:u ~after:time ~limit:!cap;
        if v <> sink then
          mv := Schedule.stepper_next_meet stp ~node:v ~after:time ~limit:!cap
      end;
      let rem = ref m in
      while !rem <> 0 do
        let bit = !rem land (- !rem) in
        rem := !rem lxor bit;
        let lane = ntz bit in
        let rcv =
          match kinds.(lane) with
          | Token -> if u = sink || v = sink then Some sink else None
          | Gather_to (tb, payload) ->
              let rcv =
                if u = sink || v = sink then sink
                else
                  match tb with
                  | Algorithm.To_smaller -> u
                  | Algorithm.To_larger -> v
                  | Algorithm.To_hash ->
                      if Algorithm.hash_coin ~time u v then u else v
                  | Algorithm.To_heavier ->
                      if payload.(u) > payload.(v) then u
                      else if payload.(v) > payload.(u) then v
                      else u
              in
              (match tb with
              | Algorithm.To_heavier ->
                  (* Mirrors the scalar decide's payload bookkeeping. *)
                  let s = if rcv = u then v else u in
                  payload.(rcv) <- payload.(rcv) + payload.(s);
                  payload.(s) <- 0
              | _ -> ());
              Some rcv
          | Meet (_, fire) ->
              let lim = lims.(lane) in
              let capped node cached =
                if node = sink then Some time
                else
                  match cached with
                  | Some x when x <= lim -> Some x
                  | _ -> None
              in
              (match (capped u !mu, capped v !mv) with
              | Some m1, Some m2 ->
                  if m1 <= m2 then
                    if fire ~time (Some m2) then Some u else None
                  else if fire ~time (Some m1) then Some v
                  else None
              | Some _, None -> if fire ~time None then Some u else None
              | None, Some _ -> if fire ~time None then Some v else None
              | None, None ->
                  if fire ~time None then
                    if Algorithm.hash_coin ~time u v then Some u else Some v
                  else None)
          | Generic inst -> inst.Algorithm.decide ~time i
        in
        match rcv with
        | None -> ()
        | Some rcv ->
            (* Same model enforcement as [Engine.commit]; batch-rule
               lanes satisfy it by construction, generic lanes can
               misbehave exactly like under the scalar engine. *)
            if not (Interaction.involves i rcv) then
              invalid_arg
                (Printf.sprintf
                   "Batch_engine.sweep: %s returned a non-endpoint receiver"
                   names.(lane));
            let s = Interaction.other i rcv in
            if s = sink then
              invalid_arg
                (Printf.sprintf "Batch_engine.sweep: %s made the sink transmit"
                   names.(lane));
            planes.(s) <- planes.(s) land lnot bit;
            owners.(lane) <- owners.(lane) - 1;
            tx.(lane) <- tx.(lane) + 1;
            last_time.(lane) <- time;
            if record_all then
              Run_log.add logs.(lane) ~time ~sender:s ~receiver:rcv;
            if owners.(lane) = target then begin
              live := !live land lnot bit;
              decr alive
            end
      done
    end;
    incr t
  done;
  let final_clock = !t in
  Array.init l (fun lane ->
      let aggregated = owners.(lane) = target in
      let bit = 1 lsl lane in
      {
        Engine.stop = stop_for schedule ~final_clock ~aggregated;
        duration = (if aggregated then Some last_time.(lane) else None);
        steps = (if aggregated then last_time.(lane) + 1 else final_clock);
        log = (if record_all then logs.(lane) else Run_log.create ());
        transmission_count = tx.(lane);
        holders = Array.init n (fun node -> planes.(node) land bit <> 0);
      })

let rec split_at k = function
  | [] -> ([], [])
  | l when k = 0 -> ([], l)
  | x :: tl ->
      let a, b = split_at (k - 1) tl in
      (x :: a, b)

let rec sweep ?max_steps ?(record = `All) ?(stats = fresh_stats ()) algos
    schedule =
  if List.length algos <= word_bits then
    sweep_chunk ?max_steps ~record ~stats algos schedule
  else
    let chunk, rest = split_at word_bits algos in
    Array.append
      (sweep_chunk ?max_steps ~record ~stats chunk schedule)
      (sweep ?max_steps ~record ~stats rest schedule)
