(** Independent validation of executions and convergecast plans.

    A second, deliberately simple implementation of the model rules,
    used to cross-check the engine and the plan extractor in tests
    (redundancy against bugs in the main path), and to vet externally
    produced schedules. Runs in O(T + n) over the flat {!Run_log}. *)

type violation =
  | Out_of_order of int  (** transmission index not in time order *)
  | Bad_time of int  (** time outside the sequence *)
  | Wrong_interaction of int
      (** sender/receiver are not the endpoints of [I_t] *)
  | Sender_without_data of int  (** sender had already transmitted *)
  | Receiver_without_data of int  (** receiver had already transmitted *)
  | Sink_transmitted of int
  | Duplicate_sender of int  (** node transmits a second time *)
  | Uninformative of int
      (** gossip transfer that taught the receiver nothing — a
          {!Gossip} log only records informative transfers *)

val pp_violation : Format.formatter -> violation -> unit

val execution :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> Run_log.t -> violation list
(** [execution ~n ~sink s log] replays the transmission log against the
    model rules; returns all violations ([[]] iff the log is a valid
    partial execution). Hand-built lists go through
    {!Run_log.of_list}. *)

val complete :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> Run_log.t -> bool
(** Valid {e and} every non-sink node transmitted — a full aggregation. *)

val gossip :
  n:int ->
  problem:Problem.t ->
  Doda_dynamic.Sequence.t ->
  Run_log.t ->
  violation list
(** [gossip ~n ~problem s log] replays a {!Gossip} informative-transfer
    log: times in order (equal times allowed — one interaction can log
    one transfer per direction), endpoints matching [I_t], and every
    transfer informative under the replayed per-token knowledge.
    @raise Invalid_argument if [problem] is not [Dissemination]. *)

val gossip_complete :
  n:int -> problem:Problem.t -> Doda_dynamic.Sequence.t -> Run_log.t -> bool
(** Valid {e and} the replayed knowledge covers all [k] tokens at every
    node — a full dissemination. *)

val problem :
  Problem.t -> n:int -> Doda_dynamic.Sequence.t -> Run_log.t -> violation list
(** Dispatch on the problem family: {!execution} for [Aggregation]
    (including the duplicate-sender check), {!gossip} for
    [Dissemination]. *)

val problem_complete :
  Problem.t -> n:int -> Doda_dynamic.Sequence.t -> Run_log.t -> bool
(** {!complete} or {!gossip_complete}, by problem family. *)

val plan :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> Convergecast.plan -> violation list
(** Check a convergecast plan by converting it to a transmission log. *)
