module Interaction = Doda_dynamic.Interaction

let algorithm =
  {
    Algorithm.name = "waiting";
    oblivious = true;
    requires = [];
    batch = Some Algorithm.Token_sink;
    make =
      (fun ~n:_ ~sink _knowledge ->
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time:_ i ->
              if Interaction.involves i sink then Some sink else None);
        });
  }
