module Interaction = Doda_dynamic.Interaction
module Spanning_tree = Doda_graph.Spanning_tree

type tree_choice = Bfs | Kruskal

let make ?(tree = Bfs) () =
  let tree_name = match tree with Bfs -> "" | Kruskal -> "(kruskal)" in
  {
    Algorithm.name = "tree-aggregation" ^ tree_name;
    oblivious = false;
    requires = [ Knowledge.Underlying_graph ];
    batch = None;
    make =
      (fun ~n:_ ~sink knowledge ->
        let graph = Option.get knowledge.Knowledge.underlying in
        let tree =
          match tree with
          | Bfs -> Spanning_tree.bfs_tree graph ~root:sink
          | Kruskal -> Spanning_tree.kruskal_tree graph ~root:sink
        in
        let pending =
          Array.init (Spanning_tree.size tree) (fun u ->
              List.length (Spanning_tree.children tree u))
        in
        let ready u = u <> sink && pending.(u) = 0 in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time:_ i ->
              let a = Interaction.u i and b = Interaction.v i in
              if Spanning_tree.parent tree a = b && ready a then begin
                pending.(b) <- pending.(b) - 1;
                Some b
              end
              else if Spanning_tree.parent tree b = a && ready b then begin
                pending.(a) <- pending.(a) - 1;
                Some a
              end
              else None);
        });
  }

let algorithm = make ()
