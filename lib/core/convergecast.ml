module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Interaction = Doda_dynamic.Interaction
module Temporal = Doda_dynamic.Temporal

type plan = { fire_time : int array; fire_to : int array; completion : int }

let feasible ~n ~sink s ~lo ~hi =
  if n = 1 then true
  else if lo > hi || lo < 0 || hi >= Sequence.length s then false
  else Temporal.reverse_flood_all_informed ~n ~src:sink s ~lo ~hi

let opt ~n ~sink s t =
  let len = Sequence.length s in
  if t < 0 then invalid_arg "Convergecast.opt: negative start time";
  if n = 1 then Some t
  else if t >= len || not (feasible ~n ~sink s ~lo:t ~hi:(len - 1)) then None
  else begin
    (* Feasibility is monotone in [hi]: binary search the smallest one. *)
    let lo_bound = ref t and hi_bound = ref (len - 1) in
    while !lo_bound < !hi_bound do
      let mid = (!lo_bound + !hi_bound) / 2 in
      if feasible ~n ~sink s ~lo:t ~hi:mid then hi_bound := mid
      else lo_bound := mid + 1
    done;
    Some !lo_bound
  end

(* Reverse flood over [start .. upper], recording for each node the
   index of the interaction that informed it; by the duality that index
   is the node's transmission time in the convergecast. *)
let plan_within ~n ~sink s ~start ~upper =
  let fire_time = Array.make n (-1) in
  let fire_to = Array.make n (-1) in
  let informed = Array.make n false in
  informed.(sink) <- true;
  let count = ref 1 in
  let completion = ref (-1) in
  let t = ref upper in
  while !count < n && !t >= start do
    let i = Sequence.get s !t in
    let a = Interaction.u i and b = Interaction.v i in
    let inform target source =
      informed.(target) <- true;
      fire_time.(target) <- !t;
      fire_to.(target) <- source;
      incr count;
      if !completion < 0 then completion := !t
    in
    if informed.(a) && not informed.(b) then inform b a
    else if informed.(b) && not informed.(a) then inform a b;
    decr t
  done;
  if !count = n then Some { fire_time; fire_to; completion = Stdlib.max !completion start }
  else None

let plan ~n ~sink s ~start =
  match opt ~n ~sink s start with
  | None -> None
  | Some ending -> plan_within ~n ~sink s ~start ~upper:ending

let t_chain ~n ~sink s =
  let rec chain start acc =
    match opt ~n ~sink s start with
    | None -> List.rev acc
    | Some ending -> chain (ending + 1) (ending :: acc)
  in
  chain 0 []

(* Reverse flood over [lo .. hi] with a generation-stamped scratch:
   [stamp.(v) = gen] means informed, so probes reuse one int array with
   no clearing between them. *)
let flood_ok ~n ~sink ~stamp ~gen s ~lo ~hi =
  stamp.(sink) <- gen;
  let count = ref 1 in
  let t = ref hi in
  while !count < n && !t >= lo do
    let i = Sequence.get s !t in
    let a = Interaction.u i and b = Interaction.v i in
    let ia = stamp.(a) = gen and ib = stamp.(b) = gen in
    if ia <> ib then begin
      stamp.(if ia then b else a) <- gen;
      incr count
    end;
    decr t
  done;
  !count = n

let optimal_duration_lazy sched ~start ~horizon =
  let n = Schedule.n sched and sink = Schedule.sink sched in
  if start < 0 then invalid_arg "Convergecast.opt: negative start time";
  let cap =
    match Schedule.length sched with
    | Some len -> Stdlib.min len horizon
    | None -> horizon
  in
  match Schedule.backing sched with
  | Some s ->
      (* Zero-copy path: the schedule is finite or frozen, so the
         binary search for the minimal ending runs directly on the
         backing sequence with index bounds — no [Schedule.prefix]
         copies per doubling attempt, and the feasibility probes share
         one generation-stamped scratch instead of allocating an
         informed array each. *)
      let upper = Stdlib.min cap (Sequence.length s) - 1 in
      if start > upper then None
      else begin
        let stamp = Array.make n 0 in
        let gen = ref 0 in
        let probe hi =
          incr gen;
          flood_ok ~n ~sink ~stamp ~gen:!gen s ~lo:start ~hi
        in
        if not (probe upper) then None
        else begin
          let lo_b = ref start and hi_b = ref upper in
          while !lo_b < !hi_b do
            let mid = (!lo_b + !hi_b) / 2 in
            if probe mid then hi_b := mid else lo_b := mid + 1
          done;
          match plan_within ~n ~sink s ~start ~upper:!lo_b with
          | Some p -> Some (p, !lo_b + 1)
          | None -> None
        end
      end
  | None ->
      (* Generator-backed schedule: materialise geometrically growing
         prefixes until a convergecast fits. *)
      let rec attempt size =
        if start >= size && size >= cap then None
        else begin
          let size = Stdlib.min size cap in
          let prefix = Schedule.prefix sched size in
          match plan ~n ~sink prefix ~start with
          | Some p -> Some (p, size)
          | None -> if size >= cap then None else attempt (size * 2)
        end
      in
      attempt (Stdlib.max 16 (Stdlib.max (4 * n) (2 * (start + 1))))
