module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

(* Same word width as the lockstep batch engine: tokens here play the
   role replications play there, one bit per token in a native int. *)
let word_bits = Batch_engine.word_bits

type result = {
  stop : Engine.stop_reason;
  duration : int option;
  steps : int;
  log : Run_log.t;
  transfer_count : int;
  coverage : int array;
  complete_nodes : int;
}

type observer = {
  g_step : (time:int -> Interaction.t -> unit) option;
  g_transfer : (time:int -> sender:int -> receiver:int -> unit) option;
  g_finish : (result -> unit) option;
}

let observer ?on_step ?on_transfer ?on_finish () =
  { g_step = on_step; g_transfer = on_transfer; g_finish = on_finish }

(* Observer callback arrays, same plumbing as [Engine.make_state]. *)
type obs_arrays = {
  step_obs : (time:int -> Interaction.t -> unit) array;
  transfer_obs : (time:int -> sender:int -> receiver:int -> unit) array;
  finish_obs : (result -> unit) array;
  has_step_obs : bool;
}

let obs_arrays observers =
  let step_obs =
    Array.of_list (List.filter_map (fun o -> o.g_step) observers)
  in
  {
    step_obs;
    transfer_obs =
      Array.of_list (List.filter_map (fun o -> o.g_transfer) observers);
    finish_obs =
      Array.of_list (List.filter_map (fun o -> o.g_finish) observers);
    has_step_obs = Array.length step_obs > 0;
  }

let notify_step obs ~t i =
  let a = obs.step_obs in
  for idx = 0 to Array.length a - 1 do
    (Array.unsafe_get a idx) ~time:t i
  done

let notify_transfer obs ~t ~sender ~receiver =
  let a = obs.transfer_obs in
  for idx = 0 to Array.length a - 1 do
    (Array.unsafe_get a idx) ~time:t ~sender ~receiver
  done

(* Same limit and stop-reason rules as [Engine.run]. *)
let limit_for ?max_steps schedule ~what =
  match (max_steps, Schedule.length schedule) with
  | Some m, Some len -> Stdlib.min m len
  | Some m, None -> m
  | None, Some len -> len
  | None, None ->
      invalid_arg (what ^ ": max_steps is mandatory for unbounded schedules")

let stop_for schedule ~final_clock ~solved =
  if solved then Engine.All_aggregated
  else
    match Schedule.length schedule with
    | Some len when final_clock >= len -> Engine.Schedule_exhausted
    | Some _ | None -> Engine.Step_limit

(* One decoder for live, frozen and chunked schedules: gossip has no
   meet-time oracle to serve, so [get_exn]'s forward reads cover the
   chunked case too. *)
let decoder schedule =
  match Schedule.backing schedule with
  | Some seq -> fun t -> Sequence.unsafe_get seq t
  | None -> fun t -> Schedule.get_exn schedule t

let popcount x =
  let x = ref x and c = ref 0 in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let finish obs r =
  let a = obs.finish_obs in
  for idx = 0 to Array.length a - 1 do
    (Array.unsafe_get a idx) r
  done;
  r

let tokens_of ~what problem =
  match problem with
  | Problem.Dissemination _ -> Problem.tokens problem
  | Problem.Aggregation _ ->
      invalid_arg (what ^ ": not a dissemination problem")

(* [k] low bits set; [-1] is all 63 ones. *)
let mask_of k = if k >= word_bits then -1 else (1 lsl k) - 1

let run ?max_steps ?(record = `All) ?(observers = []) ~problem schedule =
  let k = tokens_of ~what:"Gossip.run" problem in
  let n = Schedule.n schedule in
  let limit = limit_for ?max_steps schedule ~what:"Gossip.run" in
  let obs = obs_arrays observers in
  let decode = decoder schedule in
  let w = (k + word_bits - 1) / word_bits in
  (* Plane word [v * w + word]: bit [b] set iff node [v] knows token
     [word * word_bits + b]. *)
  let planes = Array.make (n * w) 0 in
  let full =
    Array.init w (fun word ->
        mask_of (Stdlib.min word_bits (k - (word * word_bits))))
  in
  for j = 0 to k - 1 do
    let home = Problem.token_home problem ~n ~token:j in
    let word = j / word_bits and bit = 1 lsl (j mod word_bits) in
    planes.((home * w) + word) <- planes.((home * w) + word) lor bit
  done;
  let complete = Array.make n false in
  let ncomplete = ref 0 in
  for v = 0 to n - 1 do
    let fullv = ref true in
    for word = 0 to w - 1 do
      if planes.((v * w) + word) <> full.(word) then fullv := false
    done;
    if !fullv then begin
      complete.(v) <- true;
      incr ncomplete
    end
  done;
  let record_all = record = `All in
  let log = Run_log.create ~capacity:n () in
  let clock = ref 0 in
  let last_time = ref (-1) in
  let transfer_count = ref 0 in
  while !ncomplete < n && !clock < limit do
    let t = !clock in
    let i = decode t in
    let u = Interaction.u i and v = Interaction.v i in
    let bu = u * w and bv = v * w in
    let du = ref false and dv = ref false in
    for word = 0 to w - 1 do
      let pu = planes.(bu + word) and pv = planes.(bv + word) in
      let m = pu lor pv in
      if m <> pu then begin
        du := true;
        planes.(bu + word) <- m
      end;
      if m <> pv then begin
        dv := true;
        planes.(bv + word) <- m
      end
    done;
    (* Log order at one step: receiver [u] (the smaller endpoint)
       before receiver [v] — the reference implementation matches. *)
    if !du then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:v ~receiver:u;
      notify_transfer obs ~t ~sender:v ~receiver:u
    end;
    if !dv then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:u ~receiver:v;
      notify_transfer obs ~t ~sender:u ~receiver:v
    end;
    if !du || !dv then begin
      (* The endpoints now share one merged set: one fullness check
         covers both. *)
      let fullnow = ref true in
      for word = 0 to w - 1 do
        if planes.(bu + word) <> full.(word) then fullnow := false
      done;
      if !fullnow then begin
        if not complete.(u) then begin
          complete.(u) <- true;
          incr ncomplete;
          last_time := t
        end;
        if not complete.(v) then begin
          complete.(v) <- true;
          incr ncomplete;
          last_time := t
        end
      end
    end;
    if obs.has_step_obs then notify_step obs ~t i;
    incr clock
  done;
  let final_clock = !clock in
  let solved = !ncomplete = n in
  let coverage =
    Array.init n (fun v ->
        let c = ref 0 in
        for word = 0 to w - 1 do
          c := !c + popcount planes.((v * w) + word)
        done;
        !c)
  in
  finish obs
    {
      stop = stop_for schedule ~final_clock ~solved;
      duration = (if solved then Some !last_time else None);
      steps = final_clock;
      log;
      transfer_count = !transfer_count;
      coverage;
      complete_nodes = !ncomplete;
    }

let run_reference ?max_steps ?(record = `All) ?(observers = []) ~problem
    schedule =
  let k = tokens_of ~what:"Gossip.run_reference" problem in
  let n = Schedule.n schedule in
  let limit = limit_for ?max_steps schedule ~what:"Gossip.run_reference" in
  let obs = obs_arrays observers in
  let decode = decoder schedule in
  (* know.(v * k + j): node [v] knows token [j]. *)
  let know = Array.make (n * k) false in
  let counts = Array.make n 0 in
  for j = 0 to k - 1 do
    let home = Problem.token_home problem ~n ~token:j in
    if not know.((home * k) + j) then begin
      know.((home * k) + j) <- true;
      counts.(home) <- counts.(home) + 1
    end
  done;
  let complete = Array.make n false in
  let ncomplete = ref 0 in
  for v = 0 to n - 1 do
    if Problem.covered problem ~known:counts.(v) then begin
      complete.(v) <- true;
      incr ncomplete
    end
  done;
  let record_all = record = `All in
  let log = Run_log.create ~capacity:n () in
  let clock = ref 0 in
  let last_time = ref (-1) in
  let transfer_count = ref 0 in
  while !ncomplete < n && !clock < limit do
    let t = !clock in
    let i = decode t in
    let u = Interaction.u i and v = Interaction.v i in
    let gained_u = ref 0 and gained_v = ref 0 in
    for j = 0 to k - 1 do
      let ku = know.((u * k) + j) and kv = know.((v * k) + j) in
      if kv && not ku then begin
        know.((u * k) + j) <- true;
        incr gained_u
      end;
      if ku && not kv then begin
        know.((v * k) + j) <- true;
        incr gained_v
      end
    done;
    counts.(u) <- counts.(u) + !gained_u;
    counts.(v) <- counts.(v) + !gained_v;
    if !gained_u > 0 then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:v ~receiver:u;
      notify_transfer obs ~t ~sender:v ~receiver:u
    end;
    if !gained_v > 0 then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:u ~receiver:v;
      notify_transfer obs ~t ~sender:u ~receiver:v
    end;
    if !gained_u > 0 || !gained_v > 0 then begin
      if Problem.covered problem ~known:counts.(u) && not complete.(u) then begin
        complete.(u) <- true;
        incr ncomplete;
        last_time := t
      end;
      if Problem.covered problem ~known:counts.(v) && not complete.(v) then begin
        complete.(v) <- true;
        incr ncomplete;
        last_time := t
      end
    end;
    if obs.has_step_obs then notify_step obs ~t i;
    incr clock
  done;
  let final_clock = !clock in
  let solved = !ncomplete = n in
  finish obs
    {
      stop = stop_for schedule ~final_clock ~solved;
      duration = (if solved then Some !last_time else None);
      steps = final_clock;
      log;
      transfer_count = !transfer_count;
      coverage = Array.copy counts;
      complete_nodes = !ncomplete;
    }

let pp_result ppf r =
  let reason =
    match r.stop with
    | Engine.All_aggregated -> "all covered"
    | Engine.Schedule_exhausted -> "schedule exhausted"
    | Engine.Step_limit -> "step limit"
  in
  Format.fprintf ppf "@[<v>stop: %s@,steps: %d@,transfers: %d@," reason r.steps
    r.transfer_count;
  (match r.duration with
  | Some d -> Format.fprintf ppf "duration: %d@," d
  | None -> Format.fprintf ppf "duration: -@,");
  Format.fprintf ppf "covered nodes: %d of %d@]" r.complete_nodes
    (Array.length r.coverage)
