module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

(* Same word width as the lockstep batch engine: tokens here play the
   role replications play there, one bit per token in a native int. *)
let word_bits = Batch_engine.word_bits

type result = {
  stop : Engine.stop_reason;
  duration : int option;
  steps : int;
  log : Run_log.t;
  transfer_count : int;
  coverage : int array;
  complete_nodes : int;
}

type observer = {
  g_step : (time:int -> Interaction.t -> unit) option;
  g_transfer : (time:int -> sender:int -> receiver:int -> unit) option;
  g_finish : (result -> unit) option;
}

let observer ?on_step ?on_transfer ?on_finish () =
  { g_step = on_step; g_transfer = on_transfer; g_finish = on_finish }

(* Observer callback arrays, same plumbing as [Engine.make_state]. *)
type obs_arrays = {
  step_obs : (time:int -> Interaction.t -> unit) array;
  transfer_obs : (time:int -> sender:int -> receiver:int -> unit) array;
  finish_obs : (result -> unit) array;
  has_step_obs : bool;
}

let obs_arrays observers =
  let step_obs =
    Array.of_list (List.filter_map (fun o -> o.g_step) observers)
  in
  {
    step_obs;
    transfer_obs =
      Array.of_list (List.filter_map (fun o -> o.g_transfer) observers);
    finish_obs =
      Array.of_list (List.filter_map (fun o -> o.g_finish) observers);
    has_step_obs = Array.length step_obs > 0;
  }

let notify_step obs ~t i =
  let a = obs.step_obs in
  for idx = 0 to Array.length a - 1 do
    (Array.unsafe_get a idx) ~time:t i
  done

let notify_transfer obs ~t ~sender ~receiver =
  let a = obs.transfer_obs in
  for idx = 0 to Array.length a - 1 do
    (Array.unsafe_get a idx) ~time:t ~sender ~receiver
  done

(* Same limit and stop-reason rules as [Engine.run]. *)
let limit_for ?max_steps schedule ~what =
  match (max_steps, Schedule.length schedule) with
  | Some m, Some len -> Stdlib.min m len
  | Some m, None -> m
  | None, Some len -> len
  | None, None ->
      invalid_arg (what ^ ": max_steps is mandatory for unbounded schedules")

let stop_for schedule ~final_clock ~solved =
  if solved then Engine.All_aggregated
  else
    match Schedule.length schedule with
    | Some len when final_clock >= len -> Engine.Schedule_exhausted
    | Some _ | None -> Engine.Step_limit

(* One decoder for live, frozen and chunked schedules: gossip has no
   meet-time oracle to serve, so forward reads cover the chunked case
   too. Chunked schedules read through a cached block view — one
   bounds check per step, one advance (and, under prefetch, one buffer
   swap) per block; see [Batch_engine.decoder] for why the cached
   array can never be read stale. *)
let decoder schedule =
  match Schedule.backing schedule with
  | Some seq -> fun t -> Sequence.unsafe_get seq t
  | None when Schedule.is_chunked schedule ->
      let blk = ref [||] and base = ref 0 and hi = ref 0 in
      fun t ->
        if t >= !hi || t < !base then begin
          let b, off, avail = Schedule.chunk_view schedule t in
          blk := b;
          base := t - off;
          hi := t + avail
        end;
        Interaction.of_int_unchecked (Array.unsafe_get !blk (t - !base))
  | None -> fun t -> Schedule.get_exn schedule t

let popcount x =
  let x = ref x and c = ref 0 in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let finish obs r =
  let a = obs.finish_obs in
  for idx = 0 to Array.length a - 1 do
    (Array.unsafe_get a idx) r
  done;
  r

let tokens_of ~what problem =
  match problem with
  | Problem.Dissemination _ -> Problem.tokens problem
  | Problem.Aggregation _ ->
      invalid_arg (what ^ ": not a dissemination problem")

(* [k] low bits set; [-1] is all 63 ones. *)
let mask_of k = if k >= word_bits then -1 else (1 lsl k) - 1

let run ?max_steps ?(record = `All) ?(observers = []) ~problem schedule =
  let k = tokens_of ~what:"Gossip.run" problem in
  let n = Schedule.n schedule in
  let limit = limit_for ?max_steps schedule ~what:"Gossip.run" in
  let obs = obs_arrays observers in
  let decode = decoder schedule in
  let w = (k + word_bits - 1) / word_bits in
  (* Plane word [v * w + word]: bit [b] set iff node [v] knows token
     [word * word_bits + b]. *)
  let planes = Array.make (n * w) 0 in
  let full =
    Array.init w (fun word ->
        mask_of (Stdlib.min word_bits (k - (word * word_bits))))
  in
  for j = 0 to k - 1 do
    let home = Problem.token_home problem ~n ~token:j in
    let word = j / word_bits and bit = 1 lsl (j mod word_bits) in
    planes.((home * w) + word) <- planes.((home * w) + word) lor bit
  done;
  let complete = Array.make n false in
  let ncomplete = ref 0 in
  for v = 0 to n - 1 do
    let fullv = ref true in
    for word = 0 to w - 1 do
      if planes.((v * w) + word) <> full.(word) then fullv := false
    done;
    if !fullv then begin
      complete.(v) <- true;
      incr ncomplete
    end
  done;
  let record_all = record = `All in
  let log = Run_log.create ~capacity:n () in
  let clock = ref 0 in
  let last_time = ref (-1) in
  let transfer_count = ref 0 in
  while !ncomplete < n && !clock < limit do
    let t = !clock in
    let i = decode t in
    let u = Interaction.u i and v = Interaction.v i in
    let bu = u * w and bv = v * w in
    let du = ref false and dv = ref false in
    for word = 0 to w - 1 do
      let pu = planes.(bu + word) and pv = planes.(bv + word) in
      let m = pu lor pv in
      if m <> pu then begin
        du := true;
        planes.(bu + word) <- m
      end;
      if m <> pv then begin
        dv := true;
        planes.(bv + word) <- m
      end
    done;
    (* Log order at one step: receiver [u] (the smaller endpoint)
       before receiver [v] — the reference implementation matches. *)
    if !du then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:v ~receiver:u;
      notify_transfer obs ~t ~sender:v ~receiver:u
    end;
    if !dv then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:u ~receiver:v;
      notify_transfer obs ~t ~sender:u ~receiver:v
    end;
    if !du || !dv then begin
      (* The endpoints now share one merged set: one fullness check
         covers both. *)
      let fullnow = ref true in
      for word = 0 to w - 1 do
        if planes.(bu + word) <> full.(word) then fullnow := false
      done;
      if !fullnow then begin
        if not complete.(u) then begin
          complete.(u) <- true;
          incr ncomplete;
          last_time := t
        end;
        if not complete.(v) then begin
          complete.(v) <- true;
          incr ncomplete;
          last_time := t
        end
      end
    end;
    if obs.has_step_obs then notify_step obs ~t i;
    incr clock
  done;
  let final_clock = !clock in
  let solved = !ncomplete = n in
  let coverage =
    Array.init n (fun v ->
        let c = ref 0 in
        for word = 0 to w - 1 do
          c := !c + popcount planes.((v * w) + word)
        done;
        !c)
  in
  finish obs
    {
      stop = stop_for schedule ~final_clock ~solved;
      duration = (if solved then Some !last_time else None);
      steps = final_clock;
      log;
      transfer_count = !transfer_count;
      coverage;
      complete_nodes = !ncomplete;
    }

(* Bit-parallel replications, tokens x replications in one plane set.
   Gossip is deterministic, so R replications over one schedule are
   identical executions — this is a throughput construct (one decode
   drives R lanes) and the lockstep vehicle for batched streamed
   sweeps, mirroring [Batch_engine.run_reps] for aggregation.

   Layout: when k <= 63, [rpw = word_bits / k] replications fold into
   each word (replication [i] owns bits [(i mod rpw) * k ..] of word
   [i / rpw]); when k > 63, replication [i] owns its own span of
   [wk = ceil(k / 63)] words. Either way a word belongs to a small,
   directly computable set of replications, so gain detection stays
   one [lxor] per word plus per-gain bookkeeping. *)
let run_reps ?max_steps ?(record = `All) ?(stats = Batch_engine.stats ())
    ~problem schedule r =
  if r < 0 then invalid_arg "Gossip.run_reps: negative replication count";
  let k = tokens_of ~what:"Gossip.run_reps" problem in
  let n = Schedule.n schedule in
  let limit = limit_for ?max_steps schedule ~what:"Gossip.run_reps" in
  let decode = decoder schedule in
  let folded = k <= word_bits in
  let rpw = if folded then word_bits / k else 1 in
  let wk = if folded then 1 else (k + word_bits - 1) / word_bits in
  let segs = wk in
  let w = if folded then (r + rpw - 1) / rpw else r * wk in
  (* Segment [s] of replication [i]: which plane word, which bits. *)
  let seg_word i s = if folded then i / rpw else (i * wk) + s in
  let seg_mask i s =
    if folded then mask_of k lsl (i mod rpw * k)
    else if s < wk - 1 then -1
    else mask_of (k - (s * word_bits))
  in
  let planes = Array.make (Stdlib.max 1 (n * w)) 0 in
  for i = 0 to r - 1 do
    for j = 0 to k - 1 do
      let home = Problem.token_home problem ~n ~token:j in
      let word, bit =
        if folded then (i / rpw, (i mod rpw * k) + j)
        else ((i * wk) + (j / word_bits), j mod word_bits)
      in
      planes.((home * w) + word) <- planes.((home * w) + word) lor (1 lsl bit)
    done
  done;
  (* Initial coverage is the same in every replication: a node starts
     complete iff it is home to all k tokens. *)
  let init_counts = Array.make n 0 in
  for j = 0 to k - 1 do
    let home = Problem.token_home problem ~n ~token:j in
    init_counts.(home) <- init_counts.(home) + 1
  done;
  (* complete.(v * r + i): node v covers replication i. One byte per
     cell keeps the batch O(n * r) bytes, not words. *)
  let complete = Bytes.make (Stdlib.max 1 (n * r)) '\000' in
  let ncomplete = Array.make r 0 in
  let base_complete = ref 0 in
  for v = 0 to n - 1 do
    if init_counts.(v) = k then begin
      incr base_complete;
      for i = 0 to r - 1 do
        Bytes.unsafe_set complete ((v * r) + i) '\001'
      done
    end
  done;
  Array.fill ncomplete 0 r !base_complete;
  let alive = ref 0 in
  for i = 0 to r - 1 do
    if ncomplete.(i) < n then incr alive
  done;
  let record_all = record = `All in
  let logs =
    if record_all then Array.init r (fun _ -> Run_log.create ~capacity:n ())
    else [||]
  in
  let tx = Array.make r 0 in
  let last_time = Array.make r (-1) in
  (* Per-step scratch: which replications gained at u / at v this step
     (stamped with the step time — a span replication can change in
     several words, the stamp dedups), in first-gain order. *)
  let last_gain_u = Array.make r (-1) in
  let last_gain_v = Array.make r (-1) in
  let last_touch = Array.make r (-1) in
  let touched = Array.make (Stdlib.max 1 r) 0 in
  let ntouched = ref 0 in
  let touch ~t i =
    if last_touch.(i) <> t then begin
      last_touch.(i) <- t;
      touched.(!ntouched) <- i;
      incr ntouched
    end
  in
  let scan ~t word changed stamp =
    if folded then begin
      let lo = word * rpw in
      let hi = Stdlib.min r (lo + rpw) - 1 in
      let base = mask_of k in
      for i = lo to hi do
        if changed land (base lsl ((i - lo) * k)) <> 0 then begin
          stamp.(i) <- t;
          touch ~t i
        end
      done
    end
    else begin
      let i = word / wk in
      stamp.(i) <- t;
      touch ~t i
    end
  in
  let clock = ref 0 in
  while !alive > 0 && !clock < limit do
    let t = !clock in
    let i = decode t in
    stats.Batch_engine.decodes <- stats.Batch_engine.decodes + 1;
    stats.Batch_engine.lane_steps <- stats.Batch_engine.lane_steps + !alive;
    let u = Interaction.u i and v = Interaction.v i in
    let bu = u * w and bv = v * w in
    ntouched := 0;
    for word = 0 to w - 1 do
      let pu = planes.(bu + word) and pv = planes.(bv + word) in
      let m = pu lor pv in
      if m <> pu then begin
        planes.(bu + word) <- m;
        scan ~t word (m lxor pu) last_gain_u
      end;
      if m <> pv then begin
        planes.(bv + word) <- m;
        scan ~t word (m lxor pv) last_gain_v
      end
    done;
    for g = 0 to !ntouched - 1 do
      let rep = touched.(g) in
      (* Log order within one replication's step: receiver [u] before
         receiver [v] — same as the scalar run. *)
      if last_gain_u.(rep) = t then begin
        tx.(rep) <- tx.(rep) + 1;
        if record_all then Run_log.add logs.(rep) ~time:t ~sender:v ~receiver:u
      end;
      if last_gain_v.(rep) = t then begin
        tx.(rep) <- tx.(rep) + 1;
        if record_all then Run_log.add logs.(rep) ~time:t ~sender:u ~receiver:v
      end;
      (* The endpoints now share one merged set in this replication:
         one fullness check covers both. *)
      let fullnow = ref true in
      for s = 0 to segs - 1 do
        let msk = seg_mask rep s in
        if planes.(bu + seg_word rep s) land msk <> msk then fullnow := false
      done;
      if !fullnow then begin
        let cu = (u * r) + rep and cv = (v * r) + rep in
        if Bytes.unsafe_get complete cu = '\000' then begin
          Bytes.unsafe_set complete cu '\001';
          ncomplete.(rep) <- ncomplete.(rep) + 1;
          last_time.(rep) <- t
        end;
        if Bytes.unsafe_get complete cv = '\000' then begin
          Bytes.unsafe_set complete cv '\001';
          ncomplete.(rep) <- ncomplete.(rep) + 1;
          last_time.(rep) <- t
        end;
        if ncomplete.(rep) = n then decr alive
      end
    done;
    incr clock
  done;
  let final_clock = !clock in
  Array.init r (fun rep ->
      let solved = ncomplete.(rep) = n in
      let coverage =
        Array.init n (fun v ->
            let c = ref 0 in
            for s = 0 to segs - 1 do
              c :=
                !c
                + popcount (planes.((v * w) + seg_word rep s) land seg_mask rep s)
            done;
            !c)
      in
      {
        stop = stop_for schedule ~final_clock ~solved;
        duration = (if solved then Some last_time.(rep) else None);
        steps = (if solved then last_time.(rep) + 1 else final_clock);
        log = (if record_all then logs.(rep) else Run_log.create ());
        transfer_count = tx.(rep);
        coverage;
        complete_nodes = ncomplete.(rep);
      })

let run_reference ?max_steps ?(record = `All) ?(observers = []) ~problem
    schedule =
  let k = tokens_of ~what:"Gossip.run_reference" problem in
  let n = Schedule.n schedule in
  let limit = limit_for ?max_steps schedule ~what:"Gossip.run_reference" in
  let obs = obs_arrays observers in
  let decode = decoder schedule in
  (* know.(v * k + j): node [v] knows token [j]. *)
  let know = Array.make (n * k) false in
  let counts = Array.make n 0 in
  for j = 0 to k - 1 do
    let home = Problem.token_home problem ~n ~token:j in
    if not know.((home * k) + j) then begin
      know.((home * k) + j) <- true;
      counts.(home) <- counts.(home) + 1
    end
  done;
  let complete = Array.make n false in
  let ncomplete = ref 0 in
  for v = 0 to n - 1 do
    if Problem.covered problem ~known:counts.(v) then begin
      complete.(v) <- true;
      incr ncomplete
    end
  done;
  let record_all = record = `All in
  let log = Run_log.create ~capacity:n () in
  let clock = ref 0 in
  let last_time = ref (-1) in
  let transfer_count = ref 0 in
  while !ncomplete < n && !clock < limit do
    let t = !clock in
    let i = decode t in
    let u = Interaction.u i and v = Interaction.v i in
    let gained_u = ref 0 and gained_v = ref 0 in
    for j = 0 to k - 1 do
      let ku = know.((u * k) + j) and kv = know.((v * k) + j) in
      if kv && not ku then begin
        know.((u * k) + j) <- true;
        incr gained_u
      end;
      if ku && not kv then begin
        know.((v * k) + j) <- true;
        incr gained_v
      end
    done;
    counts.(u) <- counts.(u) + !gained_u;
    counts.(v) <- counts.(v) + !gained_v;
    if !gained_u > 0 then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:v ~receiver:u;
      notify_transfer obs ~t ~sender:v ~receiver:u
    end;
    if !gained_v > 0 then begin
      incr transfer_count;
      if record_all then Run_log.add log ~time:t ~sender:u ~receiver:v;
      notify_transfer obs ~t ~sender:u ~receiver:v
    end;
    if !gained_u > 0 || !gained_v > 0 then begin
      if Problem.covered problem ~known:counts.(u) && not complete.(u) then begin
        complete.(u) <- true;
        incr ncomplete;
        last_time := t
      end;
      if Problem.covered problem ~known:counts.(v) && not complete.(v) then begin
        complete.(v) <- true;
        incr ncomplete;
        last_time := t
      end
    end;
    if obs.has_step_obs then notify_step obs ~t i;
    incr clock
  done;
  let final_clock = !clock in
  let solved = !ncomplete = n in
  finish obs
    {
      stop = stop_for schedule ~final_clock ~solved;
      duration = (if solved then Some !last_time else None);
      steps = final_clock;
      log;
      transfer_count = !transfer_count;
      coverage = Array.copy counts;
      complete_nodes = !ncomplete;
    }

let pp_result ppf r =
  let reason =
    match r.stop with
    | Engine.All_aggregated -> "all covered"
    | Engine.Schedule_exhausted -> "schedule exhausted"
    | Engine.Step_limit -> "step limit"
  in
  Format.fprintf ppf "@[<v>stop: %s@,steps: %d@,transfers: %d@," reason r.steps
    r.transfer_count;
  (match r.duration with
  | Some d -> Format.fprintf ppf "duration: %d@," d
  | None -> Format.fprintf ppf "duration: -@,");
  Format.fprintf ppf "covered nodes: %d of %d@]" r.complete_nodes
    (Array.length r.coverage)
