(** Exact optimal offline convergecast.

    A {e convergecast} is a data aggregation schedule of minimum
    duration (Section 2.3). This module computes it exactly, in
    polynomial time, through the duality the paper uses in Theorem 8: a
    convergecast to the sink fits within [I_lo .. I_hi] iff greedy
    flooding from the sink succeeds on the {e reversed} subsequence
    [I_hi, I_{hi-1}, ..., I_lo]. Greedy flooding is optimal for
    broadcast (informed sets are monotone), so feasibility is decidable
    by a single linear scan, and [opt] follows by binary search
    (feasibility is monotone in [hi]). [Brute_force] cross-checks this
    construction exhaustively in the test suite. *)

type plan = {
  fire_time : int array;
      (** [fire_time.(v)] is the time at which [v] transmits;
          [-1] for the sink. *)
  fire_to : int array;
      (** [fire_to.(v)] is the receiver of [v]'s transmission;
          [-1] for the sink. *)
  completion : int;  (** Time of the last transmission. *)
}

val feasible : n:int -> sink:int -> Doda_dynamic.Sequence.t -> lo:int -> hi:int -> bool
(** Can a complete aggregation to the sink be scheduled within
    [I_lo .. I_hi]? ([lo > hi] yields [false] unless [n = 1].) *)

val opt : n:int -> sink:int -> Doda_dynamic.Sequence.t -> int -> int option
(** [opt ~n ~sink s t] is the paper's [opt(t)]: the earliest ending
    time of a convergecast starting at time [t], or [None] when no
    convergecast fits in the remaining sequence (the paper's
    [opt(t) = ∞]). *)

val plan : n:int -> sink:int -> Doda_dynamic.Sequence.t -> start:int -> plan option
(** [plan ~n ~sink s ~start] extracts an optimal convergecast schedule
    starting at [start]: a valid assignment of one transmission per
    non-sink node with [completion = opt(start)]. *)

val t_chain : n:int -> sink:int -> Doda_dynamic.Sequence.t -> int list
(** The finite prefix of the paper's [T]: [T(1) = opt(0)],
    [T(i+1) = opt(T(i) + 1)], listed while finite within the sequence.
    Values are strictly increasing ending times of successive
    convergecasts. *)

val optimal_duration_lazy :
  Doda_dynamic.Schedule.t -> start:int -> horizon:int -> (plan * int) option
(** Like {!plan} bounded by [horizon] interactions: a convergecast
    starting at [start] must fit within the first [horizon]
    interactions or [None] is returned. On a finite or frozen schedule
    this runs zero-copy on the backing sequence (binary search with
    index bounds, one scratch shared by all feasibility probes) and
    the returned int is the minimal sufficient prefix length
    ([completion + 1]); on a generator-backed schedule it materialises
    geometrically growing prefixes and returns the prefix length
    finally examined. *)
