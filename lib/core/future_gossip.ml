module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence

(* Reconstruct the full sequence from the futures of all nodes: every
   interaction (t, {u, v}) appears in the futures of exactly u and v. *)
let sequence_of_futures ~n future_of =
  let table = Hashtbl.create 997 in
  for u = 0 to n - 1 do
    List.iter (fun (t, i) -> Hashtbl.replace table t i) (future_of u)
  done;
  let times = Hashtbl.fold (fun t _ acc -> t :: acc) table [] in
  let times = List.sort compare times in
  (* The model has one interaction per time unit starting at 0. *)
  List.iteri
    (fun idx t ->
      if idx <> t then failwith "Future_gossip: futures do not form a full sequence")
    times;
  Sequence.of_array (Array.of_list (List.map (fun t -> Hashtbl.find table t) times))

(* Gossip dynamics are deterministic given the sequence: known.(v) is
   the set of nodes whose futures v knows; interactions merge the two
   sets. Returns the first time index after which everyone knows
   everything, if any. *)
let simulate_gossip ~n seq =
  let known = Array.init n (fun v -> Array.init n (fun w -> v = w)) in
  let cardinal = Array.make n 1 in
  let complete = ref (if n = 1 then 1 else 0) in
  let t_star = ref None in
  let len = Sequence.length seq in
  let t = ref 0 in
  while !t_star = None && !t < len do
    let i = Sequence.get seq !t in
    let a = Interaction.u i and b = Interaction.v i in
    let ka = known.(a) and kb = known.(b) in
    for w = 0 to n - 1 do
      if ka.(w) && not kb.(w) then begin
        kb.(w) <- true;
        cardinal.(b) <- cardinal.(b) + 1;
        if cardinal.(b) = n then incr complete
      end
      else if kb.(w) && not ka.(w) then begin
        ka.(w) <- true;
        cardinal.(a) <- cardinal.(a) + 1;
        if cardinal.(a) = n then incr complete
      end
    done;
    if !complete = n then t_star := Some !t;
    incr t
  done;
  !t_star

let algorithm =
  {
    Algorithm.name = "future-gossip";
    oblivious = false;
    requires = [ Knowledge.Own_future ];
    batch = None;
    make =
      (fun ~n ~sink knowledge ->
        let future_of = Option.get knowledge.Knowledge.future_of in
        (* Online gossip state: what each node currently knows. *)
        let known = Array.init n (fun v -> Array.init n (fun w -> v = w)) in
        let cardinal = Array.make n 1 in
        (* Computed by the first node that completes its knowledge;
           deterministic, so every complete node agrees. *)
        let resolution = lazy (
          let seq = sequence_of_futures ~n future_of in
          match simulate_gossip ~n seq with
          | None -> None
          | Some t_star ->
              Option.map
                (fun plan -> (t_star, plan))
                (Convergecast.plan ~n ~sink seq ~start:(t_star + 1)))
        in
        let merge a b =
          let ka = known.(a) and kb = known.(b) in
          for w = 0 to n - 1 do
            if ka.(w) && not kb.(w) then begin
              kb.(w) <- true;
              cardinal.(b) <- cardinal.(b) + 1
            end
            else if kb.(w) && not ka.(w) then begin
              ka.(w) <- true;
              cardinal.(a) <- cardinal.(a) + 1
            end
          done
        in
        {
          Algorithm.observe =
            (fun ~time:_ i -> merge (Interaction.u i) (Interaction.v i));
          decide =
            (fun ~time i ->
              let a = Interaction.u i and b = Interaction.v i in
              if cardinal.(a) < n || cardinal.(b) < n then None
              else
                match Lazy.force resolution with
                | None -> None
                | Some (t_star, plan) ->
                    if time <= t_star then None
                    else if plan.Convergecast.fire_time.(a) = time then Some b
                    else if plan.Convergecast.fire_time.(b) = time then Some a
                    else None);
        });
  }
