module Schedule = Doda_dynamic.Schedule
module Interaction = Doda_dynamic.Interaction

type transmission = { time : int; sender : int; receiver : int }

type stop_reason = All_aggregated | Schedule_exhausted | Step_limit

type result = {
  stop : stop_reason;
  duration : int option;
  steps : int;
  transmissions : transmission list;
  transmission_count : int;
  holders : bool array;
}

type state = {
  algo_name : string;
  schedule : Schedule.t;
  instance : Algorithm.instance;
  sink : int;
  record_log : bool;
  holds : bool array;
  mutable owner_count : int;
  mutable clock : int;
  mutable log : transmission list;  (* reverse chronological *)
  mutable tx_count : int;
  mutable last_time : int;
}

let start ?knowledge ?(record = `All) (algo : Algorithm.t) schedule =
  let n = Schedule.n schedule in
  let sink = Schedule.sink schedule in
  let knowledge =
    match knowledge with
    | Some k -> k
    | None -> Knowledge.for_schedule schedule algo.requires
  in
  Algorithm.check_knowledge algo.name knowledge algo.requires;
  {
    algo_name = algo.name;
    schedule;
    instance = algo.make ~n ~sink knowledge;
    sink;
    record_log = (record = `All);
    holds = Array.make n true;
    owner_count = n;
    clock = 0;
    log = [];
    tx_count = 0;
    last_time = -1;
  }

type step_outcome = Stepped of transmission option | Finished of stop_reason

(* Shared model enforcement: validate the algorithm's decision and
   commit the transmission at time [t]. *)
let commit st ~t ~i receiver =
  if not (Interaction.involves i receiver) then
    invalid_arg
      (Printf.sprintf "Engine.step: %s returned a non-endpoint receiver"
         st.algo_name);
  let sender = Interaction.other i receiver in
  if sender = st.sink then
    invalid_arg
      (Printf.sprintf "Engine.step: %s made the sink transmit" st.algo_name);
  st.holds.(sender) <- false;
  st.owner_count <- st.owner_count - 1;
  st.tx_count <- st.tx_count + 1;
  st.last_time <- t;
  sender

let step st =
  if st.owner_count = 1 then Finished All_aggregated
  else
    match Schedule.get st.schedule st.clock with
    | None -> Finished Schedule_exhausted
    | Some i ->
        let t = st.clock in
        st.instance.observe ~time:t i;
        let a = Interaction.u i and b = Interaction.v i in
        let outcome =
          if st.holds.(a) && st.holds.(b) then begin
            match st.instance.decide ~time:t i with
            | None -> None
            | Some receiver ->
                let sender = commit st ~t ~i receiver in
                let tr = { time = t; sender; receiver } in
                if st.record_log then st.log <- tr :: st.log;
                Some tr
          end
          else None
        in
        st.clock <- st.clock + 1;
        Stepped outcome

let time st = st.clock
let owners st = st.owner_count
let owns st v = st.holds.(v)
let holders_snapshot st = Array.copy st.holds
let transmissions_so_far st = List.rev st.log

let finish st stop =
  {
    stop;
    duration = (if stop = All_aggregated then Some st.last_time else None);
    steps = st.clock;
    transmissions = List.rev st.log;
    transmission_count = st.tx_count;
    holders = st.holds;
  }

let run ?knowledge ?max_steps ?record (algo : Algorithm.t) schedule =
  let limit =
    match (max_steps, Schedule.length schedule) with
    | Some m, Some len -> Stdlib.min m len
    | Some m, None -> m
    | None, Some len -> len
    | None, None ->
        invalid_arg "Engine.run: max_steps is mandatory for unbounded schedules"
  in
  let st = start ?knowledge ?record algo schedule in
  (* Hot loop. Equivalent to iterating [step], but without the
     per-interaction [Stepped]/[option] wrappers: [clock < limit]
     guarantees the schedule has an interaction at [clock] (finite
     schedules because [limit <= length]; generators never run out). *)
  let instance = st.instance and holds = st.holds in
  let body t i =
    instance.observe ~time:t i;
    let a = Interaction.u i and b = Interaction.v i in
    (if holds.(a) && holds.(b) then
       match instance.decide ~time:t i with
       | None -> ()
       | Some receiver ->
           let sender = commit st ~t ~i receiver in
           if st.record_log then st.log <- { time = t; sender; receiver } :: st.log);
    st.clock <- t + 1
  in
  (match Schedule.backing schedule with
  | Some seq ->
      (* Finite or frozen: [limit <= length], so iterate the backing
         flat packed int array directly — no per-step dispatch. *)
      while st.owner_count > 1 && st.clock < limit do
        let t = st.clock in
        body t (Doda_dynamic.Sequence.unsafe_get seq t)
      done
  | None ->
      (* Generator: the allocation-free [Schedule.get_exn] materialises
         as it goes. *)
      while st.owner_count > 1 && st.clock < limit do
        let t = st.clock in
        body t (Schedule.get_exn schedule t)
      done);
  let reason =
    if st.owner_count = 1 then All_aggregated
    else
      match Schedule.length schedule with
      | Some len when st.clock >= len -> Schedule_exhausted
      | Some _ | None -> Step_limit
  in
  finish st reason

let transmissions_of_node result node =
  List.filter
    (fun tr -> tr.sender = node || tr.receiver = node)
    result.transmissions

let count_owners result =
  Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 result.holders

let pp_result ppf r =
  let reason =
    match r.stop with
    | All_aggregated -> "aggregated"
    | Schedule_exhausted -> "schedule exhausted"
    | Step_limit -> "step limit"
  in
  Format.fprintf ppf "@[<v>stop: %s@,steps: %d@,transmissions: %d@," reason r.steps
    r.transmission_count;
  (match r.duration with
  | Some d -> Format.fprintf ppf "duration: %d@," d
  | None -> Format.fprintf ppf "duration: -@,");
  Format.fprintf ppf "owners left: %d@]" (count_owners r)
