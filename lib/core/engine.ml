module Schedule = Doda_dynamic.Schedule
module Interaction = Doda_dynamic.Interaction

type transmission = Run_log.transmission = {
  time : int;
  sender : int;
  receiver : int;
}

type stop_reason = All_aggregated | Schedule_exhausted | Step_limit

type result = {
  stop : stop_reason;
  duration : int option;
  steps : int;
  log : Run_log.t;
  transmission_count : int;
  holders : bool array;
}

let transmissions r = Run_log.to_list r.log

type observer = {
  obs_step : (time:int -> Interaction.t -> unit) option;
  obs_transmit : (time:int -> sender:int -> receiver:int -> unit) option;
  obs_finish : (result -> unit) option;
}

let observer ?on_step ?on_transmit ?on_finish () =
  { obs_step = on_step; obs_transmit = on_transmit; obs_finish = on_finish }

type state = {
  algo_name : string;
  source : state -> Interaction.t option;
  instance : Algorithm.instance;
  problem : Problem.t;
  sink : int;  (* [Problem.sink problem], hoisted for the hot path *)
  target : int;
      (* [Problem.target_owners problem]: the owner count at which the
         run has succeeded — also hoisted, the loops test it once per
         interaction. *)
  record_log : bool;
  holds : bool array;
  step_obs : (time:int -> Interaction.t -> unit) array;
  transmit_obs : (time:int -> sender:int -> receiver:int -> unit) array;
  finish_obs : (result -> unit) array;
  has_step_obs : bool;
      (* [Array.length step_obs > 0], precomputed: the run-core tests
         one immutable bool per interaction, so the no-observer hot
         path stays branch-predictable and allocation-free. *)
  log : Run_log.t;
  mutable owner_count : int;
  mutable clock : int;
  mutable tx_count : int;
  mutable last_time : int;
  mutable last_sender : int;
  mutable last_receiver : int;
}

let make_state ~algo_name ~instance ~problem ~record ~observers ~source ~n =
  let step_obs =
    Array.of_list (List.filter_map (fun o -> o.obs_step) observers)
  in
  let holds = Problem.initial_holders problem ~n in
  let owner_count =
    Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 holds
  in
  {
    algo_name;
    source;
    instance;
    problem;
    sink = Problem.sink problem;
    target = Problem.target_owners problem;
    record_log = (record = `All);
    holds;
    step_obs;
    transmit_obs =
      Array.of_list (List.filter_map (fun o -> o.obs_transmit) observers);
    finish_obs =
      Array.of_list (List.filter_map (fun o -> o.obs_finish) observers);
    has_step_obs = Array.length step_obs > 0;
    (* Transmit-once bounds a run's transmissions by [n - 1], so the
       log never reallocates mid-run. *)
    log = Run_log.create ~capacity:n ();
    owner_count;
    clock = 0;
    tx_count = 0;
    last_time = -1;
    last_sender = -1;
    last_receiver = -1;
  }

let start ?knowledge ?(record = `All) ?(observers = []) (algo : Algorithm.t)
    schedule =
  let n = Schedule.n schedule in
  let sink = Schedule.sink schedule in
  let knowledge =
    match knowledge with
    | Some k -> k
    | None -> Knowledge.for_schedule schedule algo.requires
  in
  Algorithm.check_knowledge algo.name knowledge algo.requires;
  make_state ~algo_name:algo.name
    ~instance:(algo.make ~n ~sink knowledge)
    ~problem:(Problem.aggregation ~sink) ~record ~observers
    ~source:(fun st -> Schedule.get schedule st.clock)
    ~n

let start_source ?(knowledge = Knowledge.empty) ?record ?observers ~n ~sink
    ~source (algo : Algorithm.t) =
  if n < 1 then invalid_arg "Engine.start_source: need at least one node";
  if sink < 0 || sink >= n then
    invalid_arg "Engine.start_source: sink out of range";
  Algorithm.check_knowledge algo.name knowledge algo.requires;
  make_state ~algo_name:algo.name
    ~instance:(algo.make ~n ~sink knowledge)
    ~problem:(Problem.aggregation ~sink)
    ~record:(Option.value record ~default:`All)
    ~observers:(Option.value observers ~default:[])
    ~source ~n

type step_outcome = Stepped of transmission option | Finished of stop_reason

(* Shared model enforcement: validate the algorithm's decision and
   commit the transmission at time [t]. *)
let commit st ~t ~i receiver =
  if not (Interaction.involves i receiver) then
    invalid_arg
      (Printf.sprintf "Engine.step: %s returned a non-endpoint receiver"
         st.algo_name);
  let sender = Interaction.other i receiver in
  if sender = st.sink then
    invalid_arg
      (Printf.sprintf "Engine.step: %s made the sink transmit" st.algo_name);
  st.holds.(sender) <- false;
  st.owner_count <- st.owner_count - 1;
  st.tx_count <- st.tx_count + 1;
  st.last_time <- t;
  st.last_sender <- sender;
  st.last_receiver <- receiver;
  sender

(* Out of line so [exec_step] stays small: only runs when an observer
   of the matching kind is installed. *)
let notify_step st ~t i =
  let obs = st.step_obs in
  for k = 0 to Array.length obs - 1 do
    (Array.unsafe_get obs k) ~time:t i
  done

let notify_transmit st ~t ~sender ~receiver =
  let obs = st.transmit_obs in
  for k = 0 to Array.length obs - 1 do
    (Array.unsafe_get obs k) ~time:t ~sender ~receiver
  done

(* The run-core: process interaction [i] at time [t]. Every execution —
   schedule-backed [run], adversary-backed [run_state], and the manual
   [step] API — goes through this one function, so model enforcement
   and observation cannot diverge between drivers. [instance] and
   [holds] are [st.instance]/[st.holds], hoisted by callers whose loop
   is hot. *)
let[@inline] exec_step st (instance : Algorithm.instance) holds ~t i =
  instance.observe ~time:t i;
  let a = Interaction.u i and b = Interaction.v i in
  (if holds.(a) && holds.(b) then
     match instance.decide ~time:t i with
     | None -> ()
     | Some receiver ->
         let sender = commit st ~t ~i receiver in
         if st.record_log then Run_log.add st.log ~time:t ~sender ~receiver;
         if Array.length st.transmit_obs > 0 then
           notify_transmit st ~t ~sender ~receiver);
  if st.has_step_obs then notify_step st ~t i;
  st.clock <- t + 1

let step st =
  if st.owner_count <= st.target then Finished All_aggregated
  else
    match st.source st with
    | None -> Finished Schedule_exhausted
    | Some i ->
        let before = st.tx_count in
        exec_step st st.instance st.holds ~t:st.clock i;
        Stepped
          (if st.tx_count > before then
             Some
               {
                 time = st.last_time;
                 sender = st.last_sender;
                 receiver = st.last_receiver;
               }
           else None)

let time st = st.clock
let owners st = st.owner_count
let problem st = st.problem
let owns st v = st.holds.(v)
let holders_snapshot st = Array.copy st.holds
let live_holders st = st.holds

let last_transmission st =
  if st.tx_count = 0 then None
  else
    Some
      {
        time = st.last_time;
        sender = st.last_sender;
        receiver = st.last_receiver;
      }

let transmissions_so_far st = Run_log.to_list st.log

let finish st stop =
  let result =
    {
      stop;
      duration = (if stop = All_aggregated then Some st.last_time else None);
      steps = st.clock;
      log = st.log;
      transmission_count = st.tx_count;
      holders = Array.copy st.holds;
    }
  in
  let obs = st.finish_obs in
  for k = 0 to Array.length obs - 1 do
    (Array.unsafe_get obs k) result
  done;
  result

let run ?knowledge ?max_steps ?record ?observers (algo : Algorithm.t) schedule =
  let limit =
    match (max_steps, Schedule.length schedule) with
    | Some m, Some len -> Stdlib.min m len
    | Some m, None -> m
    | None, Some len -> len
    | None, None ->
        invalid_arg "Engine.run: max_steps is mandatory for unbounded schedules"
  in
  let st = start ?knowledge ?record ?observers algo schedule in
  (* Hot loop. Equivalent to iterating [step], but without the
     per-interaction [Stepped]/[option] wrappers: [clock < limit]
     guarantees the schedule has an interaction at [clock] (finite
     schedules because [limit <= length]; generators never run out). *)
  let instance = st.instance and holds = st.holds in
  (match Schedule.backing schedule with
  | Some seq ->
      (* Finite or frozen: [limit <= length], so iterate the backing
         flat packed int array directly — no per-step dispatch. *)
      while st.owner_count > st.target && st.clock < limit do
        let t = st.clock in
        exec_step st instance holds ~t (Doda_dynamic.Sequence.unsafe_get seq t)
      done
  | None when Schedule.is_chunked schedule ->
      (* Chunked: drain the hot block with a flat inner loop — the
         only per-step work beyond [exec_step] is one array read — and
         pay the refill once per block via [chunk_view]. *)
      while st.owner_count > st.target && st.clock < limit do
        let block, off, avail = Schedule.chunk_view schedule st.clock in
        let base = st.clock in
        let stop = Stdlib.min limit (base + avail) in
        while st.owner_count > st.target && st.clock < stop do
          let t = st.clock in
          exec_step st instance holds ~t
            (Interaction.of_int_unchecked
               (Array.unsafe_get block (off + t - base)))
        done
      done
  | None ->
      (* Generator: the allocation-free [Schedule.get_exn] materialises
         as it goes. *)
      while st.owner_count > st.target && st.clock < limit do
        let t = st.clock in
        exec_step st instance holds ~t (Schedule.get_exn schedule t)
      done);
  let reason =
    if st.owner_count <= st.target then All_aggregated
    else
      match Schedule.length schedule with
      | Some len when st.clock >= len -> Schedule_exhausted
      | Some _ | None -> Step_limit
  in
  finish st reason

let run_state st ~max_steps =
  let instance = st.instance and holds = st.holds in
  let stop = ref None in
  while !stop = None do
    if st.owner_count <= st.target then stop := Some All_aggregated
    else if st.clock >= max_steps then stop := Some Step_limit
    else
      match st.source st with
      | None -> stop := Some Schedule_exhausted
      | Some i -> exec_step st instance holds ~t:st.clock i
  done;
  finish st (Option.get !stop)

let transmissions_of_node result node =
  List.filter
    (fun tr -> tr.sender = node || tr.receiver = node)
    (transmissions result)

let count_owners result =
  Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 result.holders

let pp_result ppf r =
  let reason =
    match r.stop with
    | All_aggregated -> "aggregated"
    | Schedule_exhausted -> "schedule exhausted"
    | Step_limit -> "step limit"
  in
  Format.fprintf ppf "@[<v>stop: %s@,steps: %d@,transmissions: %d@," reason
    r.steps r.transmission_count;
  (match r.duration with
  | Some d -> Format.fprintf ppf "duration: %d@," d
  | None -> Format.fprintf ppf "duration: -@,");
  Format.fprintf ppf "owners left: %d@]" (count_owners r)
