(** Flat structure-of-arrays transmission log.

    The canonical record of a run: three parallel int buffers
    ([time]/[sender]/[receiver]), appended once per transmission by the
    engine's run-core and indexed in O(1) by every consumer
    ([Validate], [Timeline], [Analysis], the CLI). Unlike the boxed
    [transmission list] it replaces, a log of T transmissions is three
    unboxed arrays — no per-event allocation while recording, no
    pointer chasing while reading.

    The log also owns the derived per-node views that downstream
    analyses kept recomputing: {!fire_times} (when each node
    transmitted) and {!parents} (to whom), computed in one pass and
    cached. *)

type transmission = { time : int; sender : int; receiver : int }
(** One boxed event, for compatibility consumers and literals in
    tests. [Engine.transmission] is an alias of this type. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty log. [capacity] pre-sizes the three buffers so appends up
    to it never reallocate; in the transmit-once model a run over [n]
    nodes commits at most [n - 1] transmissions, so both engines pass
    [~capacity:n] and recording never doubles mid-run. *)

val add : t -> time:int -> sender:int -> receiver:int -> unit
(** Append one transmission (chronological order is the caller's
    contract; the engine appends in time order). *)

val length : t -> int
(** Number of transmissions recorded. *)

val time : t -> int -> int
val sender : t -> int -> int

val receiver : t -> int -> int
(** O(1) field access by transmission index.
    @raise Invalid_argument on out-of-bounds index. *)

val get : t -> int -> transmission
(** Boxed view of entry [i]. *)

val iter : (time:int -> sender:int -> receiver:int -> unit) -> t -> unit
(** Iterate in log (chronological) order without allocating. *)

val fold :
  ('a -> time:int -> sender:int -> receiver:int -> 'a) -> 'a -> t -> 'a

val to_list : t -> transmission list
(** Chronological boxed list — compatibility with the seed engine's
    [result.transmissions] representation. *)

val of_list : transmission list -> t
(** Build a log from a chronological list (tests, plan conversion). *)

(** {1 Derived per-node views}

    Both arrays are computed together in one O(T + n) pass and cached;
    repeated calls with the same [n] on an unchanged log are O(1). The
    returned arrays are the cache itself — do not mutate (copy first if
    you must). Senders outside [0, n) are ignored. *)

val fire_times : t -> n:int -> int array
(** Entry [v] is the time at which [v] transmitted, [-1] if it never
    did (the sink never does). *)

val parents : t -> n:int -> int array
(** Entry [v] is the receiver of [v]'s transmission ([v]'s parent in
    the aggregation forest), [-1] if [v] never transmitted. *)

val pp : Format.formatter -> t -> unit
