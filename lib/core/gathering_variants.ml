module Interaction = Doda_dynamic.Interaction

type tiebreak = Smaller_id | Larger_id | More_data | Hash

let tiebreak_name = function
  | Smaller_id -> "smaller-id"
  | Larger_id -> "larger-id"
  | More_data -> "more-data"
  | Hash -> "hash"

let hash_coin = Algorithm.hash_coin

let make tiebreak =
  {
    Algorithm.name = "gathering-" ^ tiebreak_name tiebreak;
    oblivious = (match tiebreak with More_data -> false | _ -> true);
    requires = [];
    batch =
      Some
        (Algorithm.Gather
           (match tiebreak with
           | Smaller_id -> Algorithm.To_smaller
           | Larger_id -> Algorithm.To_larger
           | More_data -> Algorithm.To_heavier
           | Hash -> Algorithm.To_hash));
    make =
      (fun ~n ~sink _knowledge ->
        let payload = Array.make n 1 in
        let receiver_of ~time u v =
          match tiebreak with
          | Smaller_id -> u
          | Larger_id -> v
          | Hash -> if hash_coin ~time u v then u else v
          | More_data ->
              if payload.(u) > payload.(v) then u
              else if payload.(v) > payload.(u) then v
              else u
        in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time i ->
              let u = Interaction.u i and v = Interaction.v i in
              let receiver =
                if u = sink || v = sink then sink else receiver_of ~time u v
              in
              let sender = Interaction.other i receiver in
              payload.(receiver) <- payload.(receiver) + payload.(sender);
              payload.(sender) <- 0;
              Some receiver);
        });
  }

let all = List.map make [ Smaller_id; Larger_id; More_data; Hash ]
