module Int_vec = Doda_dynamic.Int_vec

type transmission = { time : int; sender : int; receiver : int }

type t = {
  times : Int_vec.t;
  senders : Int_vec.t;
  receivers : Int_vec.t;
  (* Derived per-node views, computed lazily and cached. The log only
     grows, so (n, length) identifies a computation exactly. *)
  mutable derived_n : int;
  mutable derived_len : int;
  mutable fire_cache : int array;
  mutable parent_cache : int array;
}

let create ?capacity () =
  {
    times = Int_vec.create ?capacity ();
    senders = Int_vec.create ?capacity ();
    receivers = Int_vec.create ?capacity ();
    derived_n = -1;
    derived_len = -1;
    fire_cache = [||];
    parent_cache = [||];
  }

let length t = Int_vec.length t.times

let add t ~time ~sender ~receiver =
  Int_vec.push t.times time;
  Int_vec.push t.senders sender;
  Int_vec.push t.receivers receiver

let time t i = Int_vec.get t.times i
let sender t i = Int_vec.get t.senders i
let receiver t i = Int_vec.get t.receivers i
let get t i = { time = time t i; sender = sender t i; receiver = receiver t i }

let iter f t =
  for i = 0 to length t - 1 do
    f ~time:(Int_vec.get t.times i) ~sender:(Int_vec.get t.senders i)
      ~receiver:(Int_vec.get t.receivers i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc :=
      f !acc ~time:(Int_vec.get t.times i) ~sender:(Int_vec.get t.senders i)
        ~receiver:(Int_vec.get t.receivers i)
  done;
  !acc

let to_list t =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    acc := get t i :: !acc
  done;
  !acc

let of_list l =
  let t = create () in
  List.iter (fun { time; sender; receiver } -> add t ~time ~sender ~receiver) l;
  t

let refresh t ~n =
  if t.derived_n <> n || t.derived_len <> length t then begin
    let fire = Array.make n (-1) and parent = Array.make n (-1) in
    for i = 0 to length t - 1 do
      let s = Int_vec.get t.senders i in
      if s >= 0 && s < n then begin
        fire.(s) <- Int_vec.get t.times i;
        parent.(s) <- Int_vec.get t.receivers i
      end
    done;
    t.derived_n <- n;
    t.derived_len <- length t;
    t.fire_cache <- fire;
    t.parent_cache <- parent
  end

let fire_times t ~n =
  refresh t ~n;
  t.fire_cache

let parents t ~n =
  refresh t ~n;
  t.parent_cache

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter
    (fun ~time ~sender ~receiver ->
      Format.fprintf ppf "t=%d %d -> %d@," time sender receiver)
    t;
  Format.fprintf ppf "@]"
