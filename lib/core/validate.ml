module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

type violation =
  | Out_of_order of int
  | Bad_time of int
  | Wrong_interaction of int
  | Sender_without_data of int
  | Receiver_without_data of int
  | Sink_transmitted of int
  | Duplicate_sender of int

let pp_violation ppf v =
  let p fmt = Format.fprintf ppf fmt in
  match v with
  | Out_of_order i -> p "transmission #%d out of time order" i
  | Bad_time i -> p "transmission #%d outside the sequence" i
  | Wrong_interaction i -> p "transmission #%d does not match I_t" i
  | Sender_without_data i -> p "transmission #%d: sender already transmitted" i
  | Receiver_without_data i -> p "transmission #%d: receiver already transmitted" i
  | Sink_transmitted i -> p "transmission #%d: sink as sender" i
  | Duplicate_sender i -> p "transmission #%d: sender transmits twice" i

let execution ~n ~sink s (log : Run_log.t) =
  let len = Run_log.length log in
  let holds = Array.make n true in
  (* Earliest time at which each node appears as a sender anywhere in
     the log — one pass, so the duplicate-sender check below is O(1)
     per entry instead of a scan of the whole log. *)
  let first_fire = Array.make n max_int in
  for idx = 0 to len - 1 do
    let sender = Run_log.sender log idx in
    if sender >= 0 && sender < n then
      first_fire.(sender) <- Stdlib.min first_fire.(sender) (Run_log.time log idx)
  done;
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  let previous_time = ref (-1) in
  let slen = Sequence.length s in
  for idx = 0 to len - 1 do
    let time = Run_log.time log idx
    and sender = Run_log.sender log idx
    and receiver = Run_log.receiver log idx in
    if time <= !previous_time then flag (Out_of_order idx);
    previous_time := Stdlib.max !previous_time time;
    if time < 0 || time >= slen then flag (Bad_time idx)
    else begin
      let i = Sequence.get s time in
      if
        not
          (Interaction.involves i sender
          && Interaction.involves i receiver
          && sender <> receiver)
      then flag (Wrong_interaction idx)
    end;
    if sender = sink then flag (Sink_transmitted idx);
    if sender >= 0 && sender < n then begin
      if not holds.(sender) then flag (Sender_without_data idx);
      (* A sender without data is also a duplicate if it appeared as
         sender at a strictly earlier time; distinguish for clearer
         reports. *)
      if first_fire.(sender) < time && not holds.(sender) then
        flag (Duplicate_sender idx)
    end;
    if receiver >= 0 && receiver < n && not holds.(receiver) then
      flag (Receiver_without_data idx);
    if sender >= 0 && sender < n then holds.(sender) <- false
  done;
  List.rev !violations

let complete ~n ~sink s (log : Run_log.t) =
  execution ~n ~sink s log = []
  && Run_log.length log = n - 1
  &&
  let sent = Array.make n false in
  for idx = 0 to Run_log.length log - 1 do
    sent.(Run_log.sender log idx) <- true
  done;
  let all = ref true in
  for v = 0 to n - 1 do
    if v <> sink && not sent.(v) then all := false
  done;
  !all

let plan ~n ~sink s (p : Convergecast.plan) =
  let entries = ref [] in
  for v = 0 to n - 1 do
    if v <> sink && p.Convergecast.fire_time.(v) >= 0 then
      entries :=
        {
          Run_log.time = p.Convergecast.fire_time.(v);
          sender = v;
          receiver = p.Convergecast.fire_to.(v);
        }
        :: !entries
  done;
  let chronological =
    List.sort
      (fun (a : Run_log.transmission) b -> Int.compare a.time b.time)
      !entries
  in
  execution ~n ~sink s (Run_log.of_list chronological)
