module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

type violation =
  | Out_of_order of int
  | Bad_time of int
  | Wrong_interaction of int
  | Sender_without_data of int
  | Receiver_without_data of int
  | Sink_transmitted of int
  | Duplicate_sender of int
  | Uninformative of int

let pp_violation ppf v =
  let p fmt = Format.fprintf ppf fmt in
  match v with
  | Out_of_order i -> p "transmission #%d out of time order" i
  | Bad_time i -> p "transmission #%d outside the sequence" i
  | Wrong_interaction i -> p "transmission #%d does not match I_t" i
  | Sender_without_data i -> p "transmission #%d: sender already transmitted" i
  | Receiver_without_data i -> p "transmission #%d: receiver already transmitted" i
  | Sink_transmitted i -> p "transmission #%d: sink as sender" i
  | Duplicate_sender i -> p "transmission #%d: sender transmits twice" i
  | Uninformative i -> p "transfer #%d taught the receiver nothing" i

let execution ~n ~sink s (log : Run_log.t) =
  let len = Run_log.length log in
  let holds = Array.make n true in
  (* Earliest time at which each node appears as a sender anywhere in
     the log — one pass, so the duplicate-sender check below is O(1)
     per entry instead of a scan of the whole log. *)
  let first_fire = Array.make n max_int in
  for idx = 0 to len - 1 do
    let sender = Run_log.sender log idx in
    if sender >= 0 && sender < n then
      first_fire.(sender) <- Stdlib.min first_fire.(sender) (Run_log.time log idx)
  done;
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  let previous_time = ref (-1) in
  let slen = Sequence.length s in
  for idx = 0 to len - 1 do
    let time = Run_log.time log idx
    and sender = Run_log.sender log idx
    and receiver = Run_log.receiver log idx in
    if time <= !previous_time then flag (Out_of_order idx);
    previous_time := Stdlib.max !previous_time time;
    if time < 0 || time >= slen then flag (Bad_time idx)
    else begin
      let i = Sequence.get s time in
      if
        not
          (Interaction.involves i sender
          && Interaction.involves i receiver
          && sender <> receiver)
      then flag (Wrong_interaction idx)
    end;
    if sender = sink then flag (Sink_transmitted idx);
    if sender >= 0 && sender < n then begin
      if not holds.(sender) then flag (Sender_without_data idx);
      (* A sender without data is also a duplicate if it appeared as
         sender at a strictly earlier time; distinguish for clearer
         reports. *)
      if first_fire.(sender) < time && not holds.(sender) then
        flag (Duplicate_sender idx)
    end;
    if receiver >= 0 && receiver < n && not holds.(receiver) then
      flag (Receiver_without_data idx);
    if sender >= 0 && sender < n then holds.(sender) <- false
  done;
  List.rev !violations

let complete ~n ~sink s (log : Run_log.t) =
  execution ~n ~sink s log = []
  && Run_log.length log = n - 1
  &&
  let sent = Array.make n false in
  for idx = 0 to Run_log.length log - 1 do
    sent.(Run_log.sender log idx) <- true
  done;
  let all = ref true in
  for v = 0 to n - 1 do
    if v <> sink && not sent.(v) then all := false
  done;
  !all

(* ------------------------------------------------------------------ *)
(* Gossip (dissemination) validation: replay the informative-transfer
   log over per-token knowledge sets. A [Gossip] run logs a transfer
   only when the receiver learns at least one new token, and knowledge
   only changes on logged transfers, so replaying the log alone
   reconstructs every node's knowledge exactly. *)

let word_bits = 63
let mask_of k = if k >= word_bits then -1 else (1 lsl k) - 1

let gossip_seed ~n problem =
  let k = Problem.tokens problem in
  let w = (k + word_bits - 1) / word_bits in
  let planes = Array.make (n * w) 0 in
  for j = 0 to k - 1 do
    let home = Problem.token_home problem ~n ~token:j in
    planes.((home * w) + (j / word_bits)) <-
      planes.((home * w) + (j / word_bits)) lor (1 lsl (j mod word_bits))
  done;
  (w, planes)

let gossip ~n ~problem s (log : Run_log.t) =
  let w, planes = gossip_seed ~n problem in
  let len = Run_log.length log in
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  let previous_time = ref (-1) in
  let slen = Sequence.length s in
  for idx = 0 to len - 1 do
    let time = Run_log.time log idx
    and sender = Run_log.sender log idx
    and receiver = Run_log.receiver log idx in
    (* Two transfers of one interaction (one per direction) share a
       time, so only strictly decreasing times are out of order. *)
    if time < !previous_time then flag (Out_of_order idx);
    previous_time := Stdlib.max !previous_time time;
    if time < 0 || time >= slen then flag (Bad_time idx)
    else begin
      let i = Sequence.get s time in
      if
        not
          (Interaction.involves i sender
          && Interaction.involves i receiver
          && sender <> receiver)
      then flag (Wrong_interaction idx)
    end;
    if sender >= 0 && sender < n && receiver >= 0 && receiver < n then begin
      let bs = sender * w and br = receiver * w in
      let informative = ref false in
      for word = 0 to w - 1 do
        let merged = planes.(br + word) lor planes.(bs + word) in
        if merged <> planes.(br + word) then begin
          informative := true;
          planes.(br + word) <- merged
        end
      done;
      if not !informative then flag (Uninformative idx)
    end
  done;
  List.rev !violations

let gossip_complete ~n ~problem s log =
  gossip ~n ~problem s log = []
  &&
  let k = Problem.tokens problem in
  let w, planes = gossip_seed ~n problem in
  Run_log.iter
    (fun ~time:_ ~sender ~receiver ->
      if sender >= 0 && sender < n && receiver >= 0 && receiver < n then
        for word = 0 to w - 1 do
          planes.((receiver * w) + word) <-
            planes.((receiver * w) + word) lor planes.((sender * w) + word)
        done)
    log;
  let all = ref true in
  for v = 0 to n - 1 do
    for word = 0 to w - 1 do
      let full = mask_of (Stdlib.min word_bits (k - (word * word_bits))) in
      if planes.((v * w) + word) <> full then all := false
    done
  done;
  !all

let problem p ~n s log =
  match p with
  | Problem.Aggregation { sink } -> execution ~n ~sink s log
  | Problem.Dissemination _ -> gossip ~n ~problem:p s log

let problem_complete p ~n s log =
  match p with
  | Problem.Aggregation { sink } -> complete ~n ~sink s log
  | Problem.Dissemination _ -> gossip_complete ~n ~problem:p s log

let plan ~n ~sink s (p : Convergecast.plan) =
  let entries = ref [] in
  for v = 0 to n - 1 do
    if v <> sink && p.Convergecast.fire_time.(v) >= 0 then
      entries :=
        {
          Run_log.time = p.Convergecast.fire_time.(v);
          sender = v;
          receiver = p.Convergecast.fire_to.(v);
        }
        :: !entries
  done;
  let chronological =
    List.sort
      (fun (a : Run_log.transmission) b -> Int.compare a.time b.time)
      !entries
  in
  execution ~n ~sink s (Run_log.of_list chronological)
