module Interaction = Doda_dynamic.Interaction
module Schedule = Doda_dynamic.Schedule

(* Deterministic fair-ish coin for the both-beyond-tau case (shared
   with the other meet-time policies via [Algorithm.hash_coin]). *)
let hash_coin = Algorithm.hash_coin

let make ?(exact = false) ~tau () =
  if tau < 0 then invalid_arg "Waiting_greedy.make: negative tau";
  {
    Algorithm.name = Printf.sprintf "waiting-greedy(tau=%d%s)" tau
        (if exact then ",exact" else "");
    oblivious = true;
    requires =
      (if exact then [ Knowledge.Meet_time; Knowledge.Full_schedule ]
       else [ Knowledge.Meet_time ]);
    batch =
      (* The capped variant is the fire-above-tau meet policy; exact
         mode reads the schedule length at instance creation, so it
         stays on the generic lane. *)
      (if exact then None
       else
         Some
           (Algorithm.Meet_policy
              {
                limit_of = (fun ~time:_ -> tau);
                fire =
                  (fun ~time:_ sender_meet ->
                    match sender_meet with None -> true | Some m -> tau < m);
              }));
    make =
      (fun ~n:_ ~sink knowledge ->
        let meet_time = Option.get knowledge.Knowledge.meet_time in
        let limit =
          if exact then
            match knowledge.Knowledge.full with
            | Some sched -> (
                match Schedule.length sched with
                | Some len -> len
                | None ->
                    invalid_arg
                      "Waiting_greedy: exact mode needs a finite schedule")
            | None -> invalid_arg "Waiting_greedy: exact mode needs the schedule"
          else tau
        in
        (* meet time of a node at [time], capped: the sink's meet time
           is the identity (paper convention). *)
        let meet node time =
          if node = sink then Some time
          else meet_time ~node ~time ~limit
        in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time i ->
              let u1 = Interaction.u i and u2 = Interaction.v i in
              match (meet u1 time, meet u2 time) with
              | Some m1, Some m2 ->
                  if m1 <= m2 then if tau < m2 then Some u1 else None
                  else if tau < m1 then Some u2
                  else None
              | Some _, None -> Some u1  (* m2 > limit >= tau: u2 sends *)
              | None, Some _ -> Some u2
              | None, None ->
                  (* Both beyond the cap: exchangeable; deterministic coin. *)
                  if hash_coin ~time u1 u2 then Some u1 else Some u2);
        });
  }

let with_recommended_tau ?exact n = make ?exact ~tau:(Theory.recommended_tau n) ()

let doubling ?(tau0 = 16) () =
  if tau0 < 1 then invalid_arg "Waiting_greedy.doubling: tau0 must be positive";
  let current_tau time =
    let tau = ref tau0 in
    while !tau <= time do
      tau := 2 * !tau
    done;
    !tau
  in
  {
    Algorithm.name = Printf.sprintf "waiting-greedy-doubling(tau0=%d)" tau0;
    oblivious = true;
    requires = [ Knowledge.Meet_time ];
    batch =
      Some
        (Algorithm.Meet_policy
           {
             limit_of = (fun ~time -> current_tau time);
             fire =
               (fun ~time sender_meet ->
                 match sender_meet with
                 | None -> true
                 | Some m -> current_tau time < m);
           });
    make =
      (fun ~n:_ ~sink knowledge ->
        let meet_time = Option.get knowledge.Knowledge.meet_time in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time i ->
              let tau = current_tau time in
              let meet node =
                if node = sink then Some time
                else meet_time ~node ~time ~limit:tau
              in
              let u1 = Interaction.u i and u2 = Interaction.v i in
              match (meet u1, meet u2) with
              | Some m1, Some m2 ->
                  if m1 <= m2 then if tau < m2 then Some u1 else None
                  else if tau < m1 then Some u2
                  else None
              | Some _, None -> Some u1
              | None, Some _ -> Some u2
              | None, None -> if hash_coin ~time u1 u2 then Some u1 else Some u2);
        });
  }
