(** Lockstep batch engine: many executions over one schedule decode.

    The scalar {!Engine} decodes the schedule once per run; replication
    sweeps therefore decode the same interactions once per replication
    and once per rival algorithm. This module amortises the decode: it
    plays {e one} pass over the schedule and advances many executions
    in lockstep, in two shapes.

    {b Bit-parallel replications} ({!run_reps}): [R] replications of
    one algorithm over one schedule. Per-node holder sets are stored as
    bit planes — {!word_bits} replications per native word — so the
    "do both endpoints still hold data?" test for a whole word of
    replications is two loads and an [land]. Per-replication work
    happens only on actual transmissions, which the transmit-once model
    bounds by [R * (n - 1)] over the entire batch. Deterministic
    algorithms make every replication identical (useful as a
    throughput benchmark); coin algorithms differ through their
    per-replication streams ([rngs]).

    {b Lockstep algorithm sweep} ({!sweep}): one execution of each of
    up to many rival algorithms over the same schedule, one decode per
    step shared by every live lane. Meet-time policies share a single
    {!Doda_dynamic.Schedule.stepper} oracle whose incremental search
    materialises generator schedules only as far as the earliest
    undecided meet — not to the probe limit like the eager oracle —
    which is where the policies-suite speedup comes from.

    Both entry points produce {!Engine.result}s that are {e
    bit-identical} to running {!Engine.run} separately per replication
    or per algorithm: same stop reasons, durations, step counts,
    transmission logs, holder sets, and — for coin algorithms — the
    same PRNG draw sequences (a differential test enforces this per
    algorithm).

    {b Schedule forms.} Frozen/finite schedules decode straight off
    the flat backing. Chunked (streamed) schedules are first-class:
    the loops read through a cached
    {!Doda_dynamic.Schedule.chunk_view}, so each block is generated
    once and drained by every lane before the ring recycles it —
    memory stays O(block), never O(T). The chunked pass must run on a
    single consumer domain (parallelism comes from the lanes, and
    optionally from a pipelined producer via
    {!Doda_dynamic.Schedule.chunk_prefetch}). Meet-time policies are
    the exception: their oracle needs replay, which a chunked
    schedule refuses by design. *)

val word_bits : int
(** Replications packed per bit-plane word: 63, the width of OCaml's
    native [int] (the issue's nominal 64 loses one bit to the tag;
    [Int64] planes would box without flambda). *)

(** {1 Occupancy statistics} *)

type stats = {
  mutable decodes : int;
      (** Lockstep steps executed — schedule interactions decoded
          once for the whole batch. *)
  mutable lane_steps : int;
      (** Sum over decodes of live lanes (replications or
          algorithms): the scalar engine would have decoded this many
          interactions. [lane_steps / decodes] is the amortisation
          factor; dividing further by the batch width gives occupancy
          — how much of the batch the live mask keeps busy. *)
}

val stats : unit -> stats
(** A zeroed counter pair; pass the same record to several calls to
    accumulate. *)

(** {1 Entry points} *)

val batch_supported : Algorithm.t -> bool
(** Whether {!run_reps} can execute the algorithm bit-parallel, i.e.
    [algo.batch <> None]. Algorithms without a batch rule still run on
    {!sweep}'s generic lane. *)

val run_reps :
  ?max_steps:int ->
  ?record:[ `All | `Count ] ->
  ?rngs:Doda_prng.Prng.t array ->
  ?stats:stats ->
  Algorithm.t ->
  Doda_dynamic.Schedule.t ->
  int ->
  Engine.result array
(** [run_reps algo sched r] executes [r] replications of [algo] over
    [sched] in bit-parallel lockstep and returns their results in
    replication order. [max_steps] and [record] mean exactly what they
    do in {!Engine.run} (and [max_steps] is mandatory for generator
    schedules).

    [rngs] supplies one independent stream per replication — required
    for coin algorithms, ignored otherwise. Stream identity with the
    scalar path: the scalar [Engine.run] calls [algo.make], which
    splits the algorithm's captured master once per run, so passing
    [Prng.split_n master r] here hands replication [i] exactly the
    stream scalar replication [i] would have drawn. Draws happen in
    the same per-replication order as scalar runs (streams are
    independent across replications, so cross-replication interleaving
    is immaterial).

    @raise Invalid_argument if [algo.batch = None] (see
    {!batch_supported}), if [rngs] is missing or shorter than [r] for
    a coin algorithm, on a negative [r], or if [max_steps] is missing
    for an unbounded schedule. *)

val sweep :
  ?max_steps:int ->
  ?record:[ `All | `Count ] ->
  ?stats:stats ->
  Algorithm.t list ->
  Doda_dynamic.Schedule.t ->
  Engine.result array
(** [sweep algos sched] executes every algorithm in [algos] over
    [sched] in one lockstep pass and returns results in list order —
    element [k] equals [Engine.run ?max_steps ?record (List.nth algos
    k) sched].

    Algorithms with a token or gather batch rule run on dedicated bit
    lanes; meet-time policies share one lazy stepper oracle (one probe
    per interaction endpoint per step, under the maximum live lane
    limit — answers are per-lane filtered, which is equivalent because
    every lane asks for the {e first} meet after the current time).
    Algorithms without a rule — and coin algorithms, whose instance
    creation must split their master stream exactly where the scalar
    path would — run on a generic lane that drives their
    [Algorithm.instance] with scalar-engine semantics, including
    knowledge construction and misbehaviour checks. Instances are
    created in list order before the pass begins, which matches the
    split order of consecutive scalar runs.

    More than {!word_bits} algorithms are processed in chunks of
    {!word_bits} (each chunk is its own lockstep pass).

    Safety: a sweep over a live (unfrozen) schedule materialises it
    and must stay confined to one domain, like any live-schedule user;
    sweeps over a frozen schedule only mutate private cursors.

    @raise Invalid_argument as {!Engine.run} would: missing knowledge
    for a generic lane, missing [max_steps] on an unbounded schedule,
    or a misbehaving generic algorithm. *)
