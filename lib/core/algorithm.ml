type instance = {
  observe : time:int -> Doda_dynamic.Interaction.t -> unit;
  decide : time:int -> Doda_dynamic.Interaction.t -> int option;
}

type gather_tiebreak = To_smaller | To_larger | To_hash | To_heavier

type batch_rule =
  | Token_sink
  | Coin_sink of float
  | Gather of gather_tiebreak
  | Coin_gather of float
  | Meet_policy of {
      limit_of : time:int -> int;
      fire : time:int -> int option -> bool;
    }

type t = {
  name : string;
  oblivious : bool;
  requires : Knowledge.requirement list;
  batch : batch_rule option;
  make : n:int -> sink:int -> Knowledge.t -> instance;
}

let no_observation ~time:_ _ = ()

(* Deterministic fair-ish coin shared by every meet-time policy and the
   hash gathering tiebreak (and their batch kernels, which must agree
   bit-for-bit with the scalar instances): any fixed function of
   (t, u1, u2) is admissible since the two unknown meet times are
   exchangeable. *)
let hash_coin ~time a b =
  let h = (time * 0x9E3779B1) lxor (a * 0x85EBCA77) lxor (b * 0xC2B2AE3D) in
  let h = (h lxor (h lsr 13)) * 0x27D4EB2F land max_int in
  h land 1 = 0

let check_knowledge name knowledge requirements =
  match Knowledge.missing knowledge requirements with
  | [] -> ()
  | miss ->
      let names = String.concat ", " (List.map Knowledge.requirement_name miss) in
      invalid_arg (Printf.sprintf "%s: missing knowledge: %s" name names)
