(** Dissemination run-core: k-token all-to-all gossip over an
    interaction schedule.

    The second problem family ({!Problem.Dissemination}): token [j]
    starts at node [Problem.token_home] ([j mod n]); when [I_t = {u, v}]
    occurs the two endpoints exchange every token they know (gossip is
    oblivious — there is no per-step decision to make, unlike
    aggregation's transmit-once choice). The run succeeds when every
    node knows all [k] tokens.

    Two implementations with bit-identical results:

    - {!run} tracks knowledge as {e per-token bit-planes} — the
      lockstep batch engine's word-parallel idiom, with tokens in the
      role replications play there: node [v]'s knowledge is
      [ceil (k / 63)] native-int words and an exchange is one [lor]
      per word, so cost per interaction is O(k / 63);
    - {!run_reference} is a deliberately simple dense boolean-matrix
      replay, the differential-testing oracle.

    A transfer is {e informative} when the receiver learns at least one
    new token from it; informative transfers are what the {!Run_log}
    records (receiver [Interaction.u] logged before receiver
    [Interaction.v] at the same step), so a log replay reconstructs
    every node's knowledge exactly ({!Validate} and
    [Analysis.coverage_times] rely on this). *)

type result = {
  stop : Engine.stop_reason;
      (** [All_aggregated] doubles as "problem solved": every node
          covered. The other reasons mean the schedule or the step
          budget ran out first, under {!Engine.run}'s exact rules. *)
  duration : int option;
      (** Time of the exchange that completed the last node, when the
          run succeeded. *)
  steps : int;  (** Interactions processed. *)
  log : Run_log.t;
      (** Informative transfers, chronological. Empty under [`Count]
          recording. *)
  transfer_count : int;
      (** Number of informative transfers, regardless of recording
          mode (at most [n * k] over a run: each transfer teaches its
          receiver at least one token). *)
  coverage : int array;
      (** Per node, the number of tokens known at the end. *)
  complete_nodes : int;
      (** Number of nodes knowing all [k] tokens at the end. *)
}

(** {1 Observers} — same shape as {!Engine.observer}. *)

type observer

val observer :
  ?on_step:(time:int -> Doda_dynamic.Interaction.t -> unit) ->
  ?on_transfer:(time:int -> sender:int -> receiver:int -> unit) ->
  ?on_finish:(result -> unit) ->
  unit ->
  observer
(** [on_step] fires after every interaction (informative or not);
    [on_transfer] after each informative transfer; [on_finish] once
    with the packaged result. *)

(** {1 Runs} *)

val run :
  ?max_steps:int ->
  ?record:[ `All | `Count ] ->
  ?observers:observer list ->
  problem:Problem.t ->
  Doda_dynamic.Schedule.t ->
  result
(** [run ~problem sched] plays the schedule under k-token gossip
    (bit-plane implementation). [max_steps]/[record] follow
    {!Engine.run}'s rules exactly ([max_steps] mandatory for unbounded
    schedules; [`Count] skips only the log). Works on live, frozen and
    chunked schedules — gossip needs no meet-time oracle, so [--stream]
    runs are first-class.

    @raise Invalid_argument if [problem] is not [Dissemination], or on
    a missing [max_steps] for an unbounded schedule. *)

val run_reps :
  ?max_steps:int ->
  ?record:[ `All | `Count ] ->
  ?stats:Batch_engine.stats ->
  problem:Problem.t ->
  Doda_dynamic.Schedule.t ->
  int ->
  result array
(** [run_reps ~problem sched r] executes [r] gossip replications over
    one schedule in rep-packed lockstep — replications × tokens folded
    into 63-bit plane words when [k <= 63] ([63 / k] replications per
    word), one [ceil (k / 63)]-word span per replication otherwise —
    so one schedule decode drives all lanes. Element [i] is
    bit-identical to [run ~problem sched] (gossip is deterministic, so
    every replication is the same execution): this is a throughput
    construct and the lockstep vehicle for batched streamed sweeps,
    the dissemination counterpart of {!Batch_engine.run_reps}.

    [stats] accumulates decodes and lane-steps like the batch engine's.
    Chunked schedules are read through a cached block view, so memory
    stays O(block) in the schedule plus O(n · r / 8) batch state.

    @raise Invalid_argument as {!run}, or on a negative [r]. *)

val run_reference :
  ?max_steps:int ->
  ?record:[ `All | `Count ] ->
  ?observers:observer list ->
  problem:Problem.t ->
  Doda_dynamic.Schedule.t ->
  result
(** Dense boolean-matrix oracle; result is bit-identical to {!run}
    (differential suite enforces it). O(k) per interaction — use for
    tests, not measurement. *)

val pp_result : Format.formatter -> result -> unit
