(** Execution engine: plays a schedule of interactions against a DODA
    algorithm and enforces the model of Section 2.

    Initially every node owns a data item. During interaction
    [I_t = {u, v}], if both nodes still own data the algorithm may
    order one to transmit to the other; the receiver aggregates. A node
    that transmitted owns nothing, can never transmit again, and can no
    longer receive. The run terminates when the sink is the only node
    owning data.

    {!run} executes to completion; the {!state} API steps one
    interaction at a time, for debuggers, visualisations and tests that
    inspect intermediate states. *)

type transmission = { time : int; sender : int; receiver : int }

type stop_reason =
  | All_aggregated  (** the sink is the only data owner *)
  | Schedule_exhausted  (** finite schedule ended first *)
  | Step_limit  (** [max_steps] interactions processed *)

type result = {
  stop : stop_reason;
  duration : int option;
      (** Time (interaction index) of the final transmission, when
          [stop = All_aggregated]; the paper's [duration(A, I)]. *)
  steps : int;  (** Interactions processed. *)
  transmissions : transmission list;
      (** Chronological. Empty when the run recorded with [`Count]. *)
  transmission_count : int;
      (** Number of transmissions, regardless of recording mode. *)
  holders : bool array;  (** Who still owns data at the end. *)
}

(** {1 Whole runs} *)

val run :
  ?knowledge:Knowledge.t -> ?max_steps:int -> ?record:[ `All | `Count ] ->
  Algorithm.t -> Doda_dynamic.Schedule.t -> result
(** [run algo sched] executes [algo] against [sched].

    [knowledge] defaults to [Knowledge.for_schedule sched algo.requires]
    — exactly the oracles the algorithm declares.

    [max_steps] bounds the number of interactions processed; it
    defaults to the schedule length and is mandatory for generator
    schedules. The engine stops early as soon as aggregation completes.

    [record] (default [`All]) selects what the result carries. [`All]
    records the full transmission log. [`Count] skips the per-event log
    allocation — [result.transmissions] is [[]] — and keeps only
    [transmission_count]; [stop], [duration], [steps] and [holders] are
    identical to an [`All] run (a determinism regression test enforces
    this). Use [`Count] on replication-heavy measurement paths that
    only consume durations.

    @raise Invalid_argument if required knowledge cannot be built, if
    [max_steps] is missing for an unbounded schedule, or if the
    algorithm misbehaves (returns a non-endpoint, or makes the sink
    transmit). *)

(** {1 Stepping} *)

type state
(** A run in progress. *)

val start :
  ?knowledge:Knowledge.t -> ?record:[ `All | `Count ] ->
  Algorithm.t -> Doda_dynamic.Schedule.t -> state
(** [start algo sched] initialises a run without executing anything.
    [record] as in {!run} (default [`All] — steppers usually want the
    log). @raise Invalid_argument on missing knowledge. *)

type step_outcome =
  | Stepped of transmission option
      (** One interaction processed; the transmission it carried, if
          any. *)
  | Finished of stop_reason
      (** Nothing processed: aggregation already complete, or the
          schedule ended. [Step_limit] is never returned by [step]
          (the caller owns the loop). *)

val step : state -> step_outcome
(** Process the next interaction.
    @raise Invalid_argument on algorithm misbehaviour. *)

val time : state -> int
(** Interactions processed so far. *)

val owners : state -> int
(** Nodes currently owning data. *)

val owns : state -> int -> bool

val holders_snapshot : state -> bool array
(** Fresh copy of the ownership vector. *)

val transmissions_so_far : state -> transmission list
(** Chronological. Empty under [`Count] recording. *)

val finish : state -> stop_reason -> result
(** Package the current state as a {!result} (e.g. after deciding to
    stop at a step limit). *)

(** {1 Result helpers} *)

val transmissions_of_node : result -> int -> transmission list
(** Transmissions in which the node was sender or receiver. *)

val count_owners : result -> int
(** Number of nodes still owning data at the end. *)

val pp_result : Format.formatter -> result -> unit
