(** Execution engine: plays a schedule of interactions against a DODA
    algorithm and enforces the model of Section 2.

    Initially every node owns a data item. During interaction
    [I_t = {u, v}], if both nodes still own data the algorithm may
    order one to transmit to the other; the receiver aggregates. A node
    that transmitted owns nothing, can never transmit again, and can no
    longer receive. The run terminates when the sink is the only node
    owning data.

    Every execution goes through one run-core: {!run} drives it from a
    schedule, {!run_state} from an arbitrary pull source (how
    {!Doda_adversary.Duel} plays adaptive adversaries), and the
    {!state} API steps it one interaction at a time for debuggers,
    visualisations and tests. Model enforcement therefore lives in
    exactly one place, and {!observer}s can watch any of them. *)

type transmission = Run_log.transmission = {
  time : int;
  sender : int;
  receiver : int;
}

type stop_reason =
  | All_aggregated  (** the sink is the only data owner *)
  | Schedule_exhausted  (** finite schedule ended first *)
  | Step_limit  (** [max_steps] interactions processed *)

type result = {
  stop : stop_reason;
  duration : int option;
      (** Time (interaction index) of the final transmission, when
          [stop = All_aggregated]; the paper's [duration(A, I)]. *)
  steps : int;  (** Interactions processed. *)
  log : Run_log.t;
      (** Flat transmission log, chronological. Empty when the run
          recorded with [`Count]. *)
  transmission_count : int;
      (** Number of transmissions, regardless of recording mode. *)
  holders : bool array;
      (** Who still owns data at the end. A fresh copy: mutating it
          cannot corrupt a live {!state} or other results. *)
}

val transmissions : result -> transmission list
(** [Run_log.to_list result.log] — the seed engine's boxed
    chronological list, for consumers that want one. *)

(** {1 Observers}

    An observer watches a run from the outside: streaming progress,
    live validation, metric counters. All three callbacks are
    optional; an engine with no step observers pays one boolean test
    per interaction, so the [`Count] measurement path stays
    allocation-free. *)

type observer

val observer :
  ?on_step:(time:int -> Doda_dynamic.Interaction.t -> unit) ->
  ?on_transmit:(time:int -> sender:int -> receiver:int -> unit) ->
  ?on_finish:(result -> unit) ->
  unit ->
  observer
(** [on_step] fires after every interaction is processed (transmitting
    or not); [on_transmit] after each committed transmission;
    [on_finish] once, with the packaged result (each time {!finish} is
    called, for manual steppers). *)

(** {1 Whole runs} *)

val run :
  ?knowledge:Knowledge.t ->
  ?max_steps:int ->
  ?record:[ `All | `Count ] ->
  ?observers:observer list ->
  Algorithm.t ->
  Doda_dynamic.Schedule.t ->
  result
(** [run algo sched] executes [algo] against [sched].

    [knowledge] defaults to [Knowledge.for_schedule sched algo.requires]
    — exactly the oracles the algorithm declares.

    [max_steps] bounds the number of interactions processed; it
    defaults to the schedule length and is mandatory for generator
    schedules. The engine stops early as soon as aggregation completes.

    [record] (default [`All]) selects what the result carries. [`All]
    records the full transmission log. [`Count] skips the per-event log
    append — [result.log] is empty — and keeps only
    [transmission_count]; [stop], [duration], [steps] and [holders] are
    identical to an [`All] run (a determinism regression test enforces
    this). Use [`Count] on replication-heavy measurement paths that
    only consume durations.

    @raise Invalid_argument if required knowledge cannot be built, if
    [max_steps] is missing for an unbounded schedule, or if the
    algorithm misbehaves (returns a non-endpoint, or makes the sink
    transmit). *)

(** {1 Stepping} *)

type state
(** A run in progress. *)

val start :
  ?knowledge:Knowledge.t ->
  ?record:[ `All | `Count ] ->
  ?observers:observer list ->
  Algorithm.t ->
  Doda_dynamic.Schedule.t ->
  state
(** [start algo sched] initialises a run without executing anything.
    [record] as in {!run} (default [`All] — steppers usually want the
    log). @raise Invalid_argument on missing knowledge. *)

val start_source :
  ?knowledge:Knowledge.t ->
  ?record:[ `All | `Count ] ->
  ?observers:observer list ->
  n:int ->
  sink:int ->
  source:(state -> Doda_dynamic.Interaction.t option) ->
  Algorithm.t ->
  state
(** [start_source ~n ~sink ~source algo] initialises a run whose
    interactions are pulled from [source] instead of a pre-committed
    schedule — the hook adaptive adversaries plug into. [source st] is
    asked for the interaction at time [time st] and may inspect the
    live state (e.g. {!live_holders}); [None] ends the execution.
    [knowledge] defaults to [Knowledge.empty]: a pull source has no
    future to build oracles from.

    @raise Invalid_argument on invalid [n]/[sink] or missing
    knowledge. *)

type step_outcome =
  | Stepped of transmission option
      (** One interaction processed; the transmission it carried, if
          any. *)
  | Finished of stop_reason
      (** Nothing processed: aggregation already complete, or the
          schedule ended. [Step_limit] is never returned by [step]
          (the caller owns the loop). *)

val step : state -> step_outcome
(** Process the next interaction.
    @raise Invalid_argument on algorithm misbehaviour. *)

val run_state : state -> max_steps:int -> result
(** Drive a state to completion through the same run-core as {!run}:
    stops at aggregation, source exhaustion, or [max_steps]. *)

val time : state -> int
(** Interactions processed so far. *)

val owners : state -> int
(** Nodes currently owning data. *)

val problem : state -> Problem.t
(** The problem this run executes — always [Problem.Aggregation] for
    this engine (the termination predicate, initial ownership and
    success criterion are read from it; {!Gossip} is the run-core for
    [Dissemination]). *)

val owns : state -> int -> bool

val holders_snapshot : state -> bool array
(** Fresh copy of the ownership vector. *)

val live_holders : state -> bool array
(** The engine's own ownership vector, no copy — read-only by
    contract (mutating it corrupts the run). For per-step consumers
    (adversary views, observers) that must not allocate. *)

val last_transmission : state -> transmission option
(** Most recent transmission, if any — tracked even under [`Count]
    recording. *)

val transmissions_so_far : state -> transmission list
(** Chronological. Empty under [`Count] recording. *)

val finish : state -> stop_reason -> result
(** Package the current state as a {!result} (e.g. after deciding to
    stop at a step limit). Runs [on_finish] observers. *)

(** {1 Result helpers} *)

val transmissions_of_node : result -> int -> transmission list
(** Transmissions in which the node was sender or receiver. *)

val count_owners : result -> int
(** Number of nodes still owning data at the end. *)

val pp_result : Format.formatter -> result -> unit
