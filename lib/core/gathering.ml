module Interaction = Doda_dynamic.Interaction

let algorithm =
  {
    Algorithm.name = "gathering";
    oblivious = true;
    requires = [];
    batch = Some (Algorithm.Gather Algorithm.To_smaller);
    make =
      (fun ~n:_ ~sink _knowledge ->
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time:_ i ->
              if Interaction.involves i sink then Some sink
              else Some (Interaction.u i));
        });
  }
