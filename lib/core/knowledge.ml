module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Underlying = Doda_dynamic.Underlying

type requirement = Meet_time | Underlying_graph | Own_future | Full_schedule

let requirement_name = function
  | Meet_time -> "meetTime"
  | Underlying_graph -> "underlying graph"
  | Own_future -> "own future"
  | Full_schedule -> "full schedule"

type t = {
  underlying : Doda_graph.Static_graph.t option;
  meet_time : (node:int -> time:int -> limit:int -> int option) option;
  future_of : (int -> (int * Doda_dynamic.Interaction.t) list) option;
  full : Doda_dynamic.Schedule.t option;
}

let empty = { underlying = None; meet_time = None; future_of = None; full = None }

let finite_sequence sched what =
  match Schedule.length sched with
  | None ->
      invalid_arg
        (Printf.sprintf "Knowledge.for_schedule: %s requires a finite schedule" what)
  | Some len -> (
      (* The requirement spans the whole schedule, and a finite or
         frozen schedule hands out its backing sequence without the
         O(len) copy [Schedule.prefix] would make. *)
      match Schedule.backing sched with
      | Some seq -> seq
      | None -> Schedule.prefix sched len)

let for_schedule sched reqs =
  List.fold_left
    (fun k req ->
      match req with
      | Meet_time ->
          let meet ~node ~time ~limit =
            Schedule.next_meet_with_sink sched ~node ~after:time ~limit
          in
          { k with meet_time = Some meet }
      | Underlying_graph ->
          let seq = finite_sequence sched "Underlying_graph" in
          let g = Underlying.of_sequence ~n:(Schedule.n sched) seq in
          { k with underlying = Some g }
      | Own_future ->
          let seq = finite_sequence sched "Own_future" in
          let future node = Sequence.interactions_of seq node in
          { k with future_of = Some future }
      | Full_schedule -> { k with full = Some sched })
    empty reqs

let with_underlying g k = { k with underlying = Some g }

let has k = function
  | Meet_time -> k.meet_time <> None
  | Underlying_graph -> k.underlying <> None
  | Own_future -> k.future_of <> None
  | Full_schedule -> k.full <> None

let satisfies k reqs = List.for_all (has k) reqs
let missing k reqs = List.filter (fun r -> not (has k r)) reqs
