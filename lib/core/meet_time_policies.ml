module Interaction = Doda_dynamic.Interaction

let hash_coin = Algorithm.hash_coin

(* Shared shape: compare capped meet times, transmit from the later
   endpoint when [fire] accepts its (possibly unknown) meet time. The
   batch kernel is the same [limit_of]/[fire] pair interpreted by
   [Batch_engine], decision-for-decision. *)
let policy ~name ~limit_of ~fire =
  {
    Algorithm.name;
    oblivious = true;
    requires = [ Knowledge.Meet_time ];
    batch = Some (Algorithm.Meet_policy { limit_of; fire });
    make =
      (fun ~n:_ ~sink knowledge ->
        let meet_time = Option.get knowledge.Knowledge.meet_time in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time i ->
              let limit = limit_of ~time in
              let meet node =
                if node = sink then Some time
                else meet_time ~node ~time ~limit
              in
              let u1 = Interaction.u i and u2 = Interaction.v i in
              match (meet u1, meet u2) with
              | Some m1, Some m2 ->
                  if m1 <= m2 then if fire ~time (Some m2) then Some u1 else None
                  else if fire ~time (Some m1) then Some u2
                  else None
              | Some _, None -> if fire ~time None then Some u1 else None
              | None, Some _ -> if fire ~time None then Some u2 else None
              | None, None ->
                  if fire ~time None then
                    if hash_coin ~time u1 u2 then Some u1 else Some u2
                  else None);
        });
  }

let pure_greedy ~horizon =
  if horizon < 1 then invalid_arg "Meet_time_policies.pure_greedy: horizon < 1";
  policy
    ~name:(Printf.sprintf "pure-greedy(horizon=%d)" horizon)
    ~limit_of:(fun ~time:_ -> horizon)
    ~fire:(fun ~time:_ _ -> true)

let sliding_window ~theta =
  if theta < 0 then invalid_arg "Meet_time_policies.sliding_window: negative theta";
  policy
    ~name:(Printf.sprintf "sliding-window(theta=%d)" theta)
    ~limit_of:(fun ~time -> time + theta)
    ~fire:(fun ~time sender_meet ->
      match sender_meet with
      | None -> true  (* beyond time + theta: late enough to spend *)
      | Some m -> m > time + theta)
