type t = Aggregation of { sink : int } | Dissemination of { k : int }

let aggregation ~sink =
  if sink < 0 then invalid_arg "Problem.aggregation: negative sink";
  Aggregation { sink }

let dissemination ~k =
  if k < 1 then invalid_arg "Problem.dissemination: need at least one token";
  Dissemination { k }

let name = function
  | Aggregation _ -> "aggregation"
  | Dissemination { k } -> Printf.sprintf "gossip:%d" k

let syntax = "aggregation | gossip:K"

let parse ?(sink = 0) s =
  match String.split_on_char ':' s with
  | [ "aggregation" ] ->
      if sink < 0 then Error "aggregation needs a non-negative sink"
      else Ok (Aggregation { sink })
  | [ "gossip"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Dissemination { k })
      | _ -> Error "gossip needs a token count >= 1, e.g. gossip:8")
  | _ -> Error ("unknown problem; syntax: " ^ syntax)

let describe = function
  | Aggregation { sink } ->
      Printf.sprintf
        "single-sink aggregation: run ends when node %d is the only data owner"
        sink
  | Dissemination { k } ->
      Printf.sprintf
        "%d-token dissemination: run ends when every node knows all %d tokens"
        k k

let not_aggregation what =
  invalid_arg (Printf.sprintf "Problem.%s: not an aggregation problem" what)

let not_dissemination what =
  invalid_arg (Printf.sprintf "Problem.%s: not a dissemination problem" what)

let sink = function
  | Aggregation { sink } -> sink
  | Dissemination _ -> not_aggregation "sink"

let initial_holders t ~n =
  match t with
  | Aggregation _ -> Array.make n true
  | Dissemination _ -> not_aggregation "initial_holders"

let target_owners = function
  | Aggregation _ -> 1
  | Dissemination _ -> not_aggregation "target_owners"

let solved t ~owners = owners <= target_owners t

let tokens = function
  | Dissemination { k } -> k
  | Aggregation _ -> not_dissemination "tokens"

let token_home t ~n ~token =
  match t with
  | Dissemination { k } ->
      if token < 0 || token >= k then
        invalid_arg "Problem.token_home: token out of range";
      token mod n
  | Aggregation _ -> not_dissemination "token_home"

let covered t ~known =
  match t with
  | Dissemination { k } -> known = k
  | Aggregation _ -> not_dissemination "covered"
