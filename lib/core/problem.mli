(** Problem families: what a run over an interaction sequence is trying
    to achieve.

    The paper studies one problem — single-sink {e data aggregation}
    (every node starts with a datum; the run succeeds when the sink is
    the sole owner). This module names that problem as a value and adds
    a second family, k-token {e dissemination} (all-to-all gossip in
    the style of Augustine et al.: k tokens start scattered over the
    nodes and the run succeeds when every node has learnt all k), so
    that engines, validators, analyses, benches and the CLI can
    dispatch on the problem instead of hard-coding "one sink,
    aggregation".

    The run-cores stay specialised — {!Engine}/{!Batch_engine} execute
    aggregation, {!Gossip} executes dissemination — but the parameters
    they used to hard-code (initial ownership, termination predicate,
    success criterion) are read from here. *)

type t =
  | Aggregation of { sink : int }
      (** Transmit-once convergecast to [sink] — the paper's DODA
          problem, executed by {!Engine} and {!Batch_engine}. *)
  | Dissemination of { k : int }
      (** k-token all-to-all gossip: token [j] starts at node
          [j mod n] and every node must learn all [k] tokens.
          Executed by {!Gossip}. *)

val aggregation : sink:int -> t
(** @raise Invalid_argument if [sink < 0]. *)

val dissemination : k:int -> t
(** @raise Invalid_argument if [k < 1]. *)

val name : t -> string
(** ["aggregation"] or ["gossip:K"] — inverse of {!parse}. *)

val syntax : string
(** One-line syntax summary for help output. *)

val parse : ?sink:int -> string -> (t, string) result
(** [parse ~sink s] reads ["aggregation"] (using [sink], default [0])
    or ["gossip:K"]. Human-oriented error messages on [Error]. *)

val describe : t -> string
(** One-line human description of the success criterion. *)

(** {1 Aggregation parameters}

    Consulted by {!Engine} and {!Batch_engine}; raise
    [Invalid_argument] on a [Dissemination] problem. *)

val sink : t -> int

val initial_holders : t -> n:int -> bool array
(** Who owns data at time 0 (every node, for aggregation). *)

val target_owners : t -> int
(** The owner count at which the run has succeeded ([1]: only the sink
    still owns data). *)

val solved : t -> owners:int -> bool
(** [owners <= target_owners] — the termination predicate. *)

(** {1 Dissemination parameters}

    Consulted by {!Gossip}; raise [Invalid_argument] on an
    [Aggregation] problem. *)

val tokens : t -> int
(** The number of tokens, [k]. *)

val token_home : t -> n:int -> token:int -> int
(** Initial location of a token: [token mod n]. *)

val covered : t -> known:int -> bool
(** Whether a node knowing [known] tokens has learnt everything
    ([known = k]) — the per-node success criterion. *)
