module Prng = Doda_prng.Prng
module Engine = Doda_core.Engine
module Instrument = Doda_obs.Instrument

type measurement = {
  label : string;
  n : int;
  samples : float array;
  failures : int;
}

(* All replication APIs, sequential and parallel, derive their
   per-replication streams here, in index order, on the calling domain.
   Parallelism therefore cannot change which stream replication [k]
   receives — the foundation of the bit-identical guarantee. *)
let split_seeds ~replications ~seed =
  let master = Prng.create seed in
  Array.init replications (fun _ -> Prng.split master)

let replicate ~replications ~seed f = Array.map f (split_seeds ~replications ~seed)

let dispatch ?pool ?jobs f seeds =
  match pool with
  | Some p -> Pool.map_array p f seeds
  | None -> (
      match jobs with
      | None | Some 1 -> Array.map f seeds
      | Some j -> Pool.with_pool ~jobs:j (fun p -> Pool.map_array p f seeds))

(* Instrumented dispatch: [f] takes the telemetry handle to record
   into. Disabled telemetry routes through plain [dispatch] with the
   shared off handle — the exact code path of uninstrumented callers.
   Enabled telemetry gives every execution slot its own shard
   (sequentially, on the calling domain) and folds the shards back in
   slot order, so aggregated counters are identical for any job
   count. *)
let dispatch_instrumented ?pool ?jobs ~telemetry f seeds =
  if not (Instrument.enabled telemetry) then dispatch ?pool ?jobs (f telemetry) seeds
  else begin
    let sharded p =
      Pool.map_array_sharded p
        ~make:(fun () -> Instrument.shard telemetry)
        ~merge:(Instrument.absorb telemetry)
        f seeds
    in
    match pool with
    | Some p -> sharded p
    | None -> (
        match jobs with
        | None | Some 1 ->
            let shard = Instrument.shard telemetry in
            let r = Array.map (f shard) seeds in
            Instrument.absorb telemetry shard;
            r
        | Some j -> Pool.with_pool ~jobs:j sharded)
  end

let replicate_par ?pool ?jobs ?(telemetry = Instrument.disabled) ~replications
    ~seed f =
  let jobs =
    match (pool, jobs) with
    | None, None -> Some (Pool.default_jobs ())
    | _ -> jobs
  in
  dispatch_instrumented ?pool ?jobs ~telemetry
    (fun tel rng -> Instrument.with_span tel "replicate" (fun () -> f rng))
    (split_seeds ~replications ~seed)

(* The batch telemetry fold: one batch pass worth of engine counters. *)
let record_batch_counters tel (stats : Doda_core.Batch_engine.stats) =
  let m = Instrument.metrics tel in
  Doda_obs.Metrics.incr (Doda_obs.Metrics.counter m "batch.runs");
  Doda_obs.Metrics.add (Doda_obs.Metrics.counter m "batch.decodes") stats.decodes;
  Doda_obs.Metrics.add
    (Doda_obs.Metrics.counter m "batch.rep_steps")
    stats.lane_steps

let replicate_batched ?pool ?jobs ?(telemetry = Instrument.disabled) ?max_steps
    ?(record = `Count) ~replications ~seed algo schedule =
  if not (Doda_core.Batch_engine.batch_supported algo) then
    invalid_arg
      (Printf.sprintf
         "Experiment.replicate_batched: %s has no batch rule; fall back to \
          the scalar path — Experiment.replicate_par with Engine.run per \
          replication"
         algo.Doda_core.Algorithm.name);
  (* One stream per replication, split up front in index order exactly
     like [replicate_par]; batch [b] receives the contiguous slice its
     replications would have received scalar, so the partition into
     batches (and the job count) cannot change any result. *)
  let seeds = split_seeds ~replications ~seed in
  if Doda_dynamic.Schedule.is_frozen schedule then begin
    (* Frozen: shared read-only backing, so batches of [word_bits]
       replications fan out across the pool. *)
    let width = Doda_core.Batch_engine.word_bits in
    let batches = (replications + width - 1) / width in
    let starts = Array.init batches (fun b -> b * width) in
    let jobs =
      match (pool, jobs) with
      | None, None -> Some (Pool.default_jobs ())
      | _ -> jobs
    in
    let chunks =
      dispatch_instrumented ?pool ?jobs ~telemetry
        (fun tel start ->
          let count = Stdlib.min width (replications - start) in
          let rngs = Array.sub seeds start count in
          Instrument.with_span tel "batch" (fun () ->
              let stats = Doda_core.Batch_engine.stats () in
              let results =
                Doda_core.Batch_engine.run_reps ?max_steps ~record ~rngs ~stats
                  algo schedule count
              in
              record_batch_counters tel stats;
              results))
        starts
    in
    Array.concat (Array.to_list chunks)
  end
  else begin
    (* Live or chunked: the schedule mutates as it advances, so it
       cannot be shared across tasks — all replications run in one
       lockstep pass on the calling domain (the engine packs them
       [word_bits] per plane word however many there are). A pool, if
       any, contributes pipeline parallelism instead: block decodes of
       a chunked schedule run as producer jobs overlapped with this
       consumer. *)
    let run_single producer =
      (match producer with Some p -> Pool.pipeline p schedule | None -> ());
      Instrument.with_span telemetry "batch" (fun () ->
          let stats = Doda_core.Batch_engine.stats () in
          let results =
            Doda_core.Batch_engine.run_reps ?max_steps ~record ~rngs:seeds
              ~stats algo schedule replications
          in
          record_batch_counters telemetry stats;
          Instrument.record_chunk_stats telemetry schedule;
          results)
    in
    match pool with
    | Some p -> run_single (Some p)
    | None -> (
        match jobs with
        | None | Some 1 -> run_single None
        | Some j -> Pool.with_pool ~jobs:j (fun p -> run_single (Some p)))
  end

let of_results ~label ~n results =
  let samples = ref [] in
  let failures = ref 0 in
  Array.iter
    (fun (r : Engine.result) ->
      match r.duration with
      | Some d -> samples := float_of_int (d + 1) :: !samples
      | None -> incr failures)
    results;
  { label; n; samples = Array.of_list (List.rev !samples); failures = !failures }

(* Measurement from slot-ordered duration options: same fold as
   [of_results], without requiring full engine results (checkpointed
   slots only persist the duration). *)
let of_durations ~label ~n durations =
  let samples = ref [] in
  let failures = ref 0 in
  Array.iter
    (function
      | Some d -> samples := float_of_int (d + 1) :: !samples
      | None -> incr failures)
    durations;
  { label; n; samples = Array.of_list (List.rev !samples); failures = !failures }

(* Checkpoint payloads for factory sweeps: the duration option of the
   finished run. *)
let encode_duration = function Some d -> "d" ^ string_of_int d | None -> "f"

let decode_duration payload =
  if payload = "f" then Some None
  else if String.length payload > 1 && payload.[0] = 'd' then
    match int_of_string_opt (String.sub payload 1 (String.length payload - 1)) with
    | Some d -> Some (Some d)
    | None -> None
  else None

let run_schedule_factory ?pool ?jobs ?(telemetry = Instrument.disabled)
    ?checkpoint ?(replications = 20) ?(seed = 42) ~max_steps ~label ~n factory
    algo =
  (* Streams are pre-split in slot order whether or not a slot is
     cached, so a resumed sweep hands every slot exactly the stream an
     uninterrupted run would have — the bit-identical resume. *)
  let seeds = split_seeds ~replications ~seed in
  let cached =
    match checkpoint with
    | None -> [||]
    | Some cp ->
        Array.init replications (fun slot ->
            match Checkpoint.find cp slot with
            | None -> None
            | Some payload -> decode_duration payload)
  in
  let durations =
    dispatch_instrumented ?pool ?jobs ~telemetry
      (fun tel slot ->
        match if cached = [||] then None else cached.(slot) with
        | Some duration -> duration
        | None ->
            let rng = seeds.(slot) in
            let observers = Instrument.engine_observers tel in
            let result =
              Instrument.with_span tel "replicate" (fun () ->
                  let sched =
                    Instrument.with_span tel "schedule/build" (fun () ->
                        factory rng)
                  in
                  Engine.run ~record:`Count ~max_steps ~observers algo sched)
            in
            (match checkpoint with
            | Some cp ->
                Checkpoint.record cp slot (encode_duration result.duration)
            | None -> ());
            result.Engine.duration)
      (Array.init replications Fun.id)
  in
  of_durations ~label ~n durations

(* Checkpointed batched sweep over ONE shared schedule: the lockstep
   dual of [run_schedule_factory], which draws a fresh schedule per
   replication. Semantically a different experiment — R lockstep lanes
   over one trace (the adversary-replay setting) versus R independent
   traces — hence a separate entry point and CLI flag rather than a
   mode of the scalar sweep.

   Seed discipline: the master's FIRST split is the schedule stream,
   the next [replications] splits are the per-slot streams, all drawn
   in slot order on the calling domain. Streams are independent across
   slots, so running only the uncached subset of lanes hands each lane
   exactly the stream an uninterrupted run would have — checkpointed
   resume is bit-identical. *)
let run_batched_factory ?pool ?(telemetry = Instrument.disabled) ?checkpoint
    ?(replications = 20) ?(seed = 42) ~max_steps ~label ~n factory algo =
  let master = Prng.create seed in
  let sched_rng = Prng.split master in
  let seeds = Array.init replications (fun _ -> Prng.split master) in
  let durations = Array.make replications None in
  let todo = ref [] in
  for slot = replications - 1 downto 0 do
    let cached =
      match checkpoint with
      | None -> None
      | Some cp -> (
          match Checkpoint.find cp slot with
          | None -> None
          | Some payload -> decode_duration payload)
    in
    match cached with
    | Some duration -> durations.(slot) <- duration
    | None -> todo := slot :: !todo
  done;
  let todo = Array.of_list !todo in
  if Array.length todo > 0 then begin
    let schedule =
      Instrument.with_span telemetry "schedule/build" (fun () ->
          factory sched_rng)
    in
    (match pool with Some p -> Pool.pipeline p schedule | None -> ());
    let rngs = Array.map (fun slot -> seeds.(slot)) todo in
    let results =
      Instrument.with_span telemetry "batch" (fun () ->
          let stats = Doda_core.Batch_engine.stats () in
          let results =
            Doda_core.Batch_engine.run_reps ~max_steps ~record:`Count ~rngs
              ~stats algo schedule (Array.length todo)
          in
          record_batch_counters telemetry stats;
          Instrument.record_chunk_stats telemetry schedule;
          results)
    in
    Array.iteri
      (fun i slot ->
        let d = results.(i).Engine.duration in
        (match checkpoint with
        | Some cp -> Checkpoint.record cp slot (encode_duration d)
        | None -> ());
        durations.(slot) <- d)
      todo
  end;
  of_durations ~label ~n durations

let run_uniform ?pool ?jobs ?telemetry ?replications ?seed ?(sink = 0)
    ?max_steps ~n (algo : Doda_core.Algorithm.t) =
  let max_steps =
    match max_steps with Some m -> m | None -> (200 * n * n) + 10_000
  in
  run_schedule_factory ?pool ?jobs ?telemetry ?replications ?seed ~max_steps
    ~label:algo.name ~n
    (fun rng -> Doda_adversary.Randomized.uniform_schedule rng ~n ~sink)
    algo

let replicate_duels ?pool ?jobs ?knowledge ~replications ~seed ~max_steps ~n
    ~sink algo adversary_of =
  dispatch ?pool ?jobs
    (fun rng -> Doda_adversary.Duel.run ?knowledge ~max_steps ~n ~sink algo (adversary_of rng))
    (split_seeds ~replications ~seed)

let mean m =
  if Array.length m.samples = 0 then
    invalid_arg ("Experiment.mean: no successful runs for " ^ m.label);
  Doda_stats.Descriptive.mean m.samples

let summary m = Doda_stats.Descriptive.summarize m.samples

let success_rate m =
  let total = Array.length m.samples + m.failures in
  if total = 0 then 0.0 else float_of_int (Array.length m.samples) /. float_of_int total
