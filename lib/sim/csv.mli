(** Minimal CSV output for archiving experiment data. Fields containing
    commas, quotes or newlines are quoted per RFC 4180. *)

val escape : string -> string

val row_to_string : string list -> string

val mkdir_p : string -> unit
(** [mkdir_p dir] creates [dir] and any missing parents ([mkdir -p]).
    Existing directories — including ones appearing concurrently — are
    not an error. @raise Sys_error on genuine failures (permissions, a
    path component that is a file). *)

val write : string -> header:string list -> string list list -> unit
(** [write path ~header rows] writes a CSV file. *)

val append_row : out_channel -> string list -> unit
