type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf x =
  if Float.is_finite x then begin
    (* Shortest representation that round-trips and is valid JSON
       (avoid OCaml's trailing-dot "1." form). *)
    let s = Printf.sprintf "%.17g" x in
    let s =
      let shorter = Printf.sprintf "%.12g" x in
      if float_of_string shorter = x then shorter else s
    in
    Buffer.add_string buf s;
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s) then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> add_float buf x
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k v ->
          if k > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (name, v) ->
          if k > 0 then Buffer.add_char buf ',';
          add_escaped buf name;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  add buf v;
  Buffer.contents buf

let write path v =
  Csv.mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
