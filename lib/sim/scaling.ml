module Descriptive = Doda_stats.Descriptive
module Regression = Doda_stats.Regression

type point = { n : int; mean : float; std_error : float; success : float }

let point_of (m : Experiment.measurement) =
  (* A point where every replication hit its budget has no samples;
     report it as nan/0 rather than raising so capped sweeps
     (--max-steps) still print their table. *)
  let empty = Array.length m.samples = 0 in
  {
    n = m.n;
    mean = (if empty then Float.nan else Experiment.mean m);
    std_error = (if empty then Float.nan else Descriptive.std_error m.samples);
    success = Experiment.success_rate m;
  }

let points_of ms = List.map point_of ms

let exponent points =
  let data =
    Array.of_list (List.map (fun p -> (float_of_int p.n, p.mean)) points)
  in
  Regression.log_log data

let ratios ~predicted points =
  List.map (fun p -> (p.n, p.mean /. predicted p.n)) points

let ratio_stability ~predicted points =
  let data =
    Array.of_list (List.map (fun p -> (predicted p.n, p.mean)) points)
  in
  Regression.ratio_stability data
