(** A fixed-size pool of worker domains for embarrassingly parallel
    experiment replication (OCaml 5 [Domain]s; no external deps).

    A pool with [jobs] slots runs work on the calling domain plus
    [jobs - 1] persistent worker domains, so [create ~jobs:1] spawns no
    domains at all and {!map_array} degenerates to [Array.map] on the
    caller — handy for bit-for-bit comparisons against sequential code.

    {b Determinism.} The pool never touches random state. Callers that
    need reproducible parallel runs must derive every per-item random
    stream {e sequentially on the calling domain before dispatch} (see
    {!Experiment.replicate_par}); the pool then only changes {e where}
    each item executes, never {e what} it computes.

    {b Thread-safety invariant.} Work items run concurrently on
    independent domains and must not share mutable state. In this
    code base the main trap is {!Doda_dynamic.Schedule.t}: a schedule
    memoizes lazily (its [ensure]/[Vec] mutation is unsynchronised), so
    a schedule value must never be shared between work items — each
    replication must build its own schedule inside the worker, as the
    factory pattern of {!Experiment.run_schedule_factory} does. *)

type t
(** A running pool. Owned by the domain that created it; {!map_array}
    and {!shutdown} must be called from that domain only. *)

val create : jobs:int -> t
(** [create ~jobs] starts a pool with [jobs] execution slots
    ([jobs - 1] worker domains). @raise Invalid_argument if
    [jobs < 1]. *)

val jobs : t -> int
(** Number of execution slots (worker domains + the caller). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f arr] computes [Array.map f arr], distributing
    the items over the pool's slots. The calling domain participates.
    The result array is in input order regardless of completion order.
    If any [f arr.(i)] raises, the exception for the lowest such [i]
    is re-raised on the caller (with its backtrace) after all items
    finished or were abandoned. *)

val map_array_sharded :
  t ->
  make:(unit -> 's) ->
  merge:('s -> unit) ->
  ('s -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array_sharded pool ~make ~merge f arr] is {!map_array} with
    one piece of per-slot state: before the batch, [make ()] builds a
    shard per execution slot (caller and each worker), sequentially on
    the calling domain; during the batch, each item is computed as
    [f shard item] with the shard of whichever slot runs it; after the
    batch — including when an item raised — every shard is passed to
    [merge], in slot order, on the calling domain. A shard is only
    ever touched by one domain at a time, so shards need no locking.

    Aggregates folded by [merge] are deterministic across job counts
    exactly when the fold is insensitive to how items were distributed
    over shards — true for commutative, associative combines such as
    the integer sums and maxima of {!Doda_obs.Metrics.absorb}. *)

val pipeline : t -> Doda_dynamic.Schedule.t -> unit
(** [pipeline pool sched] enables producer/consumer pipelining on a
    chunked schedule ({!Doda_dynamic.Schedule.chunk_prefetch} wired to
    this pool's job queue): block decodes run as pool jobs, overlapped
    with the consumer draining the current block. A no-op when the
    pool has no worker domains (jobs = 1) or the schedule is not
    chunked, so callers can apply it unconditionally. Draw streams are
    unchanged — the generator still runs exactly once per index in
    order — so results stay bit-identical at any job count. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Idempotent. Any use of the pool
    after [shutdown] (other than [shutdown]) raises. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

val parse_jobs : string -> int option
(** [parse_jobs s] parses a job count: [Some j] for an integer
    [j >= 1], [None] otherwise. The [DODA_JOBS] syntax. *)

val default_jobs : unit -> int
(** The [DODA_JOBS] environment variable if set and valid, otherwise
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument on a set-but-invalid [DODA_JOBS]. *)
