(* DODA_SCRATCH redirection: CI and huge runs should not write bench
   CSVs, JSON archives or checkpoints into the repo tree. Relative
   output paths are rooted under $DODA_SCRATCH when it is set;
   absolute paths and unset environments pass through untouched. *)

let dir () =
  match Sys.getenv_opt "DODA_SCRATCH" with
  | Some d when String.length d > 0 -> Some d
  | Some _ | None -> None

let resolve path =
  match dir () with
  | Some d when Filename.is_relative path -> Filename.concat d path
  | Some _ | None -> path
