(** Named interaction workloads: one string syntax shared by the CLI,
    the sweep runner, and experiment configs.

    Syntax: [uniform] | [sink-biased:W] | [round-robin] | [waypoint] |
    [community:K:P] | [grid:R:C] | [markov:PON:POFF] | [t-interval:W] |
    [bounded-recurrent:B] | [trace:FILE]. *)

type t =
  | Uniform
  | Sink_biased of float
  | Round_robin
  | Waypoint
  | Community of int * float
  | Grid of int * int
  | Markov of float * float
  | T_interval of int
      (** class-constrained: every tumbling [W]-window is connected
          ({!Doda_dynamic.Tvg_class.gen_t_interval}) *)
  | Bounded_recurrent of int
      (** class-constrained: every footprint edge recurs within [B]
          steps ({!Doda_dynamic.Tvg_class.gen_bounded_recurrent}) *)
  | Trace_file of string

val parse : string -> (t, string) result
(** Human-oriented error messages on the [Error] side. *)

val to_string : t -> string

val syntax : string
(** The one-line syntax summary for help output. *)

val schedule :
  ?telemetry:Doda_obs.Instrument.t -> ?stream:bool ->
  t -> n:int -> sink:int -> seed:int -> Doda_dynamic.Schedule.t
(** Instantiate the workload. Generator-backed workloads are unbounded;
    [Trace_file] is finite and may enlarge [n] to fit the trace's node
    ids. [telemetry] (default disabled) wraps construction in a
    ["workload/<name>"] span.

    [stream] (default [false]) builds a {e chunked} schedule instead
    ([Schedule.of_fun_chunked], or a [Trace.stream]ed file): memory
    stays O(block) whatever the horizon, the draw stream — and thus
    every run result — is unchanged, but access is forward-only and
    meet-time knowledge is unavailable (fine for Gathering/Waiting).
    @raise Sys_error / Failure on unreadable or malformed trace
    files. *)

val is_finite : t -> bool
(** True only for [Trace_file]. *)
