let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string row = String.concat "," (List.map escape row)

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (* Another process may win the race between the existence check and
       the mkdir; EEXIST is then fine. *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let append_row oc row =
  output_string oc (row_to_string row);
  output_char oc '\n'

let write path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      append_row oc header;
      List.iter (append_row oc) rows)
