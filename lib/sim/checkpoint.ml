(* Resumable sweep snapshots: one append-only text file recording, per
   replication slot, the finished result's payload. Replication seed
   streams are recomputed on resume (Experiment.split_seeds is
   deterministic in slot order), so a slot index plus its payload is
   the complete progress state — no PRNG internals on disk.

   Format:  line 1   "doda-checkpoint 1 <key>"
            line 2+  "<slot> <payload>"
   A file whose key does not match is discarded and restarted: the
   key encodes the sweep's parameters, so a stale checkpoint can never
   leak results into a differently-shaped run. A torn final line (the
   process died mid-write) is dropped on load and its slot re-run.

   Records may come from pool worker domains; the channel and the
   completed-slot table are guarded by one mutex (stdlib Mutex works
   across domains). *)

type shared = {
  path : string;
  key : string;
  lock : Mutex.t;
  done_tbl : (int, string) Hashtbl.t;
  mutable oc : out_channel option;
}

type t = { sh : shared; base : int }

let magic = "doda-checkpoint 1"

let check_text what s =
  if String.exists (fun c -> c = '\n' || c = '\r') s then
    invalid_arg (Printf.sprintf "Checkpoint: %s must not contain newlines" what)

let parse_entry line =
  match String.index_opt line ' ' with
  | None -> None
  | Some sp -> (
      match int_of_string_opt (String.sub line 0 sp) with
      | Some slot when slot >= 0 ->
          Some (slot, String.sub line (sp + 1) (String.length line - sp - 1))
      | Some _ | None -> None)

(* Load a compatible existing file into [tbl]; false if absent or its
   key does not match (caller restarts the file). Only lines committed
   with their terminating newline count — a trailing fragment from a
   mid-write crash is invisible to [input_line], so the file is read
   raw and truncated at its last newline first. Loading stops at the
   first malformed line: everything after a torn write is
   unreliable. *)
let load path key tbl =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> In_channel.input_all ic)
      in
      let committed =
        match String.rindex_opt content '\n' with
        | None -> ""
        | Some i -> String.sub content 0 i
      in
      (match String.split_on_char '\n' committed with
      | header :: entries when header = magic ^ " " ^ key ->
          let rec absorb = function
            | [] -> ()
            | line :: rest -> (
                match parse_entry line with
                | Some (slot, payload) ->
                    Hashtbl.replace tbl slot payload;
                    absorb rest
                | None -> ())
          in
          absorb entries;
          true
      | _ -> false)

let create ~path ~key =
  check_text "key" key;
  let path = Scratch.resolve path in
  let dir = Filename.dirname path in
  if dir <> "." then Csv.mkdir_p dir;
  let done_tbl = Hashtbl.create 64 in
  let resumed = load path key done_tbl in
  let oc =
    if resumed then
      open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
    else begin
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
      output_string oc (magic ^ " " ^ key ^ "\n");
      flush oc;
      oc
    end
  in
  (* Re-append entries salvaged before a torn line, so the file is
     whole again after a resume even if nothing new is recorded. *)
  if resumed && Hashtbl.length done_tbl > 0 then begin
    let entries =
      List.sort compare (Hashtbl.fold (fun s p acc -> (s, p) :: acc) done_tbl [])
    in
    close_out oc;
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
    output_string oc (magic ^ " " ^ key ^ "\n");
    List.iter
      (fun (s, p) -> output_string oc (Printf.sprintf "%d %s\n" s p))
      entries;
    flush oc;
    { sh = { path; key; lock = Mutex.create (); done_tbl; oc = Some oc }; base = 0 }
  end
  else
    { sh = { path; key; lock = Mutex.create (); done_tbl; oc = Some oc }; base = 0 }

let path t = t.sh.path
let sub t ~base =
  if base < 0 then invalid_arg "Checkpoint.sub: negative base";
  { t with base = t.base + base }

let find t slot =
  Mutex.protect t.sh.lock (fun () ->
      Hashtbl.find_opt t.sh.done_tbl (t.base + slot))

let completed t =
  Mutex.protect t.sh.lock (fun () -> Hashtbl.length t.sh.done_tbl)

let record t slot payload =
  if slot < 0 then invalid_arg "Checkpoint.record: negative slot";
  check_text "payload" payload;
  let abs = t.base + slot in
  Mutex.protect t.sh.lock (fun () ->
      match t.sh.oc with
      | None -> invalid_arg "Checkpoint.record: checkpoint is closed"
      | Some oc ->
          output_string oc (Printf.sprintf "%d %s\n" abs payload);
          flush oc;
          Hashtbl.replace t.sh.done_tbl abs payload)

let close t =
  Mutex.protect t.sh.lock (fun () ->
      match t.sh.oc with
      | None -> ()
      | Some oc ->
          close_out_noerr oc;
          t.sh.oc <- None)
