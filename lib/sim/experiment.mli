(** Replicated measurements of algorithm runs.

    A measurement runs an algorithm several times against independently
    seeded schedules and collects the number of interactions to
    termination. The unit reported is "interactions processed until the
    final transmission, inclusive" — [duration + 1] — matching the
    paper's "terminates in [X] interactions".

    {b Parallelism and determinism.} Replications are embarrassingly
    parallel, and every function below that accepts [?pool]/[?jobs] can
    fan its replications out over a {!Pool} of domains. Results are
    {e bit-identical} to the sequential path regardless of job count:
    the per-replication PRNG streams are always split from the master
    {e sequentially, in replication order, on the calling domain},
    before any work is dispatched (see {!split_seeds}); workers receive
    ready-made independent streams and never touch shared random state.

    {b Thread-safety invariant.} A {!Doda_dynamic.Schedule.t} memoizes
    lazily and is not thread-safe, so a schedule must never be shared
    across replications running on different domains. The factory
    pattern of {!run_schedule_factory} enforces this by construction:
    each replication builds its own schedule from its own stream,
    inside the worker. Any [f] passed to {!replicate_par} must do the
    same. *)

type measurement = {
  label : string;
  n : int;  (** number of nodes *)
  samples : float array;  (** interactions to completion, terminated runs *)
  failures : int;  (** runs that did not terminate within their budget *)
}

val split_seeds : replications:int -> seed:int -> Doda_prng.Prng.t array
(** [split_seeds ~replications ~seed] is the array of independent
    streams that replication [0 .. replications-1] of [seed] receive,
    split in index order from the master. Both {!replicate} and
    {!replicate_par} consume exactly this array. *)

val replicate : replications:int -> seed:int -> (Doda_prng.Prng.t -> 'a) -> 'a array
(** [replicate ~replications ~seed f] calls [f] once per replication
    with independent split streams derived from [seed]. Sequential. *)

val replicate_par :
  ?pool:Pool.t -> ?jobs:int -> ?telemetry:Doda_obs.Instrument.t ->
  replications:int -> seed:int -> (Doda_prng.Prng.t -> 'a) -> 'a array
(** Parallel {!replicate}: same seeds, same results, any job count.
    [f] runs on worker domains and must not share mutable state across
    replications (build schedules inside [f]). Uses [pool] if given;
    otherwise a transient pool of [jobs] slots (default
    {!Pool.default_jobs}, i.e. [DODA_JOBS] or the recommended domain
    count). [~jobs:1] runs on the calling domain.

    [telemetry] (default {!Doda_obs.Instrument.disabled}) records one
    ["replicate"] span per replication. With telemetry enabled, each
    execution slot records into its own shard and the shards are
    folded back deterministically after the batch
    ({!Pool.map_array_sharded}), so aggregated counters are identical
    at any job count; disabled telemetry takes the exact
    uninstrumented code path. *)

val replicate_batched :
  ?pool:Pool.t -> ?jobs:int -> ?telemetry:Doda_obs.Instrument.t ->
  ?max_steps:int -> ?record:[ `All | `Count ] ->
  replications:int -> seed:int ->
  Doda_core.Algorithm.t -> Doda_dynamic.Schedule.t ->
  Doda_core.Engine.result array
(** [replicate_batched ~replications ~seed algo sched] runs
    [replications] lockstep replications of a batch-capable [algo]
    over one shared schedule. [record] defaults to [`Count]
    (measurement paths consume durations).

    {e Frozen} schedules have a shared read-only backing, so the
    replications fan out over the pool in bit-parallel batches of
    {!Doda_core.Batch_engine.word_bits} — each batch one pool task.
    {e Live and chunked} schedules mutate as they advance and cannot
    be shared across tasks: all replications run in one lockstep pass
    on the calling domain instead, and a [pool] (or [jobs >= 2])
    contributes {!Pool.pipeline} parallelism — a producer task decodes
    the next block of a chunked schedule while this consumer drains
    the current one. Memory stays O(block), never O(T): streamed
    replication suites at n >= 10^5 no longer need a frozen copy.

    Streams come from {!split_seeds} exactly like {!replicate_par}:
    replication [k] receives stream [k] whatever the batch partition,
    schedule form, or job count, so results are bit-identical at any
    [jobs] (for coin algorithms, the batch path draws from these
    per-replication streams — not from the master captured at
    algorithm construction, which the scalar [Engine.run] path
    splits).

    [telemetry] records one ["batch"] span per batch plus the
    [batch.runs] / [batch.decodes] / [batch.rep_steps] counters:
    [rep_steps / decodes] is the decode amortisation, and dividing
    further by {!Doda_core.Batch_engine.word_bits} gives batch
    occupancy. Chunked passes also fold in [stream.refills]
    ({!Doda_obs.Instrument.record_chunk_stats} — the deterministic
    counter only).

    @raise Invalid_argument if the algorithm has no batch rule (the
    message names the algorithm and the scalar fallback,
    {!replicate_par} with [Engine.run]), or if [max_steps] is missing
    for an unbounded schedule. *)

val of_results : label:string -> n:int -> Doda_core.Engine.result array -> measurement

val run_uniform :
  ?pool:Pool.t -> ?jobs:int -> ?telemetry:Doda_obs.Instrument.t ->
  ?replications:int -> ?seed:int -> ?sink:int -> ?max_steps:int ->
  n:int -> Doda_core.Algorithm.t -> measurement
(** [run_uniform ~n algo] measures [algo] against the uniform
    randomized adversary. Defaults: 20 replications, seed 42, sink 0,
    [max_steps = 200 * n^2 + 10_000] (an order of magnitude above the
    slowest expected algorithm, Waiting). Sequential unless
    [?pool]/[?jobs] is given; the measurement is identical either
    way. *)

val run_schedule_factory :
  ?pool:Pool.t -> ?jobs:int -> ?telemetry:Doda_obs.Instrument.t ->
  ?checkpoint:Checkpoint.t ->
  ?replications:int -> ?seed:int -> max_steps:int ->
  label:string -> n:int ->
  (Doda_prng.Prng.t -> Doda_dynamic.Schedule.t) ->
  Doda_core.Algorithm.t -> measurement
(** Generic form: a fresh schedule per replication (never shared across
    domains — see the thread-safety invariant above). Runs the engine
    with [~record:`Count]; only durations are kept.

    [telemetry] records ["replicate"] and ["schedule/build"] spans per
    replication and attaches {!Doda_obs.Instrument.engine_observers}
    ([engine.steps], [engine.transmissions], [engine.duration], ...)
    to every run, with the same determinism guarantee as
    {!replicate_par}. Samples and failures are unaffected by
    telemetry.

    [checkpoint] makes the sweep resumable: each finished
    replication's duration is recorded (and flushed) under its slot
    index, recorded slots are skipped on the next run, and re-run
    slots receive {e the same} pre-split streams — so interrupt +
    resume yields the measurement bit-identical to an uninterrupted
    run. Telemetry of skipped slots is not replayed (counters cover
    only the work actually performed this run). *)

val run_batched_factory :
  ?pool:Pool.t -> ?telemetry:Doda_obs.Instrument.t ->
  ?checkpoint:Checkpoint.t ->
  ?replications:int -> ?seed:int -> max_steps:int ->
  label:string -> n:int ->
  (Doda_prng.Prng.t -> Doda_dynamic.Schedule.t) ->
  Doda_core.Algorithm.t -> measurement
(** Lockstep dual of {!run_schedule_factory}: ONE schedule, built once
    by [factory] from a dedicated stream, with all replications run
    over it in a single bit-parallel {!Doda_core.Batch_engine.run_reps}
    pass on the calling domain. Semantically a different experiment —
    R lanes over one trace (the adversary-replay setting of the paper
    and the class-constrained workloads) versus R independent traces —
    which is why it is a separate entry point rather than a mode of
    the scalar sweep.

    Works on any schedule form the batch engine accepts; with a
    chunked factory the sweep streams in O(block) memory, and [pool]
    adds a pipelined producer ({!Pool.pipeline}). Results are
    bit-identical at any job count: the pool only moves {e where}
    block decodes happen, never what they produce.

    Seed discipline: the master's first split is the schedule stream,
    the next [replications] splits are the per-slot streams, all drawn
    in slot order on the calling domain. [checkpoint] resumes
    bit-identically: cached slots are skipped and the remaining lanes
    receive exactly the streams an uninterrupted run would have
    (streams are independent across slots, so running a subset of
    lanes does not perturb the rest).

    @raise Invalid_argument as {!replicate_batched}. *)

val replicate_duels :
  ?pool:Pool.t -> ?jobs:int -> ?knowledge:Doda_core.Knowledge.t ->
  replications:int -> seed:int -> max_steps:int -> n:int -> sink:int ->
  Doda_core.Algorithm.t ->
  (Doda_prng.Prng.t -> Doda_adversary.Adversary.t) ->
  (Doda_core.Engine.result * Doda_dynamic.Sequence.t) array
(** Replicated {!Doda_adversary.Duel.run} comparisons against adaptive
    adversaries, one independently seeded adversary per replication
    (built inside the worker from its split stream). Same determinism
    guarantee as {!replicate_par}. *)

val mean : measurement -> float
(** Mean of the samples. @raise Invalid_argument if every run failed. *)

val summary : measurement -> Doda_stats.Descriptive.summary

val success_rate : measurement -> float
