module Engine = Doda_core.Engine
module Run_log = Doda_core.Run_log

let render ?(width = 64) ~n ~sink (result : Engine.result) =
  let horizon = Stdlib.max 1 result.steps in
  let bucket t = Stdlib.min (width - 1) (t * width / horizon) in
  let rows = Array.init n (fun _ -> Bytes.make width '.') in
  (* Blank out each sender's row after its transmission; mark the
     receiving buckets. *)
  Run_log.iter
    (fun ~time ~sender ~receiver ->
      let b = bucket time in
      let sender_row = rows.(sender) in
      Bytes.set sender_row b '>';
      for i = b + 1 to width - 1 do
        Bytes.set sender_row i ' '
      done;
      let receiver_row = rows.(receiver) in
      if Bytes.get receiver_row b = '.' then
        Bytes.set receiver_row b (if receiver = sink then '#' else '+'))
    result.log;
  let buf = Buffer.create (n * (width + 16)) in
  Buffer.add_string buf
    (Printf.sprintf "time 0 .. %d (one column ~ %d interactions)\n" horizon
       (Stdlib.max 1 (horizon / width)));
  Array.iteri
    (fun v row ->
      let tag = if v = sink then "sink" else Printf.sprintf "%4d" v in
      Buffer.add_string buf (Printf.sprintf "%s |%s|\n" tag (Bytes.to_string row)))
    rows;
  Buffer.contents buf

let transmissions_table (result : Engine.result) =
  let buf = Buffer.create 256 in
  Run_log.iter
    (fun ~time ~sender ~receiver ->
      Buffer.add_string buf (Printf.sprintf "t=%-6d %d -> %d\n" time sender receiver))
    result.log;
  Buffer.contents buf
