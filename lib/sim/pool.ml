(* A hand-rolled fixed-size domain pool: a mutex/condition-protected
   queue of thunks, one persistent worker domain per extra slot. The
   stdlib has everything needed (Domain, Mutex, Condition, Atomic);
   domainslib is deliberately not a dependency. *)

type t = {
  lock : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  slots : int;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.work_available pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock (* closed: exit *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    (* Jobs trap their own exceptions (map_array wraps every item in
       [Result]); a raise here would only mean a bug in the pool. *)
    job ();
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
      slots = jobs;
    }
  in
  pool.workers <-
    Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.slots

let submit pool job =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job pool.queue;
  Condition.signal pool.work_available;
  Mutex.unlock pool.lock

(* The shared batch core. [f] additionally receives the participating
   slot's index — caller = 0, worker [k] = [k + 1] — which is what
   per-slot state such as telemetry shards hangs off. *)
let map_array_slotted pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if Array.length pool.workers = 0 then Array.map (f 0) arr
  else begin
    if pool.closed then invalid_arg "Pool.map_array: pool is shut down";
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    let done_count = ref 0 in
    (* Each participant pulls the next unclaimed index until none are
       left; item results land at their input index, so the output
       order is independent of scheduling. *)
    let work slot =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (f slot arr.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          Mutex.lock finished;
          incr done_count;
          if !done_count = n then Condition.signal all_done;
          Mutex.unlock finished;
          loop ()
        end
      in
      loop ()
    in
    (* One helper job per worker; late-arriving helpers (workers still
       busy with a previous batch) find the index counter exhausted and
       return immediately. *)
    Array.iteri (fun k _ -> submit pool (fun () -> work (k + 1))) pool.workers;
    work 0;
    Mutex.lock finished;
    while !done_count < n do
      Condition.wait all_done finished
    done;
    Mutex.unlock finished;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_array pool f arr = map_array_slotted pool (fun _slot x -> f x) arr

let map_array_sharded pool ~make ~merge f arr =
  if Array.length arr = 0 then [||]
  else begin
    let slots =
      if Array.length pool.workers = 0 then 1
      else Array.length pool.workers + 1
    in
    (* Shards are created before the batch and merged after it, both in
       slot order on the calling domain. Merging must therefore be
       insensitive to how items were distributed over slots (integer
       sums and maxima are) for the aggregate to be deterministic. *)
    let shards = Array.init slots (fun _ -> make ()) in
    let outcome =
      try Ok (map_array_slotted pool (fun slot x -> f shards.(slot) x) arr)
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    (* Merge even when an item raised: the batch has fully drained by
       then, and partial telemetry is better than none. *)
    Array.iter merge shards;
    match outcome with
    | Ok r -> r
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end

(* Pipeline a chunked schedule's block decodes through the pool: each
   refill is queued as a producer job that fills a spare buffer while
   the consumer drains the current block. With no workers (jobs = 1)
   there is nobody to overlap with, so leave the schedule on the
   synchronous refill path — this also keeps jobs=1 runs exactly as
   allocated before. Safe on any schedule form: non-chunked is a
   no-op. *)
let pipeline pool sched =
  if Array.length pool.workers > 0 && Doda_dynamic.Schedule.is_chunked sched
  then
    Doda_dynamic.Schedule.chunk_prefetch sched ~submit:(submit pool)
      ~now:(fun () -> Int64.to_int (Monotonic_clock.now ()))

let shutdown pool =
  Mutex.lock pool.lock;
  let was_closed = pool.closed in
  pool.closed <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  if not was_closed then Array.iter Domain.join pool.workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some j when j >= 1 -> Some j
  | _ -> None

let default_jobs () =
  match Sys.getenv_opt "DODA_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match parse_jobs s with
      | Some j -> j
      | None ->
          invalid_arg
            (Printf.sprintf "DODA_JOBS must be a positive integer, got %S" s))
