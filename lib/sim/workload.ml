module Prng = Doda_prng.Prng
module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Generators = Doda_dynamic.Generators
module Mobility = Doda_dynamic.Mobility
module Trace = Doda_dynamic.Trace

type t =
  | Uniform
  | Sink_biased of float
  | Round_robin
  | Waypoint
  | Community of int * float
  | Grid of int * int
  | Markov of float * float
  | T_interval of int
  | Bounded_recurrent of int
  | Trace_file of string

let syntax =
  "uniform | sink-biased:W | round-robin | waypoint | community:K:P | grid:R:C | \
   markov:PON:POFF | t-interval:W | bounded-recurrent:B | trace:FILE"

let parse s =
  match String.split_on_char ':' s with
  | [ "uniform" ] -> Ok Uniform
  | [ "sink-biased"; w ] -> (
      match float_of_string_opt w with
      | Some w when w > 0.0 -> Ok (Sink_biased w)
      | _ -> Error "sink-biased needs a positive weight, e.g. sink-biased:5.0")
  | [ "round-robin" ] -> Ok Round_robin
  | [ "waypoint" ] -> Ok Waypoint
  | [ "community"; k; p ] -> (
      match (int_of_string_opt k, float_of_string_opt p) with
      | Some k, Some p when k >= 1 && p >= 0.0 && p <= 1.0 -> Ok (Community (k, p))
      | _ -> Error "community needs groups and p_intra, e.g. community:4:0.8")
  | [ "grid"; r; c ] -> (
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some r, Some c when r >= 1 && c >= 1 -> Ok (Grid (r, c))
      | _ -> Error "grid needs rows and cols, e.g. grid:5:5")
  | [ "markov"; p_on; p_off ] -> (
      match (float_of_string_opt p_on, float_of_string_opt p_off) with
      | Some p_on, Some p_off
        when p_on > 0.0 && p_on <= 1.0 && p_off > 0.0 && p_off <= 1.0 ->
          Ok (Markov (p_on, p_off))
      | _ -> Error "markov needs two probabilities in (0,1], e.g. markov:0.01:0.2")
  | [ "t-interval"; w ] -> (
      match int_of_string_opt w with
      | Some w when w >= 1 -> Ok (T_interval w)
      | _ -> Error "t-interval needs a window >= 1, e.g. t-interval:32")
  | [ "bounded-recurrent"; b ] -> (
      match int_of_string_opt b with
      | Some b when b >= 1 -> Ok (Bounded_recurrent b)
      | _ -> Error "bounded-recurrent needs a bound >= 1, e.g. bounded-recurrent:64")
  | "trace" :: rest when rest <> [] -> Ok (Trace_file (String.concat ":" rest))
  | _ -> Error ("unknown workload; syntax: " ^ syntax)

let to_string = function
  | Uniform -> "uniform"
  | Sink_biased w -> Printf.sprintf "sink-biased:%g" w
  | Round_robin -> "round-robin"
  | Waypoint -> "waypoint"
  | Community (k, p) -> Printf.sprintf "community:%d:%g" k p
  | Grid (r, c) -> Printf.sprintf "grid:%d:%d" r c
  | Markov (p_on, p_off) -> Printf.sprintf "markov:%g:%g" p_on p_off
  | T_interval w -> Printf.sprintf "t-interval:%d" w
  | Bounded_recurrent b -> Printf.sprintf "bounded-recurrent:%d" b
  | Trace_file f -> "trace:" ^ f

let is_finite = function Trace_file _ -> true | _ -> false

let build ?(stream = false) t ~n ~sink ~seed =
  let rng = Prng.create seed in
  (* Streaming keeps the draw stream: the same generator function
     backs an [of_fun_chunked] schedule instead of an [of_fun] one, so
     a run differs only in memory behaviour, never in results. *)
  let wrap gen =
    if stream then Schedule.of_fun_chunked ~n ~sink gen
    else Schedule.of_fun ~n ~sink gen
  in
  match t with
  | Uniform -> wrap (Generators.uniform rng ~n)
  | Sink_biased w ->
      let weights = Array.init n (fun v -> if v = sink then w else 1.0) in
      wrap (Generators.weighted_nodes rng ~weights)
  | Round_robin -> wrap (Generators.round_robin ~n)
  | Waypoint -> wrap (Mobility.random_waypoint rng ~n)
  | Community (k, p) -> wrap (Mobility.community rng ~n ~communities:k ~p_intra:p)
  | Grid (r, c) -> wrap (Mobility.grid_walkers rng ~n ~rows:r ~cols:c)
  | Markov (p_on, p_off) -> wrap (Generators.markov_edges rng ~n ~p_on ~p_off)
  | T_interval w -> wrap (Doda_dynamic.Tvg_class.gen_t_interval rng ~n ~window:w)
  | Bounded_recurrent b ->
      wrap (Doda_dynamic.Tvg_class.gen_bounded_recurrent rng ~n ~bound:b)
  | Trace_file path ->
      if stream then begin
        let gen, length, max_node = Trace.stream path in
        Schedule.of_fun_chunked ~length ~n:(Stdlib.max n (max_node + 1)) ~sink
          gen
      end
      else
        let s = Trace.load path in
        Schedule.of_sequence ~n:(Stdlib.max n (Sequence.max_node s + 1)) ~sink s

let schedule ?(telemetry = Doda_obs.Instrument.disabled) ?stream t ~n ~sink
    ~seed =
  (* Only build the span name when someone is listening. *)
  if Doda_obs.Instrument.enabled telemetry then
    Doda_obs.Instrument.with_span telemetry
      ("workload/" ^ to_string t)
      (fun () -> build ?stream t ~n ~sink ~seed)
  else build ?stream t ~n ~sink ~seed
