(** Minimal JSON output, for machine-readable benchmark archives
    ([BENCH_results.json]). Writing only — no parser, no dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace beyond newlines
    between top-level object entries is guaranteed; output is valid
    JSON, UTF-8 passed through, control characters escaped). *)

val write : string -> t -> unit
(** [write path v] writes [to_string v] (plus a trailing newline) to
    [path], creating parent directories as needed. *)
