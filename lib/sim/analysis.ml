module Engine = Doda_core.Engine
module Run_log = Doda_core.Run_log

let aggregation_parent ~n (r : Engine.result) =
  Array.copy (Run_log.parents r.log ~n)

let datum_route ~n ~sink (r : Engine.result) v =
  let parent = Run_log.parents r.log ~n in
  let fire = Run_log.fire_times r.log ~n in
  let rec walk carrier acc =
    if carrier = sink || parent.(carrier) < 0 then List.rev acc
    else
      let next = parent.(carrier) in
      walk next ((fire.(carrier), next) :: acc)
  in
  if v = sink then [] else walk v []

(* Delivery time of [v]'s datum: once [v] transmits to its parent [p],
   the datum travels inside [p]'s aggregate, so it reaches the sink
   exactly when [p]'s does. Memoising that recurrence makes the whole
   array one O(n) pass over the cached parent/fire arrays instead of
   one chain walk per node. *)
let delivery_times ~n ~sink r =
  let parent = Run_log.parents ~n r.Engine.log in
  let fire = Run_log.fire_times ~n r.Engine.log in
  let memo = Array.make n (-2) (* -2 unknown, -1 undelivered, >= 0 time *) in
  let rec solve v =
    if memo.(v) <> -2 then memo.(v)
    else begin
      let d =
        if v = sink then -1
        else
          let p = parent.(v) in
          if p < 0 then -1 else if p = sink then fire.(v) else solve p
      in
      memo.(v) <- d;
      d
    end
  in
  Array.init n (fun v ->
      if v = sink then None
      else match solve v with -1 -> None | t -> Some t)

let hop_counts ~n ~sink r =
  let parent = Run_log.parents ~n r.Engine.log in
  let memo = Array.make n (-1) in
  let rec solve v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      let h =
        if v = sink then 0
        else
          let p = parent.(v) in
          if p < 0 then 0 else 1 + solve p
      in
      memo.(v) <- h;
      h
    end
  in
  Array.init n solve

let mean_delivery_time ~n ~sink r =
  let times =
    Array.to_list (delivery_times ~n ~sink r) |> List.filter_map Fun.id
  in
  match times with
  | [] -> None
  | _ ->
      let total = List.fold_left ( + ) 0 times in
      Some (float_of_int total /. float_of_int (List.length times))

let max_hops ~n ~sink r =
  Array.fold_left Stdlib.max 0 (hop_counts ~n ~sink r)

(* ------------------------------------------------------------------ *)
(* Dissemination (gossip) counterparts. A {!Doda_core.Gossip} log
   records every informative transfer and knowledge changes only on
   those, so replaying the log over bit-planes reconstructs each
   node's knowledge history exactly. *)

let word_bits = 63
let mask_of k = if k >= word_bits then -1 else (1 lsl k) - 1

let coverage_times ~n ~problem (r : Doda_core.Gossip.result) =
  let k = Doda_core.Problem.tokens problem in
  let w = (k + word_bits - 1) / word_bits in
  let planes = Array.make (n * w) 0 in
  for j = 0 to k - 1 do
    let home = Doda_core.Problem.token_home problem ~n ~token:j in
    planes.((home * w) + (j / word_bits)) <-
      planes.((home * w) + (j / word_bits)) lor (1 lsl (j mod word_bits))
  done;
  let full =
    Array.init w (fun word ->
        mask_of (Stdlib.min word_bits (k - (word * word_bits))))
  in
  let is_full v =
    let ok = ref true in
    for word = 0 to w - 1 do
      if planes.((v * w) + word) <> full.(word) then ok := false
    done;
    !ok
  in
  let times = Array.make n None in
  for v = 0 to n - 1 do
    (* Complete before any interaction: time -1, matching
       [Temporal.earliest_arrival]'s convention for the source. *)
    if is_full v then times.(v) <- Some (-1)
  done;
  Run_log.iter
    (fun ~time ~sender ~receiver ->
      if sender >= 0 && sender < n && receiver >= 0 && receiver < n then begin
        for word = 0 to w - 1 do
          planes.((receiver * w) + word) <-
            planes.((receiver * w) + word) lor planes.((sender * w) + word)
        done;
        if times.(receiver) = None && is_full receiver then
          times.(receiver) <- Some time
      end)
    r.Doda_core.Gossip.log;
  times

let mean_coverage_time ~n ~problem r =
  let times = coverage_times ~n ~problem r in
  let total = ref 0 and count = ref 0 in
  Array.iter
    (function
      | Some t when t >= 0 ->
          total := !total + t;
          incr count
      | Some _ | None -> ())
    times;
  if !count = 0 then None
  else Some (float_of_int !total /. float_of_int !count)
