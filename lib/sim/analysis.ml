module Engine = Doda_core.Engine
module Run_log = Doda_core.Run_log

let aggregation_parent ~n (r : Engine.result) =
  Array.copy (Run_log.parents r.log ~n)

let datum_route ~n ~sink (r : Engine.result) v =
  let parent = Run_log.parents r.log ~n in
  let fire = Run_log.fire_times r.log ~n in
  let rec walk carrier acc =
    if carrier = sink || parent.(carrier) < 0 then List.rev acc
    else
      let next = parent.(carrier) in
      walk next ((fire.(carrier), next) :: acc)
  in
  if v = sink then [] else walk v []

(* Delivery time of [v]'s datum: once [v] transmits to its parent [p],
   the datum travels inside [p]'s aggregate, so it reaches the sink
   exactly when [p]'s does. Memoising that recurrence makes the whole
   array one O(n) pass over the cached parent/fire arrays instead of
   one chain walk per node. *)
let delivery_times ~n ~sink r =
  let parent = Run_log.parents ~n r.Engine.log in
  let fire = Run_log.fire_times ~n r.Engine.log in
  let memo = Array.make n (-2) (* -2 unknown, -1 undelivered, >= 0 time *) in
  let rec solve v =
    if memo.(v) <> -2 then memo.(v)
    else begin
      let d =
        if v = sink then -1
        else
          let p = parent.(v) in
          if p < 0 then -1 else if p = sink then fire.(v) else solve p
      in
      memo.(v) <- d;
      d
    end
  in
  Array.init n (fun v ->
      if v = sink then None
      else match solve v with -1 -> None | t -> Some t)

let hop_counts ~n ~sink r =
  let parent = Run_log.parents ~n r.Engine.log in
  let memo = Array.make n (-1) in
  let rec solve v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      let h =
        if v = sink then 0
        else
          let p = parent.(v) in
          if p < 0 then 0 else 1 + solve p
      in
      memo.(v) <- h;
      h
    end
  in
  Array.init n solve

let mean_delivery_time ~n ~sink r =
  let times =
    Array.to_list (delivery_times ~n ~sink r) |> List.filter_map Fun.id
  in
  match times with
  | [] -> None
  | _ ->
      let total = List.fold_left ( + ) 0 times in
      Some (float_of_int total /. float_of_int (List.length times))

let max_hops ~n ~sink r =
  Array.fold_left Stdlib.max 0 (hop_counts ~n ~sink r)
