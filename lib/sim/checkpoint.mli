(** Resumable sweep snapshots: an append-only, crash-tolerant record
    of finished replication slots, so a huge run survives interruption
    and resumes {e bit-identically}.

    Per-replication PRNG streams are never stored: they are recomputed
    on resume by {!Experiment.split_seeds}, which is deterministic in
    slot order. A checkpoint therefore only needs each finished slot's
    index and result payload; unfinished slots simply re-run from
    their recomputed stream, producing the same draws as the
    interrupted attempt would have.

    The file is keyed: {!create} compares the stored key against the
    caller's (which should encode every parameter shaping the sweep)
    and silently restarts the file on mismatch, so stale checkpoints
    cannot leak results into a differently-shaped run. A torn final
    line from a mid-write crash is dropped and its slot re-run.

    Handles are safe to use from pool worker domains: the channel and
    the completed-slot table are mutex-guarded, and every record is
    flushed before the slot is considered done. *)

type t

val create : path:string -> key:string -> t
(** Open-or-resume the checkpoint at [path] ({!Scratch.resolve}d, so
    relative paths honour [DODA_SCRATCH]; parent directories are
    created). An existing file with a matching [key] is loaded and
    appended to; anything else is restarted empty.
    @raise Invalid_argument if [key] contains a newline. *)

val path : t -> string
(** The resolved on-disk path. *)

val sub : t -> base:int -> t
(** A view whose slot [k] is the parent's slot [base + k] — same
    file, same lock. Lets one checkpoint span a multi-point sweep:
    give point [i] of a sweep with [r] replications the view
    [sub cp ~base:(i * r)]. *)

val find : t -> int -> string option
(** The recorded payload of a finished slot, if any. *)

val record : t -> int -> string -> unit
(** [record t slot payload] appends and flushes the slot's result.
    @raise Invalid_argument on a negative slot, a payload containing a
    newline, or a closed checkpoint. *)

val completed : t -> int
(** Finished slots in the whole file (not restricted to a {!sub}
    view). *)

val close : t -> unit
(** Close the underlying channel (idempotent). Views from {!sub}
    share the channel: closing any closes all. *)
