(** Structural analysis of a finished execution.

    The transmission log of a run induces an {e aggregation forest}:
    node [v]'s datum moves to [fire_to(v)] when [v] transmits, so
    following transmissions forward traces the route of each original
    datum. These functions compute per-datum routes, delivery times and
    hop counts — the latency metrics a deployment would care about
    beyond the paper's single "termination time" figure. *)

val aggregation_parent : n:int -> Doda_core.Engine.result -> int array
(** Entry [v] is the receiver of [v]'s transmission, or [-1] if [v]
    never transmitted (the sink never does). *)

val datum_route : n:int -> sink:int -> Doda_core.Engine.result -> int -> (int * int) list
(** [datum_route ~n ~sink r v] is the list of [(time, carrier)] hops
    of [v]'s original datum: each transmission that moved it, ending at
    the sink if it arrived. Empty for the sink's own datum and for data
    that never moved. *)

val delivery_times : n:int -> sink:int -> Doda_core.Engine.result -> int option array
(** Entry [v] is the time at which [v]'s original datum reached the
    sink, or [None] if it did not (including [v = sink], whose datum is
    there from the start but has no arrival event). *)

val hop_counts : n:int -> sink:int -> Doda_core.Engine.result -> int array
(** Number of transmissions each original datum participated in
    (0 for the sink's and for stranded data that never moved). *)

val mean_delivery_time : n:int -> sink:int -> Doda_core.Engine.result -> float option
(** Mean of the delivered data's arrival times; [None] when nothing
    was delivered. *)

val max_hops : n:int -> sink:int -> Doda_core.Engine.result -> int
(** Deepest aggregation chain. *)

(** {1 Dissemination metrics}

    Gossip counterparts of the delivery metrics: a {!Doda_core.Gossip}
    log records every informative transfer, and knowledge changes only
    on those, so the per-node knowledge history is reconstructed by
    replay. *)

val coverage_times :
  n:int -> problem:Doda_core.Problem.t -> Doda_core.Gossip.result -> int option array
(** Entry [v] is the time at which node [v] first knew all [k] tokens:
    [Some (-1)] if complete before any interaction (the
    {!Doda_dynamic.Temporal.earliest_arrival} convention), [None] if
    never complete. @raise Invalid_argument if [problem] is not
    [Dissemination]. *)

val mean_coverage_time :
  n:int -> problem:Doda_core.Problem.t -> Doda_core.Gossip.result -> float option
(** Mean completion time over nodes completed by a transfer (initially
    complete nodes carry no event and are excluded); [None] when no
    node completed that way. *)
