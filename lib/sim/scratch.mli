(** [DODA_SCRATCH] output redirection, so CI and huge runs keep
    generated artifacts (bench CSV directories, JSON archives,
    checkpoints) out of the repo tree. *)

val dir : unit -> string option
(** The scratch root: [$DODA_SCRATCH] when set and non-empty. *)

val resolve : string -> string
(** [resolve path] roots a {e relative} [path] under the scratch dir
    when one is configured; absolute paths, and every path when
    [DODA_SCRATCH] is unset, are returned unchanged. *)
