type t = {
  gen : Xoshiro256ss.t;
  seeder : Splitmix64.t;
  (* One-slot memo of the rejection limit for the last non-power-of-two
     bound. Bulk consumers (schedule materialisation, batch
     replication) draw millions of times at one bound, and the limit is
     a pure function of the bound, so caching it removes one division
     per draw without touching the draw stream. *)
  mutable memo_bound : int;
  mutable memo_limit : int;
}

let create64 seed =
  {
    gen = Xoshiro256ss.create seed;
    seeder = Splitmix64.create (Int64.lognot seed);
    memo_bound = 0;
    memo_limit = 0;
  }

let create seed = create64 (Int64.of_int seed)

let split g = create64 (Splitmix64.split g.seeder)

let split_n g k =
  if k < 0 then invalid_arg "Prng.split_n: negative count";
  Array.init k (fun _ -> split g)

let copy g =
  {
    gen = Xoshiro256ss.copy g.gen;
    seeder = Splitmix64.copy g.seeder;
    memo_bound = g.memo_bound;
    memo_limit = g.memo_limit;
  }

let bits64 g = Xoshiro256ss.next g.gen

(* Top 62 bits as a nonnegative OCaml int, via the unboxed fused
   path. *)
let bits g = Xoshiro256ss.next_bits g.gen ~drop:2

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits g land (bound - 1)
  else begin
    (* Rejection sampling over the largest multiple of [bound] that
       fits in 62 bits, to avoid modulo bias. *)
    let limit =
      if g.memo_bound = bound then g.memo_limit
      else begin
        let max_int62 = (1 lsl 62) - 1 in
        let l = max_int62 - (max_int62 mod bound) in
        g.memo_bound <- bound;
        g.memo_limit <- l;
        l
      end
    in
    let rec draw () =
      let r = bits g in
      if r < limit then r mod bound else draw ()
    in
    draw ()
  end

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits mapped to [0, 1), scaled. *)
  let r = Xoshiro256ss.next_bits g.gen ~drop:11 in
  float_of_int r /. 9007199254740992.0 *. bound

let bool g = Int64.(shift_right_logical (bits64 g) 63) = 1L

let bernoulli g p = float g 1.0 < p

let exponential g lambda =
  if lambda <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float g 1.0 in
  -.log u /. lambda

let geometric g p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float g 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let pair g n =
  if n < 2 then invalid_arg "Prng.pair: need at least two elements";
  let a = int g n in
  let b = int g (n - 1) in
  let b = if b >= a then b + 1 else b in
  if a < b then (a, b) else (b, a)

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let weighted_index g w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Prng.weighted_index: weights sum to zero";
  let target = float g total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher-Yates over an index array. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in g i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

module Alias = struct
  type dist = { prob : float array; alias : int array }

  let create w =
    let n = Array.length w in
    if n = 0 then invalid_arg "Prng.Alias.create: empty weights";
    let total = Array.fold_left ( +. ) 0.0 w in
    if total <= 0.0 || Array.exists (fun x -> x < 0.0) w then
      invalid_arg "Prng.Alias.create: weights must be nonnegative, not all zero";
    let scaled = Array.map (fun x -> x *. float_of_int n /. total) w in
    let prob = Array.make n 0.0 and alias = Array.make n 0 in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri
      (fun i p -> Queue.push i (if p < 1.0 then small else large))
      scaled;
    while not (Queue.is_empty small) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      Queue.push l (if scaled.(l) < 1.0 then small else large)
    done;
    let flush q = Queue.iter (fun i -> prob.(i) <- 1.0) q in
    flush small;
    flush large;
    { prob; alias }

  let sample g d =
    let n = Array.length d.prob in
    let i = int g n in
    if float g 1.0 < d.prob.(i) then i else d.alias.(i)

  let size d = Array.length d.prob
end
