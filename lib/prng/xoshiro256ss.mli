(** xoshiro256** 1.0 (Blackman & Vigna, 2018).

    The workhorse generator of the library: 256 bits of state, period
    [2^256 - 1], excellent statistical quality and very fast. All
    randomness in simulations flows through this generator via
    {!Prng}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] into a full 256-bit state using
    SplitMix64, as recommended by the authors. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** [of_state (s0, s1, s2, s3)] uses the given words directly. The
    state must not be all-zero. @raise Invalid_argument otherwise. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64-bit output. *)

val next_bits : t -> drop:int -> int
(** [next_bits g ~drop] is
    [Int64.to_int (Int64.shift_right_logical (next g) drop)], fused so
    the 64-bit word is never boxed; the allocation-free path for every
    integer and float draw in {!Prng}. [drop] must be at least 2 for
    the result to fit an OCaml int. *)

val jump : t -> unit
(** [jump g] advances [g] by [2^128] steps; used to carve
    non-overlapping substreams out of one seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same state. *)
