(* The four 64-bit state words live bit-cast in a flat float array.
   Float-array loads and stores move unboxed words without the write
   barrier, and [Int64.bits_of_float] / [float_of_bits] are free
   register moves, so one [next_bits] call — load four words, a dozen
   logical ops, store four words — allocates nothing. With the obvious
   representation (a record of four mutable [int64] fields) every state
   store allocated a fresh box and ran [caml_modify], and the PRNG
   dominated the run time of every trace generator built on it. *)

type t = float array

let[@inline] rotl x k =
  Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let of_words s0 s1 s2 s3 =
  [|
    Int64.float_of_bits s0; Int64.float_of_bits s1;
    Int64.float_of_bits s2; Int64.float_of_bits s3;
  |]

(* s3 down to s0: the state used to be built as a record literal whose
   fields evaluate right to left, so the first SplitMix64 draw landed
   in s3. Keep that order — every committed benchmark table depends on
   the seeded stream. *)
let create seed =
  let sm = Splitmix64.create seed in
  let s3 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s0 = Splitmix64.next sm in
  of_words s0 s1 s2 s3

let of_state (s0, s1, s2, s3) =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Xoshiro256ss.of_state: all-zero state";
  of_words s0 s1 s2 s3

let copy = Array.copy

(* One step of the xoshiro256** update, shared by [next] and
   [next_bits]; kept monomorphic and local so both specialise to
   straight-line unboxed code. *)
let[@inline always] step (g : t) =
  let s0 = Int64.bits_of_float (Array.unsafe_get g 0) in
  let s1 = Int64.bits_of_float (Array.unsafe_get g 1) in
  let s2 = Int64.bits_of_float (Array.unsafe_get g 2) in
  let s3 = Int64.bits_of_float (Array.unsafe_get g 3) in
  let result = Int64.mul (rotl (Int64.mul s1 5L) 7) 9L in
  let t = Int64.shift_left s1 17 in
  let s2 = Int64.logxor s2 s0 in
  let s3 = Int64.logxor s3 s1 in
  let s1 = Int64.logxor s1 s2 in
  let s0 = Int64.logxor s0 s3 in
  let s2 = Int64.logxor s2 t in
  let s3 = rotl s3 45 in
  Array.unsafe_set g 0 (Int64.float_of_bits s0);
  Array.unsafe_set g 1 (Int64.float_of_bits s1);
  Array.unsafe_set g 2 (Int64.float_of_bits s2);
  Array.unsafe_set g 3 (Int64.float_of_bits s3);
  result

let next g = step g

let next_bits g ~drop = Int64.to_int (Int64.shift_right_logical (step g) drop)

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump g =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  let word i = Int64.bits_of_float (Array.unsafe_get g i) in
  Array.iter
    (fun w ->
      for b = 0 to 63 do
        if Int64.(logand w (shift_left 1L b)) <> 0L then begin
          s0 := Int64.logxor !s0 (word 0);
          s1 := Int64.logxor !s1 (word 1);
          s2 := Int64.logxor !s2 (word 2);
          s3 := Int64.logxor !s3 (word 3)
        end;
        ignore (next g)
      done)
    jump_table;
  Array.unsafe_set g 0 (Int64.float_of_bits !s0);
  Array.unsafe_set g 1 (Int64.float_of_bits !s1);
  Array.unsafe_set g 2 (Int64.float_of_bits !s2);
  Array.unsafe_set g 3 (Int64.float_of_bits !s3)
