(** High-level pseudo-random interface used by the whole library.

    Every simulation takes an explicit [Prng.t]; there is no hidden
    global state, so any run is reproducible from its seed, and
    replications use {!split} to obtain decorrelated streams. *)

type t
(** A mutable random stream (xoshiro256** underneath). *)

val create : int -> t
(** [create seed] builds a stream from an integer seed. *)

val create64 : int64 -> t
(** [create64 seed] builds a stream from a 64-bit seed. *)

val split : t -> t
(** [split g] derives an independent child stream and advances [g].
    Splitting repeatedly yields decorrelated streams; use one per
    replication of an experiment. *)

val split_n : t -> int -> t array
(** [split_n g k] is [k] independent child streams, split from [g] in
    index order — entry [i] is what the [i+1]-th call to {!split}
    would have returned. The batch replication path hands each
    replication of a lockstep batch its slice of this array, so batch
    and scalar replications receive bit-identical streams.
    @raise Invalid_argument on a negative count. *)

val copy : t -> t
(** [copy g] duplicates the current state. *)

val bits64 : t -> int64
(** [bits64 g] is 64 uniformly random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Uses rejection sampling,
    hence exactly uniform. @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)], with 53 bits of
    precision. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential g lambda] samples an exponential of rate [lambda]. *)

val geometric : t -> float -> int
(** [geometric g p] is the number of failures before the first success
    of a Bernoulli([p]) sequence; [p] must lie in (0, 1]. *)

val pair : t -> int -> int * int
(** [pair g n] is an unordered pair of distinct values drawn uniformly
    from the [n * (n-1) / 2] pairs over [\[0, n)]; the result is
    returned with the smaller value first. @raise Invalid_argument if
    [n < 2]. *)

val choose : t -> 'a array -> 'a
(** [choose g a] is a uniformly random element of [a].
    @raise Invalid_argument on an empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index g w] samples index [i] with probability
    [w.(i) / sum w]. Weights must be nonnegative and not all zero.
    Linear scan; for repeated sampling from the same weights prefer
    {!Alias.create}. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] uniformly in place (Fisher–Yates). *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] is [k] distinct values drawn
    uniformly from [\[0, n)], in random order.
    @raise Invalid_argument if [k > n] or [k < 0]. *)

(** Walker's alias method: O(1) sampling from a fixed discrete
    distribution after O(n) preprocessing. Used by the non-uniform
    randomized adversary where every interaction draws from the same
    weight table. *)
module Alias : sig
  type dist

  val create : float array -> dist
  (** [create w] preprocesses nonnegative weights [w] (not all zero).
      @raise Invalid_argument on invalid weights. *)

  val sample : t -> dist -> int
  (** [sample g d] draws an index with probability proportional to its
      weight. *)

  val size : dist -> int
  (** Number of outcomes. *)
end
