(** Chrome trace-event JSON export for {!Span} sinks.

    The output is the trace-viewer "JSON object format":
    [{"traceEvents": [...], ...}] with complete ("X") events carrying
    [ts]/[dur] in microseconds and instant ("i") events, loadable by
    Perfetto and chrome://tracing. A {!Metrics.t} snapshot can ride
    along under a top-level ["metrics"] key, which viewers ignore. *)

val to_string : ?metrics:Metrics.t -> ?process_name:string -> Span.t -> string

val write : ?metrics:Metrics.t -> ?process_name:string -> string -> Span.t -> unit
(** [write path sink] writes {!to_string} to [path]. *)
