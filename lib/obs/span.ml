(* Monotonic-clock spans in a fixed-capacity ring of parallel arrays.

   A sink never allocates per event once created: names, start offsets,
   durations and domain ids live in preallocated arrays and the ring
   overwrites its oldest entry when full (counting drops). Timestamps
   are nanoseconds from [Monotonic_clock] (CLOCK_MONOTONIC), stored
   relative to the sink's creation epoch so they fit comfortably in an
   OCaml int and export cleanly to trace viewers.

   The disabled sink ([null]) makes [with_span] a single branch around
   the wrapped call, matching the metrics design. Shards for worker
   domains share the parent's clock and epoch so absorbed events stay
   on one timeline. *)

let default_clock () = Int64.to_int (Monotonic_clock.now ())

type t = {
  on : bool;
  capacity : int;
  clock : unit -> int;
  epoch : int;
  names : string array;
  starts : int array; (* ns since epoch *)
  durs : int array; (* ns; -1 marks an instant event *)
  tids : int array; (* recording domain id *)
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

type span = { sp_name : string; sp_start : int }

let null =
  {
    on = false;
    capacity = 0;
    clock = (fun () -> 0);
    epoch = 0;
    names = [||];
    starts = [||];
    durs = [||];
    tids = [||];
    head = 0;
    len = 0;
    dropped = 0;
  }

let create ?(capacity = 4096) ?clock () =
  if capacity < 1 then invalid_arg "Span.create: capacity must be >= 1";
  let clock = match clock with Some c -> c | None -> default_clock in
  {
    on = true;
    capacity;
    clock;
    epoch = clock ();
    names = Array.make capacity "";
    starts = Array.make capacity 0;
    durs = Array.make capacity 0;
    tids = Array.make capacity 0;
    head = 0;
    len = 0;
    dropped = 0;
  }

let enabled t = t.on
let length t = t.len
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let shard t =
  if not t.on then t
  else
    {
      t with
      names = Array.make t.capacity "";
      starts = Array.make t.capacity 0;
      durs = Array.make t.capacity 0;
      tids = Array.make t.capacity 0;
      head = 0;
      len = 0;
      dropped = 0;
    }

let push t ~tid name start dur =
  let i = t.head in
  t.names.(i) <- name;
  t.starts.(i) <- start;
  t.durs.(i) <- dur;
  t.tids.(i) <- tid;
  t.head <- (if i + 1 = t.capacity then 0 else i + 1);
  if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let self_tid () = (Domain.self () :> int)
let off_span = { sp_name = ""; sp_start = 0 }

let begin_span t name =
  if not t.on then off_span else { sp_name = name; sp_start = t.clock () }

let end_span t sp =
  if t.on then
    push t ~tid:(self_tid ()) sp.sp_name (sp.sp_start - t.epoch)
      (t.clock () - sp.sp_start)

let with_span t name f =
  if not t.on then f ()
  else begin
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        push t ~tid:(self_tid ()) name (t0 - t.epoch) (t.clock () - t0))
      f
  end

let instant t name =
  if t.on then push t ~tid:(self_tid ()) name (t.clock () - t.epoch) (-1)

type event = { name : string; start_ns : int; dur_ns : int; tid : int }

let is_instant e = e.dur_ns < 0

let events t =
  List.init t.len (fun k ->
      let i = (((t.head - t.len + k) mod t.capacity) + t.capacity) mod t.capacity in
      {
        name = t.names.(i);
        start_ns = t.starts.(i);
        dur_ns = t.durs.(i);
        tid = t.tids.(i);
      })

(* Append [child]'s events (oldest first) into [parent], keeping the
   recorded domain ids and timestamps. Meaningful when [child] was
   produced by [shard parent] — the epochs then coincide, so all
   events share one timeline. *)
let absorb parent child =
  if parent.on && child.on && child != parent then begin
    List.iter
      (fun e -> push parent ~tid:e.tid e.name e.start_ns e.dur_ns)
      (events child);
    parent.dropped <- parent.dropped + child.dropped
  end

let summary t =
  if not t.on then ""
  else begin
    let tbl : (string, int ref * int ref * int ref * bool) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun e ->
        let inst = is_instant e in
        match Hashtbl.find_opt tbl e.name with
        | Some (calls, total, mx, _) ->
            Stdlib.incr calls;
            if not inst then begin
              total := !total + e.dur_ns;
              if e.dur_ns > !mx then mx := e.dur_ns
            end
        | None ->
            Hashtbl.add tbl e.name
              ( ref 1,
                ref (if inst then 0 else e.dur_ns),
                ref (if inst then 0 else e.dur_ns),
                inst ))
      (events t);
    let names =
      List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
    in
    let buf = Buffer.create 256 in
    let ms ns = float_of_int ns /. 1e6 in
    List.iter
      (fun name ->
        let calls, total, mx, inst = Hashtbl.find tbl name in
        if inst then
          Buffer.add_string buf
            (Printf.sprintf "instant    %-32s count=%d\n" name !calls)
        else
          Buffer.add_string buf
            (Printf.sprintf
               "span       %-32s calls=%d total=%.3fms mean=%.3fms max=%.3fms\n"
               name !calls (ms !total)
               (ms !total /. float_of_int !calls)
               (ms !mx)))
      names;
    if t.dropped > 0 then
      Buffer.add_string buf
        (Printf.sprintf "(ring full: %d oldest events dropped)\n" t.dropped);
    Buffer.contents buf
  end
