(* One handle bundling a metrics registry with a span sink — the value
   threaded through Experiment/Workload/CLI as [?telemetry].

   [disabled] is the shared off instance: every operation on it is a
   single branch, and [engine_observers] returns [], so a run with
   telemetry off executes exactly the same code as one with no
   telemetry at all. *)

module Engine = Doda_core.Engine

type t = { metrics : Metrics.t; spans : Span.t; resources : bool }

let create ?(span_capacity = 4096) ?(resources = false) () =
  {
    metrics = Metrics.create ();
    spans = Span.create ~capacity:span_capacity ();
    resources;
  }

let disabled = { metrics = Metrics.disabled; spans = Span.null; resources = false }
let enabled t = Metrics.enabled t.metrics
let metrics t = t.metrics
let spans t = t.spans

let shard t =
  if not (enabled t) then t
  else
    {
      metrics = Metrics.shard t.metrics;
      spans = Span.shard t.spans;
      resources = t.resources;
    }

let absorb t child =
  if child != t then begin
    Metrics.absorb t.metrics child.metrics;
    Span.absorb t.spans child.spans
  end

(* Resource gauges are sampled only on request ([resources = true]):
   their values depend on GC timing and domain layout, so they are not
   deterministic across job counts — enabling them would break the
   byte-identical [--jobs] diff over a sweep's metrics summary. Gauges
   merge by max, so the folded value is the peak over all shards. *)
let sample_resources t =
  if t.resources && Metrics.enabled t.metrics then begin
    Metrics.set_max
      (Metrics.gauge t.metrics "obs.heap_words")
      (Resource.heap_words ());
    match Resource.rss_bytes () with
    | Some b -> Metrics.set_max (Metrics.gauge t.metrics "obs.rss_bytes") b
    | None -> ()
  end

let with_span t name f =
  if not t.resources then Span.with_span t.spans name f
  else begin
    let r = Span.with_span t.spans name f in
    sample_resources t;
    r
  end
let instant t name = Span.instant t.spans name

let summary t =
  if not (enabled t) then ""
  else Metrics.summary t.metrics ^ Span.summary t.spans

let write_trace ?process_name t path =
  Trace_event.write ~metrics:t.metrics ?process_name path t.spans

let record_chunk_stats ?(nondeterministic = false) t sched =
  if enabled t then begin
    let s = Doda_dynamic.Schedule.chunk_stats sched in
    Metrics.add (Metrics.counter t.metrics "stream.refills") s.refills;
    (* The pipeline counters depend on scheduling, not on the draw
       stream; keep them out of any output that must be byte-identical
       across job counts. *)
    if nondeterministic then begin
      Metrics.add
        (Metrics.counter t.metrics "stream.prefetched")
        s.Doda_dynamic.Schedule.prefetched;
      Metrics.add (Metrics.counter t.metrics "stream.stalls") s.stalls;
      Metrics.add (Metrics.counter t.metrics "stream.stall_ns") s.stall_ns
    end
  end

(* Engine runs on contact sequences bounded well under 2^26 steps in
   every experiment; the power-of-two buckets keep the duration
   histogram mergeable across shards by construction. *)
let duration_bounds = Metrics.pow2_bounds ~upto:26

let engine_observers t =
  if not (enabled t) then []
  else begin
    let steps = Metrics.counter t.metrics "engine.steps" in
    let transmissions = Metrics.counter t.metrics "engine.transmissions" in
    let runs = Metrics.counter t.metrics "engine.runs" in
    let aggregated = Metrics.counter t.metrics "engine.stop.aggregated" in
    let exhausted = Metrics.counter t.metrics "engine.stop.exhausted" in
    let limited = Metrics.counter t.metrics "engine.stop.step_limit" in
    let durations =
      Metrics.histogram ~bounds:duration_bounds t.metrics "engine.duration"
    in
    [
      Engine.observer
        ~on_step:(fun ~time:_ _ -> Metrics.incr steps)
        ~on_transmit:(fun ~time:_ ~sender:_ ~receiver:_ ->
          Metrics.incr transmissions)
        ~on_finish:(fun (r : Engine.result) ->
          Metrics.incr runs;
          (match r.Engine.stop with
          | Engine.All_aggregated -> Metrics.incr aggregated
          | Engine.Schedule_exhausted -> Metrics.incr exhausted
          | Engine.Step_limit -> Metrics.incr limited);
          match r.Engine.duration with
          | Some d -> Metrics.observe durations d
          | None -> ())
        ();
    ]
  end
