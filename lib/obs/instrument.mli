(** One telemetry handle: a {!Metrics} registry bundled with a
    {!Span} sink, threaded through the stack as [?telemetry].

    The {!disabled} instance is free by construction: every operation
    is a single branch and {!engine_observers} returns [[]], so a run
    with telemetry off executes the same code as an uninstrumented
    one. *)

type t

val create : ?span_capacity:int -> ?resources:bool -> unit -> t
(** [resources] (default [false]) turns on memory sampling: every
    successful {!with_span} (and explicit {!sample_resources}) records
    the [obs.heap_words] and [obs.rss_bytes] gauges via {!Resource}.
    Off by default because gauge values depend on GC timing and domain
    layout — they are {e not} byte-identical across job counts, unlike
    every other metric, so sweeps whose summaries are diffed at
    several [--jobs] must leave this off. *)

val disabled : t
val enabled : t -> bool
val metrics : t -> Metrics.t
val spans : t -> Span.t

val shard : t -> t
(** Per-worker-slot shard (identity when disabled); see
    {!Metrics.shard} and {!Span.shard}. *)

val absorb : t -> t -> unit
(** [absorb t child] folds a shard back; deterministic for metrics
    (integer sums / maxima). *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Times [f] into the span sink; with [resources] on, also samples
    the memory gauges at the (successful) span boundary. *)

val instant : t -> string -> unit

val sample_resources : t -> unit
(** Record the current {!Resource.heap_words} / {!Resource.rss_bytes}
    into the [obs.heap_words] / [obs.rss_bytes] max-gauges. No-op
    unless the handle was created with [~resources:true]. *)

val record_chunk_stats :
  ?nondeterministic:bool -> t -> Doda_dynamic.Schedule.t -> unit
(** Fold a chunked schedule's streaming counters
    ({!Doda_dynamic.Schedule.chunk_stats}) into the metrics:
    [stream.refills] always (it depends only on the draw stream and
    block size, so it is safe in jobs-invariant output); the
    pipeline counters [stream.prefetched] / [stream.stalls] /
    [stream.stall_ns] only under [~nondeterministic:true], because
    they depend on domain scheduling and would break byte-identical
    output across [--jobs]. No-op when disabled or on a non-chunked
    schedule (all-zero stats). *)

val summary : t -> string
(** Metrics table followed by the span table; [""] when disabled. *)

val write_trace : ?process_name:string -> t -> string -> unit
(** Chrome trace-event JSON with the metrics snapshot embedded. *)

val engine_observers : t -> Doda_core.Engine.observer list
(** [[]] when disabled. Otherwise one observer maintaining
    [engine.steps], [engine.transmissions], [engine.runs],
    [engine.stop.*] counters and the [engine.duration] histogram
    (power-of-two buckets). *)
