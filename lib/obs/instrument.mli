(** One telemetry handle: a {!Metrics} registry bundled with a
    {!Span} sink, threaded through the stack as [?telemetry].

    The {!disabled} instance is free by construction: every operation
    is a single branch and {!engine_observers} returns [[]], so a run
    with telemetry off executes the same code as an uninstrumented
    one. *)

type t

val create : ?span_capacity:int -> unit -> t
val disabled : t
val enabled : t -> bool
val metrics : t -> Metrics.t
val spans : t -> Span.t

val shard : t -> t
(** Per-worker-slot shard (identity when disabled); see
    {!Metrics.shard} and {!Span.shard}. *)

val absorb : t -> t -> unit
(** [absorb t child] folds a shard back; deterministic for metrics
    (integer sums / maxima). *)

val with_span : t -> string -> (unit -> 'a) -> 'a
val instant : t -> string -> unit

val summary : t -> string
(** Metrics table followed by the span table; [""] when disabled. *)

val write_trace : ?process_name:string -> t -> string -> unit
(** Chrome trace-event JSON with the metrics snapshot embedded. *)

val engine_observers : t -> Doda_core.Engine.observer list
(** [[]] when disabled. Otherwise one observer maintaining
    [engine.steps], [engine.transmissions], [engine.runs],
    [engine.stop.*] counters and the [engine.duration] histogram
    (power-of-two buckets). *)
