(* Allocation-free metrics: counters, gauges and fixed-bucket
   histograms behind a named registry.

   The design constraint mirrors the engine's [has_step_obs] guard: an
   instrument obtained from a disabled registry is a shared dummy whose
   every operation is a single test of an immutable boolean — no
   allocation, no indirection, branch-predictable — so instrumented
   code can keep its counters inline on hot paths and pay nothing when
   telemetry is off.

   Registries are single-domain values. Parallel code gives each
   worker slot its own [shard] and folds the shards back with
   [absorb] on the coordinating domain (see [Pool.map_array_sharded]);
   counter and histogram merging is integer addition, so the aggregate
   is identical whatever the slot count or scheduling. The registry
   lock only guards instrument creation (get-or-create), never
   increments. *)

type counter = { c_on : bool; c_name : string; mutable c_value : int }

type gauge = {
  g_on : bool;
  g_name : string;
  mutable g_value : int;
  mutable g_set : bool;
}

type histogram = {
  h_on : bool;
  h_name : string;
  h_bounds : int array;
      (* strictly increasing inclusive upper bounds; bucket i counts
         values <= h_bounds.(i), the final bucket everything above. *)
  h_buckets : int array; (* length = Array.length h_bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  enabled : bool;
  lock : Mutex.t;
  tbl : (string, instrument) Hashtbl.t;
  mutable rev_names : string list; (* creation order, reversed *)
}

let create () =
  {
    enabled = true;
    lock = Mutex.create ();
    tbl = Hashtbl.create 16;
    rev_names = [];
  }

let disabled =
  {
    enabled = false;
    lock = Mutex.create ();
    tbl = Hashtbl.create 1;
    rev_names = [];
  }

let enabled t = t.enabled

(* The shared dummies every disabled registry hands out: their [_on]
   field is false, so operations reduce to one branch. *)
let off_counter = { c_on = false; c_name = ""; c_value = 0 }
let off_gauge = { g_on = false; g_name = ""; g_value = 0; g_set = false }

let off_histogram =
  {
    h_on = false;
    h_name = "";
    h_bounds = [||];
    h_buckets = [| 0 |];
    h_count = 0;
    h_sum = 0;
    h_min = 0;
    h_max = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let intern t name make =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some i -> i
      | None ->
          let i = make () in
          Hashtbl.add t.tbl name i;
          t.rev_names <- name :: t.rev_names;
          i)

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " already registered as a different kind")

let counter t name =
  if not t.enabled then off_counter
  else
    match
      intern t name (fun () -> Counter { c_on = true; c_name = name; c_value = 0 })
    with
    | Counter c -> c
    | _ -> kind_error name

let gauge t name =
  if not t.enabled then off_gauge
  else
    match
      intern t name (fun () ->
          Gauge { g_on = true; g_name = name; g_value = 0; g_set = false })
    with
    | Gauge g -> g
    | _ -> kind_error name

let pow2_bounds ~upto =
  if upto < 0 || upto > 61 then invalid_arg "Metrics.pow2_bounds: upto out of range";
  Array.init (upto + 1) (fun i -> 1 lsl i)

let default_bounds = pow2_bounds ~upto:30

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: bounds must be non-empty";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?bounds t name =
  if not t.enabled then off_histogram
  else begin
    let explicit = bounds <> None in
    let bounds = match bounds with Some b -> b | None -> default_bounds in
    check_bounds bounds;
    match
      intern t name (fun () ->
          Histogram
            {
              h_on = true;
              h_name = name;
              h_bounds = Array.copy bounds;
              h_buckets = Array.make (Array.length bounds + 1) 0;
              h_count = 0;
              h_sum = 0;
              h_min = max_int;
              h_max = min_int;
            })
    with
    | Histogram h ->
        if explicit && h.h_bounds <> bounds then
          invalid_arg ("Metrics.histogram: " ^ name ^ " registered with different bounds");
        h
    | _ -> kind_error name
  end

(* -- operations: one branch on the disabled path ------------------- *)

let incr c = if c.c_on then c.c_value <- c.c_value + 1
let add c n = if c.c_on then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set g v =
  if g.g_on then begin
    g.g_value <- v;
    g.g_set <- true
  end

let set_max g v =
  if g.g_on && ((not g.g_set) || v > g.g_value) then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = if g.g_set then Some g.g_value else None

let observe h v =
  if h.h_on then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let bounds = h.h_bounds in
    let k = Array.length bounds in
    let i = ref 0 in
    while !i < k && v > Array.unsafe_get bounds !i do
      i := !i + 1
    done;
    h.h_buckets.(!i) <- h.h_buckets.(!i) + 1
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_mean h =
  if h.h_count = 0 then None
  else Some (float_of_int h.h_sum /. float_of_int h.h_count)

let histogram_range h = if h.h_count = 0 then None else Some (h.h_min, h.h_max)

(* Quantile estimate from the bucket counts: find the bucket holding
   the target rank and interpolate linearly inside it, clamping bucket
   edges to the observed min/max. Total order of guards: an empty (or
   disabled) histogram yields [None], a single sample yields a finite
   value inside [min, max] — never NaN, never an exception. *)
let approx_quantile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.approx_quantile: q must be in [0, 1]";
  if h.h_count = 0 then None
  else begin
    let lo_all = float_of_int h.h_min and hi_all = float_of_int h.h_max in
    let target = Stdlib.max 1.0 (q *. float_of_int h.h_count) in
    let k = Array.length h.h_bounds in
    let res = ref None in
    let cum = ref 0.0 in
    let i = ref 0 in
    while !res = None && !i <= k do
      let c = float_of_int h.h_buckets.(!i) in
      if c > 0.0 && !cum +. c >= target then begin
        let edge_lo =
          if !i = 0 then lo_all
          else Stdlib.max lo_all (float_of_int h.h_bounds.(!i - 1))
        in
        let edge_hi =
          if !i = k then hi_all
          else Stdlib.min hi_all (float_of_int h.h_bounds.(!i))
        in
        let frac = (target -. !cum) /. c in
        res := Some (edge_lo +. (frac *. (edge_hi -. edge_lo)))
      end
      else begin
        cum := !cum +. c;
        i := !i + 1
      end
    done;
    match !res with Some v -> Some v | None -> Some hi_all
  end

(* -- sharding ------------------------------------------------------ *)

let shard t = if not t.enabled then t else create ()

let absorb parent child =
  if child.enabled && child != parent then
    List.iter
      (fun name ->
        match Hashtbl.find_opt child.tbl name with
        | None -> ()
        | Some (Counter c) -> add (counter parent name) c.c_value
        | Some (Gauge g) -> if g.g_set then set_max (gauge parent name) g.g_value
        | Some (Histogram h) ->
            let p = histogram ~bounds:h.h_bounds parent name in
            if p.h_on && h.h_count > 0 then begin
              for i = 0 to Array.length h.h_buckets - 1 do
                p.h_buckets.(i) <- p.h_buckets.(i) + h.h_buckets.(i)
              done;
              p.h_count <- p.h_count + h.h_count;
              p.h_sum <- p.h_sum + h.h_sum;
              if h.h_min < p.h_min then p.h_min <- h.h_min;
              if h.h_max > p.h_max then p.h_max <- h.h_max
            end)
      (List.rev child.rev_names)

(* -- read-out ------------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of int option
  | Histogram_v of {
      count : int;
      sum : int;
      min : int;
      max : int;
      bounds : int array;
      buckets : int array;
    }

let dump t =
  locked t (fun () ->
      let names = List.sort String.compare (List.rev t.rev_names) in
      List.map
        (fun name ->
          match Hashtbl.find t.tbl name with
          | Counter c -> (name, Counter_v c.c_value)
          | Gauge g -> (name, Gauge_v (gauge_value g))
          | Histogram h ->
              ( name,
                Histogram_v
                  {
                    count = h.h_count;
                    sum = h.h_sum;
                    min = (if h.h_count = 0 then 0 else h.h_min);
                    max = (if h.h_count = 0 then 0 else h.h_max);
                    bounds = Array.copy h.h_bounds;
                    buckets = Array.copy h.h_buckets;
                  } ))
        names)

let summary t =
  let buf = Buffer.create 256 in
  locked t (fun () ->
      List.iter
        (fun name ->
          match Hashtbl.find t.tbl name with
          | Counter c ->
              Buffer.add_string buf
                (Printf.sprintf "counter    %-32s %d\n" name c.c_value)
          | Gauge g ->
              Buffer.add_string buf
                (Printf.sprintf "gauge      %-32s %s\n" name
                   (match gauge_value g with
                   | Some v -> string_of_int v
                   | None -> "-"))
          | Histogram h ->
              if h.h_count = 0 then
                Buffer.add_string buf
                  (Printf.sprintf "histogram  %-32s count=0\n" name)
              else begin
                let q p =
                  match approx_quantile h p with
                  | Some v -> Printf.sprintf "%.0f" v
                  | None -> "-"
                in
                Buffer.add_string buf
                  (Printf.sprintf
                     "histogram  %-32s count=%d sum=%d mean=%.1f min=%d max=%d \
                      p50~%s p99~%s\n"
                     name h.h_count h.h_sum
                     (float_of_int h.h_sum /. float_of_int h.h_count)
                     h.h_min h.h_max (q 0.5) (q 0.99))
              end)
        (List.sort String.compare (List.rev t.rev_names)));
  Buffer.contents buf
