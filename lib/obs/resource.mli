(** Process-level resource probes: GC heap figures and resident-set
    sizes, so the scaling bench and [--metrics] report memory as well
    as time. All probes are cheap enough to sample at span boundaries
    ({!Gc.quick_stat} plus one short procfs read). *)

val heap_words : unit -> int
(** Current major-heap size in words ([Gc.quick_stat]; no heap
    traversal). *)

val top_heap_words : unit -> int
(** High-water mark of the major heap, in words. *)

val rss_bytes : unit -> int option
(** Current resident set size ([VmRSS] of [/proc/self/status]), or
    [None] where procfs is unavailable. Process-wide: includes every
    domain's heap. *)

val rss_peak_bytes : unit -> int option
(** Peak resident set size ([VmHWM]), or [None]. *)
