(** Allocation-free metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Instruments are obtained once (get-or-create by name, under the
    registry lock) and then updated lock-free on the owning domain.
    Every update operation on an instrument from a {!disabled} registry
    is a single boolean test — the pattern the engine's [has_step_obs]
    guard uses — so hot loops keep their instruments inline and pay
    nothing when telemetry is off.

    For parallel work, give each worker slot a {!shard} and fold the
    shards back with {!absorb} on the coordinating domain. Counter and
    histogram merging is integer addition (gauges keep the max), so
    aggregates are identical for any slot count and any scheduling —
    the property the [--jobs]-determinism CI check relies on. *)

type t
(** A registry. Single-domain: never share one instrument or registry
    across domains; use {!shard}/{!absorb}. *)

val create : unit -> t
(** A fresh enabled registry. *)

val disabled : t
(** The shared off registry: instrument constructors return shared
    no-op dummies and register nothing. *)

val enabled : t -> bool

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create. @raise Invalid_argument if [name] is registered as
    a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** 0 for a disabled counter. *)

(** {1 Gauges}

    Last-set value; {!absorb} keeps the maximum across shards (a
    high-watermark), the only deterministic merge for order-free
    sampling. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Keep the maximum of the current and given value. *)

val gauge_value : gauge -> int option
(** [None] until first set (and always for a disabled gauge). *)

(** {1 Histograms} *)

type histogram

val pow2_bounds : upto:int -> int array
(** [[|1; 2; 4; ...; 2^upto|]] — the canonical bucket bounds.
    @raise Invalid_argument unless [0 <= upto <= 61]. *)

val histogram : ?bounds:int array -> t -> string -> histogram
(** Get or create. [bounds] are strictly increasing inclusive upper
    bucket bounds (default [pow2_bounds ~upto:30]); bucket [i] counts
    observations [<= bounds.(i)] and a final bucket counts the
    overflow. @raise Invalid_argument on invalid bounds, a kind
    mismatch, or explicit bounds differing from a previous
    registration of [name]. *)

val observe : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_mean : histogram -> float option
(** [None] when empty — never NaN. *)

val histogram_range : histogram -> (int * int) option
(** [(min, max)] of the observations, [None] when empty. *)

val approx_quantile : histogram -> float -> float option
(** Quantile estimated from the bucket counts: linear interpolation
    inside the bucket holding the target rank, bucket edges clamped to
    the observed min/max. [None] when empty; a single observation
    yields a finite value in [[min, max]]. Never NaN.
    @raise Invalid_argument unless [0 <= q <= 1]. *)

(** {1 Sharding} *)

val shard : t -> t
(** A fresh registry for one worker slot — the identity on a disabled
    registry. *)

val absorb : t -> t -> unit
(** [absorb parent child] folds [child]'s instruments into [parent]:
    counters and histograms add, gauges keep the maximum. Histograms
    must agree on bounds ([Invalid_argument] otherwise). No-op when
    [child] is disabled or is [parent] itself. *)

(** {1 Read-out} *)

type value =
  | Counter_v of int
  | Gauge_v of int option
  | Histogram_v of {
      count : int;
      sum : int;
      min : int;  (** 0 when [count = 0] *)
      max : int;  (** 0 when [count = 0] *)
      bounds : int array;
      buckets : int array;
    }

val dump : t -> (string * value) list
(** Snapshot of every instrument, sorted by name (deterministic). *)

val summary : t -> string
(** Plain-text table, one line per instrument, sorted by name;
    [""] for an empty or disabled registry. *)
