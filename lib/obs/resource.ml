(* Process-level resource probes for the scaling work: the scaling
   bench and [--metrics] runs need to report memory, not just time.
   GC figures come from [Gc.quick_stat] (no heap traversal); resident
   set sizes are parsed from /proc/self/status, returning [None] on
   platforms without procfs rather than guessing. *)

let heap_words () = (Gc.quick_stat ()).Gc.heap_words
let top_heap_words () = (Gc.quick_stat ()).Gc.top_heap_words

(* First "<key>	<int> kB" line of /proc/self/status, in bytes. *)
let proc_status_kb key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let klen = String.length key in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > klen && String.sub line 0 klen = key then
              match
                Scanf.sscanf
                  (String.sub line klen (String.length line - klen))
                  " %d" (fun kb -> kb)
              with
              | kb -> Some (kb * 1024)
              | exception Scanf.Scan_failure _ -> None
              | exception Failure _ -> None
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let rss_bytes () = proc_status_kb "VmRSS:"
let rss_peak_bytes () = proc_status_kb "VmHWM:"
