(** Monotonic-clock spans in a fixed-capacity ring buffer.

    Events carry a name, a start offset and duration in nanoseconds
    (relative to the sink's creation epoch, from [CLOCK_MONOTONIC]),
    and the recording domain's id. The ring overwrites its oldest
    entry when full and counts the drops, so recording never
    allocates and never grows. The {!null} sink makes {!with_span} a
    single branch around the wrapped call. *)

type t
(** An event sink. Single-domain; parallel work records into
    {!shard}s folded back with {!absorb}. *)

val null : t
(** The shared disabled sink. *)

val create : ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** An enabled sink. [capacity] (default 4096) is the ring size;
    [clock] (default the monotonic clock, nanoseconds) is overridable
    for tests. @raise Invalid_argument if [capacity < 1]. *)

val enabled : t -> bool

val length : t -> int
(** Events currently held (at most the capacity). *)

val dropped : t -> int
(** Oldest events overwritten since creation or {!clear}. *)

val clear : t -> unit

(** {1 Recording} *)

type span
(** An open span: a name and a start timestamp. *)

val begin_span : t -> string -> span
val end_span : t -> span -> unit

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Time [f] and record on return (also on exception). On a disabled
    sink this is exactly one branch plus the call. *)

val instant : t -> string -> unit
(** A zero-duration marker event. *)

(** {1 Sharding} *)

val shard : t -> t
(** A fresh sink for one worker slot sharing the parent's clock,
    epoch and capacity — the identity on a disabled sink. *)

val absorb : t -> t -> unit
(** [absorb parent child] appends [child]'s events, oldest first,
    keeping their timestamps and domain ids (they share the parent's
    epoch when [child] came from [shard parent]). Adds [child]'s drop
    count to the parent's. *)

(** {1 Read-out} *)

type event = {
  name : string;
  start_ns : int;  (** ns since the sink's epoch *)
  dur_ns : int;  (** ns; negative marks an instant event *)
  tid : int;  (** recording domain id *)
}

val is_instant : event -> bool

val events : t -> event list
(** Oldest first. *)

val summary : t -> string
(** Per-name calls/total/mean/max table, sorted by name; notes
    dropped events. [""] for a disabled sink. *)
