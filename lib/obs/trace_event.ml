(* Chrome trace-event JSON export.

   Produces the "JSON object format" understood by chrome://tracing and
   Perfetto: a top-level object with a [traceEvents] array of complete
   ("X") and instant ("i") events, timestamps in microseconds. Metrics
   snapshots ride along under a non-standard top-level "metrics" key,
   which trace viewers ignore.

   doda_obs sits below doda_sim in the library stack, so it carries its
   own minimal JSON writer rather than reusing [Doda_sim.Json]. *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Microseconds with nanosecond precision kept as a decimal. *)
let add_us buf ns =
  Buffer.add_string buf (Printf.sprintf "%.3f" (float_of_int ns /. 1e3))

let add_event buf (e : Span.event) =
  Buffer.add_string buf "{\"name\":";
  add_escaped buf e.Span.name;
  Buffer.add_string buf ",\"cat\":\"doda\",\"ph\":";
  if Span.is_instant e then Buffer.add_string buf "\"i\",\"s\":\"t\""
  else Buffer.add_string buf "\"X\"";
  Buffer.add_string buf ",\"ts\":";
  add_us buf e.Span.start_ns;
  if not (Span.is_instant e) then begin
    Buffer.add_string buf ",\"dur\":";
    add_us buf e.Span.dur_ns
  end;
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int e.Span.tid);
  Buffer.add_char buf '}'

let add_metrics buf metrics =
  Buffer.add_string buf "{";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if !first then first := false else Buffer.add_char buf ',';
      add_escaped buf name;
      Buffer.add_char buf ':';
      match v with
      | Metrics.Counter_v n -> Buffer.add_string buf (string_of_int n)
      | Metrics.Gauge_v None -> Buffer.add_string buf "null"
      | Metrics.Gauge_v (Some n) -> Buffer.add_string buf (string_of_int n)
      | Metrics.Histogram_v { count; sum; min; max; _ } ->
          Buffer.add_string buf
            (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d}"
               count sum min max))
    (Metrics.dump metrics);
  Buffer.add_char buf '}'

let to_string ?metrics ?(process_name = "doda") sink =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":";
  add_escaped buf process_name;
  Buffer.add_string buf "}}";
  List.iter
    (fun e ->
      Buffer.add_char buf ',';
      add_event buf e)
    (Span.events sink);
  Buffer.add_char buf ']';
  Buffer.add_string buf ",\"displayTimeUnit\":\"ms\"";
  (match metrics with
  | Some m when Metrics.enabled m ->
      Buffer.add_string buf ",\"metrics\":";
      add_metrics buf m
  | _ -> ());
  (let d = Span.dropped sink in
   if d > 0 then Buffer.add_string buf (Printf.sprintf ",\"droppedEvents\":%d" d));
  Buffer.add_char buf '}';
  Buffer.contents buf

let write ?metrics ?process_name path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?metrics ?process_name sink);
      output_char oc '\n')
