(** Interaction-sequence generators: the executable side of the
    adversary models, plus structured sequences used by tests and
    experiments.

    Generator functions have type [int -> Interaction.t] (time to
    interaction) and plug into {!Schedule.of_fun}; finite variants
    return a {!Sequence.t}. *)

val uniform : Doda_prng.Prng.t -> n:int -> int -> Interaction.t
(** [uniform rng ~n] draws each interaction uniformly among the
    [n(n-1)/2] pairs — the paper's randomized adversary. The time
    argument is ignored (draws are i.i.d.). *)

val uniform_sequence : Doda_prng.Prng.t -> n:int -> length:int -> Sequence.t

val weighted_nodes : Doda_prng.Prng.t -> weights:float array -> int -> Interaction.t
(** [weighted_nodes rng ~weights] draws a pair by sampling two distinct
    endpoints proportionally to per-node weights — the non-uniform
    randomized adversary raised as open question 3 of the paper.
    @raise Invalid_argument on fewer than two positive weights. *)

val over_graph : Doda_prng.Prng.t -> Doda_graph.Static_graph.t -> int -> Interaction.t
(** Draws uniformly among the edges of a fixed graph; the underlying
    graph of the resulting schedule is (almost surely) that graph.
    @raise Invalid_argument on a graph with no edges. *)

val round_robin : n:int -> int -> Interaction.t
(** [round_robin ~n t] cycles deterministically through all pairs in
    lexicographic order: every pair occurs infinitely often — the
    recurrence assumption of Theorem 4. *)

val periodic : Sequence.t -> int -> Interaction.t
(** [periodic s t] is [s] repeated forever.
    @raise Invalid_argument on an empty sequence. *)

val of_snapshots : Doda_graph.Static_graph.t list -> Sequence.t
(** Flattens an evolving graph (sequence of static snapshots) into an
    interaction sequence: each snapshot contributes its edges in
    lexicographic order, one interaction per time unit. *)

val all_pairs : n:int -> Sequence.t
(** One period of {!round_robin}: each pair exactly once. *)

val markov_edges :
  ?on_active:(int -> unit) ->
  Doda_prng.Prng.t -> n:int -> p_on:float -> p_off:float -> int -> Interaction.t
(** [markov_edges rng ~n ~p_on ~p_off] drives every pair by an
    independent two-state Markov chain (absent edges appear with
    probability [p_on] per time unit, present ones disappear with
    [p_off]) and draws each interaction uniformly among the currently
    present edges (advancing the chain until at least one edge is
    present). Models link stability/burstiness that i.i.d. uniform
    sampling cannot.

    Event-driven: each pair samples its geometric sojourn once per
    state change and waits on a timing wheel ({!Gen_kernel.Wheel}), so
    a step costs O(present + toggles) expected rather than O(n^2) —
    the chain {e law} is identical to the dense per-step Bernoulli
    sweep ({!markov_edges_dense} keeps that reference; the test suite
    checks distributional equivalence by KS), but the PRNG draw stream
    differs from it.

    [?on_active] is called once per draw with the number of currently
    present edges, after advancing and before the uniform pick — a
    test/instrumentation hook.
    @raise Invalid_argument unless both probabilities lie in (0, 1]. *)

val markov_edges_dense :
  ?on_active:(int -> unit) ->
  Doda_prng.Prng.t -> n:int -> p_on:float -> p_off:float -> int -> Interaction.t
(** The dense reference implementation of {!markov_edges}: one
    Bernoulli per pair per step, O(n^2). Same distribution as the
    event-driven version (not the same draw stream); kept as the
    oracle for the distributional-equivalence tests and the generator
    micro-benchmarks. *)

val stitch : (int * (int -> Interaction.t)) list -> int -> Interaction.t
(** [stitch [(len1, g1); (len2, g2); ...]] plays [g1] for [len1] steps
    (times 0..len1-1 passed to [g1] as 0-based), then [g2], ...; the
    last generator runs forever regardless of its length.
    @raise Invalid_argument on an empty list. *)
