module Prng = Doda_prng.Prng

let uniform rng ~n _t =
  let a, b = Prng.pair rng n in
  Interaction.make a b

let uniform_sequence rng ~n ~length =
  Sequence.of_array (Array.init length (fun _ ->
      let a, b = Prng.pair rng n in
      Interaction.make a b))

let weighted_nodes rng ~weights =
  let positive = Array.fold_left (fun c w -> if w > 0.0 then c + 1 else c) 0 weights in
  if positive < 2 then
    invalid_arg "Generators.weighted_nodes: need at least two positive weights";
  let dist = Prng.Alias.create weights in
  fun _t ->
    let a = Prng.Alias.sample rng dist in
    let rec draw_other () =
      let b = Prng.Alias.sample rng dist in
      if b = a then draw_other () else b
    in
    Interaction.make a (draw_other ())

let over_graph rng graph =
  let edge_array = Array.of_list (Doda_graph.Static_graph.edges graph) in
  if Array.length edge_array = 0 then
    invalid_arg "Generators.over_graph: graph has no edges";
  fun _t ->
    let u, v = Prng.choose rng edge_array in
    Interaction.make u v

let all_pairs ~n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  Sequence.of_pairs !acc

let round_robin ~n =
  let period = all_pairs ~n in
  let len = Sequence.length period in
  fun t -> Sequence.get period (t mod len)

let periodic s =
  let len = Sequence.length s in
  if len = 0 then invalid_arg "Generators.periodic: empty sequence";
  fun t -> Sequence.get s (t mod len)

let of_snapshots snapshots =
  let pairs =
    List.concat_map (fun g -> Doda_graph.Static_graph.edges g) snapshots
  in
  Sequence.of_pairs pairs

let check_markov_args ~p_on ~p_off =
  if p_on <= 0.0 || p_on > 1.0 || p_off <= 0.0 || p_off > 1.0 then
    invalid_arg "Generators.markov_edges: probabilities must lie in (0, 1]"

(* Pair index -> packed interaction, triangular order: (u, v), u < v. *)
let pair_index ~n =
  let index = Array.make (n * (n - 1) / 2) Interaction.dummy in
  let k = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      index.(!k) <- Interaction.make u v;
      incr k
    done
  done;
  index

let markov_edges ?on_active rng ~n ~p_on ~p_off =
  check_markov_args ~p_on ~p_off;
  let pairs = n * (n - 1) / 2 in
  let index = pair_index ~n in
  (* Event-driven chain: instead of flipping a Bernoulli for every pair
     at every step, each pair samples its next state toggle directly —
     a geometric sojourn is exactly the waiting time of the per-step
     Bernoulli — and sits on a timing wheel until that step arrives.
     Advancing costs O(toggles due) instead of O(n^2), and the draw
     stream shrinks from n(n-1)/2 Bernoullis per step to one geometric
     per state change (~p_on * pairs of them per step at
     stationarity). Distribution-identical to the dense reference (the
     per-pair chains have the same law, and the uniform pick below
     does not depend on how the active set is ordered), but not
     stream-identical: committed baselines over markov traces change
     and test/test_generators.ml proves the equivalence by KS. *)
  let wheel = Gen_kernel.Wheel.create ~ids:pairs in
  let active = Array.make pairs 0 in  (* dense ids of active pairs *)
  let slot_of = Array.make pairs (-1) in  (* position in [active], -1 = off *)
  let count = ref 0 in
  let time = ref 0 in
  (* Sojourn in the current state: the number of steps until the flip,
     counting the flipping step, is 1 + Geom(p). *)
  let next_after p = !time + 1 + Prng.geometric rng p in
  for i = 0 to pairs - 1 do
    Gen_kernel.Wheel.schedule wheel ~id:i ~at:(next_after p_on)
  done;
  let toggle i =
    if slot_of.(i) >= 0 then begin
      let last = !count - 1 in
      let moved = active.(last) in
      active.(slot_of.(i)) <- moved;
      slot_of.(moved) <- slot_of.(i);
      slot_of.(i) <- -1;
      count := last;
      Gen_kernel.Wheel.schedule wheel ~id:i ~at:(next_after p_on)
    end
    else begin
      slot_of.(i) <- !count;
      active.(!count) <- i;
      incr count;
      Gen_kernel.Wheel.schedule wheel ~id:i ~at:(next_after p_off)
    end
  in
  let advance () =
    incr time;
    Gen_kernel.Wheel.advance wheel ~now:!time toggle
  in
  fun _t ->
    advance ();
    while !count = 0 do
      advance ()
    done;
    (match on_active with Some f -> f !count | None -> ());
    index.(active.(Prng.int rng !count))

let markov_edges_dense ?on_active rng ~n ~p_on ~p_off =
  check_markov_args ~p_on ~p_off;
  let pairs = n * (n - 1) / 2 in
  let active = Array.make pairs false in
  let index = pair_index ~n in
  (* Active pair indices land in [present.(start .. pairs - 1)], in
     increasing order: the Bernoulli transitions are drawn high to low
     (the draw order the original list-building version used), filling
     the buffer from the back. *)
  let present = Array.make pairs 0 in
  let start = ref pairs in
  let advance () =
    start := pairs;
    for i = pairs - 1 downto 0 do
      active.(i) <-
        (if active.(i) then not (Prng.bernoulli rng p_off)
         else Prng.bernoulli rng p_on);
      if active.(i) then begin
        decr start;
        present.(!start) <- i
      end
    done
  in
  fun _t ->
    advance ();
    while !start = pairs do
      advance ()
    done;
    let count = pairs - !start in
    (match on_active with Some f -> f count | None -> ());
    index.(present.(!start + Prng.int rng count))

let stitch segments =
  if segments = [] then invalid_arg "Generators.stitch: empty segment list";
  fun t ->
    let rec select t = function
      | [] -> assert false
      | [ (_, gen) ] -> gen t
      | (len, gen) :: rest -> if t < len then gen t else select (t - len) rest
    in
    select t segments
