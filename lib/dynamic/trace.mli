(** Contact-trace I/O: interaction sequences as plain text, one
    interaction per line ([time u v], whitespace-separated, [#]
    comments). Lets experiments replay externally collected contact
    traces and archive generated ones. *)

val save : string -> Sequence.t -> unit
(** [save path s] writes [s]; times are the sequence indices. *)

val load : string -> Sequence.t
(** [load path] parses a trace. Lines must be sorted by time; times
    must be exactly [0, 1, 2, ...] (the model has one interaction per
    time unit). @raise Failure with a line-numbered message on
    malformed input. *)

val stream : string -> (int -> Interaction.t) * int * int
(** [stream path] is [(gen, length, max_node)]: a validating first
    pass over the trace in O(1) memory (length, largest node id,
    well-formedness — same errors as {!load}), plus a stateful
    generator reading one interaction per index {e in increasing
    order} on demand. Built for
    [Schedule.of_fun_chunked ~length gen]: replaying a huge trace
    costs one block of memory instead of the whole sequence.
    @raise Failure on malformed input, out-of-order access, or
    reading past [length]. *)

val parse_line : string -> (int * int * int) option
(** [parse_line l] is [Some (t, u, v)], or [None] for blank/comment
    lines. @raise Failure on malformed content. *)

val to_channel : out_channel -> Sequence.t -> unit
val of_lines : string list -> Sequence.t
(** @raise Failure like {!load}. *)
