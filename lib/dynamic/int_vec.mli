(** Growable int buffers, monomorphic on purpose: unlike ['a Vec.t],
    stores compile to direct unboxed writes with no caml_modify write
    barrier, which matters in the schedule-materialisation hot path.
    Used for packed-interaction buffers and sink-meeting indexes. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty vector. [capacity] (default 8) pre-sizes the backing
    array so pushes up to it never reallocate — pass a known upper
    bound (e.g. the transmission-count bound [n] of a run log) to keep
    hot append loops doubling-free. @raise Invalid_argument on a
    negative capacity. *)

val length : t -> int

val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val push : t -> int -> unit

val last : t -> int
(** @raise Invalid_argument if empty. *)

val to_array : t -> int array

val of_array : int array -> t

val iter : (int -> unit) -> t -> unit

val clear : t -> unit
(** Resets length to zero (capacity retained). *)

val truncate : t -> int -> unit
(** [truncate v len] shrinks the length to [len] (capacity retained).
    @raise Invalid_argument if [len] exceeds the current length. *)

val unsafe_get : t -> int -> int
(** [get] without the bounds check; out-of-range access is undefined
    behaviour. For hot loops whose induction variable is already
    bounded by {!length}. *)

val unsafe_set : t -> int -> int -> unit
(** [set] without the bounds check; same contract as {!unsafe_get}. *)
