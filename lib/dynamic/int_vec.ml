type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () =
  if capacity < 0 then invalid_arg "Int_vec.create: negative capacity";
  { data = Array.make (Stdlib.max 1 capacity) 0; len = 0 }

let length v = v.len

let check v i name =
  if i < 0 || i >= v.len then
    invalid_arg ("Int_vec." ^ name ^ ": index out of bounds")

let get v i =
  check v i "get";
  Array.unsafe_get v.data i

let set v i x =
  check v i "set";
  Array.unsafe_set v.data i x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let last v =
  if v.len = 0 then invalid_arg "Int_vec.last: empty vector";
  v.data.(v.len - 1)

let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let v =
    { data = Array.make (Stdlib.max 8 (Array.length a)) 0; len = 0 }
  in
  Array.blit a 0 v.data 0 (Array.length a);
  v.len <- Array.length a;
  v

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let clear v = v.len <- 0

let truncate v len =
  if len < 0 || len > v.len then
    invalid_arg "Int_vec.truncate: length out of bounds";
  v.len <- len

let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x
