module Prng = Doda_prng.Prng
module Static_graph = Doda_graph.Static_graph
module Traversal = Doda_graph.Traversal
module Graph_gen = Doda_graph.Graph_gen

type t =
  | Temporal
  | T_interval of int
  | Recurrent
  | Bounded_recurrent of int

let to_string = function
  | Temporal -> "temporal"
  | T_interval w -> Printf.sprintf "t-interval:%d" w
  | Recurrent -> "recurrent"
  | Bounded_recurrent b -> Printf.sprintf "bounded-recurrent:%d" b

let syntax = "temporal | t-interval:W | recurrent | bounded-recurrent:B"

let parse s =
  let positive name v =
    match int_of_string_opt v with
    | Some x when x >= 1 -> Ok x
    | Some _ -> Error (Printf.sprintf "%s must be >= 1, got %s" name v)
    | None -> Error (Printf.sprintf "%s is not an integer in %S" name s)
  in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "temporal" -> Ok Temporal
      | "recurrent" -> Ok Recurrent
      | _ -> Error (Printf.sprintf "unknown TVG class %S (expected %s)" s syntax)
      )
  | Some i -> (
      let head = String.sub s 0 i
      and arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "t-interval" -> Result.map (fun w -> T_interval w) (positive "window" arg)
      | "bounded-recurrent" ->
          Result.map (fun b -> Bounded_recurrent b) (positive "bound" arg)
      | _ -> Error (Printf.sprintf "unknown TVG class %S (expected %s)" s syntax)
      )

type witness =
  | Unreachable of { src : int; dst : int }
  | Disconnected_window of { start : int; len : int }
  | Vanished_edge of { u : int; v : int; last_seen : int }
  | Edge_gap of { u : int; v : int; gap_start : int; gap_end : int }

let pp_witness ppf w =
  let p fmt = Format.fprintf ppf fmt in
  match w with
  | Unreachable { src; dst } -> p "no journey from node %d to node %d" src dst
  | Disconnected_window { start; len } ->
      p "interactions [%d, %d) have a disconnected union graph" start
        (start + len)
  | Vanished_edge { u; v; last_seen } ->
      p "edge (%d, %d) last appears at time %d, before the closing half" u v
        last_seen
  | Edge_gap { u; v; gap_start; gap_end } ->
      p "edge (%d, %d) absent for the %d steps of (%d, %d)" u v
        (gap_end - gap_start - 1) gap_start gap_end

exception Witness of witness

(* ------------------------------------------------------------------ *)
(* Validators. The three interval/recurrence classes share one strictly
   forward core over [(get, length)], so frozen sequences and chunked
   streams go through identical code; [Temporal] needs one flood per
   source and therefore a {!Sequence.t}. *)

(* Union-find with path halving, reset per window. *)
let uf_find parent i =
  let i = ref i in
  while parent.(!i) <> !i do
    parent.(!i) <- parent.(parent.(!i));
    i := parent.(!i)
  done;
  !i

let t_interval ~n ~length ~window get =
  let parent = Array.make n 0 in
  let blocks = length / window in
  try
    for b = 0 to blocks - 1 do
      for v = 0 to n - 1 do
        parent.(v) <- v
      done;
      let comps = ref n in
      let start = b * window in
      for t = start to start + window - 1 do
        let i = get t in
        let ru = uf_find parent (Interaction.u i)
        and rv = uf_find parent (Interaction.v i) in
        if ru <> rv then begin
          parent.(ru) <- rv;
          decr comps
        end
      done;
      if !comps > 1 then raise (Witness (Disconnected_window { start; len = window }))
    done;
    Ok ()
  with Witness w -> Error w

(* One shared footprint scan: last occurrence per packed edge, plus
   first-appearance order so edge witnesses are deterministic. *)
let scan_edges ~length get ~on_occurrence =
  let last = Hashtbl.create 64 in
  let order = ref [] in
  for t = 0 to length - 1 do
    let key = Interaction.to_int (get t) in
    let prev =
      match Hashtbl.find_opt last key with
      | Some o -> o
      | None ->
          order := key :: !order;
          -1
    in
    on_occurrence ~key ~prev ~time:t;
    Hashtbl.replace last key t
  done;
  (last, List.rev !order)

let decode_edge key =
  let i = Interaction.of_int_unchecked key in
  (Interaction.u i, Interaction.v i)

let recurrent ~length get =
  let half = (length + 1) / 2 in
  let last, order =
    scan_edges ~length get ~on_occurrence:(fun ~key:_ ~prev:_ ~time:_ -> ())
  in
  try
    List.iter
      (fun key ->
        let last_seen = Hashtbl.find last key in
        if last_seen < half then begin
          let u, v = decode_edge key in
          raise (Witness (Vanished_edge { u; v; last_seen }))
        end)
      order;
    Ok ()
  with Witness w -> Error w

let bounded_recurrent ~length ~bound get =
  try
    let last, order =
      scan_edges ~length get ~on_occurrence:(fun ~key ~prev ~time ->
          if time - prev > bound then begin
            let u, v = decode_edge key in
            raise (Witness (Edge_gap { u; v; gap_start = prev; gap_end = time }))
          end)
    in
    List.iter
      (fun key ->
        let o = Hashtbl.find last key in
        if length - o > bound then begin
          let u, v = decode_edge key in
          raise (Witness (Edge_gap { u; v; gap_start = o; gap_end = length }))
        end)
      order;
    Ok ()
  with Witness w -> Error w

let temporal ~n s =
  try
    for src = 0 to n - 1 do
      let arrival = Temporal.earliest_arrival ~n ~src s in
      for dst = 0 to n - 1 do
        if arrival.(dst) = None then raise (Witness (Unreachable { src; dst }))
      done
    done;
    Ok ()
  with Witness w -> Error w

let check_param cls =
  match cls with
  | T_interval w when w < 1 ->
      invalid_arg "Tvg_class: T_interval window must be >= 1"
  | Bounded_recurrent b when b < 1 ->
      invalid_arg "Tvg_class: Bounded_recurrent bound must be >= 1"
  | _ -> ()

let validate_stream ~n ~length cls get =
  check_param cls;
  match cls with
  | Temporal ->
      invalid_arg
        "Tvg_class.validate_stream: Temporal needs random access (one flood \
         per source); freeze a prefix and use Tvg_class.validate"
  | T_interval window -> t_interval ~n ~length ~window get
  | Recurrent -> recurrent ~length get
  | Bounded_recurrent bound -> bounded_recurrent ~length ~bound get

let validate ~n cls s =
  check_param cls;
  match cls with
  | Temporal -> temporal ~n s
  | _ ->
      validate_stream ~n ~length:(Sequence.length s) cls (fun t ->
          Sequence.unsafe_get s t)

(* ------------------------------------------------------------------ *)
(* Classification summary. *)

type summary = {
  nodes : int;
  length : int;
  footprint_edges : int;
  footprint_connected : bool;
  temporal : (unit, witness) result;
  recurrent : (unit, witness) result;
  min_window : int option;
  min_bound : int option;
}

let summarize ~n s =
  let length = Sequence.length s in
  let get t = Sequence.unsafe_get s t in
  let footprint = Underlying.of_sequence ~n s in
  let min_window =
    let rec go w =
      if w > length then None
      else if t_interval ~n ~length ~window:w get = Ok () then Some w
      else go (2 * w)
    in
    go 1
  in
  let min_bound =
    (* The smallest valid bound is the largest gap between consecutive
       occurrences of any footprint edge, with sentinels at -1 and
       [length] — no search needed. *)
    if length = 0 then None
    else begin
      let max_gap = ref 0 in
      let last, _ =
        scan_edges ~length get ~on_occurrence:(fun ~key:_ ~prev ~time ->
            if time - prev > !max_gap then max_gap := time - prev)
      in
      Hashtbl.iter
        (fun _ o -> if length - o > !max_gap then max_gap := length - o)
        last;
      Some !max_gap
    end
  in
  {
    nodes = n;
    length;
    footprint_edges = Static_graph.edge_count footprint;
    footprint_connected = Traversal.connected footprint;
    temporal = temporal ~n s;
    recurrent = recurrent ~length get;
    min_window;
    min_bound;
  }

(* ------------------------------------------------------------------ *)
(* Class-constrained generators. Both are block generators: interaction
   [t] lives in tumbling block [t / window]; a block's contents are
   drawn the first time any of its indices is requested, so identical
   seeds replay identical schedules as long as draws arrive in
   non-decreasing time order (the schedule layer's contract). *)

let block_generator ~what ~window fill =
  let block = Array.make window 0 in
  (* Base of the next block to draw; the filled block is
     [next_base - window .. next_base - 1]. *)
  let next_base = ref 0 in
  fun t ->
    if t < !next_base - window then
      invalid_arg
        (what
       ^ ": draws must be requested in non-decreasing time order (the block \
          for an earlier time was already discarded)");
    while t >= !next_base do
      fill block;
      next_base := !next_base + window
    done;
    Interaction.of_int_unchecked block.(t - (!next_base - window))

let tree_edge_ints rng ~n =
  let tree = Graph_gen.random_tree rng ~n in
  Array.of_list
    (List.map
       (fun (u, v) -> Interaction.to_int (Interaction.make u v))
       (Static_graph.edges tree))

let gen_t_interval rng ~n ~window =
  if n < 2 then invalid_arg "Tvg_class.gen_t_interval: need n >= 2";
  if window = 1 then
    (* 1-interval (per-step connectivity): emit back-to-back fresh
       spanning trees with no fillers — the tightest refresh the
       pairwise-interaction model supports. A single interaction only
       connects n = 2, so for larger n the schedule realizes
       T-interval (n - 1): every tumbling (n - 1)-window is exactly
       one spanning tree (the validator round-trips at that width). *)
    block_generator ~what:"Tvg_class.gen_t_interval" ~window:(n - 1)
      (fun block ->
        let edges = tree_edge_ints rng ~n in
        Array.blit edges 0 block 0 (n - 1);
        Prng.shuffle rng block)
  else if window < n - 1 then
    invalid_arg
      "Tvg_class.gen_t_interval: window must be 1 (per-step connectivity, \
       realized as back-to-back spanning trees) or >= n - 1 (a window must \
       fit a spanning tree)"
  else
  block_generator ~what:"Tvg_class.gen_t_interval" ~window (fun block ->
      (* Fresh spanning tree per window, buried among uniform fillers. *)
      let edges = tree_edge_ints rng ~n in
      let m = Array.length edges in
      Array.blit edges 0 block 0 m;
      for idx = m to window - 1 do
        let a, b = Prng.pair rng n in
        block.(idx) <- Interaction.to_int (Interaction.make a b)
      done;
      Prng.shuffle rng block)

let gen_bounded_recurrent rng ~n ~bound =
  if n < 2 then invalid_arg "Tvg_class.gen_bounded_recurrent: need n >= 2";
  if bound < 2 * (n - 1) then
    invalid_arg
      "Tvg_class.gen_bounded_recurrent: bound must be >= 2 * (n - 1) (a \
       half-window must fit the whole footprint)";
  (* One fixed footprint tree; every tumbling half-window contains all
     its edges, so every sliding [bound]-window — which always covers a
     full half-window — does too. *)
  let edges = tree_edge_ints rng ~n in
  let m = Array.length edges in
  let half = bound / 2 in
  block_generator ~what:"Tvg_class.gen_bounded_recurrent" ~window:half
    (fun block ->
      Array.blit edges 0 block 0 m;
      for idx = m to half - 1 do
        block.(idx) <- Prng.choose rng edges
      done;
      Prng.shuffle rng block)
