type source = Finite of Sequence.t | Generator of (int -> Interaction.t)

(* Mutable schedule: lazily materialised prefix (generators) plus a
   lazily extended index of sink meetings. Packed interactions live in
   monomorphic int buffers, so materialisation is write-barrier-free. *)
type live = {
  node_count : int;
  sink_id : int;
  source : source;
  buf : Int_vec.t;  (* packed materialised prefix (generators only) *)
  meets : Int_vec.t array;  (* per node, times of its sink interactions *)
  mutable indexed : int;  (* interactions whose sink meetings are indexed *)
}

(* Immutable compact form: a flat packed int array plus the complete
   sink-meeting index. Nothing mutates after construction, so a frozen
   schedule is safe to share read-only across domains. *)
type frozen = {
  f_node_count : int;
  f_sink : int;
  f_seq : Sequence.t;
  f_meets : int array array;  (* per node, sorted sink-meeting times *)
}

type t = Live of live | Frozen of frozen

let check_interaction ~n i =
  if Interaction.v i >= n then
    invalid_arg "Schedule: interaction mentions a node id >= n"

let make ~n ~sink source =
  if n < 2 then invalid_arg "Schedule: need at least two nodes";
  if sink < 0 || sink >= n then invalid_arg "Schedule: sink out of range";
  Live
    {
      node_count = n;
      sink_id = sink;
      source;
      buf = Int_vec.create ();
      meets = Array.init n (fun _ -> Int_vec.create ());
      indexed = 0;
    }

let of_sequence ~n ~sink seq =
  let t = make ~n ~sink (Finite seq) in
  Sequence.iteri (fun _ i -> check_interaction ~n i) seq;
  t

let of_fun ~n ~sink gen = make ~n ~sink (Generator gen)

let n = function Live t -> t.node_count | Frozen f -> f.f_node_count
let sink = function Live t -> t.sink_id | Frozen f -> f.f_sink

let length = function
  | Live t -> (
      match t.source with
      | Finite s -> Some (Sequence.length s)
      | Generator _ -> None)
  | Frozen f -> Some (Sequence.length f.f_seq)

let materialized = function
  | Live t -> (
      match t.source with
      | Finite s -> Sequence.length s
      | Generator _ -> Int_vec.length t.buf)
  | Frozen f -> Sequence.length f.f_seq

let raw_get t idx =
  match t.source with
  | Finite s -> Sequence.get s idx
  | Generator _ -> Interaction.of_int_unchecked (Int_vec.get t.buf idx)

let ensure t upto =
  (* Materialise interactions with index < upto where possible. *)
  (match t.source with
  | Finite _ -> ()
  | Generator gen ->
      while Int_vec.length t.buf < upto do
        let idx = Int_vec.length t.buf in
        let i = gen idx in
        check_interaction ~n:t.node_count i;
        Int_vec.push t.buf (Interaction.to_int i)
      done);
  (* Record sink meetings for interactions materialised but not yet
     indexed, reading the backing store directly per source — a shared
     accessor here would cost a closure allocation per call on the
     materialisation hot path. *)
  let sink = t.sink_id in
  match t.source with
  | Finite s ->
      let stop = Stdlib.min upto (Sequence.length s) in
      while t.indexed < stop do
        let i = Sequence.unsafe_get s t.indexed in
        if Interaction.involves i sink then
          Int_vec.push t.meets.(Interaction.other i sink) t.indexed;
        t.indexed <- t.indexed + 1
      done
  | Generator _ ->
      let stop = Stdlib.min upto (Int_vec.length t.buf) in
      while t.indexed < stop do
        let i =
          Interaction.of_int_unchecked (Int_vec.unsafe_get t.buf t.indexed)
        in
        if Interaction.involves i sink then
          Int_vec.push t.meets.(Interaction.other i sink) t.indexed;
        t.indexed <- t.indexed + 1
      done

let get sched time =
  if time < 0 then invalid_arg "Schedule.get: negative time";
  match sched with
  | Live t -> (
      match t.source with
      | Finite s ->
          if time < Sequence.length s then Some (Sequence.get s time) else None
      | Generator _ ->
          ensure t (time + 1);
          Some (Interaction.of_int_unchecked (Int_vec.get t.buf time)))
  | Frozen f ->
      if time < Sequence.length f.f_seq then Some (Sequence.get f.f_seq time)
      else None

(* Allocation-free variant of [get]: the engine's hot loop calls this
   once per interaction, so no option wrapper. *)
let get_exn sched time =
  if time < 0 then invalid_arg "Schedule.get_exn: negative time";
  match sched with
  | Live t -> (
      match t.source with
      | Finite s ->
          if time < Sequence.length s then Sequence.get s time
          else invalid_arg "Schedule.get_exn: past the end of a finite schedule"
      | Generator _ ->
          ensure t (time + 1);
          Interaction.of_int_unchecked (Int_vec.get t.buf time))
  | Frozen f ->
      if time < Sequence.length f.f_seq then Sequence.get f.f_seq time
      else invalid_arg "Schedule.get_exn: past the end of a finite schedule"

let backing = function
  | Live { source = Finite s; _ } -> Some s
  | Live { source = Generator _; _ } -> None
  | Frozen f -> Some f.f_seq

let prefix sched k =
  if k < 0 then invalid_arg "Schedule.prefix: negative length";
  (match length sched with
  | Some len when len < k -> invalid_arg "Schedule.prefix: schedule too short"
  | _ -> ());
  match sched with
  | Frozen f -> Sequence.sub f.f_seq ~pos:0 ~len:k
  | Live t ->
      ensure t k;
      Sequence.of_array (Array.init k (fun idx -> raw_get t idx))

(* First index in the sorted vector [v] whose value exceeds [x], or
   [Int_vec.length v] if none. *)
let first_above v x =
  let lo = ref 0 and hi = ref (Int_vec.length v) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int_vec.get v mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Same, over a plain sorted int array (frozen schedules). *)
let first_above_arr (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get a mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let freeze sched =
  match sched with
  | Frozen _ -> sched
  | Live t -> (
      match t.source with
      | Generator _ ->
          invalid_arg
            "Schedule.freeze: unbounded schedule (freeze a finite prefix \
             instead)"
      | Finite s ->
          let n = t.node_count and sink = t.sink_id in
          let meets = Array.init n (fun _ -> Int_vec.create ()) in
          let len = Sequence.length s in
          for time = 0 to len - 1 do
            let i = Sequence.unsafe_get s time in
            if Interaction.involves i sink then
              Int_vec.push meets.(Interaction.other i sink) time
          done;
          Frozen
            {
              f_node_count = n;
              f_sink = sink;
              f_seq = s;
              f_meets = Array.map Int_vec.to_array meets;
            })

let is_frozen = function Frozen _ -> true | Live _ -> false

let next_meet_with_sink sched ~node ~after ~limit =
  let count = n sched in
  if node < 0 || node >= count then
    invalid_arg "Schedule.next_meet_with_sink: node out of range";
  if node = sink sched then begin
    let candidate = after + 1 in
    if candidate <= limit then Some candidate else None
  end
  else
    match sched with
    | Live t ->
        ensure t (limit + 1);
        let v = t.meets.(node) in
        let pos = first_above v after in
        if pos < Int_vec.length v && Int_vec.get v pos <= limit then
          Some (Int_vec.get v pos)
        else None
    | Frozen f ->
        let a = f.f_meets.(node) in
        let pos = first_above_arr a after in
        if pos < Array.length a && a.(pos) <= limit then Some a.(pos) else None

(* ------------------------------------------------------------------ *)
(* Batch-friendly step iteration: a stepper owns per-node cursors into
   the sink-meeting index, so the lockstep batch engine's monotone
   queries cost O(1) amortised instead of a binary search each, and —
   decisively for generator schedules — the next-meet search
   materialises only until the first meet past [after] is known,
   instead of the eager [ensure (limit + 1)] of the plain oracle
   (policies probe with limits of 100 n^2 while runs end orders of
   magnitude earlier). Answers are identical to
   [next_meet_with_sink] by construction: meets are indexed in
   increasing time order, so the first meet found incrementally is the
   first meet the fully-materialised index would report. *)

type stepper = { st_sched : t; st_pos : int array }

(* Interactions materialised per [ensure] when a stepper has to extend
   a generator schedule: large enough to amortise the call, small
   enough not to overshoot the probe limit by much. *)
let stepper_chunk = 512

let stepper sched =
  (match sched with
  | Live ({ source = Finite s; _ } as t) ->
      (* Finite sources index in one O(len) pass up front (what
         [freeze] would do), so every later query is cursor-only. *)
      ensure t (Sequence.length s)
  | Live _ | Frozen _ -> ());
  { st_sched = sched; st_pos = Array.make (n sched) 0 }

let stepper_schedule st = st.st_sched

let stepper_get st time =
  if time < 0 then invalid_arg "Schedule.stepper_get: negative time";
  match st.st_sched with
  | Frozen f ->
      if time < Sequence.length f.f_seq then Sequence.unsafe_get f.f_seq time
      else invalid_arg "Schedule.stepper_get: past the end"
  | Live t -> (
      match t.source with
      | Finite s ->
          if time < Sequence.length s then Sequence.unsafe_get s time
          else invalid_arg "Schedule.stepper_get: past the end"
      | Generator _ ->
          if time >= Int_vec.length t.buf then ensure t (time + stepper_chunk);
          Interaction.of_int_unchecked (Int_vec.unsafe_get t.buf time))

let stepper_next_meet st ~node ~after ~limit =
  let count = n st.st_sched in
  if node < 0 || node >= count then
    invalid_arg "Schedule.stepper_next_meet: node out of range";
  if node = sink st.st_sched then begin
    let candidate = after + 1 in
    if candidate <= limit then Some candidate else None
  end
  else
    match st.st_sched with
    | Frozen f ->
        let a = f.f_meets.(node) in
        let len = Array.length a in
        let p = ref (Array.unsafe_get st.st_pos node) in
        (* Queries are monotone in the lockstep loop; re-synchronise by
           binary search if a caller ever goes backwards. *)
        if !p > 0 && Array.unsafe_get a (!p - 1) > after then
          p := first_above_arr a after
        else
          while !p < len && Array.unsafe_get a !p <= after do
            incr p
          done;
        Array.unsafe_set st.st_pos node !p;
        if !p < len && Array.unsafe_get a !p <= limit then
          Some (Array.unsafe_get a !p)
        else None
    | Live t ->
        let v = t.meets.(node) in
        let p = ref st.st_pos.(node) in
        if !p > 0 && Int_vec.get v (!p - 1) > after then p := first_above v after;
        let searching = ref true in
        while !searching do
          while
            !p < Int_vec.length v && Int_vec.unsafe_get v !p <= after
          do
            incr p
          done;
          if !p < Int_vec.length v then searching := false
          else
            match t.source with
            | Finite _ -> searching := false (* fully indexed up front *)
            | Generator _ ->
                if t.indexed > limit then searching := false
                else
                  (* Progress is guaranteed: [t.indexed <= limit], so
                     the target strictly exceeds the indexed prefix. *)
                  ensure t (Stdlib.min (limit + 1) (t.indexed + stepper_chunk))
        done;
        st.st_pos.(node) <- !p;
        if !p < Int_vec.length v && Int_vec.unsafe_get v !p <= limit then
          Some (Int_vec.unsafe_get v !p)
        else None

let meets_with_sink_upto sched k =
  let count = n sched and sink_id = sink sched in
  let counts = Array.make count 0 in
  (match sched with
  | Live t ->
      ensure t k;
      for node = 0 to count - 1 do
        if node <> sink_id then
          counts.(node) <- first_above t.meets.(node) (k - 1)
      done
  | Frozen f ->
      for node = 0 to count - 1 do
        if node <> sink_id then
          counts.(node) <- first_above_arr f.f_meets.(node) (k - 1)
      done);
  counts.(sink_id) <- Array.fold_left ( + ) 0 counts;
  counts
