type source = Finite of Sequence.t | Generator of (int -> Interaction.t)

type t = {
  node_count : int;
  sink_id : int;
  source : source;
  buf : Interaction.t Vec.t;  (* materialised prefix (generators only) *)
  meets : int Vec.t array;  (* per node, times of its sink interactions *)
  mutable indexed : int;  (* interactions whose sink meetings are indexed *)
}

let check_interaction t i =
  if Interaction.v i >= t.node_count then
    invalid_arg "Schedule: interaction mentions a node id >= n"

let make ~n ~sink source =
  if n < 2 then invalid_arg "Schedule: need at least two nodes";
  if sink < 0 || sink >= n then invalid_arg "Schedule: sink out of range";
  {
    node_count = n;
    sink_id = sink;
    source;
    buf = Vec.create ~dummy:Interaction.dummy;
    meets = Array.init n (fun _ -> Vec.create ~dummy:0);
    indexed = 0;
  }

let of_sequence ~n ~sink seq =
  let t = make ~n ~sink (Finite seq) in
  Sequence.iteri (fun _ i -> check_interaction t i) seq;
  t

let of_fun ~n ~sink gen = make ~n ~sink (Generator gen)

let n t = t.node_count
let sink t = t.sink_id

let length t =
  match t.source with Finite s -> Some (Sequence.length s) | Generator _ -> None

let materialized t =
  match t.source with Finite s -> Sequence.length s | Generator _ -> Vec.length t.buf

(* Record sink meetings for all interactions up to index [upto]
   (exclusive) that have been materialised but not yet indexed. *)
let index_upto t upto raw_get =
  let stop = Stdlib.min upto (materialized t) in
  while t.indexed < stop do
    let i = raw_get t.indexed in
    if Interaction.involves i t.sink_id then begin
      let node = Interaction.other i t.sink_id in
      Vec.push t.meets.(node) t.indexed
    end;
    t.indexed <- t.indexed + 1
  done

let raw_get t idx =
  match t.source with
  | Finite s -> Sequence.get s idx
  | Generator _ -> Vec.get t.buf idx

let ensure t upto =
  (* Materialise interactions with index < upto where possible. *)
  (match t.source with
  | Finite _ -> ()
  | Generator gen ->
      while Vec.length t.buf < upto do
        let idx = Vec.length t.buf in
        let i = gen idx in
        check_interaction t i;
        Vec.push t.buf i
      done);
  index_upto t upto (raw_get t)

let get t time =
  if time < 0 then invalid_arg "Schedule.get: negative time";
  match t.source with
  | Finite s -> if time < Sequence.length s then Some (Sequence.get s time) else None
  | Generator _ ->
      ensure t (time + 1);
      Some (Vec.get t.buf time)

(* Allocation-free variant of [get]: the engine's hot loop calls this
   once per interaction, so no option wrapper. *)
let get_exn t time =
  if time < 0 then invalid_arg "Schedule.get_exn: negative time";
  match t.source with
  | Finite s ->
      if time < Sequence.length s then Sequence.get s time
      else invalid_arg "Schedule.get_exn: past the end of a finite schedule"
  | Generator _ ->
      ensure t (time + 1);
      Vec.get t.buf time

let prefix t k =
  if k < 0 then invalid_arg "Schedule.prefix: negative length";
  (match length t with
  | Some len when len < k -> invalid_arg "Schedule.prefix: schedule too short"
  | _ -> ());
  ensure t k;
  Sequence.of_array (Array.init k (fun idx -> raw_get t idx))

(* First index in the sorted vector [v] whose value exceeds [x], or
   [Vec.length v] if none. *)
let first_above v x =
  let lo = ref 0 and hi = ref (Vec.length v) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Vec.get v mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let next_meet_with_sink t ~node ~after ~limit =
  if node < 0 || node >= t.node_count then
    invalid_arg "Schedule.next_meet_with_sink: node out of range";
  if node = t.sink_id then begin
    let candidate = after + 1 in
    if candidate <= limit then Some candidate else None
  end
  else begin
    ensure t (limit + 1);
    let v = t.meets.(node) in
    let pos = first_above v after in
    if pos < Vec.length v && Vec.get v pos <= limit then Some (Vec.get v pos)
    else None
  end

let meets_with_sink_upto t k =
  ensure t k;
  let counts = Array.make t.node_count 0 in
  for node = 0 to t.node_count - 1 do
    if node <> t.sink_id then
      counts.(node) <- first_above t.meets.(node) (k - 1)
  done;
  counts.(t.sink_id) <- Array.fold_left ( + ) 0 counts;
  counts
