type source = Finite of Sequence.t | Generator of (int -> Interaction.t)

(* Mutable schedule: lazily materialised prefix (generators) plus a
   lazily extended index of sink meetings. Packed interactions live in
   monomorphic int buffers, so materialisation is write-barrier-free.
   The sink-meeting vectors are allocated per *touched* node on first
   meeting, so an n-node schedule whose run only ever exercises a few
   nodes near the sink costs O(touched) vectors, not O(n). *)
type live = {
  node_count : int;
  sink_id : int;
  source : source;
  buf : Int_vec.t;  (* packed materialised prefix (generators only) *)
  meets : Int_vec.t option array;
      (* per node, times of its sink interactions; [None] until the
         node's first indexed sink meeting *)
  mutable indexed : int;  (* interactions whose sink meetings are indexed *)
}

(* Immutable compact form: a flat packed int array plus the complete
   sink-meeting index. Nothing mutates after construction, so a frozen
   schedule is safe to share read-only across domains. *)
type frozen = {
  f_node_count : int;
  f_sink : int;
  f_seq : Sequence.t;
  f_meets : int array array;  (* per node, sorted sink-meeting times *)
}

(* Double-buffered block prefetch, enabled via [chunk_prefetch]: a
   producer task (typically on a pool worker domain) decodes the *next*
   block into a spare buffer while the consumer drains the current one;
   when the consumer exhausts its block the two buffers swap and the
   next fill is queued. Exactly one fill is in flight at any moment, so
   the generator is still called exactly once per index, in increasing
   order — the producer chain merely runs up to one block ahead. *)
type fill =
  | Pf_idle  (* nothing to decode (finite schedule fully produced) *)
  | Pf_queued of { pf_base : int; pf_cap : int }  (* submitted, not started *)
  | Pf_filling  (* some domain is decoding into the spare buffer *)
  | Pf_ready of { pf_base : int; pf_len : int; pf_async : bool }
      (* spare buffer holds [pf_base .. pf_base+pf_len); [pf_async] iff
         a pool task (not the consumer stealing the job) decoded it *)
  | Pf_failed  (* the generator raised; the exception is parked below *)

type prefetch = {
  p_submit : (unit -> unit) -> unit;  (* producer-task sink (pool submit) *)
  p_now : unit -> int;  (* monotonic clock, ns (stall accounting) *)
  p_lock : Mutex.t;
  p_done : Condition.t;  (* signalled on Pf_ready / Pf_failed *)
  mutable p_buf : int array;  (* the spare buffer (same size as c_block) *)
  mutable p_fill : fill;
  mutable p_error : (exn * Printexc.raw_backtrace) option;
  mutable p_async : int;  (* blocks consumed that a pool task decoded *)
  mutable p_stalls : int;  (* consumer waits on an unfinished fill *)
  mutable p_stall_ns : int;
}

(* Streaming form: one fixed-size block of packed interactions decoded
   from the generator on demand, recycled in place as time advances.
   Memory is O(block) whatever the horizon — no prefix buffer, no
   sink-meeting index — at the price of strictly forward access. *)
type chunked = {
  c_node_count : int;
  c_sink : int;
  c_gen : int -> Interaction.t;
  c_length : int option;  (* finite horizon (streamed traces), if any *)
  mutable c_block : int array;  (* packed interactions [c_base .. c_base+c_len) *)
  mutable c_base : int;  (* time of [c_block.(0)] *)
  mutable c_len : int;  (* valid entries in the block *)
  mutable c_refills : int;  (* blocks installed as current (deterministic) *)
  mutable c_prefetch : prefetch option;
}

type t = Live of live | Frozen of frozen | Chunked of chunked

let default_block = 8192

let check_interaction ~n i =
  if Interaction.v i >= n then
    invalid_arg "Schedule: interaction mentions a node id >= n"

(* Fail fast on node counts the packed encoding cannot represent: an
   interaction packs both ids into one 63-bit OCaml int as
   [(u lsl 31) lor v], so ids — and the sink-meeting index keyed by
   them — silently wrap past [Interaction.max_node_id]. *)
let check_node_count n =
  if n < 2 then invalid_arg "Schedule: need at least two nodes";
  if n - 1 > Interaction.max_node_id then
    invalid_arg
      (Printf.sprintf
         "Schedule: n = %d exceeds the packed-interaction encoding (node ids \
          take 31 of the 63 int bits, so n <= %d)"
         n
         (Interaction.max_node_id + 1))

let make ~n ~sink source =
  check_node_count n;
  if sink < 0 || sink >= n then invalid_arg "Schedule: sink out of range";
  Live
    {
      node_count = n;
      sink_id = sink;
      source;
      buf = Int_vec.create ();
      meets = Array.make n None;
      indexed = 0;
    }

let of_sequence ~n ~sink seq =
  let t = make ~n ~sink (Finite seq) in
  Sequence.iteri (fun _ i -> check_interaction ~n i) seq;
  t

let of_fun ~n ~sink gen = make ~n ~sink (Generator gen)

let of_fun_chunked ?(block = default_block) ?length ~n ~sink gen =
  check_node_count n;
  if sink < 0 || sink >= n then invalid_arg "Schedule: sink out of range";
  if block < 1 then invalid_arg "Schedule.of_fun_chunked: block must be >= 1";
  (match length with
  | Some l when l < 0 -> invalid_arg "Schedule.of_fun_chunked: negative length"
  | _ -> ());
  Chunked
    {
      c_node_count = n;
      c_sink = sink;
      c_gen = gen;
      c_length = length;
      c_block = Array.make block (Interaction.to_int Interaction.dummy);
      c_base = 0;
      c_len = 0;
      c_refills = 0;
      c_prefetch = None;
    }

let n = function
  | Live t -> t.node_count
  | Frozen f -> f.f_node_count
  | Chunked c -> c.c_node_count

let sink = function
  | Live t -> t.sink_id
  | Frozen f -> f.f_sink
  | Chunked c -> c.c_sink

let length = function
  | Live t -> (
      match t.source with
      | Finite s -> Some (Sequence.length s)
      | Generator _ -> None)
  | Frozen f -> Some (Sequence.length f.f_seq)
  | Chunked c -> c.c_length

let materialized = function
  | Live t -> (
      match t.source with
      | Finite s -> Sequence.length s
      | Generator _ -> Int_vec.length t.buf)
  | Frozen f -> Sequence.length f.f_seq
  | Chunked c -> c.c_base + c.c_len

let raw_get t idx =
  match t.source with
  | Finite s -> Sequence.get s idx
  | Generator _ -> Interaction.of_int_unchecked (Int_vec.get t.buf idx)

(* The sink-meeting vector of [node], allocated on first use. *)
let meet_vec t node =
  match Array.unsafe_get t.meets node with
  | Some v -> v
  | None ->
      let v = Int_vec.create () in
      t.meets.(node) <- Some v;
      v

let ensure t upto =
  (* Materialise interactions with index < upto where possible. *)
  (match t.source with
  | Finite _ -> ()
  | Generator gen ->
      while Int_vec.length t.buf < upto do
        let idx = Int_vec.length t.buf in
        let i = gen idx in
        check_interaction ~n:t.node_count i;
        Int_vec.push t.buf (Interaction.to_int i)
      done);
  (* Record sink meetings for interactions materialised but not yet
     indexed, reading the backing store directly per source — a shared
     accessor here would cost a closure allocation per call on the
     materialisation hot path. *)
  let sink = t.sink_id in
  match t.source with
  | Finite s ->
      let stop = Stdlib.min upto (Sequence.length s) in
      while t.indexed < stop do
        let i = Sequence.unsafe_get s t.indexed in
        if Interaction.involves i sink then
          Int_vec.push (meet_vec t (Interaction.other i sink)) t.indexed;
        t.indexed <- t.indexed + 1
      done
  | Generator _ ->
      let stop = Stdlib.min upto (Int_vec.length t.buf) in
      while t.indexed < stop do
        let i =
          Interaction.of_int_unchecked (Int_vec.unsafe_get t.buf t.indexed)
        in
        if Interaction.involves i sink then
          Int_vec.push (meet_vec t (Interaction.other i sink)) t.indexed;
        t.indexed <- t.indexed + 1
      done

(* Decode [cap] interactions from [base] into [buf]. Shared by the
   synchronous refill and the producer task. *)
let fill_block ~n gen buf base cap =
  for k = 0 to cap - 1 do
    let i = gen (base + k) in
    check_interaction ~n i;
    Array.unsafe_set buf k (Interaction.to_int i)
  done

(* Run whatever fill is currently queued, if any. Called both by the
   submitted pool task ([async = true]) and by the consumer when it
   would otherwise wait on a job no worker has picked up yet (the
   still-queued job is stolen and run inline, so a pool whose workers
   are all busy never deadlocks the consumer; the stale pool task then
   finds nothing queued and returns). *)
let prefetch_run_fill ~async c p =
  Mutex.lock p.p_lock;
  match p.p_fill with
  | Pf_queued { pf_base; pf_cap } -> (
      p.p_fill <- Pf_filling;
      Mutex.unlock p.p_lock;
      match fill_block ~n:c.c_node_count c.c_gen p.p_buf pf_base pf_cap with
      | () ->
          Mutex.lock p.p_lock;
          p.p_fill <- Pf_ready { pf_base; pf_len = pf_cap; pf_async = async };
          Condition.broadcast p.p_done;
          Mutex.unlock p.p_lock
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock p.p_lock;
          p.p_fill <- Pf_failed;
          p.p_error <- Some (e, bt);
          Condition.broadcast p.p_done;
          Mutex.unlock p.p_lock)
  | Pf_idle | Pf_filling | Pf_ready _ | Pf_failed -> Mutex.unlock p.p_lock

(* Queue the fill of the next undecoded block (the spare buffer is free
   by invariant: its previous contents were just swapped in, or this is
   the enabling call). *)
let prefetch_queue c p =
  let base = c.c_base + c.c_len in
  let cap =
    match c.c_length with
    | Some l -> Stdlib.min (Array.length p.p_buf) (l - base)
    | None -> Array.length p.p_buf
  in
  if cap <= 0 then begin
    Mutex.lock p.p_lock;
    p.p_fill <- Pf_idle;
    Mutex.unlock p.p_lock
  end
  else begin
    Mutex.lock p.p_lock;
    p.p_fill <- Pf_queued { pf_base = base; pf_cap = cap };
    Mutex.unlock p.p_lock;
    p.p_submit (fun () -> prefetch_run_fill ~async:true c p)
  end

(* Install the next block from the producer chain: steal the fill if no
   worker started it, wait (counting the stall) if one is mid-decode,
   then swap the buffers and queue the following fill. *)
let prefetch_advance c p =
  (match p.p_fill with
  | Pf_queued _ -> prefetch_run_fill ~async:false c p
  | Pf_idle | Pf_filling | Pf_ready _ | Pf_failed -> ());
  Mutex.lock p.p_lock;
  (match p.p_fill with
  | Pf_filling ->
      let t0 = p.p_now () in
      while p.p_fill = Pf_filling do
        Condition.wait p.p_done p.p_lock
      done;
      p.p_stalls <- p.p_stalls + 1;
      p.p_stall_ns <- p.p_stall_ns + (p.p_now () - t0)
  | Pf_idle | Pf_queued _ | Pf_ready _ | Pf_failed -> ());
  match p.p_fill with
  | Pf_ready { pf_base; pf_len; pf_async } ->
      let old = c.c_block in
      c.c_block <- p.p_buf;
      p.p_buf <- old;
      Mutex.unlock p.p_lock;
      c.c_base <- pf_base;
      c.c_len <- pf_len;
      c.c_refills <- c.c_refills + 1;
      if pf_async then p.p_async <- p.p_async + 1;
      prefetch_queue c p
  | Pf_failed ->
      let e, bt =
        match p.p_error with Some eb -> eb | None -> assert false
      in
      Mutex.unlock p.p_lock;
      Printexc.raise_with_backtrace e bt
  | Pf_idle | Pf_queued _ | Pf_filling ->
      (* [Pf_idle] needs [c_base + c_len = c_length], which the length
         guard in [chunk_advance] already rejected; the other two are
         excluded by the wait above. *)
      Mutex.unlock p.p_lock;
      assert false

(* Advance a chunked schedule so its block covers [time], decoding
   whole blocks from the generator. The block is refilled in place:
   once time moves past an entry it is gone for good, hence the
   strictly-forward contract. Decoding whole blocks means the
   generator may run up to one block ahead of the highest time read —
   still exactly once per index, in increasing order. *)
let chunk_advance ~op c time =
  if time < c.c_base then
    invalid_arg
      (Printf.sprintf
         "Schedule.%s: chunked schedules are forward-only (time %d is before \
          the current block at %d, whose entries were discarded); rewinding \
          needs a replayable schedule — rebuild without --stream, e.g. \
          of_fun or a frozen prefix instead of of_fun_chunked"
         op time c.c_base);
  (match c.c_length with
  | Some l when time >= l ->
      invalid_arg
        (Printf.sprintf
           "Schedule.%s: time %d is past the end of a finite chunked \
            schedule of length %d"
           op time l)
  | _ -> ());
  while time >= c.c_base + c.c_len do
    match c.c_prefetch with
    | Some p -> prefetch_advance c p
    | None ->
        let base = c.c_base + c.c_len in
        let cap =
          match c.c_length with
          | Some l -> Stdlib.min (Array.length c.c_block) (l - base)
          | None -> Array.length c.c_block
        in
        fill_block ~n:c.c_node_count c.c_gen c.c_block base cap;
        c.c_base <- base;
        c.c_len <- cap;
        c.c_refills <- c.c_refills + 1
  done

let chunk_get ~op c time =
  chunk_advance ~op c time;
  Interaction.of_int_unchecked (Array.unsafe_get c.c_block (time - c.c_base))

let is_chunked = function Chunked _ -> true | Live _ | Frozen _ -> false

let chunk_view sched time =
  match sched with
  | Chunked c ->
      if time < 0 then invalid_arg "Schedule.chunk_view: negative time";
      chunk_advance ~op:"chunk_view" c time;
      let off = time - c.c_base in
      (c.c_block, off, c.c_len - off)
  | Live _ | Frozen _ ->
      invalid_arg "Schedule.chunk_view: not a chunked schedule"

type chunk_stats = {
  refills : int;
  prefetched : int;
  stalls : int;
  stall_ns : int;
}

let chunk_stats = function
  | Chunked c -> (
      match c.c_prefetch with
      | None ->
          { refills = c.c_refills; prefetched = 0; stalls = 0; stall_ns = 0 }
      | Some p ->
          {
            refills = c.c_refills;
            prefetched = p.p_async;
            stalls = p.p_stalls;
            stall_ns = p.p_stall_ns;
          })
  | Live _ | Frozen _ -> { refills = 0; prefetched = 0; stalls = 0; stall_ns = 0 }

let chunk_prefetch sched ~submit ~now =
  match sched with
  | Chunked c -> (
      match c.c_prefetch with
      | Some _ -> ()  (* already pipelined; keep the running producer chain *)
      | None ->
          let p =
            {
              p_submit = submit;
              p_now = now;
              p_lock = Mutex.create ();
              p_done = Condition.create ();
              p_buf =
                Array.make (Array.length c.c_block)
                  (Interaction.to_int Interaction.dummy);
              p_fill = Pf_idle;
              p_error = None;
              p_async = 0;
              p_stalls = 0;
              p_stall_ns = 0;
            }
          in
          c.c_prefetch <- Some p;
          prefetch_queue c p)
  | Live _ | Frozen _ ->
      invalid_arg "Schedule.chunk_prefetch: not a chunked schedule"

let get sched time =
  if time < 0 then invalid_arg "Schedule.get: negative time";
  match sched with
  | Live t -> (
      match t.source with
      | Finite s ->
          if time < Sequence.length s then Some (Sequence.get s time) else None
      | Generator _ ->
          ensure t (time + 1);
          Some (Interaction.of_int_unchecked (Int_vec.get t.buf time)))
  | Frozen f ->
      if time < Sequence.length f.f_seq then Some (Sequence.get f.f_seq time)
      else None
  | Chunked c -> (
      match c.c_length with
      | Some l when time >= l -> None
      | _ -> Some (chunk_get ~op:"get" c time))

(* Allocation-free variant of [get]: the engine's hot loop calls this
   once per interaction, so no option wrapper. *)
let get_exn sched time =
  if time < 0 then invalid_arg "Schedule.get_exn: negative time";
  match sched with
  | Live t -> (
      match t.source with
      | Finite s ->
          if time < Sequence.length s then Sequence.get s time
          else invalid_arg "Schedule.get_exn: past the end of a finite schedule"
      | Generator _ ->
          ensure t (time + 1);
          Interaction.of_int_unchecked (Int_vec.get t.buf time))
  | Frozen f ->
      if time < Sequence.length f.f_seq then Sequence.get f.f_seq time
      else invalid_arg "Schedule.get_exn: past the end of a finite schedule"
  | Chunked c -> chunk_get ~op:"get_exn" c time

let backing = function
  | Live { source = Finite s; _ } -> Some s
  | Live { source = Generator _; _ } -> None
  | Frozen f -> Some f.f_seq
  | Chunked _ -> None

let prefix sched k =
  if k < 0 then invalid_arg "Schedule.prefix: negative length";
  (match length sched with
  | Some len when len < k -> invalid_arg "Schedule.prefix: schedule too short"
  | _ -> ());
  match sched with
  | Frozen f -> Sequence.sub f.f_seq ~pos:0 ~len:k
  | Live t ->
      ensure t k;
      Sequence.of_array (Array.init k (fun idx -> raw_get t idx))
  | Chunked _ ->
      invalid_arg
        "Schedule.prefix: chunked schedules keep no prefix (use of_fun for \
         offline analysis)"

(* First index in the sorted vector [v] whose value exceeds [x], or
   [Int_vec.length v] if none. *)
let first_above v x =
  let lo = ref 0 and hi = ref (Int_vec.length v) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int_vec.get v mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Same, over a plain sorted int array (frozen schedules). *)
let first_above_arr (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get a mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let freeze sched =
  match sched with
  | Frozen _ -> sched
  | Chunked _ ->
      invalid_arg
        "Schedule.freeze: chunked schedules are streaming-only (use of_fun \
         and freeze a finite prefix instead)"
  | Live t -> (
      match t.source with
      | Generator _ ->
          invalid_arg
            "Schedule.freeze: unbounded schedule (freeze a finite prefix \
             instead)"
      | Finite s ->
          let n = t.node_count and sink = t.sink_id in
          let meets = Array.make n None in
          let len = Sequence.length s in
          for time = 0 to len - 1 do
            let i = Sequence.unsafe_get s time in
            if Interaction.involves i sink then
              let node = Interaction.other i sink in
              let v =
                match meets.(node) with
                | Some v -> v
                | None ->
                    let v = Int_vec.create () in
                    meets.(node) <- Some v;
                    v
              in
              Int_vec.push v time
          done;
          Frozen
            {
              f_node_count = n;
              f_sink = sink;
              f_seq = s;
              f_meets =
                Array.map
                  (function None -> [||] | Some v -> Int_vec.to_array v)
                  meets;
            })

let is_frozen = function Frozen _ -> true | Live _ | Chunked _ -> false

let no_meet_index which =
  invalid_arg
    (Printf.sprintf
       "Schedule.%s: chunked schedules keep no sink-meeting index (meet-time \
        knowledge needs of_fun or a frozen schedule)"
       which)

let next_meet_with_sink sched ~node ~after ~limit =
  let count = n sched in
  if node < 0 || node >= count then
    invalid_arg "Schedule.next_meet_with_sink: node out of range";
  if node = sink sched then begin
    let candidate = after + 1 in
    if candidate <= limit then Some candidate else None
  end
  else
    match sched with
    | Chunked _ -> no_meet_index "next_meet_with_sink"
    | Live t -> (
        ensure t (limit + 1);
        match t.meets.(node) with
        | None -> None
        | Some v ->
            let pos = first_above v after in
            if pos < Int_vec.length v && Int_vec.get v pos <= limit then
              Some (Int_vec.get v pos)
            else None)
    | Frozen f ->
        let a = f.f_meets.(node) in
        let pos = first_above_arr a after in
        if pos < Array.length a && a.(pos) <= limit then Some a.(pos) else None

(* ------------------------------------------------------------------ *)
(* Batch-friendly step iteration: a stepper owns per-node cursors into
   the sink-meeting index, so the lockstep batch engine's monotone
   queries cost O(1) amortised instead of a binary search each, and —
   decisively for generator schedules — the next-meet search
   materialises only until the first meet past [after] is known,
   instead of the eager [ensure (limit + 1)] of the plain oracle
   (policies probe with limits of 100 n^2 while runs end orders of
   magnitude earlier). Answers are identical to
   [next_meet_with_sink] by construction: meets are indexed in
   increasing time order, so the first meet found incrementally is the
   first meet the fully-materialised index would report. *)

type stepper = { st_sched : t; st_pos : int array }

(* Interactions materialised per [ensure] when a stepper has to extend
   a generator schedule: large enough to amortise the call, small
   enough not to overshoot the probe limit by much. *)
let stepper_chunk = 512

let stepper sched =
  (match sched with
  | Live ({ source = Finite s; _ } as t) ->
      (* Finite sources index in one O(len) pass up front (what
         [freeze] would do), so every later query is cursor-only. *)
      ensure t (Sequence.length s)
  | Live _ | Frozen _ | Chunked _ -> ());
  { st_sched = sched; st_pos = Array.make (n sched) 0 }

let stepper_schedule st = st.st_sched

let stepper_get st time =
  if time < 0 then invalid_arg "Schedule.stepper_get: negative time";
  match st.st_sched with
  | Frozen f ->
      if time < Sequence.length f.f_seq then Sequence.unsafe_get f.f_seq time
      else invalid_arg "Schedule.stepper_get: past the end"
  | Chunked c -> chunk_get ~op:"stepper_get" c time
  | Live t -> (
      match t.source with
      | Finite s ->
          if time < Sequence.length s then Sequence.unsafe_get s time
          else invalid_arg "Schedule.stepper_get: past the end"
      | Generator _ ->
          if time >= Int_vec.length t.buf then ensure t (time + stepper_chunk);
          Interaction.of_int_unchecked (Int_vec.unsafe_get t.buf time))

let stepper_next_meet st ~node ~after ~limit =
  let count = n st.st_sched in
  if node < 0 || node >= count then
    invalid_arg "Schedule.stepper_next_meet: node out of range";
  if node = sink st.st_sched then begin
    let candidate = after + 1 in
    if candidate <= limit then Some candidate else None
  end
  else
    match st.st_sched with
    | Chunked _ -> no_meet_index "stepper_next_meet"
    | Frozen f ->
        let a = f.f_meets.(node) in
        let len = Array.length a in
        let p = ref (Array.unsafe_get st.st_pos node) in
        (* Queries are monotone in the lockstep loop; re-synchronise by
           binary search if a caller ever goes backwards. *)
        if !p > 0 && Array.unsafe_get a (!p - 1) > after then
          p := first_above_arr a after
        else
          while !p < len && Array.unsafe_get a !p <= after do
            incr p
          done;
        Array.unsafe_set st.st_pos node !p;
        if !p < len && Array.unsafe_get a !p <= limit then
          Some (Array.unsafe_get a !p)
        else None
    | Live t ->
        (* The node's meet vector may not exist yet (lazy allocation)
           and may appear mid-search when [ensure] indexes its first
           sink meeting, so re-read [t.meets.(node)] after every
           materialisation step. *)
        let vec_len () =
          match Array.unsafe_get t.meets node with
          | None -> 0
          | Some v -> Int_vec.length v
        in
        let vec_get p =
          match Array.unsafe_get t.meets node with
          | None -> invalid_arg "Schedule.stepper_next_meet: empty meet index"
          | Some v -> Int_vec.unsafe_get v p
        in
        let p = ref st.st_pos.(node) in
        if !p > 0 && vec_get (!p - 1) > after then
          p :=
            (match Array.unsafe_get t.meets node with
            | None -> 0
            | Some v -> first_above v after);
        let searching = ref true in
        while !searching do
          while !p < vec_len () && vec_get !p <= after do
            incr p
          done;
          if !p < vec_len () then searching := false
          else
            match t.source with
            | Finite _ -> searching := false (* fully indexed up front *)
            | Generator _ ->
                if t.indexed > limit then searching := false
                else
                  (* Progress is guaranteed: [t.indexed <= limit], so
                     the target strictly exceeds the indexed prefix. *)
                  ensure t (Stdlib.min (limit + 1) (t.indexed + stepper_chunk))
        done;
        st.st_pos.(node) <- !p;
        if !p < vec_len () && vec_get !p <= limit then Some (vec_get !p)
        else None

let meets_with_sink_upto sched k =
  let count = n sched and sink_id = sink sched in
  let counts = Array.make count 0 in
  (match sched with
  | Chunked _ -> no_meet_index "meets_with_sink_upto"
  | Live t ->
      ensure t k;
      for node = 0 to count - 1 do
        if node <> sink_id then
          counts.(node) <-
            (match t.meets.(node) with
            | None -> 0
            | Some v -> first_above v (k - 1))
      done
  | Frozen f ->
      for node = 0 to count - 1 do
        if node <> sink_id then
          counts.(node) <- first_above_arr f.f_meets.(node) (k - 1)
      done);
  counts.(sink_id) <- Array.fold_left ( + ) 0 counts;
  counts
