(** A pairwise interaction — the atom of the paper's dynamic-graph
    model. A dynamic graph is a couple [(V, I)] where [I = (I_t)] is a
    sequence of interactions and the index [t] of an interaction is its
    time of occurrence. *)

type t = private int
(** An unordered pair of distinct node ids, normalised so [u < v] and
    packed into one immediate int as [(u lsl 31) lor v]. Interactions
    are therefore unboxed: a [t array] is a flat int array, and the
    packed integer order coincides with the lexicographic order on
    [(u, v)]. *)

val max_node_id : int
(** Largest representable node id, [2^31 - 1]. *)

val make : int -> int -> t
(** [make a b] is the interaction [{a, b}].
    @raise Invalid_argument if [a = b], either is negative, or either
    exceeds {!max_node_id}. *)

val u : t -> int
(** Smaller endpoint. *)

val v : t -> int
(** Larger endpoint. *)

val involves : t -> int -> bool
(** [involves i x] holds iff [x] is an endpoint of [i]. *)

val other : t -> int -> int
(** [other i x] is the endpoint that is not [x].
    @raise Invalid_argument if [x] is not an endpoint. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** [equal] is integer equality, [compare] the packed integer order
    (lexicographic on [(u, v)]), and [hash] the packed value itself —
    the three are consistent by construction. *)

val to_int : t -> int
(** The packed representation, [(u lsl 31) lor v]. *)

val of_int : int -> t
(** Inverse of {!to_int}, validating.
    @raise Invalid_argument if the int is not a packed interaction. *)

val of_int_unchecked : int -> t
(** Trusted inverse of {!to_int} for flat buffers whose contents were
    packed by this module (schedule buffers, frozen sequences). No
    validation: only feed it values produced by {!to_int}. *)

val to_pair : t -> int * int
(** [(u, v)] with [u < v]. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{u,v}]. *)

val to_string : t -> string

val dummy : t
(** A fixed placeholder value ([{0,1}]) for array initialisation; never
    meaningful. *)
