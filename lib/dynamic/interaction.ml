(* Packed immediate encoding: [(u lsl 31) lor v] with [0 <= u < v <
   2^31]. An interaction is an unboxed OCaml int, so interaction arrays
   are flat int arrays (cache-linear, no per-element allocation) and
   the packed order — plain [Int.compare] — coincides with the
   lexicographic order on [(u, v)] because [u] occupies the high bits. *)

type t = int

let max_node_id = (1 lsl 31) - 1

let make a b =
  if a = b then invalid_arg "Interaction.make: self-interaction";
  if a < 0 || b < 0 then invalid_arg "Interaction.make: negative node id";
  if a > max_node_id || b > max_node_id then
    invalid_arg "Interaction.make: node id exceeds 2^31 - 1";
  if a < b then (a lsl 31) lor b else (b lsl 31) lor a

let u i = i lsr 31
let v i = i land max_node_id
let involves i x = u i = x || v i = x

let other i x =
  if x = u i then v i
  else if x = v i then u i
  else invalid_arg "Interaction.other: node not an endpoint"

let equal (a : int) (b : int) = a = b
let compare = Int.compare
let hash i = i

let to_int i = i

let of_int p =
  if p < 0 || p lsr 31 >= p land max_node_id then
    invalid_arg "Interaction.of_int: not a packed interaction"
  else p

let of_int_unchecked p = p
let to_pair i = (u i, v i)
let pp ppf i = Format.fprintf ppf "{%d,%d}" (u i) (v i)
let to_string i = Printf.sprintf "{%d,%d}" (u i) (v i)
let dummy = 1 (* {0,1} *)
