(** Time-varying-graph classes: validators and class-constrained
    generators for interaction sequences.

    Casteigts, Flocchini, Quattrociocchi and Santoro's hierarchy
    characterises dynamic networks by which topological guarantees
    hold over time. Adapted to this repo's population-protocol setting
    (one pairwise interaction per time step), four classes are
    implemented, ordered from weakest to strongest:

    {v
       Temporal  ⊇  T_interval(T)  ⊇  Bounded_recurrent(B)   (B >= the
       Temporal  ⊇  Recurrent      ⊇  Bounded_recurrent(B)    footprint
                                                              caveats below)
    v}

    - {!Temporal} — connectivity over time: broadcast from every node
      completes within the sequence (journeys exist between all ordered
      pairs). The weakest assumption under which aggregation is
      solvable at all.
    - {!T_interval}[ w] — every {e tumbling} window of [w] consecutive
      interactions has a connected union graph (the adaptation of
      1-interval/T-interval connectivity: with one edge per step, only
      a window's union can be connected). Implies [Temporal] once the
      sequence holds [n - 1] full windows: each connected window
      informs at least one new node.
    - {!Recurrent} — no footprint edge vanishes: every edge that
      appears at all reappears in the closing half of the sequence
      (the finite-trace proxy for "reappears infinitely often").
    - {!Bounded_recurrent}[ b] — time-bounded recurrence: every
      footprint edge occurs in {e every} sliding window of [b] steps
      (equivalently: first occurrence before [b], consecutive
      occurrences at most [b] apart, last occurrence within [b] of the
      end). With a connected footprint this implies [T_interval b] and,
      for [b <= len / 2], [Recurrent].

    Validators return a {e witness} on failure — the exact window,
    unreachable pair, or edge gap that breaks the class. Generators
    sample schedules {e guaranteed} inside their class (a
    validator⇄generator round-trip suite enforces it) while staying on
    the deterministic per-stream PRNG discipline every other workload
    follows. *)

type t =
  | Temporal
  | T_interval of int  (** window length in interactions, [>= 1] *)
  | Recurrent
  | Bounded_recurrent of int  (** recurrence bound in interactions, [>= 1] *)

val to_string : t -> string
(** ["temporal"] | ["t-interval:W"] | ["recurrent"] |
    ["bounded-recurrent:B"] — inverse of {!parse}. *)

val parse : string -> (t, string) result

val syntax : string
(** One-line syntax summary for help output. *)

(** {1 Validators} *)

type witness =
  | Unreachable of { src : int; dst : int }
      (** no journey from [src] to [dst] ([Temporal]) *)
  | Disconnected_window of { start : int; len : int }
      (** the union graph of [I_start .. I_{start+len-1}] is
          disconnected ([T_interval]) *)
  | Vanished_edge of { u : int; v : int; last_seen : int }
      (** footprint edge absent from the closing half ([Recurrent]) *)
  | Edge_gap of { u : int; v : int; gap_start : int; gap_end : int }
      (** footprint edge absent from the open interval
          [(gap_start, gap_end)] of length [> b]; [gap_start = -1]
          stands for the sequence start, [gap_end = length] for its
          end ([Bounded_recurrent]) *)

val pp_witness : Format.formatter -> witness -> unit

val validate : n:int -> t -> Sequence.t -> (unit, witness) result
(** [validate ~n cls s] classifies a frozen sequence: [Ok ()] iff [s]
    is in [cls], otherwise the first witness in deterministic order
    (scan order for time-indexed violations, first-appearance order
    for edge violations). Windows shorter than [w] at the end of the
    sequence are not checked by [T_interval] (only full tumbling
    windows count). @raise Invalid_argument on a non-positive window
    or bound. *)

val validate_stream :
  n:int -> length:int -> t -> (int -> Interaction.t) -> (unit, witness) result
(** Same verdict as {!validate}, in one strictly forward pass over
    [gen 0 .. gen (length - 1)] — suitable for chunked/streamed traces
    ([T_interval], [Recurrent] and [Bounded_recurrent] only).
    @raise Invalid_argument for [Temporal], which needs random access
    (one flood per source); freeze a prefix instead. *)

(** {1 Classification summary} *)

type summary = {
  nodes : int;
  length : int;
  footprint_edges : int;  (** distinct pairs that interact at all *)
  footprint_connected : bool;
  temporal : (unit, witness) result;
  recurrent : (unit, witness) result;
  min_window : int option;
      (** smallest power-of-two [w] with [T_interval w], or [None] if
          no [w <= length] works (powers of two because tumbling
          windows only compose along the doubling chain) *)
  min_bound : int option;
      (** smallest [b] with [Bounded_recurrent b] (the largest
          sentinel gap over footprint edges); [None] on an empty
          sequence *)
}

val summarize : n:int -> Sequence.t -> summary
(** Everything [doda classify] prints, in one call. *)

(** {1 Class-constrained generators}

    Both generators follow the stateful-generator contract of
    {!Generators.markov_edges}: draws must be requested in
    non-decreasing time order (the schedule layer always does), and
    each consumes the given PRNG stream deterministically, so a
    generator seeded identically replays the identical schedule. *)

val gen_t_interval : Doda_prng.Prng.t -> n:int -> window:int -> int -> Interaction.t
(** Adversarial schedule guaranteed in [T_interval window]: each
    tumbling window hides a fresh uniform spanning tree at shuffled
    positions among uniform filler pairs — connected by construction,
    with nothing else promised.

    [~window:1] is the 1-interval (per-step connectivity) special
    case: back-to-back fresh spanning trees with {e no} fillers, the
    tightest refresh the pairwise-interaction model supports (one
    interaction only connects [n = 2], so for larger [n] the schedule
    realizes — and validates as — [T_interval (n - 1)], every tumbling
    [(n - 1)]-window being exactly one spanning tree).
    @raise Invalid_argument if [1 < window < n - 1] (a window must fit
    a spanning tree). *)

val gen_bounded_recurrent :
  Doda_prng.Prng.t -> n:int -> bound:int -> int -> Interaction.t
(** Schedule guaranteed in [Bounded_recurrent bound] (and, its
    footprint being a spanning tree, in [T_interval bound]): the
    footprint is a uniform random tree, and every tumbling half-window
    of [bound / 2] steps contains all its edges in fresh shuffled
    order plus random footprint fillers — so every sliding
    [bound]-window contains a full half-window, hence every edge.
    @raise Invalid_argument if [bound < 2 * (n - 1)] (a half-window
    must fit the whole footprint). *)
