module Prng = Doda_prng.Prng

type waypoint_params = { radius : float; speed : float; pause : int }

let default_waypoint = { radius = 0.2; speed = 0.02; pause = 3 }

(* Walker state lives in parallel float arrays rather than an array of
   mutable-float records: float-array stores are unboxed, so advancing
   the walkers allocates nothing. *)
let random_waypoint ?(params = default_waypoint) rng ~n =
  if n < 2 then invalid_arg "Mobility.random_waypoint: need at least two nodes";
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let goal_x = Array.make n 0.0 and goal_y = Array.make n 0.0 in
  let pause_left = Array.make n 0 in
  let fresh_goal u =
    goal_x.(u) <- Prng.float rng 1.0;
    goal_y.(u) <- Prng.float rng 1.0
  in
  (* y before x: the walkers used to start as record literals whose
     fields evaluate right to left, so the first float drawn for a
     walker was its y coordinate. Keep that order — the committed
     benchmark tables depend on the draw stream. *)
  for u = 0 to n - 1 do
    y.(u) <- Prng.float rng 1.0;
    x.(u) <- Prng.float rng 1.0;
    fresh_goal u
  done;
  let advance u =
    if pause_left.(u) > 0 then pause_left.(u) <- pause_left.(u) - 1
    else begin
      let dx = goal_x.(u) -. x.(u) and dy = goal_y.(u) -. y.(u) in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
      if dist <= params.speed then begin
        x.(u) <- goal_x.(u);
        y.(u) <- goal_y.(u);
        pause_left.(u) <- params.pause;
        fresh_goal u
      end
      else begin
        x.(u) <- x.(u) +. (params.speed *. dx /. dist);
        y.(u) <- y.(u) +. (params.speed *. dy /. dist)
      end
    end
  in
  (* Contact collection. Dense point sets with a small radius go
     through the spatial hash: cell size >= radius, so only same-cell
     and neighbouring-cell occupants are range-checked — expected
     O(n + candidates) per draw instead of the all-pairs O(n^2) scan.
     The hash only pays when the 3x3 neighbourhood is a small fraction
     of the square: it covers (3/dim)^2 of the area, and its
     per-candidate constant is ~3x the branch-predictable scan's
     (measured), so the scan stays faster whenever dim < 6 (radius
     above ~1/6) or n is small (the build alone is three passes over
     the points). Either way the buffer holds the same packed contact
     set, and the pick below consumes the same PRNG draw and selects
     the same lexicographic rank — element [j] of the original cons
     list was the [count - 1 - j]-th smallest — so the interaction
     stream is byte-identical to the seed implementation on both
     paths. *)
  let plane = Gen_kernel.Plane.create ~n ~radius:params.radius in
  let use_grid = n >= 64 && Gen_kernel.Plane.dim plane >= 6 in
  let r2 = params.radius *. params.radius in
  let contact = Array.make (n * (n - 1) / 2) 0 in
  let count = ref 0 in
  let collect () =
    if use_grid then count := Gen_kernel.Plane.collect plane ~x ~y contact
    else begin
      count := 0;
      for a = 0 to n - 2 do
        let xa = Array.unsafe_get x a and ya = Array.unsafe_get y a in
        for b = a + 1 to n - 1 do
          let dx = xa -. Array.unsafe_get x b
          and dy = ya -. Array.unsafe_get y b in
          if (dx *. dx) +. (dy *. dy) <= r2 then begin
            contact.(!count) <- (a * n) + b;
            incr count
          end
        done
      done
    end
  in
  let advance_all () =
    for u = 0 to n - 1 do
      advance u
    done
  in
  fun _t ->
    advance_all ();
    collect ();
    while !count = 0 do
      advance_all ();
      collect ()
    done;
    let rank = !count - 1 - Prng.int rng !count in
    let packed =
      if use_grid then Gen_kernel.select_prefix contact !count ~rank
      else contact.(rank)
    in
    Interaction.make (packed / n) (packed mod n)

let community rng ~n ~communities ~p_intra =
  if n < 2 then invalid_arg "Mobility.community: need at least two nodes";
  if communities < 1 then invalid_arg "Mobility.community: need at least one group";
  if p_intra < 0.0 || p_intra > 1.0 then
    invalid_arg "Mobility.community: p_intra outside [0, 1]";
  let communities = Stdlib.min communities n in
  let members = Array.make communities [] in
  for u = n - 1 downto 0 do
    let c = u mod communities in
    members.(c) <- u :: members.(c)
  done;
  let members = Array.map Array.of_list members in
  let big = (* groups with >= 2 members, for intra draws *)
    Array.of_list
      (List.filter
         (fun c -> Array.length members.(c) >= 2)
         (List.init communities (fun c -> c)))
  in
  let intra_possible = Array.length big > 0 in
  let inter_possible = communities >= 2 in
  fun _t ->
    let intra =
      if not inter_possible then true
      else if not intra_possible then false
      else Prng.bernoulli rng p_intra
    in
    if intra then begin
      let group = members.(Prng.choose rng big) in
      let i, j = Prng.pair rng (Array.length group) in
      Interaction.make group.(i) group.(j)
    end
    else begin
      let rec draw () =
        let c1 = Prng.int rng communities and c2 = Prng.int rng communities in
        if c1 = c2 then draw ()
        else
          Interaction.make
            (Prng.choose rng members.(c1))
            (Prng.choose rng members.(c2))
      in
      draw ()
    end

let grid_walkers rng ~n ~rows ~cols =
  if n < 2 then invalid_arg "Mobility.grid_walkers: need at least two nodes";
  if rows < 1 || cols < 1 then invalid_arg "Mobility.grid_walkers: empty grid";
  (* Lazy walk: staying put is allowed, otherwise walkers that all
     move each step keep the parity of r+c invariant and the contact
     graph splits into two components that can never interact.

     Legal moves are precomputed per cell, in the order the original
     [List.filter] over [stay; up; down; left; right] produced — the
     per-cell choice is [Prng.choose] over the same array content, so
     the draw stream is unchanged while stepping allocates nothing. *)
  let cells = rows * cols in
  let moves =
    Array.init cells (fun cell ->
        let r = cell / cols and c = cell mod cols in
        Array.of_list
          (List.filter_map
             (fun (r, c) ->
               if r >= 0 && r < rows && c >= 0 && c < cols then
                 Some ((r * cols) + c)
               else None)
             [ (r, c); (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]))
  in
  (* c before r: the cells used to start as tuple literals, whose
     components evaluate right to left — the first int drawn for a
     walker was its column. The draw stream must not move. *)
  let cell = Array.init n (fun _ ->
      let c = Prng.int rng cols in
      let r = Prng.int rng rows in
      (r * cols) + c)
  in
  let step u = cell.(u) <- Prng.choose rng moves.(cell.(u)) in
  (* Co-located pairs via the shared occupancy grid: walkers bucket by
     cell (touched cells only), so a step costs O(n + colocated pairs)
     instead of the all-pairs O(n^2) scan. The packed buffer holds the
     same contact set the scan produced, and the pick consumes the
     same PRNG draw and selects the same lexicographic rank — element
     [j] of the original cons list (reverse scan order) was the
     [count - 1 - j]-th smallest — so the interaction stream is
     byte-identical to the seed implementation. *)
  let grid = Gen_kernel.Grid.create ~cells in
  let contact = Array.make (n * (n - 1) / 2) 0 in
  let count = ref 0 in
  let colocated () =
    Gen_kernel.Grid.clear grid;
    for u = 0 to n - 1 do
      Gen_kernel.Grid.insert grid ~cell:cell.(u) u
    done;
    count := 0;
    Gen_kernel.Grid.same_cell_pairs grid (fun a b ->
        contact.(!count) <- (a * n) + b;
        incr count)
  in
  fun _t ->
    let rec advance () =
      for u = 0 to n - 1 do
        step u
      done;
      colocated ();
      if !count = 0 then advance ()
      else begin
        let rank = !count - 1 - Prng.int rng !count in
        let packed = Gen_kernel.select_prefix contact !count ~rank in
        Interaction.make (packed / n) (packed mod n)
      end
    in
    advance ()
