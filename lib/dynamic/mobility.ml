module Prng = Doda_prng.Prng

type waypoint_params = { radius : float; speed : float; pause : int }

let default_waypoint = { radius = 0.2; speed = 0.02; pause = 3 }

(* Walker state lives in parallel float arrays rather than an array of
   mutable-float records: float-array stores are unboxed, so advancing
   the walkers allocates nothing. *)
let random_waypoint ?(params = default_waypoint) rng ~n =
  if n < 2 then invalid_arg "Mobility.random_waypoint: need at least two nodes";
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let goal_x = Array.make n 0.0 and goal_y = Array.make n 0.0 in
  let pause_left = Array.make n 0 in
  let fresh_goal u =
    goal_x.(u) <- Prng.float rng 1.0;
    goal_y.(u) <- Prng.float rng 1.0
  in
  (* y before x: the walkers used to start as record literals whose
     fields evaluate right to left, so the first float drawn for a
     walker was its y coordinate. Keep that order — the committed
     benchmark tables depend on the draw stream. *)
  for u = 0 to n - 1 do
    y.(u) <- Prng.float rng 1.0;
    x.(u) <- Prng.float rng 1.0;
    fresh_goal u
  done;
  let advance u =
    if pause_left.(u) > 0 then pause_left.(u) <- pause_left.(u) - 1
    else begin
      let dx = goal_x.(u) -. x.(u) and dy = goal_y.(u) -. y.(u) in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
      if dist <= params.speed then begin
        x.(u) <- goal_x.(u);
        y.(u) <- goal_y.(u);
        pause_left.(u) <- params.pause;
        fresh_goal u
      end
      else begin
        x.(u) <- x.(u) +. (params.speed *. dx /. dist);
        y.(u) <- y.(u) +. (params.speed *. dy /. dist)
      end
    end
  in
  let r2 = params.radius *. params.radius in
  let in_range a b =
    let dx = x.(a) -. x.(b) and dy = y.(a) -. y.(b) in
    (dx *. dx) +. (dy *. dy) <= r2
  in
  (* Contacts collect into packed-int buffers instead of a list plus
     Array.of_list per draw. The uniform pick is over the contact list
     in the (reverse-scan) order the list-based version produced, so
     the draw stream is unchanged: element [j] of that list is slot
     [count - 1 - j] of the in-scan-order buffer. *)
  let contact = Array.make (n * (n - 1) / 2) 0 in
  let count = ref 0 in
  let collect () =
    count := 0;
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if in_range a b then begin
          contact.(!count) <- (a * n) + b;
          incr count
        end
      done
    done
  in
  let advance_all () =
    for u = 0 to n - 1 do
      advance u
    done
  in
  fun _t ->
    advance_all ();
    collect ();
    while !count = 0 do
      advance_all ();
      collect ()
    done;
    let packed = contact.(!count - 1 - Prng.int rng !count) in
    Interaction.make (packed / n) (packed mod n)

let community rng ~n ~communities ~p_intra =
  if n < 2 then invalid_arg "Mobility.community: need at least two nodes";
  if communities < 1 then invalid_arg "Mobility.community: need at least one group";
  if p_intra < 0.0 || p_intra > 1.0 then
    invalid_arg "Mobility.community: p_intra outside [0, 1]";
  let communities = Stdlib.min communities n in
  let members = Array.make communities [] in
  for u = n - 1 downto 0 do
    let c = u mod communities in
    members.(c) <- u :: members.(c)
  done;
  let members = Array.map Array.of_list members in
  let big = (* groups with >= 2 members, for intra draws *)
    Array.of_list
      (List.filter
         (fun c -> Array.length members.(c) >= 2)
         (List.init communities (fun c -> c)))
  in
  let intra_possible = Array.length big > 0 in
  let inter_possible = communities >= 2 in
  fun _t ->
    let intra =
      if not inter_possible then true
      else if not intra_possible then false
      else Prng.bernoulli rng p_intra
    in
    if intra then begin
      let group = members.(Prng.choose rng big) in
      let i, j = Prng.pair rng (Array.length group) in
      Interaction.make group.(i) group.(j)
    end
    else begin
      let rec draw () =
        let c1 = Prng.int rng communities and c2 = Prng.int rng communities in
        if c1 = c2 then draw ()
        else
          Interaction.make
            (Prng.choose rng members.(c1))
            (Prng.choose rng members.(c2))
      in
      draw ()
    end

let grid_walkers rng ~n ~rows ~cols =
  if n < 2 then invalid_arg "Mobility.grid_walkers: need at least two nodes";
  if rows < 1 || cols < 1 then invalid_arg "Mobility.grid_walkers: empty grid";
  let cell = Array.init n (fun _ -> (Prng.int rng rows, Prng.int rng cols)) in
  (* Lazy walk: staying put is allowed, otherwise walkers that all
     move each step keep the parity of r+c invariant and the contact
     graph splits into two components that can never interact. *)
  let step u =
    let r, c = cell.(u) in
    let moves =
      List.filter
        (fun (r, c) -> r >= 0 && r < rows && c >= 0 && c < cols)
        [ (r, c); (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]
    in
    cell.(u) <- Prng.choose rng (Array.of_list moves)
  in
  let colocated () =
    let acc = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if cell.(a) = cell.(b) then acc := (a, b) :: !acc
      done
    done;
    !acc
  in
  fun _t ->
    let rec advance () =
      for u = 0 to n - 1 do
        step u
      done;
      match colocated () with
      | [] -> advance ()
      | pairs ->
          let a, b = Prng.choose rng (Array.of_list pairs) in
          Interaction.make a b
    in
    advance ()
