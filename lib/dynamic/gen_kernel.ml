(* Event-driven generator kernels: a bucketed timing wheel (markov
   edge toggles) and a spatial-hash occupancy grid (mobility contact
   collection). Shared scratch, no steady-state allocation. *)

let rec next_pow2 x acc = if acc >= x then acc else next_pow2 x (2 * acc)

module Wheel = struct
  type t = {
    mask : int;
    buckets : Int_vec.t array;
    due : int array;  (* absolute due time per id; max_int = unscheduled *)
    fired : Int_vec.t;  (* scratch: ids due at the step being advanced *)
  }

  let create ~ids =
    if ids < 0 then invalid_arg "Gen_kernel.Wheel.create: negative id count";
    (* Enough slots that lap collisions (ids sharing a bucket across
       wheel revolutions) stay rare even when every id is pending. *)
    let size = next_pow2 (Stdlib.min 8192 (Stdlib.max 256 ids)) 1 in
    {
      mask = size - 1;
      buckets = Array.init size (fun _ -> Int_vec.create ());
      due = Array.make (Stdlib.max 1 ids) max_int;
      fired = Int_vec.create ();
    }

  let schedule w ~id ~at =
    w.due.(id) <- at;
    Int_vec.push w.buckets.(at land w.mask) id

  let due w ~id = w.due.(id)

  let advance w ~now f =
    let bucket = w.buckets.(now land w.mask) in
    let len = Int_vec.length bucket in
    Int_vec.clear w.fired;
    (* Compact the slot in place: ids due now move to the scratch, ids
       due a later lap keep their position. Compaction completes before
       any [f] runs, so [f] may re-schedule into this very bucket. *)
    let keep = ref 0 in
    for i = 0 to len - 1 do
      let id = Int_vec.unsafe_get bucket i in
      if Array.unsafe_get w.due id = now then Int_vec.push w.fired id
      else begin
        Int_vec.unsafe_set bucket !keep id;
        incr keep
      end
    done;
    Int_vec.truncate bucket !keep;
    Int_vec.iter f w.fired
end

module Grid = struct
  type t = { buckets : Int_vec.t array; touched : Int_vec.t }

  let create ~cells =
    if cells < 1 then invalid_arg "Gen_kernel.Grid.create: need at least one cell";
    { buckets = Array.init cells (fun _ -> Int_vec.create ()); touched = Int_vec.create () }

  let clear g =
    Int_vec.iter (fun c -> Int_vec.clear g.buckets.(c)) g.touched;
    Int_vec.clear g.touched

  let insert g ~cell v =
    if cell < 0 || cell >= Array.length g.buckets then
      invalid_arg "Gen_kernel.Grid.insert: cell out of range";
    let bucket = g.buckets.(cell) in
    if Int_vec.length bucket = 0 then Int_vec.push g.touched cell;
    Int_vec.push bucket v

  let occupancy g ~cell = Int_vec.length g.buckets.(cell)
  let occupant g ~cell i = Int_vec.unsafe_get g.buckets.(cell) i

  let same_cell_pairs g f =
    Int_vec.iter
      (fun cell ->
        let bucket = g.buckets.(cell) in
        let k = Int_vec.length bucket in
        for i = 0 to k - 2 do
          let a = Int_vec.unsafe_get bucket i in
          for j = i + 1 to k - 1 do
            f a (Int_vec.unsafe_get bucket j)
          done
        done)
      g.touched
end

let sort_prefix a count =
  if count < 0 || count > Array.length a then
    invalid_arg "Gen_kernel.sort_prefix: count out of bounds";
  for i = 1 to count - 1 do
    let x = Array.unsafe_get a i in
    (* Binary search for the insertion point in the sorted prefix. *)
    let lo = ref 0 and hi = ref i in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Array.unsafe_get a mid <= x then lo := mid + 1 else hi := mid
    done;
    Array.blit a !lo a (!lo + 1) (i - !lo);
    Array.unsafe_set a !lo x
  done

let select_prefix a count ~rank =
  if count < 0 || count > Array.length a then
    invalid_arg "Gen_kernel.select_prefix: count out of bounds";
  if rank < 0 || rank >= count then
    invalid_arg "Gen_kernel.select_prefix: rank out of bounds";
  (* Quickselect, Hoare partition. The pivot is the median of the range
     endpoints and midpoint, swapped to the front so the classical
     [pivot = a.(lo)] termination argument applies (the split point
     lands in [lo .. hi - 1]). *)
  let lo = ref 0 and hi = ref (count - 1) in
  let swap i j =
    let t = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a j);
    Array.unsafe_set a j t
  in
  while !lo < !hi do
    let l = !lo and h = !hi in
    let mid = l + ((h - l) / 2) in
    if Array.unsafe_get a mid < Array.unsafe_get a l then swap mid l;
    if Array.unsafe_get a h < Array.unsafe_get a l then swap h l;
    if Array.unsafe_get a mid < Array.unsafe_get a h then swap mid h;
    swap l h;
    (* median of three now at [l] *)
    let p = Array.unsafe_get a l in
    let i = ref (l - 1) and j = ref (h + 1) in
    let split = ref l in
    let continue = ref true in
    while !continue do
      incr i;
      while Array.unsafe_get a !i < p do incr i done;
      decr j;
      while Array.unsafe_get a !j > p do decr j done;
      if !i >= !j then begin
        split := !j;
        continue := false
      end
      else swap !i !j
    done;
    if rank <= !split then hi := !split else lo := !split + 1
  done;
  Array.unsafe_get a rank

module Plane = struct
  (* Flat counting-sort buckets, rebuilt per draw: no per-cell vectors,
     no closures, no allocation — the constant factor has to compete
     with a branch-predictable all-pairs scan at small n. *)
  type t = {
    n : int;
    dim : int;
    r2 : float;
    cell_of : int array;  (* per point, cell of the last build *)
    counts : int array;  (* per cell; zeroed invariant between builds *)
    starts : int array;  (* per cell, range start into [sorted] *)
    cursor : int array;  (* per cell, scatter cursor *)
    sorted : int array;  (* points grouped by cell, ids ascending *)
    occ : int array;  (* occupied cells of the current build *)
  }

  let create ~n ~radius =
    if n < 0 then invalid_arg "Gen_kernel.Plane.create: negative point count";
    let r = Float.abs radius in
    (* Cell size 1/dim must stay >= radius (3x3 neighbourhood
       correctness) while the bucket store stays bounded: floor (1/r)
       clamped to [1, 64]. *)
    let dim =
      if r >= 1.0 then 1
      else if r <= 1.0 /. 64.0 then 64
      else Stdlib.max 1 (Stdlib.min 64 (int_of_float (1.0 /. r)))
    in
    let cells = dim * dim in
    {
      n;
      dim;
      r2 = radius *. radius;
      cell_of = Array.make (Stdlib.max 1 n) 0;
      counts = Array.make cells 0;
      starts = Array.make cells 0;
      cursor = Array.make cells 0;
      sorted = Array.make (Stdlib.max 1 n) 0;
      occ = Array.make (Stdlib.max 1 n) 0;
    }

  let dim p = p.dim

  let collect p ~x ~y contacts =
    let { n; dim; r2; cell_of; counts; starts; cursor; sorted; occ } = p in
    let fdim = float_of_int dim in
    (* Re-zero [counts] from the previous build (O(n), not O(cells)),
       then bucket-count this one, recording each cell the moment it
       becomes occupied. *)
    for u = 0 to n - 1 do
      Array.unsafe_set counts (Array.unsafe_get cell_of u) 0
    done;
    let occupied = ref 0 in
    for u = 0 to n - 1 do
      let cx = Stdlib.min (dim - 1) (Stdlib.max 0 (int_of_float (x.(u) *. fdim))) in
      let cy = Stdlib.min (dim - 1) (Stdlib.max 0 (int_of_float (y.(u) *. fdim))) in
      let c = (cy * dim) + cx in
      Array.unsafe_set cell_of u c;
      let k = Array.unsafe_get counts c in
      if k = 0 then begin
        Array.unsafe_set occ !occupied c;
        incr occupied
      end;
      Array.unsafe_set counts c (k + 1)
    done;
    let pos = ref 0 in
    for i = 0 to !occupied - 1 do
      let c = Array.unsafe_get occ i in
      Array.unsafe_set starts c !pos;
      Array.unsafe_set cursor c !pos;
      pos := !pos + Array.unsafe_get counts c
    done;
    for u = 0 to n - 1 do
      let c = Array.unsafe_get cell_of u in
      let at = Array.unsafe_get cursor c in
      Array.unsafe_set sorted at u;
      Array.unsafe_set cursor c (at + 1)
    done;
    let count = ref 0 in
    (* Within-cell pairs: points scatter in increasing id order, so
       [a < b] holds positionally. *)
    for i = 0 to !occupied - 1 do
      let c = Array.unsafe_get occ i in
      let lo = Array.unsafe_get starts c in
      let hi = lo + Array.unsafe_get counts c - 1 in
      for ia = lo to hi - 1 do
        let a = Array.unsafe_get sorted ia in
        let xa = Array.unsafe_get x a and ya = Array.unsafe_get y a in
        for ib = ia + 1 to hi do
          let b = Array.unsafe_get sorted ib in
          let dx = xa -. Array.unsafe_get x b
          and dy = ya -. Array.unsafe_get y b in
          if (dx *. dx) +. (dy *. dy) <= r2 then begin
            contacts.(!count) <- (a * n) + b;
            incr count
          end
        done
      done;
      (* Cross-cell pairs: each unordered pair of adjacent cells exactly
         once, via the half-plane offsets E, SW, S, SE. An unoccupied
         neighbour has count 0 (its stale range is never entered). *)
      let cx = c mod dim and cy = c / dim in
      for k = 0 to 3 do
        let nx = cx + (match k with 0 -> 1 | 1 -> -1 | 2 -> 0 | _ -> 1)
        and ny = cy + (match k with 0 -> 0 | _ -> 1) in
        if nx >= 0 && nx < dim && ny < dim then begin
          let d = (ny * dim) + nx in
          let dlo = Array.unsafe_get starts d in
          let dhi = dlo + Array.unsafe_get counts d - 1 in
          for ia = lo to hi do
            let a = Array.unsafe_get sorted ia in
            let xa = Array.unsafe_get x a and ya = Array.unsafe_get y a in
            for ib = dlo to dhi do
              let b = Array.unsafe_get sorted ib in
              let dx = xa -. Array.unsafe_get x b
              and dy = ya -. Array.unsafe_get y b in
              if (dx *. dx) +. (dy *. dy) <= r2 then begin
                contacts.(!count) <-
                  (if a < b then (a * n) + b else (b * n) + a);
                incr count
              end
            done
          done
        end
      done
    done;
    (* Pairs come out cell-major; the packed encoding makes
       lexicographic rank queries a plain int [select_prefix], so no
       per-draw sort is needed. *)
    !count
end
