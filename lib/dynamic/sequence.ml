type t = Interaction.t array

let of_array a = a
let of_list l = Array.of_list l
let of_pairs l = Array.of_list (List.map (fun (a, b) -> Interaction.make a b) l)
let length = Array.length

let get s t =
  if t < 0 || t >= Array.length s then invalid_arg "Sequence.get: time out of bounds";
  s.(t)

let unsafe_get (s : t) t = Array.unsafe_get s t
let unsafe_array s = s
let to_array s = Array.copy s
let to_list = Array.to_list

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length s then
    invalid_arg "Sequence.sub: invalid range";
  Array.sub s pos len

let append = Array.append

let repeat s k =
  if k < 0 then invalid_arg "Sequence.repeat: negative count";
  Array.concat (List.init k (fun _ -> s))

let rev s =
  let n = Array.length s in
  Array.init n (fun i -> s.(n - 1 - i))

let max_node s =
  Array.fold_left (fun acc i -> Stdlib.max acc (Interaction.v i)) (-1) s

let iteri = Array.iteri
let fold = Array.fold_left

let count_involving s u =
  Array.fold_left (fun acc i -> if Interaction.involves i u then acc + 1 else acc) 0 s

let interactions_of s u =
  let acc = ref [] in
  Array.iteri (fun t i -> if Interaction.involves i u then acc := (t, i) :: !acc) s;
  List.rev !acc

let pp ppf s =
  Format.fprintf ppf "@[<hov>";
  Array.iteri
    (fun t i ->
      if t > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%d:%a" t Interaction.pp i)
    s;
  Format.fprintf ppf "@]"

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Interaction.equal a b
