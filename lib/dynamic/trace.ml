let to_channel oc s =
  Sequence.iteri
    (fun t i ->
      Printf.fprintf oc "%d %d %d\n" t (Interaction.u i) (Interaction.v i))
    s

let save path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc s)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ t; u; v ] -> (
        match (int_of_string_opt t, int_of_string_opt u, int_of_string_opt v) with
        | Some t, Some u, Some v -> Some (t, u, v)
        | _ -> failwith ("Trace: malformed line: " ^ line))
    | _ -> failwith ("Trace: malformed line: " ^ line)

let of_lines lines =
  let interactions = ref [] in
  let expected = ref 0 in
  List.iteri
    (fun lineno line ->
      match parse_line line with
      | None -> ()
      | Some (t, u, v) ->
          if t <> !expected then
            failwith
              (Printf.sprintf "Trace: line %d: expected time %d, got %d"
                 (lineno + 1) !expected t);
          incr expected;
          interactions := Interaction.make u v :: !interactions)
    lines;
  Sequence.of_list (List.rev !interactions)

(* Streaming reader for chunked schedules: pass 1 validates the file
   and finds its interaction count and largest node id in O(1) memory;
   pass 2 is a stateful generator handing out one interaction per
   index, in order — exactly the contract of
   [Schedule.of_fun_chunked], which never rereads an index. *)
let stream path =
  let count = ref 0 and max_node = ref 0 in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          match parse_line line with
          | None -> ()
          | Some (t, u, v) ->
              if t <> !count then
                failwith
                  (Printf.sprintf "Trace: line %d: expected time %d, got %d"
                     !lineno !count t);
              ignore (Interaction.make u v);
              if u > !max_node then max_node := u;
              if v > !max_node then max_node := v;
              incr count
        done
      with End_of_file -> ());
  let total = !count in
  let chan = ref None in
  let next = ref 0 in
  let gen t =
    if t <> !next then
      failwith
        (Printf.sprintf "Trace.stream: out-of-order read (expected %d, got %d)"
           !next t);
    if t >= total then failwith "Trace.stream: read past the end of the trace";
    let ic =
      match !chan with
      | Some ic -> ic
      | None ->
          let ic = open_in path in
          chan := Some ic;
          ic
    in
    let rec read () =
      match parse_line (input_line ic) with
      | None -> read ()
      | Some (_, u, v) -> Interaction.make u v
    in
    let i = read () in
    incr next;
    if !next = total then begin
      close_in_noerr ic;
      chan := None
    end;
    i
  in
  (gen, total, !max_node)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))
