(** Possibly-unbounded interaction schedules.

    A schedule is where an execution's interactions come from: either a
    fixed finite {!Sequence.t}, or a generator function materialised
    lazily (the randomized adversary draws interactions on demand, yet
    algorithms like Waiting Greedy need an oracle over the {e future}
    of the very same draw — lazy materialisation keeps both consistent).

    Every schedule maintains an index of interactions involving the
    sink, so that the [meetTime] knowledge of Section 4.3 — the first
    time after [t] at which a node interacts with the sink — is a
    binary search instead of a scan.

    For horizons where even lazy materialisation is too much — sweeps
    at n >= 10^5 process ~n^2 interactions — a {e chunked} schedule
    ({!of_fun_chunked}) streams the generator through one fixed-size
    block recycled in place: memory is O(block) whatever the horizon,
    at the price of strictly forward access and no sink-meeting index
    (meet-time knowledge is unavailable; Gathering and Waiting need
    none).

    {b Node-count limit.} Interactions pack both endpoint ids into one
    63-bit OCaml int ([(u lsl 31) lor v]), so every constructor
    rejects [n > Interaction.max_node_id + 1] (= 2^31) with a clear
    error instead of letting ids wrap silently.

    {b Thread-safety.} A live schedule is {e not} thread-safe: lazy
    materialisation and the sink index mutate unsynchronised internal
    buffers on access, including through ostensibly read-only calls
    such as {!get} and {!next_meet_with_sink}; it must stay confined to
    one domain. The same holds for a chunked schedule (block refills
    mutate in place). A {e frozen} schedule ({!freeze}) is immutable —
    a flat packed int array plus the complete sink-meeting index — and
    is safe to share read-only across domains, e.g. one schedule per
    trace swept by many algorithms on a {!Doda_sim.Pool}. *)

type t

val of_sequence : n:int -> sink:int -> Sequence.t -> t
(** A finite schedule. Node ids in the sequence must be below [n].
    @raise Invalid_argument on a bad [sink] or out-of-range ids
    (checked lazily on access for generators, eagerly here). *)

val of_fun : n:int -> sink:int -> (int -> Interaction.t) -> t
(** [of_fun ~n ~sink gen] materialises [gen t] on first access to time
    [t]; [gen] is called exactly once per index, in increasing order. *)

val of_fun_chunked :
  ?block:int -> ?length:int -> n:int -> sink:int ->
  (int -> Interaction.t) -> t
(** [of_fun_chunked ~n ~sink gen] is a {e streaming} schedule over
    [gen]: interactions are decoded [block] at a time (default 8192)
    into one fixed buffer recycled in place, so memory stays O(block)
    however far the run goes — in contrast to {!of_fun}, which keeps
    the whole materialised prefix. [length] caps the schedule at a
    finite horizon (e.g. a {!Trace.stream}ed file): decoding stops
    there, {!length} reports it, and reads beyond it behave like the
    end of any finite schedule. The trade-offs:

    - {e strictly forward}: reading a time before the current block
      raises [Invalid_argument] — old interactions are gone;
    - {e no sink-meeting index}: {!next_meet_with_sink},
      {!stepper_next_meet}, {!meets_with_sink_upto}, {!prefix} and
      {!freeze} raise [Invalid_argument];
    - [gen] is still called exactly once per index in increasing
      order, but may run up to one block {e ahead} of the highest time
      read (whole blocks are decoded at once). Give each chunked
      schedule a dedicated PRNG stream.

    @raise Invalid_argument on a bad [sink], [n] outside [2 ..
    Interaction.max_node_id + 1], or [block < 1]. *)

val freeze : t -> t
(** The compact immutable form of a finite schedule: the interaction
    sequence as a flat packed int array plus the sink-meeting index
    built once, eagerly, in one pass. Queries answer without mutating
    anything, so the result can be shared read-only across domains and
    reused by every algorithm sweeping the same trace. Freezing an
    already frozen schedule is the identity.
    @raise Invalid_argument on an unbounded (generator or chunked)
    schedule — freeze a finite {!prefix} instead. *)

val is_frozen : t -> bool

val n : t -> int
(** Number of nodes. *)

val sink : t -> int

val length : t -> int option
(** [Some len] for finite schedules, [None] for generators. *)

val get : t -> int -> Interaction.t option
(** [get s t] is [Some I_t], materialising as needed; [None] iff the
    schedule is finite and [t] is past its end. On a chunked schedule,
    @raise Invalid_argument for a time before the current block. *)

val get_exn : t -> int -> Interaction.t
(** @raise Invalid_argument past the end of a finite schedule, or on a
    chunked-schedule rewind. Chunked-schedule errors name the failing
    operation and point at a replayable alternative (rebuild without
    [--stream]). *)

val backing : t -> Sequence.t option
(** The full backing sequence of a finite or frozen schedule, no copy —
    the engine's hot loop iterates it directly as a flat int array.
    [None] for generator and chunked schedules. *)

val is_chunked : t -> bool

val chunk_view : t -> int -> int array * int * int
(** [chunk_view s time] is [(block, off, avail)]: the current block of
    a chunked schedule positioned so [block.(off)] is the packed
    interaction at [time], with [avail >= 1] consecutive entries valid
    from [off]. The engine's hot loop drains [avail] entries with no
    per-step dispatch, then calls again — the refill is amortised over
    the block. Advances (and recycles) the block as needed.
    @raise Invalid_argument on a non-chunked schedule, a negative
    time, or a time before the current block (forward-only). *)

val chunk_prefetch : t -> submit:((unit -> unit) -> unit) -> now:(unit -> int) -> unit
(** [chunk_prefetch s ~submit ~now] turns a chunked schedule into a
    two-stage pipeline: a producer task (queued through [submit],
    typically {!Doda_sim.Pool}'s job queue) decodes the {e next} block
    into a spare buffer while the consumer drains the current one; on
    advance the buffers swap and the next fill is queued. [now] is a
    monotonic ns clock used only to account consumer stall time.

    Determinism is unchanged: the generator is still called exactly
    once per index in increasing order (exactly one fill is in flight
    at any moment), so the draw stream — and everything derived from
    it — is identical with or without prefetch. If no worker has
    started a queued fill when the consumer needs it, the consumer
    steals and runs it inline, so a busy or empty pool can never
    deadlock the run (it just degrades to the synchronous path).

    After this call the schedule must be advanced from a single
    consumer domain (the producer side is synchronized internally).
    Idempotent: a second call keeps the running producer chain.
    A generator exception is re-raised on the consumer at the advance
    that needs the failed block.
    @raise Invalid_argument on a non-chunked schedule. *)

type chunk_stats = {
  refills : int;  (** blocks installed as current — deterministic *)
  prefetched : int;  (** installed blocks that a pool task decoded *)
  stalls : int;  (** consumer waits on an unfinished fill *)
  stall_ns : int;  (** total time spent in those waits *)
}
(** [refills] depends only on the draw stream and block size, so it is
    safe to surface in jobs-invariant output; the other three are
    timing-dependent (zero without {!chunk_prefetch}). *)

val chunk_stats : t -> chunk_stats
(** Streaming counters of a chunked schedule; all-zero for other forms. *)

val materialized : t -> int
(** Number of interactions materialised so far. For a chunked schedule
    this is the high-water mark of decoded times — only the last block
    of them is actually held in memory. *)

val prefix : t -> int -> Sequence.t
(** [prefix s k] is [I_0 .. I_{k-1}] as a finite sequence,
    materialising as needed. @raise Invalid_argument if a finite
    schedule is shorter than [k]. *)

val next_meet_with_sink : t -> node:int -> after:int -> limit:int -> int option
(** [next_meet_with_sink s ~node ~after ~limit] is the smallest time
    [t' > after] with [I_{t'} = {node, sink}] and [t' <= limit], if
    any; materialises at most up to [limit]. This is the paper's
    [u.meetTime(t)] capped at [limit] — Waiting Greedy only ever
    compares meet times against its parameter [tau], so a cap keeps
    laziness without changing decisions. For [node = sink] the paper
    defines meetTime as the identity, so [Some (after + 1)] is
    returned (clipped to [limit]). *)

(** {1 Batch-friendly step iteration}

    A stepper is a mutable read cursor over one schedule, built for
    lockstep consumers (the batch engine) whose accesses are monotone
    in time. It keeps one position per node into the sink-meeting
    index, so repeated {!stepper_next_meet} probes cost O(1) amortised,
    and on generator schedules the search materialises {e only until
    the first meet past [after] is known} — not to [limit + 1] like
    {!next_meet_with_sink} — while returning identical answers (meets
    are indexed in increasing time order, so the first one found
    incrementally is the first one the full index would report).

    A stepper mutates the underlying live schedule (materialisation)
    and its own cursors: like a live schedule it must stay confined to
    one domain. Steppers over a {e frozen} schedule keep the schedule
    immutable; only the stepper's private cursors move. *)

type stepper

val stepper : t -> stepper
(** A fresh cursor at time 0. On a live finite schedule this builds
    the complete sink-meeting index up front (one O(len) pass). *)

val stepper_schedule : stepper -> t
(** The schedule the stepper iterates. *)

val stepper_get : stepper -> int -> Interaction.t
(** [stepper_get st t] is [I_t], materialising generator schedules in
    chunks. @raise Invalid_argument on a negative time or past the end
    of a finite schedule. *)

val stepper_next_meet : stepper -> node:int -> after:int -> limit:int -> int option
(** Same contract and answers as {!next_meet_with_sink}, through the
    stepper's cursors and lazy search. *)

val meets_with_sink_upto : t -> int -> int array
(** [meets_with_sink_upto s k] counts, per node, the interactions with
    the sink among [I_0 .. I_{k-1}] (index [sink] counts all of them).
    Used by the Lemma 1 experiment. *)
