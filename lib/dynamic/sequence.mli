(** Finite sequences of interactions.

    The sequence index {e is} the time of occurrence: [get s t] is the
    interaction [I_t]. Finite sequences are the objects offline
    analyses (optimal convergecast, cost) operate on; for lazily
    generated, possibly unbounded sequences see {!Schedule}. *)

type t

val of_array : Interaction.t array -> t
(** Takes ownership of the array (no copy). *)

val of_list : Interaction.t list -> t

val of_pairs : (int * int) list -> t
(** Builds each interaction with {!Interaction.make}. *)

val length : t -> int

val get : t -> int -> Interaction.t
(** [get s t] is [I_t]. @raise Invalid_argument out of bounds. *)

val unsafe_get : t -> int -> Interaction.t
(** [get] without the bounds check, for hot loops whose induction
    variable is already bounded by {!length}. Out-of-range access is
    undefined behaviour. *)

val unsafe_array : t -> Interaction.t array
(** The backing flat int array itself, no copy. Read-only by contract:
    mutating it breaks every schedule built over the sequence. *)

val to_array : t -> Interaction.t array
(** Fresh copy. *)

val to_list : t -> Interaction.t list

val sub : t -> pos:int -> len:int -> t
(** @raise Invalid_argument on an invalid range. *)

val append : t -> t -> t

val repeat : t -> int -> t
(** [repeat s k] concatenates [k] copies of [s].
    @raise Invalid_argument if [k < 0]. *)

val rev : t -> t
(** Reversed order — the convergecast/broadcast duality transform. *)

val max_node : t -> int
(** Largest node id mentioned; [-1] for the empty sequence. *)

val iteri : (int -> Interaction.t -> unit) -> t -> unit

val fold : ('a -> Interaction.t -> 'a) -> 'a -> t -> 'a

val count_involving : t -> int -> int
(** Number of interactions one endpoint of which is the given node. *)

val interactions_of : t -> int -> (int * Interaction.t) list
(** [interactions_of s u] lists [(t, I_t)] for interactions involving
    [u], in time order — the "future of [u]" of Section 3.3 when [s] is
    the suffix of the execution. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
