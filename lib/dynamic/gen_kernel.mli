(** Shared event-driven kernels for workload generators.

    The O(n^2)-per-draw generators ({!Generators.markov_edges},
    {!Mobility.random_waypoint}, {!Mobility.grid_walkers}) are rebuilt
    on two small data structures whose per-step cost tracks the number
    of {e events} rather than the number of node pairs:

    - a bucketed {!Wheel} (timing wheel) scheduling per-edge state
      toggles, so a Markov edge process advances in
      O(active + toggles) per step instead of flipping a Bernoulli for
      all n(n-1)/2 pairs;
    - a uniform spatial-hash {!Grid} (and its unit-square wrapper
      {!Plane}) bucketing entities by cell, so contact collection
      checks only co-located or neighbouring occupants instead of all
      pairs.

    Everything here is scratch-reusing and allocation-free in steady
    state: buffers are created once per generator closure and recycled
    across draws. Nothing is thread-safe — like the generator closures
    themselves, a kernel value must stay confined to one domain. *)

module Wheel : sig
  (** A bucketed timing wheel over integer times for a fixed id space.

      Each id has at most one pending event (its absolute due time);
      ids land in bucket [time mod wheel_size] and far-future events
      simply stay in their bucket across laps — {!advance} re-files
      nothing and touches only the ids hashed to the current slot, so
      with geometric inter-event gaps of mean [1/p] a wheel of size
      [>= 1/p] processes O(due events) amortised per step. *)

  type t

  val create : ids:int -> t
  (** A wheel for ids [0 .. ids - 1], none scheduled. The bucket count
      is an internal power of two. *)

  val schedule : t -> id:int -> at:int -> unit
  (** [schedule w ~id ~at] sets [id]'s (single) pending event to
      absolute time [at]. The id must not already be scheduled at a
      different pending time (each id is filed in exactly one bucket;
      the kernel's users toggle an edge exactly when it fires, then
      re-schedule it). *)

  val due : t -> id:int -> int
  (** The id's pending due time ([max_int] if never scheduled). *)

  val advance : t -> now:int -> (int -> unit) -> unit
  (** [advance w ~now f] calls [f id] for every id due exactly at
      [now], after removing them from the wheel; [f] may re-[schedule]
      the id at any strictly later time (including one hashing to the
      same bucket). Times must be advanced by exactly one per call —
      the wheel only inspects the bucket [now] hashes to. *)
end

module Grid : sig
  (** Occupancy buckets over an abstract integer cell space with
      touched-cell tracking: clearing costs O(touched cells), not
      O(cells), so sparse occupancy of a large grid stays cheap. *)

  type t

  val create : cells:int -> t

  val clear : t -> unit
  (** Empties every touched bucket (O(occupants + touched)). *)

  val insert : t -> cell:int -> int -> unit
  (** Appends an occupant to a cell's bucket (insertion order is
      preserved; callers inserting in increasing occupant order get
      sorted buckets for free). @raise Invalid_argument on a cell
      outside [0 .. cells - 1]. *)

  val occupancy : t -> cell:int -> int

  val occupant : t -> cell:int -> int -> int
  (** [occupant g ~cell i] is the [i]-th occupant (insertion order).
      Bounds are the caller's contract ([0 <= i < occupancy]). *)

  val same_cell_pairs : t -> (int -> int -> unit) -> unit
  (** [same_cell_pairs g f] calls [f a b] for every unordered pair of
      occupants sharing a cell, in bucket-insertion order ([a] inserted
      before [b]), cells in touched (first-insertion) order. *)
end

module Plane : sig
  (** Uniform spatial hash over the unit square with cell size
      [>= radius]: all pairs within [radius] lie in the same or
      8-neighbouring cells, so contact collection is
      O(n + candidate pairs) expected instead of O(n^2). *)

  type t

  val create : n:int -> radius:float -> t
  (** A hash for [n] points and contact radius [radius]. The grid
      dimension is [floor (1 / |radius|)] clamped to [1 .. 64], so the
      cell size never drops below the radius (correctness) nor below
      1/64 (bounded bucket store). *)

  val dim : t -> int
  (** The grid dimension actually chosen (cells per axis). [dim = 1]
      or [2] means the neighbourhood degenerates to (nearly) all
      cells, so hashing cannot beat a direct scan — callers use this
      to pick between the grid and a brute-force path. *)

  val collect : t -> x:float array -> y:float array -> int array -> int
  (** [collect p ~x ~y contacts] finds every pair [(a, b)], [a < b],
      with [(x_a - x_b)^2 + (y_a - y_b)^2 <= radius^2], writes them
      into [contacts] as packed [a * n + b] ints and returns the
      count. The {e set} written is exactly what a brute-force
      all-pairs scan finds (property-tested); the {e order} is
      deterministic but cell-major, not lexicographic — consumers
      needing an order statistic use {!select_prefix} (packed ints
      sort lexicographically), which is how the waypoint generator
      keeps its draw stream byte-identical to the all-pairs scan
      without paying an O(k log k) sort per draw. [contacts] must have
      room for every pair ([n (n - 1) / 2] suffices). Positions must
      lie in [0, 1). *)
end

val sort_prefix : int array -> int -> unit
(** [sort_prefix a count] sorts [a.(0 .. count - 1)] ascending in
    place (binary-insertion sort: allocation-free, O(k^2) worst case —
    meant for small buffers and tests, not for bulk data). *)

val select_prefix : int array -> int -> rank:int -> int
(** [select_prefix a count ~rank] is the [rank]-th smallest (0-based)
    of [a.(0 .. count - 1)]: allocation-free in-place quickselect,
    median-of-three pivots, expected O(count). The prefix is
    partially reordered. Deterministic — no randomness involved — so
    generator draw streams built on it are reproducible.
    @raise Invalid_argument unless [0 <= rank < count]. *)
