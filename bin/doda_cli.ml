(* doda — command-line front end for the distributed online data
   aggregation library.

     doda run      one algorithm against one adversary, full report
     doda duel     an algorithm against an adaptive adversary (Thm 1/3)
     doda sweep    scaling study across n, with exponent fit
     doda generate write an interaction trace to a file
     doda analyze  offline analysis of a trace (connectivity, optimum)
     doda classify place a trace in the TVG class hierarchy
     doda list     available algorithms, problems and adversaries *)

module Prng = Doda_prng.Prng
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Mobility = Doda_dynamic.Mobility
module Trace = Doda_dynamic.Trace
module Underlying = Doda_dynamic.Underlying
module Temporal = Doda_dynamic.Temporal
module Tvg_class = Doda_dynamic.Tvg_class
module Static_graph = Doda_graph.Static_graph
module Traversal = Doda_graph.Traversal
module Engine = Doda_core.Engine
module Problem = Doda_core.Problem
module Gossip = Doda_core.Gossip
module Validate = Doda_core.Validate
module Convergecast = Doda_core.Convergecast
module Cost = Doda_core.Cost
module Knowledge = Doda_core.Knowledge
module Algorithms = Doda_core.Algorithms
module Theory = Doda_core.Theory
module Randomized = Doda_adversary.Randomized
module Duel = Doda_adversary.Duel
module Counterexamples = Doda_adversary.Counterexamples
module Experiment = Doda_sim.Experiment
module Scaling = Doda_sim.Scaling
module Table = Doda_sim.Table
module Instrument = Doda_obs.Instrument
module Metrics = Doda_obs.Metrics
module Span = Doda_obs.Span

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Schedule sources (shared syntax lives in Doda_sim.Workload)         *)

module Workload = Doda_sim.Workload

let parse_source s =
  match Workload.parse s with Ok w -> Ok w | Error msg -> Error (`Msg msg)

let schedule_of_source ?telemetry ?stream source ~n ~sink ~seed =
  Workload.schedule ?telemetry ?stream source ~n ~sink ~seed

(* --metrics / --trace: shared by run and sweep. Telemetry is created
   only when one of the flags asks for it; otherwise every code path
   sees the shared disabled handle. [resources] turns on the memory
   gauges — single runs only: their values are not deterministic
   across job counts, and sweep's --metrics block is diffed at several
   --jobs in CI. *)
let telemetry_of ?(resources = false) ~metrics ~trace () =
  if metrics || trace <> None then Instrument.create ~resources ()
  else Instrument.disabled

let stream_flag =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Stream the schedule through a fixed-size block (bounded memory at \
           any horizon) instead of materialising it. Results are identical; \
           meet-time oracles and offline prefix analysis are unavailable.")

let emit_trace tel = function
  | None -> ()
  | Some path ->
      Instrument.write_trace ~process_name:"doda" tel path;
      Format.printf "trace written to %s@." path

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print telemetry counters and span timings after the run.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file (load it in Perfetto or \
           chrome://tracing).")

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let source_conv = Arg.conv (parse_source, fun ppf _ -> Format.fprintf ppf "<source>")

let algo_arg =
  let doc =
    "Algorithm: " ^ String.concat " | " Algorithms.names ^ "."
  in
  Arg.(value & opt string "gathering" & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let n_arg =
  Arg.(value & opt int 32 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let sink_arg =
  Arg.(value & opt int 0 & info [ "sink" ] ~docv:"SINK" ~doc:"Sink node id.")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"STEPS" ~doc:"Interaction budget.")

let source_arg =
  let doc = "Interaction source: " ^ Workload.syntax ^ "." in
  Arg.(value & opt source_conv Workload.Uniform & info [ "s"; "source" ] ~docv:"SOURCE" ~doc)

let find_algo name n =
  match Algorithms.find ~n name with
  | Some a -> a
  | None ->
      Printf.eprintf "unknown algorithm %S; known: %s\n" name
        (String.concat ", " Algorithms.names);
      exit 2

(* ------------------------------------------------------------------ *)
(* doda run                                                            *)

let gossip_run ~tel ~problem ~stream sched max_steps =
  let n = Schedule.n sched in
  let result =
    Instrument.with_span tel "gossip/run" (fun () ->
        Gossip.run ?max_steps ~problem sched)
  in
  Format.printf "problem: %s@." (Problem.describe problem);
  Format.printf "%a@." Gossip.pp_result result;
  (match Doda_sim.Analysis.mean_coverage_time ~n ~problem result with
  | Some m -> Format.printf "mean coverage time: %.1f@." m
  | None -> Format.printf "mean coverage time: -@.");
  if stream then
    (* Coverage times above are fine: Analysis replays the transfer
       log, never the schedule prefix. Only the validator needs the
       played interactions themselves. *)
    Format.printf
      "log validation skipped (--stream keeps no prefix; coverage times \
       replay the transfer log)@."
  else begin
    let prefix = Schedule.prefix sched (Schedule.materialized sched) in
    match Validate.problem problem ~n prefix result.Gossip.log with
    | [] -> Format.printf "transfer log validates: yes@."
    | v :: _ ->
        Format.printf "transfer log validates: NO (%a)@." Validate.pp_violation v
  end

let run_cmd =
  let run algo_name n sink seed source max_steps timeline stream metrics trace
      problem_str =
    let tel = telemetry_of ~resources:true ~metrics ~trace () in
    let problem =
      match Problem.parse ~sink problem_str with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "bad --problem: %s\n" msg;
          exit 2
    in
    let sched =
      schedule_of_source ~telemetry:tel ~stream source ~n ~sink ~seed
    in
    let max_steps =
      match (max_steps, Schedule.length sched) with
      | Some m, _ -> Some m
      | None, Some _ -> None
      | None, None -> Some ((200 * n * n) + 10_000)
    in
    match problem with
    | Problem.Dissemination _ ->
        (* Gossip has no per-algorithm strategy: both endpoints always
           exchange everything they know. *)
        gossip_run ~tel ~problem ~stream sched max_steps;
        if stream then Instrument.record_chunk_stats ~nondeterministic:true tel sched;
        if metrics then print_string (Instrument.summary tel);
        emit_trace tel trace
    | Problem.Aggregation _ ->
    let algo = find_algo algo_name n in
    let result =
      Instrument.with_span tel "engine/run" (fun () ->
          Engine.run ?max_steps ~observers:(Instrument.engine_observers tel) algo
            sched)
    in
    Format.printf "algorithm: %s@." algo.Doda_core.Algorithm.name;
    Format.printf "%a@." Engine.pp_result result;
    if stream then
      (* A streamed schedule keeps only its current block: the played
         prefix no longer exists to analyse — which is the point. *)
      Format.printf
        "offline prefix analysis skipped (--stream keeps no prefix)@."
    else begin
      let examined = Schedule.materialized sched in
      let prefix = Schedule.prefix sched examined in
      Instrument.with_span tel "analysis/offline-opt" (fun () ->
          match Convergecast.opt ~n:(Schedule.n sched) ~sink prefix 0 with
          | Some o ->
              Format.printf "offline optimum on played prefix: %d@." (o + 1)
          | None ->
              Format.printf "offline optimum on played prefix: infeasible@.");
      Format.printf "cost: %a@." Cost.pp
        (Cost.of_result ~n:(Schedule.n sched) ~sink prefix result)
    end;
    if timeline then
      print_string (Doda_sim.Timeline.render ~n:(Schedule.n sched) ~sink result);
    if stream then Instrument.record_chunk_stats ~nondeterministic:true tel sched;
    if metrics then print_string (Instrument.summary tel);
    emit_trace tel trace
  in
  let timeline =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Draw an ASCII execution timeline.")
  in
  let problem_arg =
    Arg.(
      value & opt string "aggregation"
      & info [ "problem" ] ~docv:"PROBLEM"
          ~doc:("Problem to solve: " ^ Problem.syntax ^ ". gossip:K runs k-token \
                 all-to-all dissemination (ignores --algorithm)."))
  in
  let term = Term.(const run $ algo_arg $ n_arg $ sink_arg $ seed_arg $ source_arg
                   $ max_steps_arg $ timeline $ stream_flag $ metrics_flag
                   $ trace_arg $ problem_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one problem against one interaction source.") term

(* ------------------------------------------------------------------ *)
(* doda duel                                                           *)

let duel_cmd =
  let duel algo_name which horizon n_opt =
    let adv, n, knowledge =
      match which with
      | "thm1" -> (Counterexamples.theorem1 (), Counterexamples.theorem1_nodes, None)
      | "thm3" ->
          ( Counterexamples.theorem3 (),
            Counterexamples.theorem3_nodes,
            Some
              (Knowledge.with_underlying (Counterexamples.theorem3_graph ())
                 Knowledge.empty) )
      | "spiteful" ->
          (Doda_adversary.Spiteful.adversary ~n:n_opt ~sink:0, n_opt, None)
      | other ->
          Printf.eprintf "unknown adversary %S; known: thm1, thm3, spiteful\n" other;
          exit 2
    in
    let algo = find_algo algo_name n in
    let result, played = Duel.run ?knowledge ~max_steps:horizon ~n ~sink:0 algo adv in
    Format.printf "adversary: %s (n=%d)@." adv.Doda_adversary.Adversary.name n;
    Format.printf "%a@." Engine.pp_result result;
    let possible = Cost.convergecasts_within ~n ~sink:0 played ~upto:(horizon - 1) in
    Format.printf "optimal convergecasts possible meanwhile: %d@." possible;
    Format.printf "cost: %a@." Cost.pp (Cost.of_result ~n ~sink:0 played result)
  in
  let which =
    Arg.(
      value & opt string "thm1"
      & info [ "adversary" ] ~docv:"ADV"
          ~doc:"Adaptive adversary: thm1 | thm3 | spiteful.")
  in
  let horizon =
    Arg.(value & opt int 2000 & info [ "horizon" ] ~docv:"H" ~doc:"Interaction budget.")
  in
  let term = Term.(const duel $ algo_arg $ which $ horizon $ n_arg) in
  Cmd.v
    (Cmd.info "duel"
       ~doc:"Play an algorithm against an adaptive adversary from the paper's proofs.")
    term

(* ------------------------------------------------------------------ *)
(* doda sweep                                                          *)

let sweep_cmd =
  let sweep algo_name ns reps seed source max_steps csv jobs stream batch
      checkpoint metrics trace =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 1, got %d\n" jobs;
      exit 2
    end;
    let tel = telemetry_of ~metrics ~trace () in
    let cp =
      match checkpoint with
      | None -> None
      | Some path ->
          (* The key pins every parameter that shapes the sweep, so a
             checkpoint from a differently-shaped run is discarded
             instead of leaking wrong results in. A batched sweep is a
             different experiment (one shared schedule per point, not
             one per replication), hence its own key prefix. *)
          let key =
            Printf.sprintf "%s v1 algo=%s source=%s ns=%s reps=%d seed=%d%s"
              (if batch then "sweep-batch" else "sweep")
              algo_name
              (Workload.to_string source)
              (String.concat "," (List.map string_of_int ns))
              reps seed
              (* Appended only when overridden, so checkpoints written
                 before the flag existed keep resuming. *)
              (match max_steps with
              | Some m -> Printf.sprintf " max-steps=%d" m
              | None -> "")
          in
          Some (Doda_sim.Checkpoint.create ~path ~key)
    in
    let t = Table.create ~header:[ "n"; "mean"; "stderr"; "success" ] in
    (* One pool for the whole sweep. Seeds are pre-split sequentially
       (Experiment.replicate_par), so the table is identical whatever
       --jobs is. *)
    Doda_sim.Pool.with_pool ~jobs @@ fun pool ->
    let points =
      List.mapi
        (fun i n ->
          let algo = find_algo algo_name n in
          let checkpoint =
            (* One file spans the whole sweep: point [i] owns the slot
               range [i*reps .. (i+1)*reps). *)
            Option.map
              (fun cp -> Doda_sim.Checkpoint.sub cp ~base:(i * reps))
              cp
          in
          let max_steps =
            match max_steps with
            | Some m -> m
            | None -> (400 * n * n) + 10_000
          in
          let label = algo.Doda_core.Algorithm.name in
          let factory rng =
            (* One independent instantiation of the workload per
               stream handed in: the scalar sweep calls this once per
               replication, the batched sweep once per point. *)
            Workload.schedule ~stream source ~n ~sink:0
              ~seed:(Prng.int rng 1_000_000_000)
          in
          let m =
            if batch then
              (* Lockstep: ONE shared schedule per point, all
                 replications bit-parallel over it; the pool pipelines
                 streamed block decodes. *)
              Experiment.run_batched_factory ~pool ~telemetry:tel ?checkpoint
                ~replications:reps ~seed ~max_steps ~label ~n factory algo
            else
              Experiment.run_schedule_factory ~pool ~telemetry:tel ?checkpoint
                ~replications:reps ~seed ~max_steps ~label ~n factory algo
          in
          let p = Scaling.point_of m in
          Table.add_row t
            [
              string_of_int n;
              Table.cell_f p.Scaling.mean;
              Table.cell_f p.Scaling.std_error;
              Table.cell_ratio p.Scaling.success;
            ];
          p)
        ns
    in
    Option.iter Doda_sim.Checkpoint.close cp;
    Table.print t;
    (match csv with
    | Some path ->
        Doda_sim.Csv.write path ~header:(Table.header_row t) (Table.rows t);
        Format.printf "csv written to %s@." path
    | None -> ());
    if List.length points >= 2 then begin
      let fit = Scaling.exponent points in
      Format.printf "log-log exponent: %.3f (r2 = %.4f)@." fit.slope fit.r2
    end;
    (* Counters only, no span timings: with fixed seeds this block is
       byte-identical at any --jobs (the determinism CI check diffs
       it), while wall-clock spans never are. *)
    if metrics then print_string (Metrics.summary (Instrument.metrics tel));
    emit_trace tel trace
  in
  let ns =
    Arg.(
      value
      & opt (list int) [ 16; 32; 64; 128 ]
      & info [ "ns" ] ~docv:"N,N,.." ~doc:"Node counts to sweep.")
  in
  let reps =
    Arg.(value & opt int 10 & info [ "reps" ] ~docv:"R" ~doc:"Replications per point.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let default_jobs =
    try Doda_sim.Pool.default_jobs ()
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 1
  in
  let jobs =
    Arg.(
      value
      & opt int default_jobs
      & info [ "j"; "jobs" ] ~docv:"JOBS"
          ~doc:
            "Worker domains for the replications (default: \\$(b,DODA_JOBS) or \
             the recommended domain count). Results are identical at any job \
             count.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Record each finished replication to $(docv) and resume from it: \
             an interrupted sweep restarted with the same parameters skips \
             finished slots and produces the bit-identical table. Relative \
             paths honour $(b,DODA_SCRATCH).")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Lockstep batched sweep: draw ONE schedule per point and run all \
             replications bit-parallel over it (the adversary-replay \
             experiment; a different measurement from the default's fresh \
             schedule per replication). Works with $(b,--stream) in bounded \
             memory — block decodes are pipelined over the worker domains — \
             and needs a batch-capable algorithm.")
  in
  let term =
    Term.(const sweep $ algo_arg $ ns $ reps $ seed_arg $ source_arg
          $ max_steps_arg $ csv $ jobs
          $ stream_flag $ batch $ checkpoint $ metrics_flag $ trace_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Scaling study of an algorithm under the uniform randomized adversary.")
    term

(* ------------------------------------------------------------------ *)
(* doda generate                                                       *)

let generate_cmd =
  let generate n sink seed source length output =
    let sched = schedule_of_source source ~n ~sink ~seed in
    let s = Schedule.prefix sched length in
    Trace.save output s;
    Format.printf "wrote %d interactions on %d nodes to %s@." (Sequence.length s)
      (Schedule.n sched) output
  in
  let length =
    Arg.(value & opt int 10_000 & info [ "length" ] ~docv:"LEN" ~doc:"Trace length.")
  in
  let output =
    Arg.(
      value & opt string "trace.txt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let term =
    Term.(const generate $ n_arg $ sink_arg $ seed_arg $ source_arg $ length $ output)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate an interaction trace file.") term

(* ------------------------------------------------------------------ *)
(* doda analyze                                                        *)

let analyze_cmd =
  let analyze path sink =
    let s = Trace.load path in
    let n = Sequence.max_node s + 1 in
    let len = Sequence.length s in
    Format.printf "trace: %s@.nodes: %d, interactions: %d@." path n len;
    let g = Underlying.of_sequence ~n s in
    Format.printf "underlying graph: %d edges, %s@."
      (Static_graph.edge_count g)
      (if Traversal.connected g then "connected" else "disconnected");
    if Static_graph.is_tree g then Format.printf "underlying graph is a tree@.";
    Format.printf "temporally connected: %b@." (Temporal.temporally_connected ~n s);
    (match Temporal.broadcast_completion ~n ~src:sink s with
    | Some t -> Format.printf "broadcast from sink completes at: %d@." t
    | None -> Format.printf "broadcast from sink: incomplete@.");
    (match Convergecast.opt ~n ~sink s 0 with
    | Some t -> Format.printf "optimal convergecast ends at: %d@." t
    | None -> Format.printf "optimal convergecast: infeasible@.");
    let chain = Convergecast.t_chain ~n ~sink s in
    Format.printf "successive convergecasts possible: %d@." (List.length chain);
    print_string (Doda_dynamic.Metrics.summary ~n ~sink s);
    let window = Stdlib.max 1 (len / 10) in
    let eg = Doda_dynamic.Evolving_graph.of_interactions ~n ~window s in
    let connected =
      List.length
        (List.filter
           (fun i ->
             Traversal.connected (Doda_dynamic.Evolving_graph.snapshot eg i))
           (List.init (Doda_dynamic.Evolving_graph.length eg) (fun i -> i)))
    in
    Format.printf "connected windows (size %d): %d/%d@." window connected
      (Doda_dynamic.Evolving_graph.length eg)
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let term = Term.(const analyze $ path $ sink_arg) in
  Cmd.v (Cmd.info "analyze" ~doc:"Offline analysis of an interaction trace.") term

(* ------------------------------------------------------------------ *)
(* doda classify                                                       *)

let classify_cmd =
  let yes_no = function
    | Ok () -> "yes"
    | Error w -> Format.asprintf "no (%a)" Tvg_class.pp_witness w
  in
  let classify path window bound =
    let s = Trace.load path in
    let n = Sequence.max_node s + 1 in
    let sum = Tvg_class.summarize ~n s in
    Format.printf "trace: %s@.nodes: %d, interactions: %d@." path sum.nodes
      sum.length;
    Format.printf "footprint: %d edges, %s@." sum.footprint_edges
      (if sum.footprint_connected then "connected" else "disconnected");
    Format.printf "temporal: %s@." (yes_no sum.temporal);
    Format.printf "recurrent: %s@." (yes_no sum.recurrent);
    (match sum.min_window with
    | Some w -> Format.printf "smallest power-of-two t-interval window: %d@." w
    | None -> Format.printf "t-interval: no window up to the trace length@.");
    (match sum.min_bound with
    | Some b -> Format.printf "smallest bounded-recurrent bound: %d@." b
    | None -> Format.printf "bounded-recurrent: empty trace@.");
    let check cls =
      Format.printf "%s: %s@."
        (match cls with
        | Tvg_class.T_interval w -> Printf.sprintf "t-interval(%d)" w
        | Tvg_class.Bounded_recurrent b -> Printf.sprintf "bounded-recurrent(%d)" b
        | c -> Tvg_class.to_string c)
        (yes_no (Tvg_class.validate ~n cls s))
    in
    Option.iter (fun w -> check (Tvg_class.T_interval w)) window;
    Option.iter (fun b -> check (Tvg_class.Bounded_recurrent b)) bound
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"W"
          ~doc:"Also check membership in t-interval:$(docv) explicitly.")
  in
  let bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound" ] ~docv:"B"
          ~doc:"Also check membership in bounded-recurrent:$(docv) explicitly.")
  in
  let term = Term.(const classify $ path $ window $ bound) in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Place an interaction trace in the TVG class hierarchy (temporal, \
          T-interval connectivity, recurrent, time-bounded recurrent).")
    term

(* ------------------------------------------------------------------ *)
(* doda list                                                           *)

let list_cmd =
  let list () =
    Format.printf "algorithms:@.";
    List.iter (fun name -> Format.printf "  %s@." name) Algorithms.names;
    Format.printf "sources: %s@." Workload.syntax;
    Format.printf "problems (doda run --problem): %s@." Problem.syntax;
    Format.printf "TVG classes (doda classify): %s@." Tvg_class.syntax;
    Format.printf "adaptive adversaries (doda duel): thm1, thm3, spiteful@.";
    Format.printf "recommended tau at n=128: %d@." (Theory.recommended_tau 128)
  in
  Cmd.v (Cmd.info "list" ~doc:"List algorithms and interaction sources.")
    Term.(const list $ const ())

let () =
  let info =
    Cmd.info "doda" ~version:"1.0.0"
      ~doc:"Distributed online data aggregation in dynamic graphs (ICDCS 2016)."
  in
  let group =
    Cmd.group info
      [ run_cmd; duel_cmd; sweep_cmd; generate_cmd; analyze_cmd; classify_cmd;
        list_cmd ]
  in
  exit (Cmd.eval group)
