(* Body-area sensor network: the paper's first motivating scenario.

   A dozen sensors are strapped to a moving human body; a hub (the
   sink) must collect one reading from each sensor. Contacts are driven
   by a random-waypoint mobility model: at each time unit, one pair of
   sensors currently in radio range interacts. Each sensor may transmit
   its (aggregated) readings exactly once — the energy constraint that
   motivates the DODA problem.

   We replay the same mobility trace against every applicable algorithm
   and compare completion times with the offline optimum.

     dune exec examples/body_sensors.exe *)

module Prng = Doda_prng.Prng
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Mobility = Doda_dynamic.Mobility
module Underlying = Doda_dynamic.Underlying
module Static_graph = Doda_graph.Static_graph
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Cost = Doda_core.Cost
module Algorithms = Doda_core.Algorithms
module Table = Doda_sim.Table

let () =
  let n = 12 and sink = 0 in
  let rng = Prng.create 7 in
  (* Tight radio range and slow movement: long dry spells between
     contacts, exactly the regime where waiting strategies pay off. *)
  let params = { Mobility.radius = 0.18; speed = 0.015; pause = 4 } in
  let gen = Mobility.random_waypoint ~params rng ~n in
  (* Commit a finite contact trace so every algorithm (including the
     future-knowledge ones) sees the same adversary. *)
  let trace = Sequence.of_array (Array.init 40_000 gen) in

  let g = Underlying.of_sequence ~n trace in
  Format.printf "body-area network: %d sensors, hub = node %d@." n sink;
  Format.printf "contact trace: %d interactions, underlying graph has %d edges@.@."
    (Sequence.length trace)
    (Static_graph.edge_count g);

  let t = Table.create ~header:[ "algorithm"; "done at"; "transmissions"; "cost" ] in
  let algorithms =
    [
      Algorithms.waiting;
      Algorithms.gathering;
      Algorithms.waiting_greedy_recommended n;
      Algorithms.full_knowledge;
      Algorithms.future_gossip;
    ]
  in
  List.iter
    (fun algo ->
      let sched = Schedule.of_sequence ~n ~sink trace in
      let r = Engine.run algo sched in
      let done_at =
        match r.Engine.duration with
        | Some d -> string_of_int (d + 1)
        | None -> "never"
      in
      let cost = Format.asprintf "%a" Cost.pp (Cost.of_result ~n ~sink trace r) in
      Table.add_row t
        [
          algo.Doda_core.Algorithm.name;
          done_at;
          string_of_int r.Engine.transmission_count;
          cost;
        ])
    algorithms;
  Table.print t;
  match Convergecast.opt ~n ~sink trace 0 with
  | Some ending -> Format.printf "@.offline optimum: %d interactions@." (ending + 1)
  | None -> Format.printf "@.offline optimum: infeasible on this trace@."
