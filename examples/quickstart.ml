(* Quickstart: the library in thirty lines.

   A dynamic graph is a sequence of pairwise interactions; an online
   algorithm decides, at each interaction, whether one endpoint sends
   its data to the other (each node may transmit only once). We run the
   paper's Gathering algorithm against the uniform randomized adversary
   and compare it with the offline optimum.

     dune exec examples/quickstart.exe

   For the same loop with telemetry attached (metric counters, span
   timings, Chrome trace export) see quickstart_instrumented.ml. *)

module Prng = Doda_prng.Prng
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Cost = Doda_core.Cost
module Algorithms = Doda_core.Algorithms

let () =
  let n = 32 and sink = 0 in
  (* The randomized adversary: each interaction drawn uniformly among
     the n(n-1)/2 pairs, materialised lazily as the run progresses. *)
  let rng = Prng.create 2016 in
  let schedule = Schedule.of_fun ~n ~sink (Generators.uniform rng ~n) in

  (* Run Gathering: transmit whenever possible, to the sink if present.
     An observer streams transmissions as the run-core commits them. *)
  let progress =
    Engine.observer
      ~on_transmit:(fun ~time ~sender ~receiver ->
        Format.printf "t=%-5d %d -> %d@." time sender receiver)
      ()
  in
  let result =
    Engine.run ~max_steps:100_000 ~observers:[ progress ]
      Algorithms.gathering schedule
  in
  Format.printf "@.Gathering on %d nodes:@.%a@.@." n Engine.pp_result result;

  (* Offline analysis on the exact sequence that was played. *)
  let played = Schedule.prefix schedule (Schedule.materialized schedule) in
  (match Convergecast.opt ~n ~sink played 0 with
  | Some ending ->
      Format.printf "an offline optimal schedule would finish at: %d@." (ending + 1)
  | None -> Format.printf "no offline schedule could finish either@.");
  Format.printf "cost (optimal convergecasts the offline algorithm fits in): %a@."
    Cost.pp
    (Cost.of_result ~n ~sink played result)
