(* Quickstart, instrumented: the telemetry subsystem on one Waiting
   Greedy run.

   An [Instrument.t] bundles a metrics registry with a span sink.
   [engine_observers] plugs counters into the run-core's observer
   interface ([engine.steps], [engine.transmissions], the
   [engine.duration] histogram); [with_span] times the phases on the
   monotonic clock. Everything prints as a plain-text summary, and
   [--trace FILE] additionally exports a Chrome trace-event JSON file
   that Perfetto or chrome://tracing can load.

     dune exec examples/quickstart_instrumented.exe
     dune exec examples/quickstart_instrumented.exe -- --trace out.json *)

module Prng = Doda_prng.Prng
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine
module Algorithms = Doda_core.Algorithms
module Theory = Doda_core.Theory
module Instrument = Doda_obs.Instrument

let trace_path () =
  let rec find = function
    | "--trace" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let () =
  let n = 64 and sink = 0 in
  let tel = Instrument.create () in

  (* Waiting Greedy with the recommended waiting threshold tau (Theorem
     10), against the uniform randomized adversary. *)
  let tau = Theory.recommended_tau n in
  let rng = Prng.create 2016 in
  let schedule =
    Instrument.with_span tel "schedule/build" (fun () ->
        Schedule.of_fun ~n ~sink (Generators.uniform rng ~n))
  in
  let algo = Algorithms.waiting_greedy ~tau in
  let result =
    Instrument.with_span tel "engine/run" (fun () ->
        Engine.run ~max_steps:(16 * tau)
          ~observers:(Instrument.engine_observers tel)
          algo schedule)
  in
  Format.printf "%s on %d nodes (tau=%d):@.%a@.@."
    algo.Doda_core.Algorithm.name n tau Engine.pp_result result;

  (* Counters, histograms and span timings, one line each. *)
  print_string (Instrument.summary tel);

  match trace_path () with
  | Some path ->
      Instrument.write_trace ~process_name:"quickstart" tel path;
      Format.printf "@.chrome trace written to %s (load it in Perfetto)@." path
  | None -> ()
