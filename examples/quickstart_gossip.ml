(* Quickstart, dissemination edition: the Problem abstraction beyond
   aggregation.

   Aggregation moves everything to one sink; gossip (k-token all-to-all
   dissemination) moves everything to everyone: token j starts at node
   j mod n, interacting nodes exchange all tokens they know, and the
   run ends when every node knows all k. We play it over a
   class-constrained schedule — every tumbling window of interactions
   is guaranteed connected (T-interval connectivity), so coverage is
   guaranteed to make progress — and watch nodes complete through an
   observer.

     dune exec examples/quickstart_gossip.exe *)

module Prng = Doda_prng.Prng
module Schedule = Doda_dynamic.Schedule
module Tvg_class = Doda_dynamic.Tvg_class
module Problem = Doda_core.Problem
module Gossip = Doda_core.Gossip
module Analysis = Doda_sim.Analysis

let () =
  let n = 16 and window = 24 in
  let problem = Problem.dissemination ~k:n in

  (* An adversarial-but-fair schedule: each window of 24 interactions
     hides a fresh random spanning tree among uniform noise, so it is
     in the class T-interval(24) by construction (doda classify would
     agree). *)
  let rng = Prng.create 2016 in
  let schedule =
    Schedule.of_fun ~n ~sink:0 (Tvg_class.gen_t_interval rng ~n ~window)
  in

  (* Stream informative transfers as the run-core commits them. *)
  let transfers = ref 0 in
  let progress =
    Gossip.observer
      ~on_transfer:(fun ~time ~sender ~receiver ->
        incr transfers;
        if !transfers <= 10 then
          Format.printf "t=%-5d %d taught %d something new@." time sender
            receiver)
      ()
  in
  let result =
    Gossip.run ~max_steps:100_000 ~observers:[ progress ] ~problem schedule
  in
  if !transfers > 10 then
    Format.printf "... and %d more transfers@." (!transfers - 10);
  Format.printf "@.%s on %d nodes:@.%a@.@." (Problem.describe problem) n
    Gossip.pp_result result;

  (* Offline analysis: when did each node reach full coverage? *)
  let times = Analysis.coverage_times ~n ~problem result in
  Array.iteri
    (fun v t ->
      match t with
      | Some t -> Format.printf "node %-2d covered at t=%d@." v t
      | None -> Format.printf "node %-2d never covered@." v)
    times;
  match Analysis.mean_coverage_time ~n ~problem result with
  | Some m -> Format.printf "mean coverage time: %.1f@." m
  | None -> Format.printf "no node was covered by a transfer@."
