(* Benchmark harness: regenerates every experiment in EXPERIMENTS.md
   (E1 .. E10, one per theorem of the paper) and finishes with Bechamel
   micro-benchmarks of the core machinery.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e4 e6   # selected experiments
     dune exec bench/main.exe -- micro   # only the micro-benchmarks
     dune exec bench/main.exe -- --jobs 4 e4   # 4 domains

   Numbers are means over replications with a fixed master seed, so
   output is reproducible run to run. Replications run in parallel on
   a domain pool (--jobs N / -j N, or the DODA_JOBS environment
   variable; default Domain.recommended_domain_count). Seeds are
   pre-split sequentially on the main domain, so every table is
   bit-identical whatever the job count.

   Besides the tables (and their CSV mirrors under DODA_BENCH_CSV), a
   machine-readable archive of everything measured — per-experiment
   wall-clock plus every table — is written to BENCH_results.json
   (path overridable via DODA_BENCH_JSON; set it empty to disable). *)

module Prng = Doda_prng.Prng
module Descriptive = Doda_stats.Descriptive
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Interaction = Doda_dynamic.Interaction
module Temporal = Doda_dynamic.Temporal
module Static_graph = Doda_graph.Static_graph
module Graph_gen = Doda_graph.Graph_gen
module Engine = Doda_core.Engine
module Batch_engine = Doda_core.Batch_engine
module Run_log = Doda_core.Run_log
module Convergecast = Doda_core.Convergecast
module Cost = Doda_core.Cost
module Knowledge = Doda_core.Knowledge
module Theory = Doda_core.Theory
module Algorithms = Doda_core.Algorithms
module Waiting_greedy = Doda_core.Waiting_greedy
module Mobility = Doda_dynamic.Mobility
module Gen_kernel = Doda_dynamic.Gen_kernel
module Tvg_class = Doda_dynamic.Tvg_class
module Problem = Doda_core.Problem
module Gossip = Doda_core.Gossip
module Randomized = Doda_adversary.Randomized
module Duel = Doda_adversary.Duel
module Counterexamples = Doda_adversary.Counterexamples
module Experiment = Doda_sim.Experiment
module Scaling = Doda_sim.Scaling
module Table = Doda_sim.Table
module Obs_metrics = Doda_obs.Metrics
module Obs_span = Doda_obs.Span

let master_seed = 20160701
let replications = 20
let sweep_ns = [ 32; 64; 128; 256 ]

let header title body =
  Printf.printf "\n=== %s ===\n%s\n" title body

(* ------------------------------------------------------------------ *)
(* Parallel replication: one shared domain pool, sized by --jobs /
   DODA_JOBS, created lazily after argument parsing. Seeds are
   pre-split sequentially by Experiment.replicate_par, so results are
   bit-identical to the sequential harness at any job count. *)

module Pool = Doda_sim.Pool

let jobs =
  ref
    (try Pool.default_jobs ()
     with Invalid_argument msg ->
       prerr_endline msg;
       exit 1)
let pool = lazy (Pool.create ~jobs:!jobs)

let replicate ~replications ~seed f =
  Experiment.replicate_par ~pool:(Lazy.force pool) ~replications ~seed f

(* One span per experiment suite, archived into the JSON results and —
   with DODA_TRACE=<file> in the environment — exported as a Chrome
   trace-event file for Perfetto. The experiments themselves stay
   untelemetered here: their committed tables are byte-identical
   baselines, and suite-level spans cost one clock pair each. *)
let suite_spans = lazy (Obs_span.create ~capacity:256 ())

(* With DODA_BENCH_CSV=<dir> in the environment, every printed table is
   also archived as CSV under that directory (empty value: disabled).
   Relative paths land under DODA_SCRATCH when that is set. *)
let csv_dir =
  match Sys.getenv_opt "DODA_BENCH_CSV" with
  | Some "" | None -> None
  | Some d -> Some (Doda_sim.Scratch.resolve d)

let csv_counter = ref 0

(* Tables printed by the experiment currently running, for the JSON
   archive. *)
let current_tables : (string * Table.t) list ref = ref []

(* [csv:false] prints and archives to JSON but skips the CSV mirror:
   for tables with timing columns (generator throughput), which cannot
   serve as byte-identical regression baselines. *)
let print_table ?(csv = true) ?name table =
  Table.print table;
  let base = match name with Some n -> n | None -> "table" in
  current_tables := (base, table) :: !current_tables;
  match csv_dir with
  | None -> ()
  | Some _ when not csv -> ()
  | Some dir ->
      Doda_sim.Csv.mkdir_p dir;
      incr csv_counter;
      let path = Filename.concat dir (Printf.sprintf "%02d_%s.csv" !csv_counter base) in
      Doda_sim.Csv.write path ~header:(Table.header_row table) (Table.rows table);
      Printf.printf "[csv written to %s]\n" path

let fmt = Table.cell_f
let ratio = Table.cell_ratio

let mean_stderr samples =
  (Descriptive.mean samples, Descriptive.std_error samples)

(* Durations (interactions to completion) of replicated runs of [algo]
   against the uniform randomized adversary. Most consumers only read
   durations, so transmission logging is off by default; experiments
   that inspect the log (E1, LATENCY) pass ~record:`All. *)
let uniform_runs ?(record = `Count) ?(reps = replications) ?(seed = master_seed)
    ~n algo =
  replicate ~replications:reps ~seed (fun rng ->
      let sched = Randomized.uniform_schedule rng ~n ~sink:0 in
      Engine.run ~record ~max_steps:((200 * n * n) + 10_000) algo sched)

let durations results =
  Array.of_list
    (List.filter_map
       (fun (r : Engine.result) -> Option.map (fun d -> float_of_int (d + 1)) r.duration)
       (Array.to_list results))

(* One schedule per trace, every algorithm against it: replications run
   on the pool, each worker building a single schedule from its rng and
   sweeping the whole algorithm list over it in one lockstep pass
   ([Batch_engine.sweep]: one schedule decode per step shared by every
   live lane, one lazy stepper oracle shared by the meet-time
   policies). The durations are bit-identical to consecutive
   [Engine.run]s per algorithm — the batch differential tests enforce
   it — because a schedule's content is a function of the seed alone.
   Returns, per algorithm, the successful durations as floats. *)
let shared_sweep ?(record = `Count) ?max_steps ?(reps = replications)
    ?(seed = master_seed) schedule_of algos =
  let rows =
    replicate ~replications:reps ~seed (fun rng ->
        let sched = schedule_of rng in
        Array.map
          (fun (r : Engine.result) -> r.Engine.duration)
          (Batch_engine.sweep ~record ?max_steps algos sched))
  in
  List.mapi
    (fun idx _ ->
      Array.of_list
        (List.filter_map
           (fun row -> Option.map (fun d -> float_of_int (d + 1)) row.(idx))
           (Array.to_list rows)))
    algos

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 7: the final transmission alone waits Omega(n^2).      *)

let e1 () =
  header "E1 | Theorem 7: last transmission waits Omega(n^2) interactions"
    "Gathering under the uniform adversary; wait = gap between the last\n\
     two transmissions; prediction = n(n-1)/2.";
  let t = Table.create ~header:[ "n"; "last-wait mean"; "stderr"; "n(n-1)/2"; "ratio" ] in
  List.iter
    (fun n ->
      let results = uniform_runs ~record:`All ~n Algorithms.gathering in
      let waits =
        Array.of_list
          (List.filter_map
             (fun (r : Engine.result) ->
               let len = Run_log.length r.log in
               if len >= 2 then
                 Some
                   (float_of_int
                      (Run_log.time r.log (len - 1) - Run_log.time r.log (len - 2)))
               else None)
             (Array.to_list results))
      in
      let m, se = mean_stderr waits in
      let predicted = Theory.expected_last_meet n in
      Table.add_row t
        [ string_of_int n; fmt m; fmt se; fmt predicted; ratio (m /. predicted) ])
    sweep_ns;
  print_table t

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 8: full knowledge / broadcast is Theta(n log n).       *)

let e2 () =
  header "E2 | Theorem 8: broadcast & optimal convergecast in Theta(n log n)"
    "Flooding completion and offline opt(0) on uniform sequences;\n\
     prediction = (n-1) H(n-1); 'conc' = fraction of runs within\n\
     mean +/- n log n (the Chebyshev bound of the proof).";
  let t =
    Table.create
      ~header:
        [ "n"; "broadcast"; "convergecast"; "(n-1)H(n-1)"; "b/pred"; "c/pred"; "conc" ]
  in
  List.iter
    (fun n ->
      let horizon = 60 * n * (1 + int_of_float (log (float_of_int n))) in
      let pairs =
        replicate ~replications ~seed:master_seed (fun rng ->
            let s = Generators.uniform_sequence rng ~n ~length:horizon in
            let b = Temporal.broadcast_completion ~n ~src:0 s in
            let c = Convergecast.opt ~n ~sink:0 s 0 in
            (b, c))
      in
      let extract f =
        Array.of_list
          (List.filter_map
             (fun p -> Option.map (fun x -> float_of_int (x + 1)) (f p))
             (Array.to_list pairs))
      in
      let broadcasts = extract fst and convergecasts = extract snd in
      let mb = Descriptive.mean broadcasts and mc = Descriptive.mean convergecasts in
      let predicted = Theory.expected_broadcast n in
      let band = float_of_int n *. log (float_of_int n) in
      let within =
        Array.fold_left
          (fun acc x -> if Float.abs (x -. mb) <= band then acc + 1 else acc)
          0 broadcasts
      in
      let conc = float_of_int within /. float_of_int (Array.length broadcasts) in
      Table.add_row t
        [
          string_of_int n; fmt mb; fmt mc; fmt predicted;
          ratio (mb /. predicted); ratio (mc /. predicted); ratio conc;
        ])
    (sweep_ns @ [ 512 ]);
  print_table t

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 9a: Waiting terminates in O(n^2 log n).                *)

let scaling_experiment ~title ~note ~predicted ~pred_label algo_of_n ns =
  header title note;
  let t =
    Table.create ~header:[ "n"; "interactions"; "stderr"; pred_label; "ratio" ]
  in
  let ms =
    List.map
      (fun n ->
        let results = uniform_runs ~n (algo_of_n n) in
        let samples = durations results in
        let m, se = mean_stderr samples in
        Table.add_row t
          [
            string_of_int n; fmt m; fmt se; fmt (predicted n);
            ratio (m /. predicted n);
          ];
        { Scaling.n; mean = m; std_error = se; success = 1.0 })
      ns
  in
  print_table t;
  let fit = Scaling.exponent ms in
  let _, cv = Scaling.ratio_stability ~predicted ms in
  Printf.printf "log-log exponent: %.3f (r2=%.4f); ratio CV vs prediction: %.3f\n"
    fit.slope fit.r2 cv

let e3 () =
  scaling_experiment
    ~title:"E3 | Theorem 9a: Waiting terminates in O(n^2 log n)"
    ~note:"Uniform adversary; prediction = (n(n-1)/2) H(n-1)."
    ~predicted:Theory.expected_waiting ~pred_label:"n^2 H/2"
    (fun _ -> Algorithms.waiting)
    sweep_ns

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 9b / Corollary 2: Gathering is O(n^2), optimal without
   knowledge.                                                          *)

let e4 () =
  scaling_experiment
    ~title:"E4 | Theorem 9b: Gathering terminates in O(n^2) (optimal, Cor. 2)"
    ~note:"Uniform adversary; prediction = n(n-1)(1 - 1/n)."
    ~predicted:Theory.expected_gathering ~pred_label:"n(n-1)(1-1/n)"
    (fun _ -> Algorithms.gathering)
    sweep_ns

(* ------------------------------------------------------------------ *)
(* E5 — Lemma 1: in n f(n) interactions, Theta(f(n)) nodes meet the
   sink.                                                               *)

let e5 () =
  header "E5 | Lemma 1: interactions until the sink meets k distinct nodes"
    "n = 256; prediction = (n(n-1)/2)(H(n-1) - H(n-1-k)).";
  let n = 256 in
  let t = Table.create ~header:[ "k"; "interactions"; "stderr"; "predicted"; "ratio" ] in
  List.iter
    (fun k ->
      let samples =
        replicate ~replications ~seed:master_seed (fun rng ->
            let met = Array.make n false in
            let distinct = ref 0 in
            let steps = ref 0 in
            while !distinct < k do
              let a, b = Prng.pair rng n in
              incr steps;
              if a = 0 && not met.(b) then begin
                met.(b) <- true;
                incr distinct
              end
              else if b = 0 && not met.(a) then begin
                met.(a) <- true;
                incr distinct
              end
            done;
            float_of_int !steps)
      in
      let m, se = mean_stderr samples in
      let predicted = Theory.expected_sink_meetings ~n ~k in
      Table.add_row t
        [ string_of_int k; fmt m; fmt se; fmt predicted; ratio (m /. predicted) ])
    [ 4; 8; 16; 32; 64; 128 ];
  print_table t

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 10 / Corollary 3: Waiting Greedy with
   tau = Theta(n^{3/2} sqrt(log n)).                                   *)

let e6 () =
  header "E6 | Theorem 10/Cor 3: Waiting Greedy terminates by tau w.h.p."
    "Part A: recommended tau = ceil(n^1.5 sqrt(ln n)) across n.\n\
     'by-tau' = fraction of runs finishing within tau interactions.";
  let t =
    Table.create ~header:[ "n"; "tau"; "interactions"; "stderr"; "by-tau"; "mean/tau" ]
  in
  List.iter
    (fun n ->
      let tau = Theory.recommended_tau n in
      let results =
        replicate ~replications ~seed:master_seed (fun rng ->
            let sched = Randomized.uniform_schedule rng ~n ~sink:0 in
            Engine.run ~record:`Count ~max_steps:(8 * tau) (Algorithms.waiting_greedy ~tau) sched)
      in
      let samples = durations results in
      let m, se = mean_stderr samples in
      let by_tau =
        Array.fold_left
          (fun acc x -> if x <= float_of_int tau then acc + 1 else acc)
          0 samples
      in
      Table.add_row t
        [
          string_of_int n; string_of_int tau; fmt m; fmt se;
          Printf.sprintf "%d/%d" by_tau replications;
          ratio (m /. float_of_int tau);
        ])
    sweep_ns;
  print_table t;
  Printf.printf
    "\nPart B: tau-sweep at n = 128 over f = c sqrt(n ln n) — the\n\
     max(nf, n^2 ln n / f) tradeoff should be minimised near c = 1.\n";
  let n = 128 in
  let t2 = Table.create ~header:[ "c"; "f"; "tau"; "interactions"; "stderr" ] in
  List.iter
    (fun c ->
      let f = c *. sqrt (float_of_int n *. log (float_of_int n)) in
      let tau = Theory.tau_for_f ~n ~f in
      let results =
        replicate ~replications ~seed:master_seed (fun rng ->
            let sched = Randomized.uniform_schedule rng ~n ~sink:0 in
            Engine.run ~record:`Count ~max_steps:(40 * n * n) (Algorithms.waiting_greedy ~tau) sched)
      in
      let samples = durations results in
      let m, se = mean_stderr samples in
      Table.add_row t2
        [ ratio c; fmt f; string_of_int tau; fmt m; fmt se ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  print_table t2;
  Printf.printf
    "\nPart C (ablation): capped meetTime oracle (limit = tau) vs exact\n\
     oracle on identical finite sequences, n = 64.\n";
  let n = 64 in
  let tau = Theory.recommended_tau n in
  let t3 = Table.create ~header:[ "oracle"; "interactions"; "stderr" ] in
  let run_mode exact =
    replicate ~replications ~seed:master_seed (fun rng ->
        let len = 8 * tau in
        let s = Generators.uniform_sequence rng ~n ~length:len in
        let sched = Schedule.of_sequence ~n ~sink:0 s in
        Engine.run ~record:`Count (Waiting_greedy.make ~exact ~tau ()) sched)
  in
  List.iter
    (fun (label, exact) ->
      let samples = durations (run_mode exact) in
      let m, se = mean_stderr samples in
      Table.add_row t3 [ label; fmt m; fmt se ])
    [ ("capped", false); ("exact", true) ];
  print_table t3

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 11: head-to-head; Waiting Greedy sits between
   Gathering and the offline optimum.                                  *)

let e7 () =
  header "E7 | Theorem 11: head-to-head under the uniform adversary"
    "Mean interactions to completion; 'x opt' = ratio to the offline\n\
     optimum (full knowledge). Expect optimum ~ n log n, WG ~ n^1.5,\n\
     Gathering ~ n^2, Waiting ~ n^2 log n.";
  let t =
    Table.create
      ~header:[ "n"; "optimal"; "wait-greedy"; "x opt"; "gathering"; "x opt"; "waiting"; "x opt" ]
  in
  List.iter
    (fun n ->
      let means =
        List.map Descriptive.mean
          (shared_sweep
             ~max_steps:((200 * n * n) + 10_000)
             (fun rng -> Randomized.uniform_schedule rng ~n ~sink:0)
             [
               Algorithms.full_knowledge;
               Algorithms.waiting_greedy_recommended n;
               Algorithms.gathering;
               Algorithms.waiting;
             ])
      in
      match means with
      | [ opt; wg; ga; wa ] ->
          Table.add_row t
            [
              string_of_int n; fmt opt;
              fmt wg; ratio (wg /. opt);
              fmt ga; ratio (ga /. opt);
              fmt wa; ratio (wa /. opt);
            ]
      | _ -> assert false)
    sweep_ns;
  print_table t

(* ------------------------------------------------------------------ *)
(* E8 — Theorems 1 and 3: adaptive adversaries force unbounded cost.   *)

let e8 () =
  header "E8 | Theorems 1 & 3: adaptive adversaries force cost -> infinity"
    "The algorithm never terminates while successive optimal\n\
     convergecasts keep completing on the very sequence played:\n\
     the cost lower bound grows linearly with the horizon.";
  let t =
    Table.create
      ~header:[ "adversary"; "algorithm"; "horizon"; "terminated"; "convergecasts possible" ]
  in
  let cases =
    [
      ("thm1 (n=3)", (fun () -> Counterexamples.theorem1 ()), 3, None,
       [ Algorithms.waiting; Algorithms.gathering ]);
      ("thm3 (C4)", (fun () -> Counterexamples.theorem3 ()), 4,
       Some (Knowledge.with_underlying (Counterexamples.theorem3_graph ()) Knowledge.empty),
       [ Algorithms.gathering; Algorithms.tree_aggregation ]);
    ]
  in
  (* One duel per (adversary, algorithm), played to the largest
     horizon; both duellists are deterministic, so the shorter-horizon
     duels are exact prefixes of it. A run at horizon h terminates iff
     the long run's duration lands below h, and the convergecast count
     up to h - 1 only involves windows inside the prefix, so every row
     matches the old one-duel-per-horizon table. *)
  let horizons = [ 500; 1000; 2000; 4000 ] in
  let h_max = List.fold_left Stdlib.max 0 horizons in
  List.iter
    (fun (adv_name, adv, n, knowledge, algos) ->
      List.iter
        (fun algo ->
          let r, played =
            Duel.run ?knowledge ~max_steps:h_max ~n ~sink:0 algo (adv ())
          in
          List.iter
            (fun horizon ->
              let terminated =
                match r.Engine.duration with
                | Some d -> d < horizon
                | None -> false
              in
              let possible =
                Cost.convergecasts_within ~n ~sink:0 played ~upto:(horizon - 1)
              in
              Table.add_row t
                [
                  adv_name; algo.Doda_core.Algorithm.name; string_of_int horizon;
                  (if terminated then "yes" else "no");
                  string_of_int possible;
                ])
            horizons)
        algos)
    cases;
  print_table t

(* ------------------------------------------------------------------ *)
(* E9 — Theorems 4 and 5: underlying-graph knowledge; tree vs non-tree. *)

let e9 () =
  header "E9 | Theorems 4 & 5: spanning-tree algorithm, tree vs non-tree"
    "Random edge schedules over a fixed underlying graph (n = 16).\n\
     On a tree the algorithm is optimal (cost 1, Thm 5); on a cycle\n\
     or denser graph its cost exceeds 1 and is unbounded in general\n\
     (Thm 4).";
  let n = 16 in
  let t =
    Table.create
      ~header:[ "underlying"; "mean cost"; "max cost"; "mean interactions"; "vs optimal" ]
  in
  let graphs =
    [
      ("random tree", Graph_gen.random_tree (Prng.create 7) ~n);
      ("cycle", Static_graph.cycle n);
      ("tree + 8 chords", Graph_gen.random_connected (Prng.create 9) ~n ~extra_edges:8);
    ]
  in
  List.iter
    (fun (label, g) ->
      let runs =
        replicate ~replications ~seed:master_seed (fun rng ->
            let len = 200 * n * Static_graph.edge_count g in
            let s =
              Sequence.of_array (Array.init len (Generators.over_graph rng g))
            in
            let sched = Schedule.of_sequence ~n ~sink:0 s in
            let k = Knowledge.with_underlying g Knowledge.empty in
            let r = Engine.run ~knowledge:k Algorithms.tree_aggregation sched in
            let cost = Cost.to_float (Cost.of_result ~n ~sink:0 s r) in
            let opt =
              match Convergecast.opt ~n ~sink:0 s 0 with
              | Some o -> float_of_int (o + 1)
              | None -> Float.nan
            in
            let dur =
              match r.Engine.duration with
              | Some d -> float_of_int (d + 1)
              | None -> Float.nan
            in
            (cost, dur, dur /. opt))
      in
      let costs = Array.map (fun (c, _, _) -> c) runs in
      let durs = Array.map (fun (_, d, _) -> d) runs in
      let ratios = Array.map (fun (_, _, r) -> r) runs in
      Table.add_row t
        [
          label;
          ratio (Descriptive.mean costs);
          fmt (Descriptive.max costs);
          fmt (Descriptive.mean durs);
          ratio (Descriptive.mean ratios);
        ])
    graphs;
  print_table t

(* ------------------------------------------------------------------ *)
(* E10 — Theorem 6 (future knowledge, cost <= n) and open question 3
   (non-uniform randomized adversary).                                 *)

let e10 () =
  header "E10 | Theorem 6: future gossip costs at most n convergecasts"
    "Uniform adversary, finite committed sequences.";
  let t =
    Table.create
      ~header:
        [ "n"; "mean cost"; "max cost"; "bound n"; "interactions"; "vs (n-1)H(n-1)" ]
  in
  List.iter
    (fun n ->
      let runs =
        replicate ~replications ~seed:master_seed (fun rng ->
            let len = 40 * n * (1 + int_of_float (log (float_of_int n))) in
            let s = Generators.uniform_sequence rng ~n ~length:len in
            let sched = Schedule.of_sequence ~n ~sink:0 s in
            let r = Engine.run Algorithms.future_gossip sched in
            let cost = Cost.to_float (Cost.of_result ~n ~sink:0 s r) in
            let dur =
              match r.Engine.duration with
              | Some d -> float_of_int (d + 1)
              | None -> Float.nan
            in
            (cost, dur))
      in
      let costs = Array.map fst runs and durs = Array.map snd runs in
      let mean_dur = Descriptive.mean durs in
      Table.add_row t
        [
          string_of_int n;
          ratio (Descriptive.mean costs);
          fmt (Descriptive.max costs);
          string_of_int n;
          fmt mean_dur;
          (* Corollary 1: DODA(future) terminates in Theta(n log n). *)
          ratio (mean_dur /. Theory.expected_broadcast n);
        ])
    [ 8; 16; 32 ];
  print_table t;
  Printf.printf
    "\nOpen question 3: non-uniform (sink-biased) randomized adversary,\n\
     n = 64. Sink weight w: each endpoint drawn proportionally to\n\
     weight; w = 1 is (near-)uniform.\n";
  let n = 64 in
  let t2 =
    Table.create ~header:[ "sink weight"; "waiting"; "gathering"; "wait-greedy" ]
  in
  List.iter
    (fun w ->
      let measure algo =
        let results =
          replicate ~replications ~seed:master_seed (fun rng ->
              let sched = Randomized.sink_biased_schedule rng ~n ~sink:0 ~sink_weight:w in
              Engine.run ~record:`Count ~max_steps:((400 * n * n) + 10_000) algo sched)
        in
        Descriptive.mean (durations results)
      in
      Table.add_row t2
        [
          ratio w;
          fmt (measure Algorithms.waiting);
          fmt (measure Algorithms.gathering);
          fmt (measure (Algorithms.waiting_greedy_recommended n));
        ])
    [ 0.2; 1.0; 5.0; 25.0 ];
  print_table t2

(* ------------------------------------------------------------------ *)
(* LEMMAS — the internal quantities of the Theorem 10/11 proofs.       *)

let lemmas () =
  header "LEMMAS | proof internals of Theorems 10/11, instrumented"
    "For Waiting Greedy at the recommended tau: |L| = nodes meeting\n\
     the sink within tau (the proof wants Theta(f) = Theta(sqrt(n\n\
     log n))), and where transmissions actually go: directly to the\n\
     sink, or relayed to an L-node before its sink meeting.";
  let t =
    Table.create
      ~header:[ "n"; "tau"; "|L| mean"; "f=sqrt(n ln n)"; "|L|/f"; "to sink"; "relayed" ]
  in
  List.iter
    (fun n ->
      let tau = Theory.recommended_tau n in
      let stats =
        replicate ~replications ~seed:master_seed (fun rng ->
            let sched = Randomized.uniform_schedule rng ~n ~sink:0 in
            let r =
              Engine.run ~max_steps:(8 * tau) (Algorithms.waiting_greedy ~tau) sched
            in
            (* |L|: distinct nodes interacting with the sink within the
               first tau interactions actually played. *)
            let upto = Stdlib.min tau (Schedule.materialized sched) in
            let meets = Schedule.meets_with_sink_upto sched upto in
            let l_size = ref 0 in
            for v = 1 to n - 1 do
              if meets.(v) > 0 then incr l_size
            done;
            let direct = ref 0 and relayed = ref 0 in
            Run_log.iter
              (fun ~time:_ ~sender:_ ~receiver ->
                if receiver = 0 then incr direct else incr relayed)
              r.Engine.log;
            (float_of_int !l_size, float_of_int !direct, float_of_int !relayed))
      in
      let mean f = Descriptive.mean (Array.map f stats) in
      let l_mean = mean (fun (l, _, _) -> l) in
      let f = sqrt (float_of_int n *. log (float_of_int n)) in
      Table.add_row t
        [
          string_of_int n; string_of_int tau; fmt l_mean; fmt f;
          ratio (l_mean /. f);
          fmt (mean (fun (_, d, _) -> d));
          fmt (mean (fun (_, _, r) -> r));
        ])
    sweep_ns;
  print_table t

(* ------------------------------------------------------------------ *)
(* KNOWLEDGE — open question 1: which knowledge matters, on which
   workloads?                                                          *)

let knowledge () =
  header "KNOWLEDGE | open question 1: knowledge level x workload (n = 32)"
    "Mean interactions to completion. Columns left to right carry\n\
     increasing knowledge: none (Waiting, Gathering), meetTime\n\
     (Waiting Greedy, tuned and n-oblivious doubling), full schedule\n\
     (optimal). Workloads are committed finite traces so every\n\
     algorithm sees the same adversary.";
  let n = 32 in
  let tau = Theory.recommended_tau n in
  let algorithms =
    [
      Algorithms.waiting;
      Algorithms.gathering;
      Algorithms.waiting_greedy ~tau;
      Waiting_greedy.doubling ();
      Algorithms.full_knowledge;
    ]
  in
  let workloads =
    [
      ("uniform", fun rng -> Generators.uniform rng ~n);
      ("sink-biased w=8",
       fun rng ->
         Generators.weighted_nodes rng
           ~weights:(Array.init n (fun v -> if v = 0 then 8.0 else 1.0)));
      ("markov edges", fun rng -> Generators.markov_edges rng ~n ~p_on:0.01 ~p_off:0.2);
      ("waypoint", fun rng -> Doda_dynamic.Mobility.random_waypoint rng ~n);
      ("community 4x0.8",
       fun rng -> Doda_dynamic.Mobility.community rng ~n ~communities:4 ~p_intra:0.8);
    ]
  in
  let t =
    Table.create
      ~header:
        ("workload"
        :: List.map (fun a -> a.Doda_core.Algorithm.name) algorithms)
  in
  List.iter
    (fun (label, gen_of) ->
      let horizon = 40 * n * n in
      (* One frozen schedule per trace, generated and swept inside the
         pooled worker: the trace materializes once, its sink-meeting
         index is built once, and all five algorithms run against the
         same immutable array. *)
      let cells =
        shared_sweep
          (fun rng ->
            Schedule.freeze
              (Schedule.of_sequence ~n ~sink:0
                 (Sequence.of_array (Array.init horizon (gen_of rng)))))
          algorithms
        |> List.map (fun samples ->
               if Array.length samples = 0 then "-"
               else fmt (Descriptive.mean samples))
      in
      Table.add_row t (label :: cells))
    workloads;
  print_table t

(* ------------------------------------------------------------------ *)
(* LATENCY — per-datum delivery metrics beyond the paper's single
   termination figure.                                                 *)

let latency () =
  header "LATENCY | per-datum delivery time and aggregation depth (n = 64)"
    "Waiting delivers every datum in one hop but late; Gathering\n\
     relays aggressively (deep chains); Waiting Greedy sits between.\n\
     'mean delivery' averages, over data, the time the sink received\n\
     each original datum.";
  let n = 64 in
  let t =
    Table.create
      ~header:[ "algorithm"; "termination"; "mean delivery"; "max hops"; "mean hops" ]
  in
  List.iter
    (fun algo ->
      let runs = uniform_runs ~record:`All ~n algo in
      let terminations = durations runs in
      let deliveries = ref [] and maxhops = ref [] and meanhops = ref [] in
      Array.iter
        (fun (r : Engine.result) ->
          if r.stop = Engine.All_aggregated then begin
            (match Doda_sim.Analysis.mean_delivery_time ~n ~sink:0 r with
            | Some m -> deliveries := m :: !deliveries
            | None -> ());
            maxhops :=
              float_of_int (Doda_sim.Analysis.max_hops ~n ~sink:0 r) :: !maxhops;
            let hops = Doda_sim.Analysis.hop_counts ~n ~sink:0 r in
            let total = Array.fold_left ( + ) 0 hops in
            meanhops := (float_of_int total /. float_of_int (n - 1)) :: !meanhops
          end)
        runs;
      let mean l = Descriptive.mean (Array.of_list l) in
      Table.add_row t
        [
          algo.Doda_core.Algorithm.name;
          fmt (Descriptive.mean terminations);
          fmt (mean !deliveries);
          fmt (mean !maxhops);
          fmt (mean !meanhops);
        ])
    [
      Algorithms.waiting; Algorithms.gathering;
      Algorithms.waiting_greedy_recommended n; Algorithms.full_knowledge;
    ];
  print_table t

(* ------------------------------------------------------------------ *)
(* T2SEARCH — the Theorem 2 proof procedure, executed.                 *)

let t2search () =
  header "T2SEARCH | Theorem 2's adversary construction, run as a procedure"
    "Monte-Carlo estimation of P_l against concrete oblivious\n\
     algorithms (n = 8): the first prefix length with P_l < 1/n arms\n\
     the trap; the blocking sequence then defeats the algorithm in\n\
     most runs.";
  let n = 8 in
  let master = Prng.create master_seed in
  let t =
    Table.create
      ~header:[ "algorithm"; "l0"; "d"; "survival"; "transmit rate"; "blocked runs" ]
  in
  List.iter
    (fun algo ->
      match Counterexamples.theorem2_search ~trials:200 ~n algo with
      | None ->
          Table.add_row t
            [ algo.Doda_core.Algorithm.name; "-"; "-"; "-"; "-"; "not provocable" ]
      | Some p ->
          let s =
            Counterexamples.theorem2_sequence ~n ~l0:p.Counterexamples.l0
              ~d:p.Counterexamples.d ~periods:120
          in
          let runs = 40 in
          let blocked = ref 0 in
          for _ = 1 to runs do
            let r =
              Engine.run algo (Schedule.of_sequence ~n ~sink:0 s)
            in
            if r.Engine.stop <> Engine.All_aggregated then incr blocked
          done;
          Table.add_row t
            [
              algo.Doda_core.Algorithm.name;
              string_of_int p.Counterexamples.l0;
              string_of_int p.Counterexamples.d;
              ratio p.Counterexamples.survival;
              ratio p.Counterexamples.transmit_rate;
              Printf.sprintf "%d/%d" !blocked runs;
            ])
    [
      Algorithms.waiting;
      Algorithms.gathering;
      Doda_core.Coin_algorithms.coin_waiting master ~p:0.5;
      Doda_core.Coin_algorithms.coin_gathering master ~p:0.3;
    ];
  print_table t

(* ------------------------------------------------------------------ *)
(* EXACT — exact finite-n laws vs simulation.                          *)

let exact () =
  header "EXACT | exact finite-n distributions vs simulation"
    "Termination times are sums of independent geometrics; the exact\n\
     law (Geometric_sum over Theory phase vectors) should match both\n\
     the closed-form means and the empirical distribution (KS\n\
     distance ~ 1/sqrt(reps)). n = 32, 200 replications.";
  let module G = Doda_stats.Geometric_sum in
  let n = 32 in
  let reps = 200 in
  let t =
    Table.create
      ~header:
        [ "process"; "exact mean"; "closed form"; "sim mean"; "p50 exact"; "p99 exact"; "KS" ]
  in
  let simulate algo =
    durations
      (replicate ~replications:reps ~seed:master_seed (fun rng ->
           let sched = Randomized.uniform_schedule rng ~n ~sink:0 in
           Engine.run ~record:`Count ~max_steps:(400 * n * n) algo sched))
  in
  let broadcast_samples =
    replicate ~replications:reps ~seed:master_seed (fun rng ->
        let horizon = 200 * n in
        let s = Generators.uniform_sequence rng ~n ~length:horizon in
        match Temporal.broadcast_completion ~n ~src:0 s with
        | Some t -> float_of_int (t + 1)
        | None -> Float.nan)
  in
  let cases =
    [
      ("waiting", Theory.waiting_phases n, Theory.expected_waiting n,
       simulate Algorithms.waiting);
      ("gathering", Theory.gathering_phases n, Theory.expected_gathering n,
       simulate Algorithms.gathering);
      ("broadcast", Theory.broadcast_phases n, Theory.expected_broadcast n,
       broadcast_samples);
    ]
  in
  List.iter
    (fun (name, phases, closed_form, samples) ->
      let exact_mean = G.mean phases in
      let upto = int_of_float (6.0 *. exact_mean) in
      let cdf = G.cdf_of_pmf (G.pmf ~phases ~upto) in
      let p50 = G.quantile ~cdf 0.5 and p99 = G.quantile ~cdf 0.99 in
      let ks = G.ks_distance ~cdf ~samples in
      Table.add_row t
        [
          name; fmt exact_mean; fmt closed_form;
          fmt (Descriptive.mean samples);
          string_of_int p50; string_of_int p99; ratio ks;
        ])
    cases;
  print_table t

(* ------------------------------------------------------------------ *)
(* VARIANTS — ablations of implementation degrees of freedom the
   theorems leave open: Gathering's tie-break, and which deterministic
   spanning tree the Theorem 4/5 algorithm agrees on.                  *)

let variants () =
  header "VARIANTS | ablations: Gathering tie-breaks, spanning-tree choice"
    "Theorem 9's analysis is tie-break agnostic; measured constants\n\
     should therefore agree across variants (uniform adversary).";
  let n = 128 in
  let t = Table.create ~header:[ "gathering variant"; "interactions"; "stderr" ] in
  List.iter
    (fun algo ->
      let samples = durations (uniform_runs ~n algo) in
      let m, se = mean_stderr samples in
      Table.add_row t [ algo.Doda_core.Algorithm.name; fmt m; fmt se ])
    Doda_core.Gathering_variants.all;
  print_table t;
  Printf.printf
    "\nSpanning-tree choice for the Theorem 4/5 algorithm (n = 24,\n\
     random schedules over a connected underlying graph): a deeper\n\
     tree means longer dependency chains, hence later completion.\n";
  let n = 24 in
  let g = Graph_gen.random_connected (Prng.create 5) ~n ~extra_edges:12 in
  let t2 = Table.create ~header:[ "tree"; "depth"; "interactions"; "stderr" ] in
  List.iter
    (fun (label, choice) ->
      let algo = Doda_core.Tree_aggregation.make ~tree:choice () in
      let tree =
        match choice with
        | Doda_core.Tree_aggregation.Bfs -> Doda_graph.Spanning_tree.bfs_tree g ~root:0
        | Doda_core.Tree_aggregation.Kruskal ->
            Doda_graph.Spanning_tree.kruskal_tree g ~root:0
      in
      let depth =
        List.fold_left
          (fun acc v -> Stdlib.max acc (Doda_graph.Spanning_tree.depth tree v))
          0
          (List.init n (fun v -> v))
      in
      let samples =
        durations
          (replicate ~replications ~seed:master_seed (fun rng ->
               let sched =
                 Schedule.of_fun ~n ~sink:0 (Generators.over_graph rng g)
               in
               let k = Knowledge.with_underlying g Knowledge.empty in
               Engine.run ~record:`Count ~knowledge:k ~max_steps:(2000 * n) algo sched))
      in
      let m, se = mean_stderr samples in
      Table.add_row t2 [ label; string_of_int depth; fmt m; fmt se ])
    [ ("bfs", Doda_core.Tree_aggregation.Bfs);
      ("kruskal", Doda_core.Tree_aggregation.Kruskal) ];
  print_table t2

(* ------------------------------------------------------------------ *)
(* SPITE — the generalised trap adversary at arbitrary n.              *)

let spite () =
  header "SPITE | generalised adaptive trap adversary (extension of Thm 1)"
    "The spiteful adversary freezes the run after the first committed\n\
     transmission; the cost lower bound keeps growing with the horizon\n\
     at every n — the 3-node impossibility is not a small-n artifact.";
  let t =
    Table.create
      ~header:[ "n"; "algorithm"; "horizon"; "terminated"; "convergecasts possible" ]
  in
  (* As in E8: one duel per (n, algorithm) at the largest horizon; the
     spiteful adversary and both algorithms are deterministic, so each
     shorter horizon is read off the shared played trace. *)
  let horizons = [ 2000; 8000 ] in
  let h_max = List.fold_left Stdlib.max 0 horizons in
  List.iter
    (fun n ->
      List.iter
        (fun algo ->
          let adv = Doda_adversary.Spiteful.adversary ~n ~sink:0 in
          let r, played = Duel.run ~max_steps:h_max ~n ~sink:0 algo adv in
          List.iter
            (fun horizon ->
              let terminated =
                match r.Engine.duration with
                | Some d -> d < horizon
                | None -> false
              in
              let possible =
                Cost.convergecasts_within ~n ~sink:0 played ~upto:(horizon - 1)
              in
              Table.add_row t
                [
                  string_of_int n; algo.Doda_core.Algorithm.name;
                  string_of_int horizon;
                  (if terminated then "yes" else "no");
                  string_of_int possible;
                ])
            horizons)
        [ Algorithms.waiting; Algorithms.gathering ])
    [ 4; 8; 16 ];
  print_table t

(* ------------------------------------------------------------------ *)
(* POLICIES — Theorem 11 made falsifiable: rival meetTime policies.    *)

let policies () =
  header "POLICIES | rivals over the same meetTime oracle (Theorem 11)"
    "No policy built on meetTime should beat the tuned Waiting Greedy.\n\
     pure-greedy always fires (ordering by meet time); sliding-window\n\
     uses a relative deadline theta instead of WG's absolute tau.";
  let t =
    Table.create ~header:[ "policy"; "n=64"; "n=128" ]
  in
  let rivals =
    [
      ("waiting-greedy (tuned)", fun n -> Algorithms.waiting_greedy_recommended n);
      ("waiting-greedy tau/4",
       fun n -> Algorithms.waiting_greedy ~tau:(Theory.recommended_tau n / 4));
      ("waiting-greedy 4tau",
       fun n -> Algorithms.waiting_greedy ~tau:(4 * Theory.recommended_tau n));
      ("pure-greedy",
       fun n -> Doda_core.Meet_time_policies.pure_greedy ~horizon:(100 * n * n));
      ("sliding-window theta=tau",
       fun n ->
         Doda_core.Meet_time_policies.sliding_window
           ~theta:(Theory.recommended_tau n));
      ("sliding-window theta=tau/4",
       fun n ->
         Doda_core.Meet_time_policies.sliding_window
           ~theta:(Theory.recommended_tau n / 4));
      ("gathering (no oracle)", fun _ -> Algorithms.gathering);
    ]
  in
  (* All seven rivals share one lazy schedule per replication (the
     schedule stays live, not frozen: pure-greedy probes the oracle up
     to 100 n^2 and sliding-window past the current time, so the needed
     prefix length is policy-dependent). A lazy schedule's content at
     any index is fixed by the seed alone, so the durations match the
     old one-schedule-per-policy sweep exactly. *)
  let columns =
    List.map
      (fun n ->
        shared_sweep
          ~max_steps:((200 * n * n) + 10_000)
          (fun rng -> Randomized.uniform_schedule rng ~n ~sink:0)
          (List.map (fun (_, policy_of) -> policy_of n) rivals)
        |> List.map (fun samples ->
               if Array.length samples < replications then "timeout"
               else fmt (Descriptive.mean samples)))
      [ 64; 128 ]
  in
  List.iteri
    (fun i (label, _) ->
      Table.add_row t (label :: List.map (fun col -> List.nth col i) columns))
    rivals;
  print_table t

(* ------------------------------------------------------------------ *)
(* PRICE — what does the transmit-once constraint cost?                *)

let price () =
  header "PRICE | the cost of transmitting only once"
    "Same uniform schedules; epidemic flooding (unbounded\n\
     retransmission, knowledge-free) vs the transmit-once algorithms.\n\
     Flooding tracks the offline optimum at Theta(n log n); the best\n\
     knowledge-free transmit-once algorithm pays Theta(n^2): the\n\
     energy constraint costs a factor ~ n / log n.";
  let t =
    Table.create
      ~header:
        [ "n"; "flooding"; "optimal (1-shot)"; "gathering (1-shot)"; "gather/flood" ]
  in
  List.iter
    (fun n ->
      let triples =
        replicate ~replications ~seed:master_seed (fun rng ->
            let len = 60 * n * (1 + int_of_float (log (float_of_int n))) in
            let s = Generators.uniform_sequence rng ~n ~length:len in
            let flood =
              Doda_core.Flooding_aggregation.sink_completion ~n ~sink:0 s
            in
            let opt = Convergecast.opt ~n ~sink:0 s 0 in
            let sched = Schedule.of_sequence ~n ~sink:0 s in
            let gather =
              (Engine.run ~record:`Count ~max_steps:(400 * n * n) Algorithms.gathering
                 (Randomized.uniform_schedule
                    (Prng.split rng) ~n ~sink:0))
                .Engine.duration
            in
            ignore sched;
            (flood, opt, gather))
      in
      let extract f =
        Array.of_list
          (List.filter_map
             (fun x -> Option.map (fun v -> float_of_int (v + 1)) (f x))
             (Array.to_list triples))
      in
      let fl = Descriptive.mean (extract (fun (a, _, _) -> a)) in
      let op = Descriptive.mean (extract (fun (_, b, _) -> b)) in
      let ga = Descriptive.mean (extract (fun (_, _, c) -> c)) in
      Table.add_row t
        [ string_of_int n; fmt fl; fmt op; fmt ga; ratio (ga /. fl) ])
    sweep_ns;
  print_table t

(* ------------------------------------------------------------------ *)
(* MIXED — how much adaptivity does the adversary need?                *)

let mixed () =
  header "MIXED | interpolating adversary power (n = 16, horizon 60000)"
    "With probability q the adversary plays the spiteful (adaptive)\n\
     rule, otherwise a uniform random pair. q = 0 is the randomized\n\
     adversary; q = 1 is the Theorem-1-style trap. Mean interactions\n\
     over terminated runs; 'done' counts runs finishing within the\n\
     horizon.";
  let n = 16 in
  let horizon = 60_000 in
  let t =
    Table.create
      ~header:[ "q"; "waiting mean"; "done"; "gathering mean"; "done" ]
  in
  List.iter
    (fun q ->
      let measure algo =
        let outcomes =
          Array.map
            (fun ((r : Engine.result), _) -> r.Engine.duration)
            (Experiment.replicate_duels ~pool:(Lazy.force pool) ~replications
               ~seed:master_seed ~max_steps:horizon ~n ~sink:0 algo
               (fun rng -> Doda_adversary.Mixed.adversary rng ~n ~sink:0 ~q))
        in
        let finished = Array.to_list outcomes |> List.filter_map Fun.id in
        let mean =
          match finished with
          | [] -> "-"
          | _ ->
              fmt
                (Descriptive.mean
                   (Array.of_list (List.map (fun d -> float_of_int (d + 1)) finished)))
        in
        (mean, Printf.sprintf "%d/%d" (List.length finished) replications)
      in
      let wm, wd = measure Algorithms.waiting in
      let gm, gd = measure Algorithms.gathering in
      Table.add_row t [ ratio q; wm; wd; gm; gd ])
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ];
  print_table t

(* ------------------------------------------------------------------ *)
(* GEN — workload-generator throughput.                                *)

let gen () =
  header "GEN | workload-generator throughput"
    "Draws per second, single domain. markov-event rides the timing\n\
     wheel (O(active + toggles) per step), markov-dense is the O(n^2)\n\
     Bernoulli-sweep reference it replaces (same distribution, not the\n\
     same draw stream). waypoint switches from an all-pairs scan to\n\
     the spatial hash when n >= 64 and the grid is at least 6x6\n\
     (radius below ~1/6) — the r=0.05 rows take the hash, the r=0.20\n\
     rows the scan. grid-walk buckets walkers by cell. CI enforces\n\
     draws/s floors on two n=128 rows. Timing columns are machine-\n\
     dependent, so this table is not a byte-identical CSV baseline.";
  let t = Table.create ~header:[ "generator"; "draws"; "wall s"; "draws/s" ] in
  let time_gen label draws mk =
    let g = mk (Prng.create master_seed) in
    ignore (g 0);  (* setup + first draw outside the clock *)
    let t0 = Unix.gettimeofday () in
    for i = 1 to draws do
      ignore (g i)
    done;
    let wall = Unix.gettimeofday () -. t0 in
    Table.add_row t
      [
        label;
        string_of_int draws;
        Printf.sprintf "%.3f" wall;
        Printf.sprintf "%.0f" (float_of_int draws /. wall);
      ]
  in
  List.iter
    (fun n ->
      time_gen
        (Printf.sprintf "markov-event n=%d" n)
        200_000
        (fun rng -> Generators.markov_edges rng ~n ~p_on:0.01 ~p_off:0.2);
      time_gen
        (Printf.sprintf "markov-dense n=%d" n)
        (if n >= 128 then 5_000 else 50_000)
        (fun rng -> Generators.markov_edges_dense rng ~n ~p_on:0.01 ~p_off:0.2);
      time_gen
        (Printf.sprintf "waypoint n=%d r=0.20" n)
        (if n >= 128 then 50_000 else 100_000)
        (fun rng -> Mobility.random_waypoint rng ~n);
      time_gen
        (Printf.sprintf "waypoint n=%d r=0.05" n)
        (if n >= 128 then 50_000 else 100_000)
        (fun rng ->
          Mobility.random_waypoint
            ~params:{ Mobility.default_waypoint with Mobility.radius = 0.05 }
            rng ~n);
      let side = 1 + int_of_float (sqrt (float_of_int n)) in
      time_gen
        (Printf.sprintf "grid-walk n=%d %dx%d" n side side)
        100_000
        (fun rng -> Mobility.grid_walkers rng ~n ~rows:side ~cols:side))
    [ 32; 128 ];
  (* Timing columns are machine-dependent: archived to JSON, not as a
     CSV baseline (CI checks floors on the printed table instead). *)
  print_table ~csv:false t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the machinery itself.                  *)

let micro () =
  header "MICRO | Bechamel micro-benchmarks"
    "Wall-clock per operation (OLS estimate on the run predictor).";
  let open Bechamel in
  let n = 128 in
  let rng = Prng.create master_seed in
  let seq50k = Generators.uniform_sequence rng ~n ~length:50_000 in
  let sched = Schedule.of_sequence ~n ~sink:0 seq50k in
  (* Pre-materialise the meetTime index once so the query bench
     measures lookups, not construction. *)
  ignore (Schedule.next_meet_with_sink sched ~node:1 ~after:0 ~limit:49_999);
  let prng_rng = Prng.create 1 in
  let tests =
    [
      Test.make ~name:"prng/pair-n128"
        (Staged.stage (fun () -> ignore (Prng.pair prng_rng 128)));
      Test.make ~name:"schedule/meet-time-query"
        (Staged.stage (fun () ->
             ignore
               (Schedule.next_meet_with_sink sched ~node:17 ~after:25_000
                  ~limit:49_999)));
      (* Generator kernels: one spatial-hash contact collection over
         random positions, and one draw of each event-driven
         generator (closures pre-built, so steady-state cost). *)
      (let plane = Gen_kernel.Plane.create ~n ~radius:0.2 in
       let px = Array.init n (fun _ -> Prng.float prng_rng 1.0) in
       let py = Array.init n (fun _ -> Prng.float prng_rng 1.0) in
       let buf = Array.make (n * (n - 1) / 2) 0 in
       Test.make ~name:"kernel/plane-collect-n128"
         (Staged.stage (fun () ->
              ignore (Gen_kernel.Plane.collect plane ~x:px ~y:py buf))));
      (let g = Generators.markov_edges (Prng.create 5) ~n ~p_on:0.01 ~p_off:0.2 in
       let t = ref 0 in
       Test.make ~name:"gen/markov-event-n128-draw"
         (Staged.stage (fun () ->
              incr t;
              ignore (g !t))));
      (let g =
         Mobility.random_waypoint
           ~params:{ Mobility.default_waypoint with Mobility.radius = 0.05 }
           (Prng.create 6) ~n
       in
       let t = ref 0 in
       Test.make ~name:"gen/waypoint-n128-r05-draw"
         (Staged.stage (fun () ->
              incr t;
              ignore (g !t))));
      Test.make ~name:"temporal/flood-50k"
        (Staged.stage (fun () ->
             ignore (Temporal.broadcast_completion ~n ~src:0 seq50k)));
      Test.make ~name:"convergecast/opt-50k"
        (Staged.stage (fun () -> ignore (Convergecast.opt ~n ~sink:0 seq50k 0)));
      Test.make ~name:"engine/gathering-n128-run"
        (Staged.stage (fun () ->
             let rng = Prng.create 77 in
             let sched = Randomized.uniform_schedule rng ~n ~sink:0 in
             ignore (Engine.run ~record:`Count ~max_steps:(40 * n * n) Algorithms.gathering sched)));
      (* Telemetry primitives: an enabled counter increment is a load,
         add, store; a disabled one is a single predictable branch.
         Both must stay within noise of the other sub-ns-scale rows
         here for inline instrumentation to be viable on hot paths. *)
      (let reg = Obs_metrics.create () in
       let c = Obs_metrics.counter reg "bench.counter" in
       Test.make ~name:"obs/counter-incr-enabled"
         (Staged.stage (fun () -> Obs_metrics.incr c)));
      (let c = Obs_metrics.counter Obs_metrics.disabled "bench.counter" in
       Test.make ~name:"obs/counter-incr-disabled"
         (Staged.stage (fun () -> Obs_metrics.incr c)));
      (let reg = Obs_metrics.create () in
       let h = Obs_metrics.histogram reg "bench.histogram" in
       let v = ref 0 in
       Test.make ~name:"obs/histogram-observe-enabled"
         (Staged.stage (fun () ->
              incr v;
              Obs_metrics.observe h !v)));
      Test.make ~name:"obs/with-span-disabled"
        (Staged.stage (fun () -> Obs_span.with_span Obs_span.null "x" Fun.id));
      (* Recording overhead of the run-core: count-only vs the flat SoA
         log vs the seed's boxed list, the latter emulated through an
         [on_transmit] observer consing exactly what the old engine
         allocated per event. Same frozen schedule for all three. *)
      Test.make ~name:"record/count-only"
        (Staged.stage (fun () ->
             ignore (Engine.run ~record:`Count Algorithms.gathering sched)));
      Test.make ~name:"record/flat-log"
        (Staged.stage (fun () ->
             ignore (Engine.run ~record:`All Algorithms.gathering sched)));
      Test.make ~name:"record/old-list"
        (Staged.stage (fun () ->
             let log = ref [] in
             let obs =
               Engine.observer
                 ~on_transmit:(fun ~time ~sender ~receiver ->
                   log := { Engine.time; sender; receiver } :: !log)
                 ()
             in
             ignore
               (Engine.run ~record:`Count ~observers:[ obs ]
                  Algorithms.gathering sched)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          let time =
            match Analyze.OLS.estimates est with
            | Some [ t ] -> t
            | _ -> Float.nan
          in
          let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square est) in
          Printf.printf "%-36s %14.1f ns/run  (r2=%.4f)\n" name time r2)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* BATCH — bit-parallel lockstep replications vs the scalar engine.    *)

(* Speedups measured by the batch experiment, archived at the top
   level of BENCH_results.json (schema 3) so the trajectory of the
   lockstep engine is machine-readable across PRs. *)
let batch_speedups : (string * float) list ref = ref []

let batch () =
  header "BATCH | bit-parallel lockstep replications vs scalar engine"
    "One frozen uniform schedule (n = 64); R replications of the same\n\
     algorithm, scalar = R independent Engine.run, batch = one\n\
     Batch_engine.run_reps lockstep pass (63 replications per word).\n\
     steps/decode is the decode amortisation observed by the batch;\n\
     reps/s is batch replication throughput.";
  let open Bechamel in
  let n = 64 in
  let rng = Prng.create master_seed in
  let sched =
    Schedule.freeze
      (Schedule.of_sequence ~n ~sink:0
         (Generators.uniform_sequence rng ~n ~length:(40 * n * n)))
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let measure f =
    let test = Test.make ~name:"b" (Staged.stage f) in
    let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
    let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
    let out = ref Float.nan in
    Hashtbl.iter
      (fun _ est ->
        match Analyze.OLS.estimates est with
        | Some [ t ] -> out := t
        | _ -> ())
      analyzed;
    !out
  in
  let t =
    Table.create
      ~header:
        [ "algorithm"; "R"; "scalar ns/rep"; "batch ns/rep"; "speedup";
          "steps/decode"; "reps/s" ]
  in
  batch_speedups := [];
  List.iter
    (fun (label, algo) ->
      List.iter
        (fun r ->
          let scalar_ns =
            measure (fun () ->
                for _ = 1 to r do
                  ignore (Engine.run ~record:`Count algo sched)
                done)
            /. float_of_int r
          in
          let batch_ns =
            measure (fun () ->
                ignore (Batch_engine.run_reps ~record:`Count algo sched r))
            /. float_of_int r
          in
          let stats = Batch_engine.stats () in
          ignore (Batch_engine.run_reps ~record:`Count ~stats algo sched r);
          let amortisation =
            float_of_int stats.lane_steps /. float_of_int stats.decodes
          in
          let speedup = scalar_ns /. batch_ns in
          batch_speedups :=
            (Printf.sprintf "%s-r%d" label r, speedup) :: !batch_speedups;
          Table.add_row t
            [
              label; string_of_int r; fmt scalar_ns; fmt batch_ns;
              ratio speedup; fmt amortisation; fmt (1e9 /. batch_ns);
            ])
        [ 1; 16; 64; 256 ])
    [ ("waiting", Algorithms.waiting); ("gathering", Algorithms.gathering) ];
  (* Gossip rows: the rep-packed plane layout (k <= 63 folds several
     replications per word) against R scalar bit-plane runs on the same
     frozen schedule. *)
  let problem = Problem.dissemination ~k:8 in
  List.iter
    (fun r ->
      let scalar_ns =
        measure (fun () ->
            for _ = 1 to r do
              ignore (Gossip.run ~record:`Count ~problem sched)
            done)
        /. float_of_int r
      in
      let batch_ns =
        measure (fun () ->
            ignore (Gossip.run_reps ~record:`Count ~problem sched r))
        /. float_of_int r
      in
      let stats = Batch_engine.stats () in
      ignore (Gossip.run_reps ~record:`Count ~stats ~problem sched r);
      let amortisation =
        float_of_int stats.lane_steps /. float_of_int stats.decodes
      in
      let speedup = scalar_ns /. batch_ns in
      batch_speedups :=
        (Printf.sprintf "gossip:k8-r%d" r, speedup) :: !batch_speedups;
      Table.add_row t
        [
          "gossip:k8"; string_of_int r; fmt scalar_ns; fmt batch_ns;
          ratio speedup; fmt amortisation; fmt (1e9 /. batch_ns);
        ])
    [ 1; 16; 64; 256 ];
  batch_speedups := List.rev !batch_speedups;
  (* Timing columns cannot serve as byte-identical CSV baselines. *)
  print_table ~csv:false ~name:"batch" t

(* ------------------------------------------------------------------ *)
(* STREAMBATCH — the streamed batched sweep: R lockstep lanes over ONE
   chunked class-constrained schedule vs R scalar streamed passes.     *)

(* Schema 6: streamed-batch-vs-scalar-streamed speedups, archived at
   the top level of BENCH_results.json ([{}] when it did not run). *)
let stream_batch_speedup : (string * float) list ref = ref []

let streambatch () =
  header
    "STREAMBATCH | lockstep lanes over one streamed class-constrained schedule"
    "n = 1e5 bounded-recurrent trace (adversary replay: every lane sees\n\
     the same schedule). scalar = R independent streamed Engine.run\n\
     passes, each decoding its own chunk stream; batch = ONE\n\
     Batch_engine.run_reps pass over a single chunked schedule with a\n\
     pipelined producer domain double-buffering the next block\n\
     (Pool.pipeline). Memory stays O(block) on both paths; the batch\n\
     decodes the trace once instead of R times. refills counts\n\
     installed blocks (deterministic at any job count), prefetched the\n\
     blocks the producer had ready. Timing columns are machine-\n\
     dependent, so this table is not a byte-identical CSV baseline.";
  let n = 100_000 in
  let len = 1 lsl 20 in
  let bound = 2 * (n - 1) in
  let mk () =
    Schedule.of_fun_chunked ~length:len ~n ~sink:0
      (Tvg_class.gen_bounded_recurrent (Prng.create master_seed) ~n ~bound)
  in
  let t =
    Table.create
      ~header:
        [ "algorithm"; "R"; "scalar s/rep"; "batch s/rep"; "speedup";
          "reps/s"; "refills"; "prefetched" ]
  in
  stream_batch_speedup := [];
  List.iter
    (fun r ->
      let t0 = Unix.gettimeofday () in
      for _ = 1 to r do
        ignore (Engine.run ~record:`Count Algorithms.gathering (mk ()))
      done;
      let scalar = (Unix.gettimeofday () -. t0) /. float_of_int r in
      let sched = mk () in
      Pool.pipeline (Lazy.force pool) sched;
      let t0 = Unix.gettimeofday () in
      ignore (Batch_engine.run_reps ~record:`Count Algorithms.gathering sched r);
      let batch = (Unix.gettimeofday () -. t0) /. float_of_int r in
      let stats = Schedule.chunk_stats sched in
      let speedup = scalar /. batch in
      stream_batch_speedup :=
        !stream_batch_speedup
        @ [ (Printf.sprintf "gathering-r%d" r, speedup) ];
      Table.add_row t
        [
          "gathering"; string_of_int r; fmt scalar; fmt batch; ratio speedup;
          fmt (1.0 /. batch);
          string_of_int stats.Schedule.refills;
          string_of_int stats.Schedule.prefetched;
        ])
    [ 64; 256 ];
  print_table ~csv:false ~name:"streambatch" t

(* ------------------------------------------------------------------ *)
(* SCALE — run-core scaling on chunked schedules: time and memory vs n
   on log–log axes, with fitted exponents.                             *)

(* Fitted log–log exponents from the SCALE experiment, archived at the
   top level of BENCH_results.json (schema 4); [[]] when it did not
   run or had fewer than two points. *)
let scale_fits : (string * float) list ref = ref []

let scale () =
  header "SCALE | run-core scaling: chunked Gathering sweeps up to n = 1e5"
    "Gathering under the uniform adversary on chunked (streaming)\n\
     schedules: the run holds one recycled block, not the O(n^2)\n\
     materialised interaction prefix, so the sweep reaches n where a\n\
     lazy schedule would exhaust memory. The duration table is a\n\
     deterministic baseline; wall-clock and memory are machine-\n\
     dependent, so the perf table skips the CSV mirror. rss is\n\
     process-wide (all domains), heap is the main domain's major\n\
     heap. Override points with DODA_SCALE_NS=n1,n2,... and the\n\
     per-point replication count with DODA_SCALE_REPS=r (CI smoke\n\
     uses small values; the committed baseline uses the defaults).";
  let ns =
    match Sys.getenv_opt "DODA_SCALE_NS" with
    | None | Some "" -> [ 1_000; 10_000; 100_000 ]
    | Some s ->
        List.map
          (fun x ->
            match int_of_string_opt (String.trim x) with
            | Some n when n >= 2 -> n
            | _ ->
                Printf.eprintf "DODA_SCALE_NS: bad entry %S\n" x;
                exit 1)
          (String.split_on_char ',' s)
  in
  let reps_override =
    match Sys.getenv_opt "DODA_SCALE_REPS" with
    | None | Some "" -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some r when r >= 1 -> Some r
        | _ ->
            Printf.eprintf "DODA_SCALE_REPS: bad value %S\n" s;
            exit 1)
  in
  (* Expected duration is ~n^2 interactions at ~1e7 steps/s, so
     replications thin out as n grows: the n = 1e5 point is a single
     ~1e10-step run. *)
  let reps_for n =
    match reps_override with
    | Some r -> r
    | None -> if n >= 100_000 then 1 else if n >= 10_000 then 2 else 3
  in
  let t =
    Table.create
      ~header:[ "n"; "reps"; "interactions"; "stderr"; "n(n-1)(1-1/n)"; "ratio" ]
  in
  let tp =
    Table.create
      ~header:[ "n"; "reps"; "wall s/rep"; "steps/s"; "rss MB"; "heap Mw" ]
  in
  let dur_points = ref [] and wall_points = ref [] and rss_points = ref [] in
  List.iter
    (fun n ->
      let reps = reps_for n in
      let t0 = Unix.gettimeofday () in
      let results =
        replicate ~replications:reps ~seed:master_seed (fun rng ->
            let sched =
              Schedule.of_fun_chunked ~n ~sink:0 (Generators.uniform rng ~n)
            in
            Engine.run ~record:`Count
              ~max_steps:((10 * n * n) + 10_000)
              Algorithms.gathering sched)
      in
      let wall = Unix.gettimeofday () -. t0 in
      let samples = durations results in
      let m, se = mean_stderr samples in
      let predicted = Theory.expected_gathering n in
      Table.add_row t
        [
          string_of_int n; string_of_int reps; fmt m; fmt se; fmt predicted;
          ratio (m /. predicted);
        ];
      let total_steps = Array.fold_left ( +. ) 0.0 samples in
      let wall_per_rep = wall /. float_of_int reps in
      let rss = Doda_obs.Resource.rss_bytes () in
      let heap = Doda_obs.Resource.heap_words () in
      Table.add_row tp
        [
          string_of_int n; string_of_int reps; fmt wall_per_rep;
          Printf.sprintf "%.3g" (total_steps /. wall);
          (match rss with
          | Some b -> fmt (float_of_int b /. 1e6)
          | None -> "-");
          fmt (float_of_int heap /. 1e6);
        ];
      let success =
        float_of_int (Array.length samples) /. float_of_int reps
      in
      let point mean = { Scaling.n; mean; std_error = 0.0; success } in
      dur_points := point m :: !dur_points;
      wall_points := point wall_per_rep :: !wall_points;
      Option.iter
        (fun b -> rss_points := point (float_of_int b) :: !rss_points)
        rss)
    ns;
  print_table ~name:"scale" t;
  print_table ~csv:false ~name:"scale_perf" tp;
  scale_fits := [];
  let fit label points =
    let points = List.rev points in
    if List.length points >= 2 then begin
      let f = Scaling.exponent points in
      scale_fits :=
        !scale_fits @ [ (label ^ "_slope", f.slope); (label ^ "_r2", f.r2) ];
      Printf.printf "log-log %s exponent: %.3f (r2=%.4f)\n" label f.slope f.r2
    end
  in
  fit "interactions" !dur_points;
  fit "wall" !wall_points;
  (* The point of the chunked run-core: this one stays near zero. *)
  fit "rss" !rss_points

(* ------------------------------------------------------------------ *)
(* CLASSES — the cross table: algorithm x TVG class.                   *)

(* Schema 5: per-cell completion ratios (finished / replications) from
   the CLASSES experiment, archived at the top level of
   BENCH_results.json ([{}] when it did not run). *)
let classes_done : (string * float) list ref = ref []

let classes () =
  header "CLASSES | algorithm x TVG class (n = 32, horizon 120000)"
    "Each row draws schedules from a class-constrained generator\n\
     (lib/dynamic/tvg_class.ml); the round-trip suite proves every\n\
     generator a certified member of its own class. Aggregation\n\
     columns are mean interactions to full aggregation over finished\n\
     runs, the gossip column is k = n all-to-all dissemination, and\n\
     'done' counts runs finishing within the horizon. The same seeds\n\
     build the same schedules across a row, so columns are paired.\n\
     bounded-recurrent schedules draw spanning-tree edges only, so\n\
     aggregation can strand two non-adjacent token holders forever\n\
     while gossip still covers -- that contrast is the point.";
  let n = 32 in
  let horizon = 120_000 in
  let tau = Theory.recommended_tau n in
  let schedule_of cls rng =
    match cls with
    | `Uniform -> Randomized.uniform_schedule rng ~n ~sink:0
    | `T_interval w ->
        Schedule.of_fun ~n ~sink:0 (Tvg_class.gen_t_interval rng ~n ~window:w)
    | `Bounded b ->
        Schedule.of_fun ~n ~sink:0
          (Tvg_class.gen_bounded_recurrent rng ~n ~bound:b)
  in
  (* [durations]: per-replication completion times, [None] when the
     run hit the horizon. *)
  let summarize label durations =
    let finished = List.filter_map Fun.id (Array.to_list durations) in
    classes_done :=
      !classes_done
      @ [
          ( label,
            float_of_int (List.length finished)
            /. float_of_int replications );
        ];
    let mean =
      match finished with
      | [] -> "-"
      | _ ->
          fmt
            (Descriptive.mean
               (Array.of_list
                  (List.map (fun d -> float_of_int (d + 1)) finished)))
    in
    (mean, Printf.sprintf "%d/%d" (List.length finished) replications)
  in
  let t =
    Table.create
      ~header:
        [
          "class"; "waiting"; "done"; "gathering"; "done";
          Printf.sprintf "w-greedy:%d" tau; "done"; "gossip k=n"; "done";
        ]
  in
  List.iter
    (fun (label, cls) ->
      let agg name algo =
        summarize
          (name ^ "@" ^ label)
          (Array.map
             (fun (r : Engine.result) -> r.Engine.duration)
             (replicate ~replications ~seed:master_seed (fun rng ->
                  Engine.run ~record:`Count ~max_steps:horizon algo
                    (schedule_of cls rng))))
      in
      let wm, wd = agg "waiting" Algorithms.waiting in
      let gm, gd = agg "gathering" Algorithms.gathering in
      let wgm, wgd = agg "waiting-greedy" (Algorithms.waiting_greedy ~tau) in
      let problem = Problem.dissemination ~k:n in
      let gom, god =
        summarize ("gossip@" ^ label)
          (Array.map
             (fun (r : Gossip.result) -> r.Gossip.duration)
             (replicate ~replications ~seed:master_seed (fun rng ->
                  Gossip.run ~record:`Count ~max_steps:horizon ~problem
                    (schedule_of cls rng))))
      in
      Table.add_row t [ label; wm; wd; gm; gd; wgm; wgd; gom; god ])
    [
      ("uniform", `Uniform);
      ("t-interval:31", `T_interval 31);
      ("t-interval:128", `T_interval 128);
      ("bounded-recurrent:62", `Bounded 62);
    ];
  print_table ~name:"classes" t

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("lemmas", lemmas); ("knowledge", knowledge); ("latency", latency);
    ("t2search", t2search);
    ("exact", exact);
    ("variants", variants); ("spite", spite); ("mixed", mixed); ("price", price);
    ("policies", policies); ("gen", gen); ("micro", micro);
    ("batch", batch); ("scale", scale); ("classes", classes);
    ("streambatch", streambatch);
  ]

(* Machine-readable archive: per-experiment wall clock plus every table
   printed, so future changes have a perf and correctness trajectory to
   compare against. *)
let json_path =
  match Sys.getenv_opt "DODA_BENCH_JSON" with
  | Some "" -> None
  | Some p -> Some (Doda_sim.Scratch.resolve p)
  | None -> Some (Doda_sim.Scratch.resolve "BENCH_results.json")

let write_json path results =
  let module Json = Doda_sim.Json in
  let strings cells = Json.List (List.map (fun c -> Json.String c) cells) in
  let table_json (tname, t) =
    Json.Obj
      [
        ("name", Json.String tname);
        ("header", strings (Table.header_row t));
        ("rows", Json.List (List.map strings (Table.rows t)));
      ]
  in
  let experiments =
    List.map
      (fun (name, wall, tables) ->
        Json.Obj
          [
            ("name", Json.String name);
            ("wall_clock_s", Json.Float wall);
            ("tables", Json.List (List.map table_json tables));
          ])
      results
  in
  (* Suite-level telemetry spans (monotonic clock, microseconds since
     the first suite started): the same events DODA_TRACE exports in
     Chrome trace format, kept here so the archive is self-contained. *)
  let spans =
    List.map
      (fun (e : Obs_span.event) ->
        Json.Obj
          [
            ("name", Json.String e.Obs_span.name);
            ("ts_us", Json.Float (float_of_int e.Obs_span.start_ns /. 1e3));
            ("dur_us", Json.Float (float_of_int e.Obs_span.dur_ns /. 1e3));
          ])
      (Obs_span.events (Lazy.force suite_spans))
  in
  Json.write path
    (Json.Obj
       [
         ("schema", Json.Int 6);
         ("jobs", Json.Int !jobs);
         ("seed", Json.Int master_seed);
         ("replications", Json.Int replications);
         (* Schema 3: batch-vs-scalar speedups from the BATCH
            experiment ([{}] when it did not run). *)
         ( "batch_speedup",
           Json.Obj
             (List.map (fun (k, s) -> (k, Json.Float s)) !batch_speedups) );
         (* Schema 4: fitted log-log exponents from the SCALE
            experiment ([{}] when it did not run). *)
         ( "scale_exponents",
           Json.Obj
             (List.map (fun (k, s) -> (k, Json.Float s)) !scale_fits) );
         (* Schema 5: per-cell completion ratios from the CLASSES
            experiment ([{}] when it did not run). *)
         ( "classes_done",
           Json.Obj
             (List.map (fun (k, s) -> (k, Json.Float s)) !classes_done) );
         (* Schema 6: streamed-batch-vs-scalar-streamed speedups from
            the STREAMBATCH experiment ([{}] when it did not run). *)
         ( "stream_batch_speedup",
           Json.Obj
             (List.map (fun (k, s) -> (k, Json.Float s)) !stream_batch_speedup) );
         ("spans", Json.List spans);
         ("experiments", Json.List experiments);
       ]);
  Printf.printf "\n[bench results written to %s]\n" path

let () =
  let set_jobs v =
    match Pool.parse_jobs v with
    | Some j -> jobs := j
    | None ->
        Printf.eprintf "--jobs needs a positive integer, got %S\n" v;
        exit 1
  in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | ("--jobs" | "-j") :: v :: rest ->
        set_jobs v;
        parse_args acc rest
    | arg :: rest when String.starts_with ~prefix:"--jobs=" arg ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        parse_args acc rest
    | name :: rest -> parse_args (name :: acc) rest
  in
  let named = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match named with [] -> List.map fst all_experiments | names -> names
  in
  let results = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) all_experiments with
      | Some run ->
          current_tables := [];
          let t0 = Unix.gettimeofday () in
          Obs_span.with_span (Lazy.force suite_spans) ("bench/" ^ name) run;
          let elapsed = Unix.gettimeofday () -. t0 in
          results := (name, elapsed, List.rev !current_tables) :: !results
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 1)
    requested;
  (match json_path with
  | None -> ()
  | Some path -> write_json path (List.rev !results));
  (match Sys.getenv_opt "DODA_TRACE" with
  | None | Some "" -> ()
  | Some path ->
      Doda_obs.Trace_event.write ~process_name:"doda-bench" path
        (Lazy.force suite_spans);
      Printf.printf "[chrome trace written to %s]\n" path);
  if Lazy.is_val pool then Pool.shutdown (Lazy.force pool)
