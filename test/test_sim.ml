(* Tests for the experiment harness. *)

module Experiment = Doda_sim.Experiment
module Scaling = Doda_sim.Scaling
module Table = Doda_sim.Table
module Csv = Doda_sim.Csv
module Algorithms = Doda_core.Algorithms
module Prng = Doda_prng.Prng

let test_replicate_deterministic () =
  let f rng = Prng.int rng 1000 in
  let a = Experiment.replicate ~replications:10 ~seed:5 f in
  let b = Experiment.replicate ~replications:10 ~seed:5 f in
  Alcotest.(check (array int)) "same seed, same draws" a b;
  let c = Experiment.replicate ~replications:10 ~seed:6 f in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_replicate_par_matches_sequential () =
  (* The parallel runner pre-splits seeds sequentially on the calling
     domain, so results must be bit-identical to [replicate] at every
     job count. *)
  let f rng = Prng.int rng 1_000_000 in
  let sequential = Experiment.replicate ~replications:25 ~seed:42 f in
  List.iter
    (fun jobs ->
      let par = Experiment.replicate_par ~jobs ~replications:25 ~seed:42 f in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        sequential par)
    [ 1; 2; 4 ]

let test_run_uniform_par_matches_sequential () =
  (* Full measurement pipeline: simulated durations, failure counts and
     sample order must not depend on the job count. *)
  let run jobs =
    Experiment.run_uniform ?jobs ~replications:12 ~seed:9 ~n:16
      Algorithms.gathering
  in
  let reference = run None in
  List.iter
    (fun jobs ->
      let m = run (Some jobs) in
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "jobs=%d same samples" jobs)
        reference.samples m.samples;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d same failures" jobs)
        reference.failures m.failures)
    [ 1; 2; 4 ]

let test_replicate_par_shared_pool () =
  (* A caller-provided pool must yield the same results as the
     internal per-call pool and survive multiple dispatches. *)
  let f rng = Prng.float rng 1.0 in
  let sequential = Experiment.replicate ~replications:9 ~seed:3 f in
  Doda_sim.Pool.with_pool ~jobs:3 (fun pool ->
      for _ = 1 to 3 do
        let par = Experiment.replicate_par ~pool ~replications:9 ~seed:3 f in
        Alcotest.(check (array (float 0.0))) "pool run bit-identical"
          sequential par
      done)

let test_run_uniform_gathering () =
  let m = Experiment.run_uniform ~replications:5 ~n:12 Algorithms.gathering in
  Alcotest.(check int) "all succeed" 0 m.failures;
  Alcotest.(check int) "five samples" 5 (Array.length m.samples);
  Alcotest.(check string) "label" "gathering" m.label;
  (* Gathering needs at least n-1 interactions. *)
  Array.iter
    (fun s -> Alcotest.(check bool) "at least n-1" true (s >= 11.0))
    m.samples

let test_failures_counted () =
  (* A tiny budget forces failures for waiting. *)
  let m =
    Experiment.run_uniform ~replications:5 ~max_steps:3 ~n:12 Algorithms.waiting
  in
  Alcotest.(check int) "all fail" 5 m.failures;
  Alcotest.(check (float 1e-9)) "success rate" 0.0 (Experiment.success_rate m)

let test_mean_raises_when_all_failed () =
  let m =
    Experiment.run_uniform ~replications:2 ~max_steps:1 ~n:10 Algorithms.waiting
  in
  Alcotest.check_raises "no samples"
    (Invalid_argument "Experiment.mean: no successful runs for waiting") (fun () ->
      ignore (Experiment.mean m))

let test_scaling_exponent_gathering () =
  (* Gathering is Theta(n^2): the fitted exponent over a small sweep
     should land near 2. *)
  let ms =
    List.map
      (fun n -> Experiment.run_uniform ~replications:8 ~seed:11 ~n Algorithms.gathering)
      [ 16; 32; 64; 128 ]
  in
  let fit = Scaling.exponent (Scaling.points_of ms) in
  Alcotest.(check bool)
    (Printf.sprintf "exponent %.2f in [1.7, 2.3]" fit.slope)
    true
    (fit.slope > 1.7 && fit.slope < 2.3)

let test_ratio_stability_detects_shape () =
  let points =
    [
      { Scaling.n = 10; mean = 210.0; std_error = 1.0; success = 1.0 };
      { Scaling.n = 20; mean = 820.0; std_error = 1.0; success = 1.0 };
      { Scaling.n = 40; mean = 3250.0; std_error = 1.0; success = 1.0 };
    ]
  in
  let _, cv_good =
    Scaling.ratio_stability ~predicted:(fun n -> float_of_int (n * n)) points
  in
  let _, cv_bad = Scaling.ratio_stability ~predicted:float_of_int points in
  Alcotest.(check bool) "n^2 is stable" true (cv_good < 0.05);
  Alcotest.(check bool) "n is not" true (cv_bad > 0.3)

let test_table_render () =
  let t = Table.create ~header:[ "n"; "mean" ] in
  Table.add_row t [ "16"; "123.4" ];
  Table.add_row t [ "256"; "9.0" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header contains n" true
        (String.length header >= 1 && header.[0] = 'n');
      Alcotest.(check bool) "rule dashes" true (String.contains rule '-')
  | _ -> Alcotest.fail "short render");
  Alcotest.check_raises "bad width"
    (Invalid_argument "Table.add_row: row width differs from header") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "integer" "42" (Table.cell_f 42.0);
  Alcotest.(check string) "fraction" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "ratio" "0.500" (Table.cell_ratio 0.5)

module Analysis = Doda_sim.Analysis
module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine

let chain_run () =
  (* 3 -> 2 at t=0, 2 -> 1 at t=1, 1 -> 0 at t=2: a single chain. *)
  let s =
    Schedule.of_sequence ~n:4 ~sink:0 (Sequence.of_pairs [ (2, 3); (1, 2); (0, 1) ])
  in
  Engine.run Algorithms.gathering s

let test_analysis_chain () =
  let r = chain_run () in
  let parent = Analysis.aggregation_parent ~n:4 r in
  Alcotest.(check (array int)) "parents" [| -1; 0; 1; 2 |] parent;
  Alcotest.(check (list (pair int int))) "route of 3" [ (0, 2); (1, 1); (2, 0) ]
    (Analysis.datum_route ~n:4 ~sink:0 r 3);
  let deliveries = Analysis.delivery_times ~n:4 ~sink:0 r in
  Alcotest.(check (option int)) "sink datum" None deliveries.(0);
  Alcotest.(check (option int)) "node 1 delivered at 2" (Some 2) deliveries.(1);
  Alcotest.(check (option int)) "node 3 delivered at 2" (Some 2) deliveries.(3);
  Alcotest.(check (array int)) "hops" [| 0; 1; 2; 3 |]
    (Analysis.hop_counts ~n:4 ~sink:0 r);
  Alcotest.(check int) "max hops" 3 (Analysis.max_hops ~n:4 ~sink:0 r);
  Alcotest.(check (option (float 1e-9))) "mean delivery" (Some 2.0)
    (Analysis.mean_delivery_time ~n:4 ~sink:0 r)

let test_analysis_stranded_datum () =
  (* 2 -> 1 at t=0 but node 1 never reaches the sink. *)
  let s = Schedule.of_sequence ~n:3 ~sink:0 (Sequence.of_pairs [ (1, 2); (1, 2) ]) in
  let r = Engine.run Algorithms.gathering s in
  let deliveries = Analysis.delivery_times ~n:3 ~sink:0 r in
  Alcotest.(check (option int)) "stranded" None deliveries.(2);
  Alcotest.(check (option (float 1e-9))) "nothing delivered" None
    (Analysis.mean_delivery_time ~n:3 ~sink:0 r)

let test_analysis_waiting_is_one_hop () =
  let rng = Doda_prng.Prng.create 91 in
  let n = 8 in
  let s = Generators.uniform_sequence rng ~n ~length:50_000 in
  let r = Engine.run Algorithms.waiting (Schedule.of_sequence ~n ~sink:0 s) in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  (* Waiting never relays: every datum reaches the sink directly. *)
  Alcotest.(check int) "one hop" 1 (Analysis.max_hops ~n ~sink:0 r)

let test_timeline_render () =
  let module Schedule = Doda_dynamic.Schedule in
  let module Sequence = Doda_dynamic.Sequence in
  let module Engine = Doda_core.Engine in
  let s =
    Schedule.of_sequence ~n:3 ~sink:0 (Sequence.of_pairs [ (1, 2); (0, 1) ])
  in
  let r = Engine.run Algorithms.gathering s in
  let out = Doda_sim.Timeline.render ~width:10 ~n:3 ~sink:0 r in
  let lines = String.split_on_char '\n' out in
  (* header + 3 node rows + trailing blank *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check bool) "sender marks" true (String.contains out '>');
  Alcotest.(check bool) "sink receipt" true (String.contains out '#')

let test_timeline_transmissions_table () =
  let module Schedule = Doda_dynamic.Schedule in
  let module Sequence = Doda_dynamic.Sequence in
  let module Engine = Doda_core.Engine in
  let s = Schedule.of_sequence ~n:3 ~sink:0 (Sequence.of_pairs [ (0, 2) ]) in
  let r = Engine.run Algorithms.gathering s in
  Alcotest.(check string) "one line" "t=0      2 -> 0\n"
    (Doda_sim.Timeline.transmissions_table r)

module Workload = Doda_sim.Workload

let test_workload_parse_roundtrip () =
  List.iter
    (fun s ->
      match Workload.parse s with
      | Ok w -> Alcotest.(check string) s s (Workload.to_string w)
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [
      "uniform"; "sink-biased:5"; "round-robin"; "waypoint"; "community:4:0.8";
      "grid:5:5"; "markov:0.01:0.2"; "t-interval:32"; "bounded-recurrent:64";
      "trace:/tmp/x.trace";
    ]

let test_workload_parse_errors () =
  (* Every malformed variant must be rejected with its specific
     diagnostic, not just a generic failure. *)
  let unknown =
    "unknown workload; syntax: uniform | sink-biased:W | round-robin | \
     waypoint | community:K:P | grid:R:C | markov:PON:POFF | t-interval:W | \
     bounded-recurrent:B | trace:FILE"
  in
  List.iter
    (fun (s, expected) ->
      match Workload.parse s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error e -> Alcotest.(check string) ("message for " ^ s) expected e)
    [
      ("nope", unknown);
      ("trace", unknown);
      ("", unknown);
      ( "sink-biased:-1",
        "sink-biased needs a positive weight, e.g. sink-biased:5.0" );
      ( "sink-biased:zero",
        "sink-biased needs a positive weight, e.g. sink-biased:5.0" );
      ("community:0:0.5", "community needs groups and p_intra, e.g. community:4:0.8");
      ("community:4:1.5", "community needs groups and p_intra, e.g. community:4:0.8");
      ("grid:0:3", "grid needs rows and cols, e.g. grid:5:5");
      ("grid:3", unknown);
      ("markov:0:0.5", "markov needs two probabilities in (0,1], e.g. markov:0.01:0.2");
      ("markov:2:0.5", "markov needs two probabilities in (0,1], e.g. markov:0.01:0.2");
      ("markov:0.5", unknown);
      ("t-interval:0", "t-interval needs a window >= 1, e.g. t-interval:32");
      ( "bounded-recurrent:x",
        "bounded-recurrent needs a bound >= 1, e.g. bounded-recurrent:64" );
    ]

let test_workload_schedules_run () =
  List.iter
    (fun s ->
      match Workload.parse s with
      | Error e -> Alcotest.fail e
      | Ok w ->
          Alcotest.(check bool) (s ^ " finite?") (s = "trace:/tmp/x.trace")
            (Workload.is_finite w);
          if not (Workload.is_finite w) then begin
            let sched = Workload.schedule w ~n:8 ~sink:0 ~seed:5 in
            let r = Engine.run ~max_steps:500_000 Algorithms.gathering sched in
            Alcotest.(check bool) (s ^ " terminates") true
              (r.Engine.stop = Engine.All_aggregated)
          end)
    [
      "uniform"; "sink-biased:5"; "round-robin"; "waypoint"; "community:3:0.8";
      "grid:4:4"; "markov:0.05:0.3"; "t-interval:12"; "trace:/tmp/x.trace";
    ];
  (* bounded-recurrent draws only spanning-tree edges, so Gathering can
     strand two non-adjacent holders and aggregation need not
     terminate — but gossip always covers (the footprint is connected
     and recurs forever). *)
  match Workload.parse "bounded-recurrent:16" with
  | Error e -> Alcotest.fail e
  | Ok w ->
      let sched = Workload.schedule w ~n:8 ~sink:0 ~seed:5 in
      let r =
        Doda_core.Gossip.run ~max_steps:500_000
          ~problem:(Doda_core.Problem.dissemination ~k:8)
          sched
      in
      Alcotest.(check bool) "bounded-recurrent gossip covers" true
        (r.Doda_core.Gossip.stop = Engine.All_aggregated)

let test_workload_trace_roundtrip () =
  let rng = Doda_prng.Prng.create 7 in
  let s = Generators.uniform_sequence rng ~n:5 ~length:200 in
  let path = Filename.temp_file "doda_workload" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Doda_dynamic.Trace.save path s;
      match Workload.parse ("trace:" ^ path) with
      | Error e -> Alcotest.fail e
      | Ok w ->
          let sched = Workload.schedule w ~n:2 ~sink:0 ~seed:0 in
          Alcotest.(check int) "n enlarged to fit" 5 (Schedule.n sched);
          Alcotest.(check (option int)) "finite length" (Some 200)
            (Schedule.length sched))

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write () =
  let path = Filename.temp_file "doda" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check (list string)) "content" [ "x,y"; "1,2"; "3,4" ]
        (List.rev !lines))

let () =
  Alcotest.run "sim"
    [
      ( "experiment",
        [
          Alcotest.test_case "replicate deterministic" `Quick
            test_replicate_deterministic;
          Alcotest.test_case "replicate_par matches sequential" `Quick
            test_replicate_par_matches_sequential;
          Alcotest.test_case "run_uniform jobs-invariant" `Quick
            test_run_uniform_par_matches_sequential;
          Alcotest.test_case "replicate_par shared pool" `Quick
            test_replicate_par_shared_pool;
          Alcotest.test_case "run uniform gathering" `Quick test_run_uniform_gathering;
          Alcotest.test_case "failures counted" `Quick test_failures_counted;
          Alcotest.test_case "mean raises when all failed" `Quick
            test_mean_raises_when_all_failed;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "gathering exponent" `Slow test_scaling_exponent_gathering;
          Alcotest.test_case "ratio stability" `Quick test_ratio_stability_detects_shape;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "chain" `Quick test_analysis_chain;
          Alcotest.test_case "stranded datum" `Quick test_analysis_stranded_datum;
          Alcotest.test_case "waiting is one hop" `Quick
            test_analysis_waiting_is_one_hop;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "render" `Quick test_timeline_render;
          Alcotest.test_case "transmissions table" `Quick
            test_timeline_transmissions_table;
        ] );
      ( "workload",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_workload_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_workload_parse_errors;
          Alcotest.test_case "schedules run" `Slow test_workload_schedules_run;
          Alcotest.test_case "trace roundtrip" `Quick test_workload_trace_roundtrip;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write" `Quick test_csv_write;
        ] );
    ]
