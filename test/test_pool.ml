(* Tests for the fixed-size domain pool: map_array must agree with
   Array.map (same values, same order) for every pool size, reuse must
   be safe, and worker exceptions must propagate to the caller. *)

module Pool = Doda_sim.Pool

let jobs_under_test = [ 1; 2; 3; 4 ]
let sizes_under_test = [ 0; 1; 10; 1000 ]

let test_map_array_matches_sequential () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun size ->
              let input = Array.init size (fun i -> (7 * i) + 3) in
              let expected = Array.map (fun x -> (x * x) - 1) input in
              let got = Pool.map_array pool (fun x -> (x * x) - 1) input in
              Alcotest.(check (array int))
                (Printf.sprintf "jobs=%d size=%d" jobs size)
                expected got)
            sizes_under_test))
    jobs_under_test

let test_pool_reuse () =
  (* One pool, many map_array calls — workers must survive between
     calls and results must stay correct. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 20 do
        let input = Array.init 57 (fun i -> i + round) in
        let got = Pool.map_array pool (fun x -> 2 * x) input in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.map (fun x -> 2 * x) input)
          got
      done)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              ignore
                (Pool.map_array pool
                   (fun i -> if i = 5 then raise (Boom i) else i)
                   (Array.init 32 Fun.id));
              None
            with Boom i -> Some i
          in
          Alcotest.(check (option int))
            (Printf.sprintf "jobs=%d raises Boom 5" jobs)
            (Some 5) raised;
          (* The pool must still be usable after an exception. *)
          let got = Pool.map_array pool succ [| 1; 2; 3 |] in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d usable after exception" jobs)
            [| 2; 3; 4 |] got))
    jobs_under_test

let test_jobs_accessor_and_validation () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "jobs accessor" 2 (Pool.jobs pool));
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:4 in
  let got = Pool.map_array pool string_of_int [| 1; 2 |] in
  Alcotest.(check (array string)) "before shutdown" [| "1"; "2" |] got;
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "map_array after shutdown"
    (Invalid_argument "Pool.map_array: pool is shut down") (fun () ->
      ignore (Pool.map_array pool Fun.id [| 1 |]))

let test_parse_jobs () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check (option int))
        (Printf.sprintf "parse %S" input)
        expected (Pool.parse_jobs input))
    [
      ("1", Some 1);
      ("4", Some 4);
      ("  8 ", Some 8);
      ("0", None);
      ("-2", None);
      ("", None);
      ("four", None);
      ("2.5", None);
    ]

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map_array matches Array.map" `Quick
            test_map_array_matches_sequential;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "jobs accessor and validation" `Quick
            test_jobs_accessor_and_validation;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "parse_jobs" `Quick test_parse_jobs;
        ] );
    ]
