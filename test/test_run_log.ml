(* The flat SoA transmission log and the unified run-core.

   - Run_log itself: round-trips, O(1) accessors, derived arrays.
   - Differential: [Run_log.to_list] on a run equals the seed engine's
     list semantics (order, fields) — reconstructed independently here
     through an [on_transmit] observer and through the manual stepping
     API — for every paper algorithm on shared frozen schedules.
   - Property: [Engine.run] and [Duel.run] outputs always pass
     [Validate.execution] with zero violations across algorithms x
     adversaries x seeds (the one-run-core invariant: no driver can
     drift from the model rules).
   - result.holders is a snapshot: mutating it cannot corrupt a live
     state or later results. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine
module Run_log = Doda_core.Run_log
module Validate = Doda_core.Validate
module Algorithms = Doda_core.Algorithms
module Theory = Doda_core.Theory
module Adversary = Doda_adversary.Adversary
module Spiteful = Doda_adversary.Spiteful
module Randomized = Doda_adversary.Randomized
module Duel = Doda_adversary.Duel
module Prng = Doda_prng.Prng

let tr_list =
  Alcotest.(
    list
      (testable
         (fun ppf (t : Engine.transmission) ->
           Format.fprintf ppf "{t=%d;%d->%d}" t.time t.sender t.receiver)
         ( = )))

(* ------------------------------------------------------------------ *)
(* Run_log unit behaviour                                              *)

let test_log_roundtrip () =
  let entries =
    [
      { Run_log.time = 0; sender = 3; receiver = 1 };
      { Run_log.time = 4; sender = 1; receiver = 2 };
      { Run_log.time = 9; sender = 2; receiver = 0 };
    ]
  in
  let log = Run_log.of_list entries in
  Alcotest.(check int) "length" 3 (Run_log.length log);
  Alcotest.check tr_list "to_list round-trips" entries (Run_log.to_list log);
  Alcotest.(check int) "time 1" 4 (Run_log.time log 1);
  Alcotest.(check int) "sender 1" 1 (Run_log.sender log 1);
  Alcotest.(check int) "receiver 2" 0 (Run_log.receiver log 2);
  Alcotest.(check bool) "get boxes entry" true
    (Run_log.get log 0 = List.hd entries)

let test_log_derived_arrays () =
  let log =
    Run_log.of_list
      [
        { Run_log.time = 2; sender = 3; receiver = 1 };
        { Run_log.time = 5; sender = 1; receiver = 0 };
      ]
  in
  Alcotest.(check (array int)) "fire_times" [| -1; 5; -1; 2 |]
    (Run_log.fire_times log ~n:4);
  Alcotest.(check (array int)) "parents" [| -1; 0; -1; 1 |]
    (Run_log.parents log ~n:4);
  (* Cache refreshes when the log grows or n changes. *)
  Run_log.add log ~time:7 ~sender:2 ~receiver:0;
  Alcotest.(check (array int)) "fire_times after append" [| -1; 5; 7; 2 |]
    (Run_log.fire_times log ~n:4);
  Alcotest.(check (array int)) "parents at larger n" [| -1; 0; 0; 1; -1 |]
    (Run_log.parents log ~n:5)

(* ------------------------------------------------------------------ *)
(* Differential: flat log = list semantics of the seed engine          *)

let algos_for n =
  [
    Algorithms.waiting;
    Algorithms.gathering;
    Algorithms.waiting_greedy ~tau:(Theory.recommended_tau n);
    Algorithms.full_knowledge;
  ]

let test_log_matches_list_semantics () =
  List.iter
    (fun seed ->
      let n = 9 in
      let s =
        Generators.uniform_sequence (Prng.create seed) ~n ~length:4_000
      in
      let shared = Schedule.freeze (Schedule.of_sequence ~n ~sink:0 s) in
      List.iter
        (fun algo ->
          (* Reference 1: an [on_transmit] observer consing the
             seed-style list, independent of the log. *)
          let observed = ref [] in
          let obs =
            Engine.observer
              ~on_transmit:(fun ~time ~sender ~receiver ->
                observed := { Engine.time; sender; receiver } :: !observed)
              ()
          in
          let r = Engine.run ~observers:[ obs ] algo shared in
          let name = algo.Doda_core.Algorithm.name in
          Alcotest.check tr_list
            (name ^ ": to_list = observer order and fields")
            (List.rev !observed)
            (Run_log.to_list r.log);
          Alcotest.(check int)
            (name ^ ": count agrees")
            r.transmission_count
            (Run_log.length r.log);
          (* Reference 2: the manual stepping API, transmission by
             transmission. *)
          let st = Engine.start algo shared in
          let stepped = ref [] in
          let finished = ref false in
          while not !finished do
            match Engine.step st with
            | Engine.Finished _ -> finished := true
            | Engine.Stepped (Some tr) -> stepped := tr :: !stepped
            | Engine.Stepped None -> ()
          done;
          Alcotest.check tr_list
            (name ^ ": to_list = stepped transmissions")
            (List.rev !stepped)
            (Run_log.to_list r.log))
        (algos_for n))
    [ 1; 42; 9001 ]

(* ------------------------------------------------------------------ *)
(* Property: every driver's output validates with zero violations      *)

let seed_arb =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "(n=%d, seed=%d)" n seed)
    QCheck.Gen.(
      map2 (fun n seed -> (n, seed)) (int_range 3 12) (int_range 0 1_000_000))

let prop_engine_runs_validate_clean =
  QCheck.Test.make ~count:150 ~name:"run-core: Engine.run validates clean"
    seed_arb
    (fun (n, seed) ->
      let s =
        Generators.uniform_sequence (Prng.create seed) ~n ~length:(60 * n * n)
      in
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      List.for_all
        (fun algo ->
          let r = Engine.run algo sched in
          Validate.execution ~n ~sink:0 s r.Engine.log = [])
        (algos_for n))

let adversaries_for ~n ~seed =
  [
    Adversary.of_sequence ~name:"uniform"
      (Generators.uniform_sequence (Prng.create seed) ~n ~length:(40 * n * n));
    Spiteful.adversary ~n ~sink:0;
    Adversary.limit (40 * n * n) (Randomized.uniform (Prng.create seed) ~n);
  ]

let prop_duel_runs_validate_clean =
  QCheck.Test.make ~count:100 ~name:"run-core: Duel.run validates clean"
    seed_arb
    (fun (n, seed) ->
      List.for_all
        (fun adv ->
          List.for_all
            (fun algo ->
              let r, played =
                Duel.run ~max_steps:(40 * n * n) ~n ~sink:0 algo adv
              in
              Validate.execution ~n ~sink:0 played r.Engine.log = [])
            [ Algorithms.waiting; Algorithms.gathering ])
        (adversaries_for ~n ~seed))

(* ------------------------------------------------------------------ *)
(* Observers and snapshots                                             *)

let test_observer_counts_match () =
  let n = 8 in
  let s = Generators.uniform_sequence (Prng.create 5) ~n ~length:5_000 in
  let sched = Schedule.of_sequence ~n ~sink:0 s in
  let steps = ref 0 and txs = ref 0 and finishes = ref 0 in
  let obs =
    Engine.observer
      ~on_step:(fun ~time:_ _ -> incr steps)
      ~on_transmit:(fun ~time:_ ~sender:_ ~receiver:_ -> incr txs)
      ~on_finish:(fun _ -> incr finishes)
      ()
  in
  (* Observers fire identically under `Count: they are independent of
     log recording. *)
  let r = Engine.run ~record:`Count ~observers:[ obs ] Algorithms.gathering sched in
  Alcotest.(check int) "on_step per interaction" r.Engine.steps !steps;
  Alcotest.(check int) "on_transmit per transmission" r.Engine.transmission_count !txs;
  Alcotest.(check int) "on_finish once" 1 !finishes;
  Alcotest.(check int) "`Count keeps the log empty" 0 (Run_log.length r.Engine.log)

let test_holders_is_a_snapshot () =
  let s = Sequence.of_pairs [ (1, 2); (0, 1) ] in
  let st =
    Engine.start Algorithms.gathering (Schedule.of_sequence ~n:3 ~sink:0 s)
  in
  ignore (Engine.step st);
  let r = Engine.finish st Engine.Step_limit in
  r.Engine.holders.(1) <- false;
  (* Mutating the returned snapshot must not leak into the live run or
     into later results. *)
  Alcotest.(check bool) "live state unaffected" true (Engine.owns st 1);
  let r2 = Engine.finish st Engine.Step_limit in
  Alcotest.(check bool) "fresh result unaffected" true r2.Engine.holders.(1)

(* ------------------------------------------------------------------ *)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "run_log"
    [
      ( "log",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "derived arrays" `Quick test_log_derived_arrays;
        ] );
      ( "differential",
        [
          Alcotest.test_case "flat log = list semantics" `Quick
            test_log_matches_list_semantics;
        ] );
      ( "validation",
        List.map to_alcotest
          [ prop_engine_runs_validate_clean; prop_duel_runs_validate_clean ] );
      ( "observers",
        [
          Alcotest.test_case "counts match" `Quick test_observer_counts_match;
          Alcotest.test_case "holders snapshot" `Quick
            test_holders_is_a_snapshot;
        ] );
    ]
