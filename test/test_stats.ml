(* Tests for the statistics substrate. *)

module Descriptive = Doda_stats.Descriptive
module Regression = Doda_stats.Regression
module Histogram = Doda_stats.Histogram
module Ci = Doda_stats.Ci
module Prng = Doda_prng.Prng

let feq = Alcotest.(check (float 1e-9))

let test_mean_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  feq "mean" 5.0 (Descriptive.mean xs);
  feq "variance" (32.0 /. 7.0) (Descriptive.variance xs);
  feq "stddev" (sqrt (32.0 /. 7.0)) (Descriptive.stddev xs)

let test_single_sample () =
  feq "variance of singleton" 0.0 (Descriptive.variance [| 3.0 |]);
  feq "mean of singleton" 3.0 (Descriptive.mean [| 3.0 |])

let test_empty_raises () =
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Descriptive.mean: empty sample") (fun () ->
      ignore (Descriptive.mean [||]))

let test_quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "median" 3.0 (Descriptive.median xs);
  feq "q0" 1.0 (Descriptive.quantile xs 0.0);
  feq "q1" 5.0 (Descriptive.quantile xs 1.0);
  feq "q25" 2.0 (Descriptive.quantile xs 0.25);
  (* interpolation *)
  feq "q10" 1.4 (Descriptive.quantile xs 0.1)

let test_quantile_unsorted_input () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  feq "median of unsorted" 3.0 (Descriptive.median xs);
  (* input untouched *)
  feq "input preserved" 5.0 xs.(0)

let test_summary () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 100.0 |] in
  let s = Descriptive.summarize xs in
  Alcotest.(check int) "n" 5 s.n;
  feq "min" 1.0 s.min;
  feq "max" 100.0 s.max;
  feq "median" 3.0 s.median;
  feq "mean" 22.0 s.mean

let test_linear_fit_exact () =
  let points = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, (3.0 *. x) +. 2.0))
  in
  let fit = Regression.linear points in
  feq "slope" 3.0 fit.slope;
  feq "intercept" 2.0 fit.intercept;
  feq "r2" 1.0 fit.r2

let test_linear_fit_noisy () =
  let rng = Prng.create 1 in
  let points = Array.init 200 (fun i ->
      let x = float_of_int i in
      (x, (1.5 *. x) +. 10.0 +. Prng.float rng 1.0 -. 0.5))
  in
  let fit = Regression.linear points in
  Alcotest.(check bool) "slope near 1.5" true (Float.abs (fit.slope -. 1.5) < 0.01);
  Alcotest.(check bool) "good r2" true (fit.r2 > 0.999)

let test_linear_requires_two_points () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need at least two points") (fun () ->
      ignore (Regression.linear [| (1.0, 2.0) |]))

let test_log_log_recovers_exponent () =
  (* y = 5 n^2.5 must fit slope 2.5. *)
  let points = Array.map (fun n ->
      (n, 5.0 *. (n ** 2.5)))
      [| 8.0; 16.0; 32.0; 64.0; 128.0 |]
  in
  let fit = Regression.log_log points in
  Alcotest.(check bool) "exponent 2.5" true (Float.abs (fit.slope -. 2.5) < 1e-9);
  feq "constant" (log 5.0) fit.intercept

let test_log_log_rejects_nonpositive () =
  Alcotest.check_raises "zero coordinate"
    (Invalid_argument "Regression.log_log: coordinates must be positive") (fun () ->
      ignore (Regression.log_log [| (0.0, 1.0); (1.0, 2.0) |]))

let test_ratio_stability () =
  let points = [| (10.0, 21.0); (20.0, 40.0); (40.0, 79.0) |] in
  let mean, cv = Regression.ratio_stability points in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.0) < 0.05);
  Alcotest.(check bool) "small cv" true (cv < 0.05)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 3.5; 9.9; -1.0; 10.0 ];
  Alcotest.(check int) "total" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  Alcotest.(check int) "bin 0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 4" 1 (Histogram.bin_count h 4)

let test_histogram_of_samples () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let h = Histogram.of_samples ~bins:10 xs in
  Alcotest.(check int) "all counted" 100 (Histogram.count h);
  Alcotest.(check int) "no outliers" 0 (Histogram.underflow h + Histogram.overflow h)

let test_histogram_render () =
  let h = Histogram.of_samples [| 1.0; 1.0; 2.0 |] in
  let s = Histogram.render h in
  Alcotest.(check bool) "has bars" true (String.length s > 0)

let finite_opt name = function
  | None -> Alcotest.failf "%s: expected Some" name
  | Some v ->
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v);
      v

let test_histogram_quantile_empty () =
  (* Empty histogram: None on every q, no NaN, no exception. *)
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "empty q=%g" q)
        None (Histogram.quantile h q))
    [ 0.0; 0.5; 1.0 ];
  Alcotest.check_raises "q out of range" (Invalid_argument "Histogram.quantile: q must be in [0, 1]")
    (fun () -> ignore (Histogram.quantile h 1.5))

let test_histogram_quantile_single () =
  (* A single sample must give a finite value near it for every q. *)
  let h = Histogram.of_samples [| 7.0 |] in
  List.iter
    (fun q ->
      let v = finite_opt (Printf.sprintf "single q=%g" q) (Histogram.quantile h q) in
      Alcotest.(check bool)
        (Printf.sprintf "single q=%g near sample" q)
        true
        (v >= 6.9 && v <= 7.2))
    [ 0.0; 0.25; 0.5; 1.0 ]

let test_histogram_quantile_uniform () =
  (* 0..99 in 10 bins: quantiles should land within one bin width. *)
  let h = Histogram.of_samples ~bins:10 (Array.init 100 float_of_int) in
  let q50 = finite_opt "q50" (Histogram.quantile h 0.5) in
  let q90 = finite_opt "q90" (Histogram.quantile h 0.9) in
  Alcotest.(check bool) "median near 50" true (Float.abs (q50 -. 50.0) <= 10.0);
  Alcotest.(check bool) "p90 near 90" true (Float.abs (q90 -. 90.0) <= 10.0);
  Alcotest.(check bool) "monotone" true (q50 <= q90)

let test_histogram_quantile_outlier_mass () =
  (* All mass outside the bins: underflow pins to lo, overflow to hi. *)
  let h = Histogram.create ~lo:10.0 ~hi:20.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.0; 1.0; 2.0; 100.0 ];
  let q0 = finite_opt "q0" (Histogram.quantile h 0.0) in
  let q1 = finite_opt "q1" (Histogram.quantile h 1.0) in
  Alcotest.(check (float 1e-9)) "underflow pinned at lo" 10.0 q0;
  Alcotest.(check (float 1e-9)) "overflow pinned at hi" 20.0 q1

let test_histogram_merge () =
  let a = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let b = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add a) [ 0.5; 4.5; -1.0 ];
  List.iter (Histogram.add b) [ 0.7; 9.5; 11.0 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "total" 6 (Histogram.count m);
  Alcotest.(check int) "bin 0 summed" 2 (Histogram.bin_count m 0);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow m);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow m);
  (* Inputs untouched. *)
  Alcotest.(check int) "a untouched" 3 (Histogram.count a);
  (* Merging empties is safe and stays empty. *)
  let e =
    Histogram.merge
      (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5)
      (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5)
  in
  Alcotest.(check int) "empty merge" 0 (Histogram.count e);
  Alcotest.(check (option (float 0.0))) "empty merge quantile" None
    (Histogram.quantile e 0.5);
  Alcotest.check_raises "binning mismatch"
    (Invalid_argument "Histogram.merge: histograms have different binning")
    (fun () -> ignore (Histogram.merge a (Histogram.create ~lo:0.0 ~hi:5.0 ~bins:5)))

module Geometric_sum = Doda_stats.Geometric_sum

let test_geom_sum_single_phase () =
  (* One geometric with p = 0.5: mean 2, variance 2, pmf(t) = 0.5^t. *)
  let phases = [| 0.5 |] in
  feq "mean" 2.0 (Geometric_sum.mean phases);
  feq "variance" 2.0 (Geometric_sum.variance phases);
  let pmf = Geometric_sum.pmf ~phases ~upto:10 in
  feq "pmf 0" 0.0 pmf.(0);
  feq "pmf 1" 0.5 pmf.(1);
  feq "pmf 3" 0.125 pmf.(3)

let test_geom_sum_pmf_mass_and_mean () =
  let phases = [| 0.3; 0.7; 0.2 |] in
  let upto = 200 in
  let pmf = Geometric_sum.pmf ~phases ~upto in
  let mass = Array.fold_left ( +. ) 0.0 pmf in
  Alcotest.(check bool) "mass close to 1" true (mass > 0.999);
  let mean_from_pmf = ref 0.0 in
  Array.iteri (fun t p -> mean_from_pmf := !mean_from_pmf +. (float_of_int t *. p)) pmf;
  Alcotest.(check bool) "pmf mean matches closed form" true
    (Float.abs (!mean_from_pmf -. Geometric_sum.mean phases) < 0.05)

let test_geom_sum_deterministic_phase () =
  (* p = 1 phases are deterministic: the sum is exactly m. *)
  let phases = [| 1.0; 1.0; 1.0 |] in
  let pmf = Geometric_sum.pmf ~phases ~upto:5 in
  feq "all mass at 3" 1.0 pmf.(3);
  feq "mean 3" 3.0 (Geometric_sum.mean phases)

let test_geom_sum_quantile () =
  let phases = [| 0.5 |] in
  let cdf = Geometric_sum.cdf_of_pmf (Geometric_sum.pmf ~phases ~upto:40) in
  Alcotest.(check int) "median" 1 (Geometric_sum.quantile ~cdf 0.5);
  Alcotest.(check int) "p75" 2 (Geometric_sum.quantile ~cdf 0.75);
  Alcotest.check_raises "unreachable quantile"
    (Invalid_argument "Geometric_sum.quantile: support too short for requested quantile")
    (fun () ->
      let tiny = Geometric_sum.cdf_of_pmf (Geometric_sum.pmf ~phases ~upto:0) in
      ignore (Geometric_sum.quantile ~cdf:tiny 0.5))

let test_geom_sum_rejects_bad_p () =
  Alcotest.check_raises "zero p"
    (Invalid_argument "Geometric_sum: probabilities must lie in (0, 1]") (fun () ->
      ignore (Geometric_sum.mean [| 0.0 |]))

let test_ks_distance () =
  let phases = [| 1.0 |] in
  let cdf = Geometric_sum.cdf_of_pmf (Geometric_sum.pmf ~phases ~upto:10) in
  (* Perfect sample at the deterministic value: KS = 0. *)
  feq "perfect" 0.0 (Geometric_sum.ks_distance ~cdf ~samples:[| 1.0; 1.0 |]);
  (* A sample entirely at 5 has empirical CDF 0 below 5: KS = 1. *)
  feq "worst" 1.0 (Geometric_sum.ks_distance ~cdf ~samples:[| 5.0 |])

let test_normal_ci_contains_mean () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 10)) in
  let iv = Ci.normal_mean xs in
  Alcotest.(check bool) "center is mean" true
    (Float.abs (iv.center -. Descriptive.mean xs) < 1e-9);
  Alcotest.(check bool) "contains center" true (Ci.contains iv iv.center);
  Alcotest.(check bool) "ordered" true (iv.lower <= iv.upper)

let test_bootstrap_ci_reasonable () =
  let rng = Prng.create 5 in
  let xs = Array.init 200 (fun _ -> 10.0 +. Prng.float rng 2.0) in
  let iv = Ci.bootstrap_mean rng xs in
  Alcotest.(check bool) "contains 11" true (Ci.contains iv 11.0);
  Alcotest.(check bool) "narrow" true (iv.upper -. iv.lower < 0.5)

let test_wider_confidence_wider_interval () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let iv95 = Ci.normal_mean ~confidence:0.95 xs in
  let iv99 = Ci.normal_mean ~confidence:0.99 xs in
  Alcotest.(check bool) "99 wider than 95" true
    (iv99.upper -. iv99.lower > iv95.upper -. iv95.lower)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean variance" `Quick test_mean_variance;
          Alcotest.test_case "single sample" `Quick test_single_sample;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile unsorted" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "regression",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_fit_exact;
          Alcotest.test_case "linear noisy" `Quick test_linear_fit_noisy;
          Alcotest.test_case "needs two points" `Quick test_linear_requires_two_points;
          Alcotest.test_case "log-log exponent" `Quick test_log_log_recovers_exponent;
          Alcotest.test_case "log-log rejects nonpositive" `Quick
            test_log_log_rejects_nonpositive;
          Alcotest.test_case "ratio stability" `Quick test_ratio_stability;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "of samples" `Quick test_histogram_of_samples;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "quantile empty" `Quick test_histogram_quantile_empty;
          Alcotest.test_case "quantile single sample" `Quick
            test_histogram_quantile_single;
          Alcotest.test_case "quantile uniform" `Quick test_histogram_quantile_uniform;
          Alcotest.test_case "quantile outlier mass" `Quick
            test_histogram_quantile_outlier_mass;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "geometric-sum",
        [
          Alcotest.test_case "single phase" `Quick test_geom_sum_single_phase;
          Alcotest.test_case "pmf mass and mean" `Quick test_geom_sum_pmf_mass_and_mean;
          Alcotest.test_case "deterministic phases" `Quick
            test_geom_sum_deterministic_phase;
          Alcotest.test_case "quantile" `Quick test_geom_sum_quantile;
          Alcotest.test_case "rejects bad p" `Quick test_geom_sum_rejects_bad_p;
          Alcotest.test_case "ks distance" `Quick test_ks_distance;
        ] );
      ( "ci",
        [
          Alcotest.test_case "normal contains mean" `Quick test_normal_ci_contains_mean;
          Alcotest.test_case "bootstrap reasonable" `Quick test_bootstrap_ci_reasonable;
          Alcotest.test_case "confidence widens" `Quick
            test_wider_confidence_wider_interval;
        ] );
    ]
