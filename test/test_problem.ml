(* Problem-abstraction differentials. The refactor that threaded
   {!Problem} through the engines must leave the aggregation path
   bit-identical (stop, duration, steps, log, holders) on every
   schedule form, scalar and batch; and the gossip run-core's
   bit-plane implementation must match its dense reference on the same
   observables. A tiny independent model interpreter pins the engine
   semantics themselves. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Temporal = Doda_dynamic.Temporal
module Engine = Doda_core.Engine
module Batch_engine = Doda_core.Batch_engine
module Gossip = Doda_core.Gossip
module Problem = Doda_core.Problem
module Run_log = Doda_core.Run_log
module Validate = Doda_core.Validate
module Algorithms = Doda_core.Algorithms
module Knowledge = Doda_core.Knowledge
module Prng = Doda_prng.Prng

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Instances *)

let instance_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n len seed -> (n, len, seed))
        (int_range 3 12) (int_range 5 400) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, len, seed) ->
      Printf.sprintf "(n=%d, len=%d, seed=%d)" n len seed)
    gen

let sequence_of (n, len, seed) =
  let rng = Prng.create seed in
  let s = Generators.uniform_sequence rng ~n ~length:len in
  let sink = Prng.int rng n in
  (s, sink)

(* ------------------------------------------------------------------ *)
(* Independent model interpreter: Section 2 rules in twenty lines,
   sharing nothing with the engine but the algorithm instances. *)

let reference_run algo ~n ~sink s =
  let knowledge =
    Knowledge.for_schedule
      (Schedule.of_sequence ~n ~sink s)
      algo.Doda_core.Algorithm.requires
  in
  let inst = algo.Doda_core.Algorithm.make ~n ~sink knowledge in
  let holds = Array.make n true in
  let owners = ref n in
  let log = ref [] in
  let steps = ref 0 in
  let len = Sequence.length s in
  while !owners > 1 && !steps < len do
    let t = !steps in
    let i = Sequence.get s t in
    inst.Doda_core.Algorithm.observe ~time:t i;
    let u = Interaction.u i and v = Interaction.v i in
    if holds.(u) && holds.(v) then begin
      match inst.Doda_core.Algorithm.decide ~time:t i with
      | None -> ()
      | Some receiver ->
          let sender = Interaction.other i receiver in
          holds.(sender) <- false;
          decr owners;
          log := { Run_log.time = t; sender; receiver } :: !log
    end;
    incr steps
  done;
  let stop =
    if !owners = 1 then Engine.All_aggregated else Engine.Schedule_exhausted
  in
  let duration =
    match (stop, !log) with
    | Engine.All_aggregated, { Run_log.time; _ } :: _ -> Some time
    | _ -> None
  in
  (stop, duration, !steps, List.rev !log, Array.copy holds)

let engine_algos =
  (* No-knowledge algorithms: runnable on every schedule form,
     including chunked (no meet-time oracle there). *)
  [ Algorithms.waiting; Algorithms.gathering ] @ Doda_core.Gathering_variants.all

let prop_engine_matches_model =
  QCheck.Test.make ~count:80 ~name:"Engine.run = independent model interpreter"
    instance_arb (fun inst ->
      let s, sink = sequence_of inst in
      let n = Sequence.max_node s + 1 in
      let sched = Schedule.of_sequence ~n ~sink s in
      List.for_all
        (fun algo ->
          let stop, duration, steps, log, holders =
            reference_run algo ~n ~sink s
          in
          let r = Engine.run algo sched in
          r.Engine.stop = stop && r.Engine.duration = duration
          && r.Engine.steps = steps
          && Run_log.to_list r.Engine.log = log
          && r.Engine.holders = holders)
        engine_algos)

(* ------------------------------------------------------------------ *)
(* One run, four schedule forms: live, frozen, generator-backed,
   chunked — bit-identical results, scalar and batch. *)

(* A run cut off at the horizon reports [Schedule_exhausted] on a
   finite schedule but [Step_limit] on an unbounded generator-backed
   one — the only legitimate divergence between schedule forms. *)
let equivalent_stop ~len (a : Engine.result) (b : Engine.result) =
  a.Engine.stop = b.Engine.stop
  || a.Engine.steps = len
     && b.Engine.steps = len
     && a.Engine.stop <> Engine.All_aggregated
     && b.Engine.stop <> Engine.All_aggregated

let same_result_h ~len (a : Engine.result) (b : Engine.result) =
  equivalent_stop ~len a b
  && a.Engine.duration = b.Engine.duration
  && a.Engine.steps = b.Engine.steps
  && a.Engine.transmission_count = b.Engine.transmission_count
  && a.Engine.holders = b.Engine.holders
  && Run_log.to_list a.Engine.log = Run_log.to_list b.Engine.log

let same_result a b =
  a.Engine.stop = b.Engine.stop && same_result_h ~len:(-1) a b

let schedule_forms ~n ~sink s =
  let arr = Sequence.to_array s in
  let len = Array.length arr in
  [
    ("live", Schedule.of_sequence ~n ~sink s);
    ("frozen", Schedule.freeze (Schedule.of_sequence ~n ~sink s));
    ("of_fun", Schedule.of_fun ~n ~sink (fun t -> arr.(t)));
    ( "chunked",
      Schedule.of_fun_chunked ~block:16 ~length:len ~n ~sink (fun t -> arr.(t))
    );
  ]

let prop_schedule_forms_identical =
  QCheck.Test.make ~count:60
    ~name:"aggregation bit-identical on live/frozen/of_fun/chunked"
    instance_arb (fun inst ->
      let s, sink = sequence_of inst in
      let n = Sequence.max_node s + 1 in
      let len = Sequence.length s in
      List.for_all
        (fun algo ->
          let base = Engine.run ~max_steps:len algo (Schedule.of_sequence ~n ~sink s) in
          List.for_all
            (fun (_, sched) ->
              same_result_h ~len base (Engine.run ~max_steps:len algo sched))
            (schedule_forms ~n ~sink s))
        engine_algos)

let prop_batch_matches_scalar =
  QCheck.Test.make ~count:40
    ~name:"Batch_engine.run_reps = scalar through the Problem target"
    instance_arb (fun inst ->
      let s, sink = sequence_of inst in
      let n = Sequence.max_node s + 1 in
      let sched = Schedule.freeze (Schedule.of_sequence ~n ~sink s) in
      List.for_all
        (fun algo ->
          let scalar = Engine.run algo sched in
          Array.for_all
            (fun b -> same_result scalar b)
            (Batch_engine.run_reps algo sched 3))
        engine_algos)

(* ------------------------------------------------------------------ *)
(* Gossip: bit-plane run vs dense reference, across token counts
   straddling the 63-bit word width, on frozen and chunked forms. *)

let same_gossip_h ~len (a : Gossip.result) (b : Gossip.result) =
  (a.Gossip.stop = b.Gossip.stop
  || a.Gossip.steps = len
     && b.Gossip.steps = len
     && a.Gossip.stop <> Engine.All_aggregated
     && b.Gossip.stop <> Engine.All_aggregated)
  && a.Gossip.duration = b.Gossip.duration
  && a.Gossip.steps = b.Gossip.steps
  && a.Gossip.transfer_count = b.Gossip.transfer_count
  && a.Gossip.coverage = b.Gossip.coverage
  && a.Gossip.complete_nodes = b.Gossip.complete_nodes
  && Run_log.to_list a.Gossip.log = Run_log.to_list b.Gossip.log

let same_gossip a b = a.Gossip.stop = b.Gossip.stop && same_gossip_h ~len:(-1) a b

let gossip_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun (n, len, seed) k () -> (n, len, seed, k))
        (triple (int_range 3 12) (int_range 5 400) (int_range 0 1_000_000))
        (oneofl [ 1; 2; 5; 62; 63; 64; 65; 130 ])
        unit)
  in
  QCheck.make
    ~print:(fun (n, len, seed, k) ->
      Printf.sprintf "(n=%d, len=%d, seed=%d, k=%d)" n len seed k)
    gen

let prop_gossip_matches_reference =
  QCheck.Test.make ~count:80
    ~name:"Gossip.run (bit-planes) = Gossip.run_reference (dense)" gossip_arb
    (fun (n, len, seed, k) ->
      let s, sink = sequence_of (n, len, seed) in
      let n = Sequence.max_node s + 1 in
      let problem = Problem.dissemination ~k in
      let len = Sequence.length s in
      let forms = schedule_forms ~n ~sink s in
      let base =
        Gossip.run_reference ~max_steps:len ~problem (List.assoc "frozen" forms)
      in
      List.for_all
        (fun (_, sched) ->
          same_gossip_h ~len base (Gossip.run ~max_steps:len ~problem sched))
        forms)

let prop_gossip_log_validates =
  QCheck.Test.make ~count:60 ~name:"gossip transfer log passes Validate.problem"
    gossip_arb (fun (n, len, seed, k) ->
      let s, sink = sequence_of (n, len, seed) in
      let n = Sequence.max_node s + 1 in
      let problem = Problem.dissemination ~k in
      let r = Gossip.run ~problem (Schedule.of_sequence ~n ~sink s) in
      let prefix = Sequence.sub s ~pos:0 ~len:r.Gossip.steps in
      Validate.problem problem ~n prefix r.Gossip.log = []
      && Validate.gossip_complete ~n ~problem prefix r.Gossip.log
         = (r.Gossip.stop = Engine.All_aggregated))

(* Rep-packed lockstep gossip: every replication of [run_reps] must
   equal the scalar [run], on frozen and chunked forms, across token
   counts straddling both packing regimes (k <= 63 folds several
   replications per word, k > 63 gives each replication a word span)
   and widths around the fold boundary. *)
let prop_gossip_run_reps_matches_scalar =
  QCheck.Test.make ~count:40
    ~name:"Gossip.run_reps = scalar Gossip.run (frozen and chunked)" gossip_arb
    (fun (n, len, seed, k) ->
      let s, sink = sequence_of (n, len, seed) in
      let n = Sequence.max_node s + 1 in
      let problem = Problem.dissemination ~k in
      let len = Sequence.length s in
      let rs = [ 1; 3; 64; 130 ] in
      let forms () = schedule_forms ~n ~sink s in
      let base = Gossip.run ~max_steps:len ~problem (List.assoc "frozen" (forms ())) in
      List.for_all
        (fun r ->
          List.for_all
            (fun name ->
              let reps =
                Gossip.run_reps ~max_steps:len ~problem
                  (List.assoc name (forms ()))
                  r
              in
              Array.length reps = r
              && Array.for_all (fun b -> same_gossip_h ~len base b) reps)
            [ "frozen"; "chunked" ])
        rs)

(* run_reps stats: one decode per step shared by all live lanes. *)
let test_gossip_run_reps_stats () =
  let s, sink = sequence_of (8, 300, 3) in
  let n = Sequence.max_node s + 1 in
  let problem = Problem.dissemination ~k:8 in
  let scalar = Gossip.run ~problem (Schedule.of_sequence ~n ~sink s) in
  let stats = Batch_engine.stats () in
  let r = 70 in
  let reps =
    Gossip.run_reps ~stats ~problem
      (Schedule.freeze (Schedule.of_sequence ~n ~sink s))
      r
  in
  Alcotest.(check int) "decodes = scalar steps" scalar.Gossip.steps
    stats.Batch_engine.decodes;
  Alcotest.(check int) "lane_steps = r * decodes (identical reps)"
    (r * scalar.Gossip.steps) stats.Batch_engine.lane_steps;
  Array.iter
    (fun b -> Alcotest.(check bool) "rep = scalar" true (same_gossip scalar b))
    reps

(* k = 1: the single token sits at node 0, so gossip is exactly a
   broadcast from node 0 and the duration is the temporal broadcast
   completion time. *)
let prop_gossip_k1_is_broadcast =
  QCheck.Test.make ~count:80 ~name:"gossip k=1 duration = broadcast completion"
    instance_arb (fun inst ->
      let s, sink = sequence_of inst in
      let n = Sequence.max_node s + 1 in
      let problem = Problem.dissemination ~k:1 in
      let r = Gossip.run ~problem (Schedule.of_sequence ~n ~sink s) in
      r.Gossip.duration = Temporal.broadcast_completion ~n ~src:0 s)

(* ------------------------------------------------------------------ *)
(* Observers and analysis on a fixed gossip run. *)

let test_gossip_observers () =
  let s, sink = sequence_of (8, 200, 11) in
  let n = Sequence.max_node s + 1 in
  let problem = Problem.dissemination ~k:8 in
  let steps = ref 0 and transfers = ref 0 and finished = ref 0 in
  let obs =
    Gossip.observer
      ~on_step:(fun ~time:_ _ -> incr steps)
      ~on_transfer:(fun ~time:_ ~sender:_ ~receiver:_ -> incr transfers)
      ~on_finish:(fun _ -> incr finished)
      ()
  in
  let r =
    Gossip.run ~observers:[ obs ] ~problem (Schedule.of_sequence ~n ~sink s)
  in
  Alcotest.(check int) "on_step per interaction" r.Gossip.steps !steps;
  Alcotest.(check int) "on_transfer per transfer" r.Gossip.transfer_count
    !transfers;
  Alcotest.(check int) "on_finish once" 1 !finished;
  (* `Count recording drops the log but changes nothing else. *)
  let counted =
    Gossip.run ~record:`Count ~problem (Schedule.of_sequence ~n ~sink s)
  in
  Alcotest.(check int) "`Count log empty" 0 (Run_log.length counted.Gossip.log);
  Alcotest.(check bool) "`Count same observables" true
    (same_gossip { r with Gossip.log = counted.Gossip.log } counted)

let test_coverage_times () =
  let s, sink = sequence_of (6, 300, 5) in
  let n = Sequence.max_node s + 1 in
  let problem = Problem.dissemination ~k:6 in
  let r = Gossip.run ~problem (Schedule.of_sequence ~n ~sink s) in
  let times = Doda_sim.Analysis.coverage_times ~n ~problem r in
  Alcotest.(check bool) "all nodes timed iff all covered"
    (r.Gossip.complete_nodes = n)
    (Array.for_all (fun t -> t <> None) times);
  (* The last completion equals the run's duration. *)
  let latest =
    Array.fold_left
      (fun acc -> function Some t -> Stdlib.max acc t | None -> acc)
      (-1) times
  in
  (match r.Gossip.duration with
  | Some d -> Alcotest.(check int) "latest completion = duration" d latest
  | None -> ());
  (* k >= 2 and n >= 2: no node can hold all tokens at the start, so
     every completion is a real transfer event. *)
  Array.iter
    (function
      | Some t -> Alcotest.(check bool) "event time" true (t >= 0)
      | None -> ())
    times

(* Coverage analysis under --stream: [coverage_times] replays the
   transfer log, never the schedule prefix, so a run on a chunked
   (streamed) schedule yields the exact completion times of the frozen
   run. *)
let test_coverage_times_streamed () =
  let s, sink = sequence_of (7, 400, 9) in
  let n = Sequence.max_node s + 1 in
  let problem = Problem.dissemination ~k:7 in
  let on form =
    Doda_sim.Analysis.coverage_times ~n ~problem
      (Gossip.run ~problem (List.assoc form (schedule_forms ~n ~sink s)))
  in
  let tf = on "frozen" and tc = on "chunked" in
  Alcotest.(check bool) "frozen = streamed coverage times" true (tf = tc);
  Alcotest.(check bool) "some node completes (fixture sanity)" true
    (Array.exists (fun t -> t <> None) tf)

(* ------------------------------------------------------------------ *)
(* Parsing and validation negatives. *)

let test_problem_parse () =
  (match Problem.parse ~sink:3 "aggregation" with
  | Ok (Problem.Aggregation { sink }) -> Alcotest.(check int) "sink" 3 sink
  | _ -> Alcotest.fail "aggregation should parse");
  (match Problem.parse "gossip:7" with
  | Ok (Problem.Dissemination { k }) -> Alcotest.(check int) "k" 7 k
  | _ -> Alcotest.fail "gossip:7 should parse");
  List.iter
    (fun bad ->
      match Problem.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ "gossip:0"; "gossip:-2"; "gossip:"; "gossip"; "census"; "" ];
  List.iter
    (fun p ->
      match Problem.parse (Problem.name p) with
      | Ok q -> Alcotest.(check bool) "name round-trips" true (p = q)
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ Problem.aggregation ~sink:0; Problem.dissemination ~k:12 ]

let test_validate_gossip_negatives () =
  let s, sink = sequence_of (6, 200, 21) in
  let n = Sequence.max_node s + 1 in
  let problem = Problem.dissemination ~k:6 in
  let r = Gossip.run ~problem (Schedule.of_sequence ~n ~sink s) in
  let entries = Run_log.to_list r.Gossip.log in
  Alcotest.(check bool) "run covers (fixture sanity)" true
    (r.Gossip.stop = Engine.All_aggregated);
  let check_flags name log expected =
    let vs = Validate.problem problem ~n s (Run_log.of_list log) in
    Alcotest.(check bool) name true
      (List.exists expected vs)
  in
  (* Replaying a transfer a second time teaches nothing. *)
  let last = List.nth entries (List.length entries - 1) in
  check_flags "duplicate transfer is Uninformative" (entries @ [ last ])
    (function Validate.Uninformative _ -> true | _ -> false);
  (* An entry whose endpoints are not I_t's. *)
  let wrong = { last with Run_log.sender = last.Run_log.receiver } in
  check_flags "self transfer is Wrong_interaction" (entries @ [ wrong ])
    (function Validate.Wrong_interaction _ -> true | _ -> false);
  (* Strictly decreasing time. *)
  (match entries with
  | first :: _ ->
      check_flags "rewound time is Out_of_order" (entries @ [ first ])
        (function Validate.Out_of_order _ -> true | _ -> false)
  | [] -> Alcotest.fail "fixture log empty");
  (* Truncating the log leaves some node uncovered. *)
  let truncated =
    List.filteri (fun i _ -> i < List.length entries - 1) entries
  in
  Alcotest.(check bool) "truncated log is valid but incomplete" true
    (Validate.problem problem ~n s (Run_log.of_list truncated) = []
    && not (Validate.gossip_complete ~n ~problem s (Run_log.of_list truncated)))

let test_problem_accessor_guards () =
  let agg = Problem.aggregation ~sink:0
  and dis = Problem.dissemination ~k:3 in
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "tokens on aggregation raises" true
    (raises (fun () -> Problem.tokens agg));
  Alcotest.(check bool) "sink on dissemination raises" true
    (raises (fun () -> Problem.sink dis));
  Alcotest.(check bool) "gossip run on aggregation raises" true
    (raises (fun () ->
         Gossip.run ~problem:agg
           (Schedule.of_sequence ~n:4 ~sink:0 (Sequence.of_pairs [ (0, 1) ]))))

let () =
  Alcotest.run "problem"
    [
      ( "aggregation",
        [
          qtest prop_engine_matches_model;
          qtest prop_schedule_forms_identical;
          qtest prop_batch_matches_scalar;
        ] );
      ( "gossip",
        [
          qtest prop_gossip_matches_reference;
          qtest prop_gossip_log_validates;
          qtest prop_gossip_run_reps_matches_scalar;
          qtest prop_gossip_k1_is_broadcast;
          Alcotest.test_case "observers and `Count" `Quick test_gossip_observers;
          Alcotest.test_case "run_reps stats" `Quick test_gossip_run_reps_stats;
          Alcotest.test_case "coverage times" `Quick test_coverage_times;
          Alcotest.test_case "coverage times streamed" `Quick
            test_coverage_times_streamed;
        ] );
      ( "problem",
        [
          Alcotest.test_case "parse" `Quick test_problem_parse;
          Alcotest.test_case "validate negatives" `Quick
            test_validate_gossip_negatives;
          Alcotest.test_case "accessor guards" `Quick
            test_problem_accessor_guards;
        ] );
    ]
