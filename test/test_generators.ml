(* Generator-kernel tests. The event-driven rebuild of the workload
   generators makes two kinds of promise, and both are checked here:

   - stream-identical (waypoint, grid walkers): the spatial-hash paths
     must reproduce the seed implementations' PRNG draw streams
     byte-for-byte. The seed code is kept below, verbatim, as the
     oracle.
   - distribution-identical (markov edges): the timing-wheel version
     draws differently but must sample the same law as the dense
     Bernoulli reference — checked by a KS test on the interaction
     marginal and by comparing mean active-edge counts.

   Plus direct properties of the kernels themselves: the spatial grid
   finds exactly the brute-force contact set, quickselect agrees with
   sorting, and the timing wheel fires every id exactly at its due
   time. *)

module Interaction = Doda_dynamic.Interaction
module Generators = Doda_dynamic.Generators
module Mobility = Doda_dynamic.Mobility
module Gen_kernel = Doda_dynamic.Gen_kernel
module Prng = Doda_prng.Prng
module Descriptive = Doda_stats.Descriptive
module Geometric_sum = Doda_stats.Geometric_sum

(* ------------------------------------------------------------------ *)
(* Spatial grid vs brute force                                        *)

let brute_contacts ~n ~radius x y =
  let r2 = radius *. radius in
  let acc = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      let dx = x.(a) -. x.(b) and dy = y.(a) -. y.(b) in
      if (dx *. dx) +. (dy *. dy) <= r2 then acc := ((a * n) + b) :: !acc
    done
  done;
  !acc

let plane_arb =
  QCheck.make
    ~print:(fun (n, radius, seed) ->
      Printf.sprintf "(n=%d, radius=%f, seed=%d)" n radius seed)
    QCheck.Gen.(
      map3
        (fun n radius seed -> (n, radius, seed))
        (int_range 2 48) (float_range 0.01 1.2) (int_range 0 1_000_000))

let prop_plane_matches_brute =
  QCheck.Test.make ~count:300 ~name:"Plane.collect = brute-force contact set"
    plane_arb
    (fun (n, radius, seed) ->
      let rng = Prng.create seed in
      let plane = Gen_kernel.Plane.create ~n ~radius in
      let buf = Array.make (n * (n - 1) / 2) 0 in
      (* Two rounds on the same plane: scratch reuse between builds
         must not leak state from the previous positions. *)
      let ok = ref true in
      for _round = 1 to 2 do
        let x = Array.init n (fun _ -> Prng.float rng 1.0) in
        let y = Array.init n (fun _ -> Prng.float rng 1.0) in
        let k = Gen_kernel.Plane.collect plane ~x ~y buf in
        let got = List.sort compare (Array.to_list (Array.sub buf 0 k)) in
        if got <> brute_contacts ~n ~radius x y then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Quickselect                                                        *)

let prop_select_prefix =
  QCheck.Test.make ~count:500 ~name:"select_prefix = sorted.(rank)"
    QCheck.(pair (list_of_size Gen.(int_range 1 80) (int_bound 50)) small_nat)
    (fun (l, r) ->
      let a = Array.of_list l in
      let count = Array.length a in
      let rank = r mod count in
      let sorted = Array.copy a in
      Array.sort compare sorted;
      Gen_kernel.select_prefix a count ~rank = sorted.(rank))

(* ------------------------------------------------------------------ *)
(* Timing wheel                                                       *)

let wheel_fires_exactly_once () =
  let ids = 50 in
  let rng = Prng.create 42 in
  let due = Array.init ids (fun _ -> 1 + Prng.int rng 1000) in
  let w = Gen_kernel.Wheel.create ~ids in
  Array.iteri (fun id at -> Gen_kernel.Wheel.schedule w ~id ~at) due;
  let fired = Array.make ids 0 in
  for now = 1 to 1100 do
    Gen_kernel.Wheel.advance w ~now (fun id ->
        Alcotest.(check int) "fires at its due time" due.(id) now;
        fired.(id) <- fired.(id) + 1)
  done;
  Array.iter (Alcotest.(check int) "each id fires exactly once" 1) fired

let wheel_reschedules_from_callback () =
  let ids = 20 and rounds = 5 in
  let rng = Prng.create 7 in
  let w = Gen_kernel.Wheel.create ~ids in
  let next = Array.init ids (fun _ -> 1 + Prng.int rng 64) in
  let fires = Array.make ids 0 in
  Array.iteri (fun id at -> Gen_kernel.Wheel.schedule w ~id ~at) next;
  for now = 1 to 5000 do
    Gen_kernel.Wheel.advance w ~now (fun id ->
        Alcotest.(check int) "fires at its due time" next.(id) now;
        fires.(id) <- fires.(id) + 1;
        if fires.(id) < rounds then begin
          (* Gaps beyond the wheel size exercise lap collisions, gaps
             of one exercise rescheduling into the bucket being
             advanced. *)
          let at = now + 1 + Prng.int rng 600 in
          next.(id) <- at;
          Gen_kernel.Wheel.schedule w ~id ~at
        end)
  done;
  Array.iter (Alcotest.(check int) "each id completes its rounds" rounds) fires

(* ------------------------------------------------------------------ *)
(* Stream identity: seed implementations as oracles                   *)

(* The pre-kernel [random_waypoint] (commit a0b2541), verbatim. *)
let reference_waypoint ?(params = Mobility.default_waypoint) rng ~n =
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let goal_x = Array.make n 0.0 and goal_y = Array.make n 0.0 in
  let pause_left = Array.make n 0 in
  let fresh_goal u =
    goal_x.(u) <- Prng.float rng 1.0;
    goal_y.(u) <- Prng.float rng 1.0
  in
  for u = 0 to n - 1 do
    y.(u) <- Prng.float rng 1.0;
    x.(u) <- Prng.float rng 1.0;
    fresh_goal u
  done;
  let advance u =
    if pause_left.(u) > 0 then pause_left.(u) <- pause_left.(u) - 1
    else begin
      let dx = goal_x.(u) -. x.(u) and dy = goal_y.(u) -. y.(u) in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
      if dist <= params.Mobility.speed then begin
        x.(u) <- goal_x.(u);
        y.(u) <- goal_y.(u);
        pause_left.(u) <- params.Mobility.pause;
        fresh_goal u
      end
      else begin
        x.(u) <- x.(u) +. (params.Mobility.speed *. dx /. dist);
        y.(u) <- y.(u) +. (params.Mobility.speed *. dy /. dist)
      end
    end
  in
  let r2 = params.Mobility.radius *. params.Mobility.radius in
  let in_range a b =
    let dx = x.(a) -. x.(b) and dy = y.(a) -. y.(b) in
    (dx *. dx) +. (dy *. dy) <= r2
  in
  let contact = Array.make (n * (n - 1) / 2) 0 in
  let count = ref 0 in
  let collect () =
    count := 0;
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if in_range a b then begin
          contact.(!count) <- (a * n) + b;
          incr count
        end
      done
    done
  in
  let advance_all () =
    for u = 0 to n - 1 do
      advance u
    done
  in
  fun _t ->
    advance_all ();
    collect ();
    while !count = 0 do
      advance_all ();
      collect ()
    done;
    let packed = contact.(!count - 1 - Prng.int rng !count) in
    Interaction.make (packed / n) (packed mod n)

(* The pre-kernel [grid_walkers] (commit a0b2541), verbatim. *)
let reference_grid_walkers rng ~n ~rows ~cols =
  let cell = Array.init n (fun _ -> (Prng.int rng rows, Prng.int rng cols)) in
  let step u =
    let r, c = cell.(u) in
    let moves =
      List.filter
        (fun (r, c) -> r >= 0 && r < rows && c >= 0 && c < cols)
        [ (r, c); (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]
    in
    cell.(u) <- Prng.choose rng (Array.of_list moves)
  in
  let colocated () =
    let acc = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if cell.(a) = cell.(b) then acc := (a, b) :: !acc
      done
    done;
    !acc
  in
  fun _t ->
    let rec advance () =
      for u = 0 to n - 1 do
        step u
      done;
      match colocated () with
      | [] -> advance ()
      | pairs ->
          let a, b = Prng.choose rng (Array.of_list pairs) in
          Interaction.make a b
    in
    advance ()

let check_same_stream name gen reference draws =
  for t = 0 to draws - 1 do
    let got = gen t and want = reference t in
    Alcotest.(check (pair int int))
      (Printf.sprintf "%s draw %d" name t)
      (Interaction.u want, Interaction.v want)
      (Interaction.u got, Interaction.v got)
  done

let waypoint_stream_brute_path () =
  (* n below the grid threshold: the all-pairs path. *)
  check_same_stream "waypoint n=32"
    (Mobility.random_waypoint (Prng.create 1234) ~n:32)
    (reference_waypoint (Prng.create 1234) ~n:32)
    400

let waypoint_stream_grid_path () =
  (* n and grid dimension above the thresholds: the spatial-hash
     path (radius 0.05 gives a 20x20 grid). *)
  let params = { Mobility.default_waypoint with Mobility.radius = 0.05 } in
  check_same_stream "waypoint n=96 r=0.05"
    (Mobility.random_waypoint ~params (Prng.create 987) ~n:96)
    (reference_waypoint ~params (Prng.create 987) ~n:96)
    400

let grid_walkers_stream () =
  check_same_stream "grid walkers"
    (Mobility.grid_walkers (Prng.create 55) ~n:40 ~rows:5 ~cols:5)
    (reference_grid_walkers (Prng.create 55) ~n:40 ~rows:5 ~cols:5)
    400

(* ------------------------------------------------------------------ *)
(* Distribution identity: event-driven vs dense markov                *)

let markov_n = 8
let markov_p_on = 0.05
let markov_p_off = 0.3
let markov_draws = 20_000

(* Triangular rank of the pair (u, v), u < v: the integer support the
   KS statistic runs over. *)
let pair_rank ~n i =
  let u = Interaction.u i and v = Interaction.v i in
  (u * n) - (u * (u + 1) / 2) + (v - u - 1)

let markov_run gen_of seed =
  let active = ref [] in
  let gen =
    gen_of
      ?on_active:(Some (fun c -> active := float_of_int c :: !active))
      (Prng.create seed) ~n:markov_n ~p_on:markov_p_on ~p_off:markov_p_off
  in
  let ranks =
    Array.init markov_draws (fun t -> float_of_int (pair_rank ~n:markov_n (gen t)))
  in
  (ranks, Array.of_list !active)

let markov_mean_active () =
  let _, event = markov_run Generators.markov_edges 11 in
  let _, dense = markov_run Generators.markov_edges_dense 12 in
  let me = Descriptive.mean event and md = Descriptive.mean dense in
  let rel = Float.abs (me -. md) /. md in
  if rel > 0.05 then
    Alcotest.failf "mean active edges differ: event %.3f vs dense %.3f (rel %.3f)"
      me md rel

let markov_ks_marginal () =
  let event, _ = markov_run Generators.markov_edges 21 in
  let dense, _ = markov_run Generators.markov_edges_dense 22 in
  let pairs = markov_n * (markov_n - 1) / 2 in
  (* Empirical CDF of the dense reference as the baseline. *)
  let counts = Array.make pairs 0 in
  Array.iter (fun r -> counts.(int_of_float r) <- counts.(int_of_float r) + 1) dense;
  let cdf = Array.make pairs 0.0 in
  let acc = ref 0 in
  for i = 0 to pairs - 1 do
    acc := !acc + counts.(i);
    cdf.(i) <- float_of_int !acc /. float_of_int markov_draws
  done;
  let d = Geometric_sum.ks_distance ~cdf ~samples:event in
  (* Two-sample critical value at alpha = 0.001 with 20k draws each is
     about 0.0195; the seeds are fixed, so this never flakes. *)
  if d > 0.025 then
    Alcotest.failf "KS distance between markov variants too large: %.4f" d

let () =
  Alcotest.run "generator kernels"
    [
      ( "spatial",
        [
          QCheck_alcotest.to_alcotest prop_plane_matches_brute;
          QCheck_alcotest.to_alcotest prop_select_prefix;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "fires exactly once" `Quick wheel_fires_exactly_once;
          Alcotest.test_case "reschedule from callback" `Quick
            wheel_reschedules_from_callback;
        ] );
      ( "stream-identity",
        [
          Alcotest.test_case "waypoint (all-pairs path)" `Quick
            waypoint_stream_brute_path;
          Alcotest.test_case "waypoint (grid path)" `Quick
            waypoint_stream_grid_path;
          Alcotest.test_case "grid walkers" `Quick grid_walkers_stream;
        ] );
      ( "markov-equivalence",
        [
          Alcotest.test_case "mean active edges" `Slow markov_mean_active;
          Alcotest.test_case "KS on interaction marginal" `Slow markov_ks_marginal;
        ] );
    ]
