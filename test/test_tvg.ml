(* TVG-class validators and generators: every class-constrained
   generator's schedules must pass their own validator (and the
   strictly weaker classes implied by the construction), and each
   validator must reject hand-built counterexamples with the exact
   witness. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Tvg = Doda_dynamic.Tvg_class
module Workload = Doda_sim.Workload
module Prng = Doda_prng.Prng

let qtest = QCheck_alcotest.to_alcotest

(* Materialise a stateful generator in draw order (generators must be
   read in non-decreasing time order, and [Array.init]'s evaluation
   order is unspecified). *)
let materialize gen len =
  let arr = Array.make len (Interaction.make 0 1) in
  for t = 0 to len - 1 do
    arr.(t) <- gen t
  done;
  Sequence.of_array arr

let seq_of_pairs = Sequence.of_pairs

let check_ok name = function
  | Ok () -> ()
  | Error w -> Alcotest.failf "%s: unexpected witness %a" name Tvg.pp_witness w

(* ------------------------------------------------------------------ *)
(* Generator ⇄ validator round trips, with the implication chain. *)

let t_interval_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n slack seed -> (n, n - 1 + slack, seed))
        (int_range 3 10) (int_range 0 8) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, w, seed) -> Printf.sprintf "(n=%d, window=%d, seed=%d)" n w seed)
    gen

let prop_gen_t_interval_in_class =
  QCheck.Test.make ~count:60
    ~name:"gen_t_interval passes T_interval w, T_interval 2w, Temporal"
    t_interval_arb (fun (n, window, seed) ->
      let len = n * window in
      let s =
        materialize (Tvg.gen_t_interval (Prng.create seed) ~n ~window) len
      in
      Tvg.validate ~n (Tvg.T_interval window) s = Ok ()
      (* Tumbling 2w-windows split into two full w-windows, each
         connected, sharing all n nodes. *)
      && Tvg.validate ~n (Tvg.T_interval (2 * window)) s = Ok ()
      (* Each connected window informs at least one new node, and the
         sequence holds n - 1 full windows per source. *)
      && Tvg.validate ~n Tvg.Temporal s = Ok ())

let bounded_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n slack seed -> (n, (2 * (n - 1)) + slack, seed))
        (int_range 3 8) (int_range 0 10) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, b, seed) -> Printf.sprintf "(n=%d, bound=%d, seed=%d)" n b seed)
    gen

let prop_gen_bounded_recurrent_in_class =
  QCheck.Test.make ~count:60
    ~name:
      "gen_bounded_recurrent passes Bounded_recurrent b, T_interval b, \
       Recurrent, Temporal"
    bounded_arb (fun (n, bound, seed) ->
      let len = n * bound in
      let s =
        materialize (Tvg.gen_bounded_recurrent (Prng.create seed) ~n ~bound) len
      in
      Tvg.validate ~n (Tvg.Bounded_recurrent bound) s = Ok ()
      (* Every sliding bound-window holds the whole spanning-tree
         footprint, so every tumbling one is connected. *)
      && Tvg.validate ~n (Tvg.T_interval bound) s = Ok ()
      (* bound <= len / 2 here, so every edge recurs in the closing
         half. *)
      && Tvg.validate ~n Tvg.Recurrent s = Ok ()
      && Tvg.validate ~n Tvg.Temporal s = Ok ())

let prop_stream_agrees_with_frozen =
  QCheck.Test.make ~count:40
    ~name:"validate_stream = validate on generator output" bounded_arb
    (fun (n, bound, seed) ->
      let len = 3 * bound in
      let s =
        materialize (Tvg.gen_bounded_recurrent (Prng.create seed) ~n ~bound) len
      in
      List.for_all
        (fun cls ->
          Tvg.validate_stream ~n ~length:len cls (Sequence.unsafe_get s)
          = Tvg.validate ~n cls s)
        [
          Tvg.T_interval bound;
          Tvg.T_interval (bound / 2);
          Tvg.Recurrent;
          Tvg.Bounded_recurrent bound;
          Tvg.Bounded_recurrent (bound / 3);
        ])

let prop_generators_deterministic =
  QCheck.Test.make ~count:30 ~name:"identical seeds replay identical schedules"
    t_interval_arb (fun (n, window, seed) ->
      let len = 3 * window in
      let once =
        materialize (Tvg.gen_t_interval (Prng.create seed) ~n ~window) len
      in
      let again =
        materialize (Tvg.gen_t_interval (Prng.create seed) ~n ~window) len
      in
      Sequence.equal once again)

(* The 1-interval special case: per-step connectivity in the pairwise
   model means back-to-back spanning trees with no fillers, realized —
   and validated — as T_interval (n - 1). *)
let test_one_interval_roundtrip () =
  let n = 7 in
  let len = n * (n - 1) in
  let s = materialize (Tvg.gen_t_interval (Prng.create 11) ~n ~window:1) len in
  check_ok "validates T_interval (n-1)"
    (Tvg.validate ~n (Tvg.T_interval (n - 1)) s);
  check_ok "temporal" (Tvg.validate ~n Tvg.Temporal s);
  (* Every (n-1)-window is exactly one spanning tree: n - 1 distinct
     edges touching all n nodes. *)
  for w = 0 to (len / (n - 1)) - 1 do
    let edges = Hashtbl.create 8 in
    let nodes = Array.make n false in
    for t = w * (n - 1) to ((w + 1) * (n - 1)) - 1 do
      let i = Sequence.get s t in
      let u = Interaction.u i and v = Interaction.v i in
      Hashtbl.replace edges (Stdlib.min u v, Stdlib.max u v) ();
      nodes.(u) <- true;
      nodes.(v) <- true
    done;
    Alcotest.(check int) "n - 1 distinct edges" (n - 1) (Hashtbl.length edges);
    Alcotest.(check bool) "all nodes present" true (Array.for_all Fun.id nodes)
  done;
  (* n = 2 is the one size where a single interaction is connected. *)
  let s2 = materialize (Tvg.gen_t_interval (Prng.create 3) ~n:2 ~window:1) 6 in
  check_ok "n = 2, window 1" (Tvg.validate ~n:2 (Tvg.T_interval 1) s2);
  (* Through the workload layer: parses and stays in class. *)
  (match Workload.parse "t-interval:1" with
  | Ok (Workload.T_interval 1) -> ()
  | _ -> Alcotest.fail "t-interval:1 should parse");
  let sched = Workload.schedule (Workload.T_interval 1) ~n ~sink:0 ~seed:5 in
  let prefix = Schedule.prefix sched len in
  check_ok "workload 1-interval stays in class"
    (Tvg.validate ~n (Tvg.T_interval (n - 1)) prefix)

(* min_bound is exact: the summary's bound validates and one less does
   not. *)
let prop_min_bound_tight =
  QCheck.Test.make ~count:40 ~name:"summarize min_bound is tight" bounded_arb
    (fun (n, bound, seed) ->
      let len = 3 * bound in
      let s =
        materialize (Tvg.gen_bounded_recurrent (Prng.create seed) ~n ~bound) len
      in
      match (Tvg.summarize ~n s).Tvg.min_bound with
      | None -> false
      | Some b ->
          Tvg.validate ~n (Tvg.Bounded_recurrent b) s = Ok ()
          && (b = 1 || Tvg.validate ~n (Tvg.Bounded_recurrent (b - 1)) s <> Ok ()))

(* ------------------------------------------------------------------ *)
(* Hand-built counterexamples: exact witnesses. *)

let test_temporal_witness () =
  let s = seq_of_pairs [ (0, 1); (0, 1); (0, 1) ] in
  match Tvg.validate ~n:3 Tvg.Temporal s with
  | Error (Tvg.Unreachable { src = 0; dst = 2 }) -> ()
  | Error w -> Alcotest.failf "wrong witness: %a" Tvg.pp_witness w
  | Ok () -> Alcotest.fail "node 2 is unreachable"

let test_t_interval_witness () =
  let s =
    seq_of_pairs [ (0, 1); (1, 2); (2, 3); (0, 1); (0, 1); (0, 1) ]
  in
  (match Tvg.validate ~n:4 (Tvg.T_interval 3) s with
  | Error (Tvg.Disconnected_window { start = 3; len = 3 }) -> ()
  | Error w -> Alcotest.failf "wrong witness: %a" Tvg.pp_witness w
  | Ok () -> Alcotest.fail "second window is disconnected");
  (* The trailing partial window is never checked. *)
  check_ok "partial tail ignored"
    (Tvg.validate ~n:4 (Tvg.T_interval 4)
       (seq_of_pairs [ (0, 1); (1, 2); (2, 3); (0, 2); (0, 1) ]))

let test_recurrent_witness () =
  (* (0,1) lives only in the opening half of the 6 steps. *)
  let s = seq_of_pairs [ (0, 1); (0, 1); (1, 2); (1, 2); (1, 2); (1, 2) ] in
  match Tvg.validate ~n:3 Tvg.Recurrent s with
  | Error (Tvg.Vanished_edge { u = 0; v = 1; last_seen = 1 }) -> ()
  | Error w -> Alcotest.failf "wrong witness: %a" Tvg.pp_witness w
  | Ok () -> Alcotest.fail "(0,1) vanishes"

let test_bounded_recurrent_witnesses () =
  (* Interior gap: (0,1) at times 0 and 4, nothing between. *)
  let interior = seq_of_pairs [ (0, 1); (1, 2); (1, 2); (1, 2); (0, 1) ] in
  (match Tvg.validate ~n:3 (Tvg.Bounded_recurrent 2) interior with
  | Error (Tvg.Edge_gap { u = 0; v = 1; gap_start = 0; gap_end = 4 }) -> ()
  | Error w -> Alcotest.failf "interior: wrong witness: %a" Tvg.pp_witness w
  | Ok () -> Alcotest.fail "interior gap of 3 > 2");
  (* Start sentinel: (1,2) first appears at time 1, too late for
     bound 1. *)
  let late = seq_of_pairs [ (0, 1); (1, 2) ] in
  (match Tvg.validate ~n:3 (Tvg.Bounded_recurrent 1) late with
  | Error (Tvg.Edge_gap { u = 1; v = 2; gap_start = -1; gap_end = 1 }) -> ()
  | Error w -> Alcotest.failf "start: wrong witness: %a" Tvg.pp_witness w
  | Ok () -> Alcotest.fail "(1,2) appears too late");
  (* End sentinel: (0,1) last appears at time 0 of 3 steps. *)
  let tail = seq_of_pairs [ (0, 1); (1, 2); (1, 2) ] in
  (match Tvg.validate ~n:3 (Tvg.Bounded_recurrent 2) tail with
  | Error (Tvg.Edge_gap { u = 0; v = 1; gap_start = 0; gap_end = 3 }) -> ()
  | Error w -> Alcotest.failf "end: wrong witness: %a" Tvg.pp_witness w
  | Ok () -> Alcotest.fail "(0,1) absent from the last 3 > 2 steps");
  (* The gap measure is the difference of occurrence times: (0,1) at
     times 0 and 4 is a gap of 4. *)
  check_ok "bound 4 admits all gaps"
    (Tvg.validate ~n:3 (Tvg.Bounded_recurrent 4) interior)

let test_param_guards () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  let s = seq_of_pairs [ (0, 1) ] in
  Alcotest.(check bool) "window 0 rejected" true
    (raises (fun () -> Tvg.validate ~n:2 (Tvg.T_interval 0) s));
  Alcotest.(check bool) "bound 0 rejected" true
    (raises (fun () -> Tvg.validate ~n:2 (Tvg.Bounded_recurrent 0) s));
  Alcotest.(check bool) "streaming Temporal rejected" true
    (raises (fun () ->
         Tvg.validate_stream ~n:2 ~length:1 Tvg.Temporal (Sequence.unsafe_get s)));
  Alcotest.(check bool) "tight t-interval window rejected" true
    (raises (fun () -> Tvg.gen_t_interval (Prng.create 1) ~n:8 ~window:6));
  Alcotest.(check bool) "tight bounded-recurrent bound rejected" true
    (raises (fun () -> Tvg.gen_bounded_recurrent (Prng.create 1) ~n:8 ~bound:13));
  (* Rewinding a block generator past its discarded block raises. *)
  let gen = Tvg.gen_t_interval (Prng.create 1) ~n:4 ~window:4 in
  ignore (gen 17);
  Alcotest.(check bool) "generator rewind rejected" true
    (raises (fun () -> gen 3))

let test_parse_roundtrip () =
  List.iter
    (fun cls ->
      match Tvg.parse (Tvg.to_string cls) with
      | Ok c -> Alcotest.(check bool) (Tvg.to_string cls) true (c = cls)
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ Tvg.Temporal; Tvg.T_interval 17; Tvg.Recurrent; Tvg.Bounded_recurrent 9 ];
  List.iter
    (fun bad ->
      match Tvg.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ "t-interval:0"; "t-interval:x"; "bounded-recurrent:-1"; "interval"; "" ]

let test_summarize () =
  let n = 5 and bound = 10 in
  let s =
    materialize (Tvg.gen_bounded_recurrent (Prng.create 7) ~n ~bound) (4 * bound)
  in
  let sum = Tvg.summarize ~n s in
  Alcotest.(check int) "nodes" n sum.Tvg.nodes;
  Alcotest.(check int) "length" (4 * bound) sum.Tvg.length;
  Alcotest.(check int) "footprint is the spanning tree" (n - 1)
    sum.Tvg.footprint_edges;
  Alcotest.(check bool) "footprint connected" true sum.Tvg.footprint_connected;
  check_ok "temporal" sum.Tvg.temporal;
  check_ok "recurrent" sum.Tvg.recurrent;
  (match sum.Tvg.min_window with
  | Some w ->
      check_ok "min_window validates" (Tvg.validate ~n (Tvg.T_interval w) s)
  | None -> Alcotest.fail "a bounded-recurrent trace has a valid window");
  match sum.Tvg.min_bound with
  | Some b -> Alcotest.(check bool) "min_bound <= construction bound" true (b <= bound)
  | None -> Alcotest.fail "min_bound exists on a non-empty trace"

(* ------------------------------------------------------------------ *)
(* Workload layer: class-constrained sources parse and stay in class. *)

let test_workload_classes () =
  (match Workload.parse "t-interval:32" with
  | Ok (Workload.T_interval 32) -> ()
  | _ -> Alcotest.fail "t-interval:32 should parse");
  (match Workload.parse "bounded-recurrent:64" with
  | Ok (Workload.Bounded_recurrent 64) -> ()
  | _ -> Alcotest.fail "bounded-recurrent:64 should parse");
  (match Workload.parse "t-interval:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "t-interval:0 should not parse");
  List.iter
    (fun w ->
      Alcotest.(check string) "to_string round-trips"
        (Workload.to_string w)
        (match Workload.parse (Workload.to_string w) with
        | Ok w' -> Workload.to_string w'
        | Error e -> e))
    [ Workload.T_interval 8; Workload.Bounded_recurrent 12 ];
  (* Built through the schedule layer, the trace still validates. *)
  let n = 6 and window = 8 in
  let sched =
    Workload.schedule (Workload.T_interval window) ~n ~sink:0 ~seed:3
  in
  let prefix = Schedule.prefix sched (n * window) in
  check_ok "workload schedule stays in class"
    (Tvg.validate ~n (Tvg.T_interval window) prefix);
  (* And the streamed variant plays the identical draws. *)
  let streamed =
    Workload.schedule ~stream:true (Workload.T_interval window) ~n ~sink:0
      ~seed:3
  in
  let same = ref true in
  for t = 0 to (n * window) - 1 do
    if Schedule.get_exn streamed t <> Sequence.get prefix t then same := false
  done;
  Alcotest.(check bool) "streamed draws identical" true !same

let () =
  Alcotest.run "tvg_class"
    [
      ( "roundtrip",
        [
          qtest prop_gen_t_interval_in_class;
          qtest prop_gen_bounded_recurrent_in_class;
          qtest prop_stream_agrees_with_frozen;
          qtest prop_generators_deterministic;
          qtest prop_min_bound_tight;
          Alcotest.test_case "1-interval special case" `Quick
            test_one_interval_roundtrip;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "temporal" `Quick test_temporal_witness;
          Alcotest.test_case "t-interval" `Quick test_t_interval_witness;
          Alcotest.test_case "recurrent" `Quick test_recurrent_witness;
          Alcotest.test_case "bounded-recurrent" `Quick
            test_bounded_recurrent_witnesses;
          Alcotest.test_case "parameter guards" `Quick test_param_guards;
        ] );
      ( "classify",
        [
          Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "workload classes" `Quick test_workload_classes;
        ] );
    ]
