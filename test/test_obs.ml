(* Telemetry subsystem tests: metrics round-trips, span recording,
   trace export well-formedness, and — the load-bearing property —
   deterministic shard merging: aggregated counters identical at
   --jobs 1, 2, and 4. *)

module Metrics = Doda_obs.Metrics
module Span = Doda_obs.Span
module Trace_event = Doda_obs.Trace_event
module Instrument = Doda_obs.Instrument
module Pool = Doda_sim.Pool
module Experiment = Doda_sim.Experiment
module Algorithms = Doda_core.Algorithms
module Randomized = Doda_adversary.Randomized

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_roundtrip () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "a.count" in
  Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "42" 42 (Metrics.counter_value c);
  (* Get-or-create returns the same instrument. *)
  Metrics.incr (Metrics.counter reg "a.count");
  Alcotest.(check int) "shared" 43 (Metrics.counter_value c)

let test_disabled_is_noop () =
  let c = Metrics.counter Metrics.disabled "x" in
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "still 0" 0 (Metrics.counter_value c);
  let g = Metrics.gauge Metrics.disabled "g" in
  Metrics.set g 5;
  Alcotest.(check (option int)) "gauge unset" None (Metrics.gauge_value g);
  let h = Metrics.histogram Metrics.disabled "h" in
  Metrics.observe h 3;
  Alcotest.(check int) "histogram empty" 0 (Metrics.histogram_count h);
  Alcotest.(check string) "summary empty" "" (Metrics.summary Metrics.disabled);
  Alcotest.(check bool) "dump empty" true (Metrics.dump Metrics.disabled = [])

let test_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "same.name");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: same.name already registered as a different kind")
    (fun () -> ignore (Metrics.gauge reg "same.name"))

let test_gauge_max () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "g" in
  Alcotest.(check (option int)) "unset" None (Metrics.gauge_value g);
  Metrics.set_max g 3;
  Metrics.set_max g 7;
  Metrics.set_max g 5;
  Alcotest.(check (option int)) "max kept" (Some 7) (Metrics.gauge_value g);
  Metrics.set g 1;
  Alcotest.(check (option int)) "set overrides" (Some 1) (Metrics.gauge_value g)

let test_histogram_roundtrip () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 1; 2; 4; 8 |] reg "h" in
  List.iter (Metrics.observe h) [ 1; 1; 3; 9; 100 ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check int) "sum" 114 (Metrics.histogram_sum h);
  Alcotest.(check (option (pair int int))) "range" (Some (1, 100))
    (Metrics.histogram_range h);
  match Metrics.dump reg with
  | [ ("h", Metrics.Histogram_v v) ] ->
      Alcotest.(check (array int)) "buckets" [| 2; 0; 1; 0; 2 |] v.buckets
  | _ -> Alcotest.fail "dump shape"

let test_histogram_quantile_guards () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" in
  Alcotest.(check (option (float 0.0))) "empty" None (Metrics.approx_quantile h 0.5);
  Metrics.observe h 5;
  (match Metrics.approx_quantile h 0.5 with
  | Some v ->
      Alcotest.(check bool) "single sample finite in range" true
        (Float.is_finite v && v >= 5.0 && v <= 8.0)
  | None -> Alcotest.fail "single sample gave None");
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.approx_quantile: q must be in [0, 1]") (fun () ->
      ignore (Metrics.approx_quantile h 2.0))

let test_absorb_sums () =
  let parent = Metrics.create () in
  Metrics.add (Metrics.counter parent "c") 5;
  Metrics.set_max (Metrics.gauge parent "g") 3;
  Metrics.observe (Metrics.histogram ~bounds:[| 10 |] parent "h") 4;
  let child = Metrics.shard parent in
  Alcotest.(check bool) "shard is fresh" true (child != parent);
  Metrics.add (Metrics.counter child "c") 7;
  Metrics.add (Metrics.counter child "child.only") 1;
  Metrics.set_max (Metrics.gauge child "g") 9;
  Metrics.observe (Metrics.histogram ~bounds:[| 10 |] child "h") 40;
  Metrics.absorb parent child;
  Alcotest.(check int) "counter summed" 12
    (Metrics.counter_value (Metrics.counter parent "c"));
  Alcotest.(check int) "new counter materialized" 1
    (Metrics.counter_value (Metrics.counter parent "child.only"));
  Alcotest.(check (option int)) "gauge max" (Some 9)
    (Metrics.gauge_value (Metrics.gauge parent "g"));
  let h = Metrics.histogram ~bounds:[| 10 |] parent "h" in
  Alcotest.(check int) "histogram count" 2 (Metrics.histogram_count h);
  Alcotest.(check (option (pair int int))) "histogram range" (Some (4, 40))
    (Metrics.histogram_range h);
  (* Absorbing a disabled child into anything is a no-op. *)
  Metrics.absorb parent Metrics.disabled;
  Alcotest.(check int) "disabled child no-op" 12
    (Metrics.counter_value (Metrics.counter parent "c"))

let test_shard_of_disabled_is_disabled () =
  Alcotest.(check bool) "identity" true
    (Metrics.shard Metrics.disabled == Metrics.disabled);
  Alcotest.(check bool) "instrument shard identity" true
    (Instrument.shard Instrument.disabled == Instrument.disabled)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

(* A fake clock makes recorded timestamps deterministic. *)
let ticking_clock step =
  let t = ref 0 in
  fun () ->
    let v = !t in
    t := v + step;
    v

let test_span_recording () =
  let s = Span.create ~capacity:8 ~clock:(ticking_clock 10) () in
  let v = Span.with_span s "work" (fun () -> 42) in
  Alcotest.(check int) "value through" 42 v;
  Span.instant s "marker";
  match Span.events s with
  | [ w; m ] ->
      Alcotest.(check string) "name" "work" w.Span.name;
      (* The epoch consumed the clock's first tick (0), so the span
         opens at tick 1 = 10ns after the epoch. *)
      Alcotest.(check int) "start" 10 w.Span.start_ns;
      Alcotest.(check int) "duration" 10 w.Span.dur_ns;
      Alcotest.(check bool) "not instant" false (Span.is_instant w);
      Alcotest.(check string) "marker" "marker" m.Span.name;
      Alcotest.(check bool) "instant" true (Span.is_instant m)
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)

let test_span_exception_safe () =
  let s = Span.create ~capacity:4 ~clock:(ticking_clock 1) () in
  (try Span.with_span s "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "recorded despite raise" 1 (Span.length s)

let test_span_ring_overflow () =
  let s = Span.create ~capacity:3 ~clock:(ticking_clock 1) () in
  List.iter (fun i -> Span.instant s (string_of_int i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "capped" 3 (Span.length s);
  Alcotest.(check int) "dropped" 2 (Span.dropped s);
  Alcotest.(check (list string)) "oldest evicted first" [ "3"; "4"; "5" ]
    (List.map (fun (e : Span.event) -> e.Span.name) (Span.events s))

let test_span_absorb () =
  let parent = Span.create ~capacity:8 ~clock:(ticking_clock 1) () in
  let child = Span.shard parent in
  Span.instant parent "p";
  Span.instant child "c1";
  Span.instant child "c2";
  Span.absorb parent child;
  Alcotest.(check (list string)) "appended oldest first" [ "p"; "c1"; "c2" ]
    (List.map (fun (e : Span.event) -> e.Span.name) (Span.events parent))

let test_null_span_passthrough () =
  Alcotest.(check int) "value" 7 (Span.with_span Span.null "x" (fun () -> 7));
  Span.instant Span.null "x";
  Alcotest.(check int) "no events" 0 (Span.length Span.null);
  Alcotest.(check string) "empty summary" "" (Span.summary Span.null)

(* ------------------------------------------------------------------ *)
(* Trace export                                                        *)

let test_trace_json_shape () =
  let s = Span.create ~capacity:8 ~clock:(ticking_clock 1500) () in
  ignore (Span.with_span s "phase \"quoted\"\n" (fun () -> ()));
  Span.instant s "mark";
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "c") 3;
  let json = Trace_event.to_string ~metrics:reg ~process_name:"t" s in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "traceEvents" true (has "\"traceEvents\":[");
  Alcotest.(check bool) "process metadata" true (has "\"ph\":\"M\"");
  Alcotest.(check bool) "complete event" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "instant event" true (has "\"ph\":\"i\"");
  Alcotest.(check bool) "us conversion" true (has "\"dur\":1.500");
  Alcotest.(check bool) "escaped quote" true (has "phase \\\"quoted\\\"\\n");
  Alcotest.(check bool) "metrics embedded" true (has "\"metrics\":{\"c\":3}");
  (* No raw control characters may survive escaping. *)
  Alcotest.(check bool) "no raw newlines beyond final" true
    (not (String.contains json '\n'))

(* ------------------------------------------------------------------ *)
(* Shard-merge determinism under the pool                              *)

(* Aggregate counters over a pool batch must not depend on the job
   count: every item adds its value to its slot's shard, shards merge
   after the batch. *)
let sharded_total ~jobs items =
  Pool.with_pool ~jobs (fun pool ->
      let reg = Metrics.create () in
      let results =
        Pool.map_array_sharded pool
          ~make:(fun () -> Metrics.shard reg)
          ~merge:(Metrics.absorb reg)
          (fun shard x ->
            Metrics.add (Metrics.counter shard "total") x;
            Metrics.observe (Metrics.histogram ~bounds:[| 8; 64 |] shard "dist") x;
            x * 2)
          items
      in
      (results, Metrics.dump reg))

let test_pool_sharded_determinism () =
  let items = Array.init 37 (fun i -> i + 1) in
  let expected_results = Array.map (fun x -> x * 2) items in
  let r1, d1 = sharded_total ~jobs:1 items in
  let r2, d2 = sharded_total ~jobs:2 items in
  let r4, d4 = sharded_total ~jobs:4 items in
  Alcotest.(check (array int)) "jobs=1 results" expected_results r1;
  Alcotest.(check (array int)) "jobs=2 results" expected_results r2;
  Alcotest.(check (array int)) "jobs=4 results" expected_results r4;
  Alcotest.(check bool) "dump 1 = dump 2" true (d1 = d2);
  Alcotest.(check bool) "dump 1 = dump 4" true (d1 = d4);
  match List.assoc "total" d1 with
  | Metrics.Counter_v v ->
      Alcotest.(check int) "sum 1..37" (37 * 38 / 2) v
  | _ -> Alcotest.fail "counter shape"

let test_pool_sharded_empty_and_errors () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let made = ref 0 and merged = ref 0 in
      let r =
        Pool.map_array_sharded pool
          ~make:(fun () -> Stdlib.incr made)
          ~merge:(fun () -> Stdlib.incr merged)
          (fun () x -> x)
          [||]
      in
      Alcotest.(check (array int)) "empty input" [||] r;
      Alcotest.(check int) "no shards made" 0 !made;
      (* Shards still merge when an item raises. *)
      let reg = Metrics.create () in
      Alcotest.check_raises "item failure propagates" (Failure "item") (fun () ->
          ignore
            (Pool.map_array_sharded pool
               ~make:(fun () -> Metrics.shard reg)
               ~merge:(Metrics.absorb reg)
               (fun shard x ->
                 Metrics.incr (Metrics.counter shard "seen");
                 if x = 3 then failwith "item";
                 x)
               [| 1; 2; 3; 4 |]));
      Alcotest.(check int) "partial telemetry merged" 4
        (Metrics.counter_value (Metrics.counter reg "seen")))

(* ------------------------------------------------------------------ *)
(* End-to-end: instrumented experiment replication                     *)

let run_measurement ~jobs telemetry =
  Experiment.run_schedule_factory ~jobs ?telemetry ~replications:6 ~seed:11
    ~max_steps:20_000 ~label:"g" ~n:16
    (fun rng -> Randomized.uniform_schedule rng ~n:16 ~sink:0)
    Algorithms.gathering

let test_experiment_counters_jobs_invariant () =
  let tel jobs =
    let t = Instrument.create () in
    let m = run_measurement ~jobs (Some t) in
    (m, Metrics.dump (Instrument.metrics t))
  in
  let m1, d1 = tel 1 in
  let m2, d2 = tel 2 in
  let m4, d4 = tel 4 in
  let baseline = run_measurement ~jobs:2 None in
  Alcotest.(check (array (float 0.0))) "samples unaffected by telemetry"
    baseline.Experiment.samples m1.Experiment.samples;
  Alcotest.(check (array (float 0.0))) "samples jobs=2" baseline.Experiment.samples
    m2.Experiment.samples;
  Alcotest.(check (array (float 0.0))) "samples jobs=4" baseline.Experiment.samples
    m4.Experiment.samples;
  Alcotest.(check bool) "counters jobs 1 = 2" true (d1 = d2);
  Alcotest.(check bool) "counters jobs 1 = 4" true (d1 = d4);
  (match List.assoc "engine.runs" d1 with
  | Metrics.Counter_v v -> Alcotest.(check int) "one run per replication" 6 v
  | _ -> Alcotest.fail "engine.runs shape");
  match List.assoc "engine.transmissions" d1 with
  | Metrics.Counter_v v ->
      Alcotest.(check bool) "transmissions counted" true (v > 0)
  | _ -> Alcotest.fail "engine.transmissions shape"

let test_experiment_spans_recorded () =
  let t = Instrument.create () in
  ignore (run_measurement ~jobs:2 (Some t));
  let names =
    List.sort_uniq String.compare
      (List.map (fun (e : Span.event) -> e.Span.name) (Span.events (Instrument.spans t)))
  in
  Alcotest.(check (list string)) "replicate and build spans"
    [ "replicate"; "schedule/build" ] names

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter roundtrip" `Quick test_counter_roundtrip;
          Alcotest.test_case "disabled is noop" `Quick test_disabled_is_noop;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
          Alcotest.test_case "histogram roundtrip" `Quick test_histogram_roundtrip;
          Alcotest.test_case "histogram quantile guards" `Quick
            test_histogram_quantile_guards;
          Alcotest.test_case "absorb sums" `Quick test_absorb_sums;
          Alcotest.test_case "shard of disabled" `Quick
            test_shard_of_disabled_is_disabled;
        ] );
      ( "span",
        [
          Alcotest.test_case "recording" `Quick test_span_recording;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
          Alcotest.test_case "ring overflow" `Quick test_span_ring_overflow;
          Alcotest.test_case "absorb" `Quick test_span_absorb;
          Alcotest.test_case "null passthrough" `Quick test_null_span_passthrough;
        ] );
      ( "trace",
        [ Alcotest.test_case "json shape" `Quick test_trace_json_shape ] );
      ( "sharding",
        [
          Alcotest.test_case "pool determinism jobs 1/2/4" `Quick
            test_pool_sharded_determinism;
          Alcotest.test_case "empty and errors" `Quick
            test_pool_sharded_empty_and_errors;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "counters invariant under jobs" `Quick
            test_experiment_counters_jobs_invariant;
          Alcotest.test_case "spans recorded" `Quick test_experiment_spans_recorded;
        ] );
    ]
