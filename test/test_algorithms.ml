(* Behavioural tests for every algorithm of the paper. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Static_graph = Doda_graph.Static_graph
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Knowledge = Doda_core.Knowledge
module Algorithms = Doda_core.Algorithms
module Waiting_greedy = Doda_core.Waiting_greedy
module Theory = Doda_core.Theory
module Prng = Doda_prng.Prng

let seq pairs = Sequence.of_pairs pairs
let sched ?(sink = 0) ~n pairs = Schedule.of_sequence ~n ~sink (seq pairs)

let uniform_sched seed ~n =
  let rng = Prng.create seed in
  Schedule.of_fun ~n ~sink:0 (Generators.uniform rng ~n)

(* ------------------------------------------------------------------ *)
(* Waiting                                                             *)

let test_waiting_transmits_only_to_sink () =
  let s = uniform_sched 1 ~n:10 in
  let r = Engine.run ~max_steps:1_000_000 Algorithms.waiting s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  List.iter
    (fun tr -> Alcotest.(check int) "receiver is sink" 0 tr.Engine.receiver)
    (Engine.transmissions r)

let test_waiting_terminates_on_round_robin () =
  let s = Schedule.of_fun ~n:6 ~sink:0 (Generators.round_robin ~n:6) in
  let r = Engine.run ~max_steps:10_000 Algorithms.waiting s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated)

(* ------------------------------------------------------------------ *)
(* Gathering                                                           *)

let test_gathering_always_transmits () =
  let s = uniform_sched 2 ~n:10 in
  let r = Engine.run ~max_steps:1_000_000 Algorithms.gathering s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  (* Exactly n - 1 transmissions, by the model. *)
  Alcotest.(check int) "n-1 transmissions" 9 (List.length (Engine.transmissions r))

let test_gathering_prefers_sink () =
  let s = sched ~n:3 [ (0, 2) ] in
  let r = Engine.run Algorithms.gathering s in
  match (Engine.transmissions r) with
  | [ { Engine.sender = 2; receiver = 0; time = 0 } ] -> ()
  | _ -> Alcotest.fail "expected 2 -> 0"

let test_gathering_smaller_id_receives () =
  let s = sched ~n:4 [ (2, 3) ] in
  let r = Engine.run Algorithms.gathering s in
  match (Engine.transmissions r) with
  | [ { Engine.sender = 3; receiver = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected 3 -> 2"

let test_gathering_faster_than_waiting () =
  (* The point of Theorem 9: Gathering O(n^2) vs Waiting O(n^2 log n). *)
  let n = 24 in
  let total_g = ref 0 and total_w = ref 0 in
  for seed = 1 to 10 do
    let run algo seed =
      let r = Engine.run ~max_steps:2_000_000 algo (uniform_sched seed ~n) in
      match r.Engine.duration with
      | Some d -> d
      | None -> Alcotest.fail "run did not terminate"
    in
    total_g := !total_g + run Algorithms.gathering seed;
    total_w := !total_w + run Algorithms.waiting (seed + 1000)
  done;
  Alcotest.(check bool) "gathering beats waiting on average" true
    (!total_g < !total_w)

(* ------------------------------------------------------------------ *)
(* Waiting Greedy                                                      *)

let test_waiting_greedy_sink_receives_when_far () =
  (* n=3, tau=10. Node 2 meets the sink at t=0 and never again within
     tau; it must transmit there. *)
  let s = sched ~n:3 [ (0, 2); (1, 2); (0, 1) ] in
  let algo = Algorithms.waiting_greedy ~tau:10 in
  let r = Engine.run algo s in
  (match (Engine.transmissions r) with
  | { Engine.sender = 2; receiver = 0; time = 0 } :: _ -> ()
  | _ -> Alcotest.fail "node 2 should deliver at t=0");
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated)

let test_waiting_greedy_waits_when_meeting_soon () =
  (* Node 2 meets the sink at t=0 AND at t=2 (within tau): at t=0 no
     transmission (both meet times <= tau). At t=1 node 1 (meet time
     beyond tau) transmits to node 2. At t=2, 2 delivers everything. *)
  let s = sched ~n:3 [ (0, 2); (1, 2); (0, 2) ] in
  let algo = Algorithms.waiting_greedy ~tau:10 in
  let r = Engine.run algo s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  match (Engine.transmissions r) with
  | [ t1; t2 ] ->
      Alcotest.(check int) "1 sends at t=1" 1 t1.Engine.time;
      Alcotest.(check int) "sender 1" 1 t1.Engine.sender;
      Alcotest.(check int) "receiver 2" 2 t1.Engine.receiver;
      Alcotest.(check int) "2 delivers at t=2" 2 t2.Engine.time;
      Alcotest.(check int) "receiver sink" 0 t2.Engine.receiver
  | _ -> Alcotest.fail "expected exactly two transmissions"

let test_waiting_greedy_acts_as_gathering_after_tau () =
  (* After time tau every meet time exceeds tau, so WG always orders a
     transmission, like Gathering. *)
  let s = sched ~n:4 [ (1, 2); (1, 3); (2, 3); (1, 2); (0, 1); (0, 2); (0, 3) ] in
  let algo = Algorithms.waiting_greedy ~tau:0 in
  let r = Engine.run algo s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  Alcotest.(check int) "n-1 transmissions" 3 (List.length (Engine.transmissions r))

let test_waiting_greedy_terminates_whp_by_tau () =
  let n = 64 in
  let tau = Theory.recommended_tau n in
  let successes = ref 0 in
  let trials = 10 in
  for seed = 1 to trials do
    let algo = Algorithms.waiting_greedy ~tau in
    let r = Engine.run ~max_steps:(4 * tau) algo (uniform_sched (seed * 7) ~n) in
    match r.Engine.duration with
    | Some d when d <= tau -> incr successes
    | _ -> ()
  done;
  (* w.h.p. bound: allow one straggler out of ten runs. *)
  Alcotest.(check bool)
    (Printf.sprintf "terminated by tau in %d/%d runs" !successes trials)
    true
    (!successes >= trials - 1)

let test_waiting_greedy_exact_and_capped_terminate () =
  (* Exact mode uses true meet times; capped mode approximates only the
     both-beyond-tau case. Both must terminate. *)
  let n = 16 in
  let rng = Prng.create 17 in
  let s = Generators.uniform_sequence rng ~n ~length:20_000 in
  let tau = Theory.recommended_tau n in
  let run exact =
    let algo = Waiting_greedy.make ~exact ~tau () in
    Engine.run algo (Schedule.of_sequence ~n ~sink:0 s)
  in
  let r1 = run false and r2 = run true in
  Alcotest.(check bool) "capped terminates" true (r1.stop = Engine.All_aggregated);
  Alcotest.(check bool) "exact terminates" true (r2.stop = Engine.All_aggregated)

let test_waiting_greedy_doubling_terminates () =
  let n = 32 in
  for seed = 1 to 5 do
    let algo = Waiting_greedy.doubling () in
    let r = Engine.run ~max_steps:(400 * n * n) algo (uniform_sched (seed * 3) ~n) in
    Alcotest.(check bool)
      (Printf.sprintf "terminated (seed %d)" seed)
      true
      (r.Engine.stop = Engine.All_aggregated)
  done

let test_waiting_greedy_doubling_competitive () =
  (* Without knowing n, the doubling scheme should stay within a small
     constant factor of the tuned tau (here we allow 8x) and beat
     Waiting. *)
  let n = 48 in
  let tau = Theory.recommended_tau n in
  let mean_of algo =
    let total = ref 0 in
    for seed = 1 to 8 do
      match
        (Engine.run ~max_steps:(400 * n * n) algo (uniform_sched (seed * 11) ~n))
          .Engine.duration
      with
      | Some d -> total := !total + d
      | None -> Alcotest.fail "no termination"
    done;
    !total
  in
  let tuned = mean_of (Algorithms.waiting_greedy ~tau) in
  let doubling = mean_of (Waiting_greedy.doubling ()) in
  let waiting = mean_of Algorithms.waiting in
  Alcotest.(check bool) "within 8x of tuned" true (doubling < 8 * tuned);
  Alcotest.(check bool) "beats waiting" true (doubling < waiting)

let test_waiting_greedy_doubling_validation () =
  Alcotest.check_raises "bad tau0"
    (Invalid_argument "Waiting_greedy.doubling: tau0 must be positive") (fun () ->
      ignore (Waiting_greedy.doubling ~tau0:0 ()))

let test_waiting_greedy_rejects_negative_tau () =
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Waiting_greedy.make: negative tau") (fun () ->
      ignore (Waiting_greedy.make ~tau:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Tree aggregation                                                    *)

let test_tree_aggregation_on_path () =
  (* Path 0-1-2-3; recurrent interactions; children must be heard
     before a node fires. *)
  let g = Static_graph.path 4 in
  let pattern = seq [ (0, 1); (1, 2); (2, 3); (0, 1); (1, 2); (0, 1) ] in
  let s = Schedule.of_sequence ~n:4 ~sink:0 (Sequence.repeat pattern 3) in
  let k = Knowledge.with_underlying g Knowledge.empty in
  let r = Engine.run ~knowledge:k Algorithms.tree_aggregation s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  let fire v =
    match List.find_opt (fun t -> t.Engine.sender = v) (Engine.transmissions r) with
    | Some t -> t.Engine.time
    | None -> Alcotest.fail "missing transmission"
  in
  Alcotest.(check bool) "3 before 2" true (fire 3 < fire 2);
  Alcotest.(check bool) "2 before 1" true (fire 2 < fire 1)

let test_tree_aggregation_only_tree_edges () =
  let rng = Prng.create 23 in
  let n = 12 in
  let s = Generators.uniform_sequence rng ~n ~length:50_000 in
  let sch = Schedule.of_sequence ~n ~sink:0 s in
  let r = Engine.run Algorithms.tree_aggregation sch in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  let g = Doda_dynamic.Underlying.of_sequence ~n s in
  let tree = Doda_graph.Spanning_tree.bfs_tree g ~root:0 in
  List.iter
    (fun tr ->
      Alcotest.(check int) "to parent"
        (Doda_graph.Spanning_tree.parent tree tr.Engine.sender)
        tr.Engine.receiver)
    (Engine.transmissions r)

let test_tree_aggregation_optimal_on_tree () =
  (* Theorem 5: when the underlying graph is a tree, the algorithm is
     optimal — it terminates exactly at opt(0). *)
  let g = Static_graph.of_edges 5 [ (0, 1); (1, 2); (1, 3); (3, 4) ] in
  let rng = Prng.create 29 in
  let gen = Generators.over_graph rng g in
  let s = Sequence.of_array (Array.init 500 gen) in
  let sch = Schedule.of_sequence ~n:5 ~sink:0 s in
  let k = Knowledge.with_underlying g Knowledge.empty in
  let r = Engine.run ~knowledge:k Algorithms.tree_aggregation sch in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  Alcotest.(check (option int)) "optimal" (Convergecast.opt ~n:5 ~sink:0 s 0)
    r.duration

let test_tree_aggregation_rejects_disconnected () =
  let g = Static_graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let s = sched ~n:4 [ (0, 1) ] in
  let k = Knowledge.with_underlying g Knowledge.empty in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Spanning_tree.bfs_tree: disconnected graph") (fun () ->
      ignore (Engine.run ~knowledge:k Algorithms.tree_aggregation s))

(* ------------------------------------------------------------------ *)
(* Full knowledge                                                      *)

let test_full_knowledge_on_lazy_schedule () =
  let s = uniform_sched 31 ~n:12 in
  let r = Engine.run ~max_steps:1_000_000 Algorithms.full_knowledge s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  let prefix = Schedule.prefix s (Schedule.materialized s) in
  Alcotest.(check (option int)) "optimal" (Convergecast.opt ~n:12 ~sink:0 prefix 0)
    r.duration

let test_full_knowledge_never_transmits_when_infeasible () =
  let s = sched ~n:3 [ (1, 2); (1, 2); (1, 2) ] in
  let r = Engine.run Algorithms.full_knowledge s in
  Alcotest.(check bool) "no termination" true (r.stop = Engine.Schedule_exhausted);
  Alcotest.(check int) "no transmissions" 0 (List.length (Engine.transmissions r))

(* ------------------------------------------------------------------ *)
(* Future gossip                                                       *)

let test_future_gossip_terminates () =
  let n = 8 in
  let rng = Prng.create 37 in
  let s = Generators.uniform_sequence rng ~n ~length:10_000 in
  let sch = Schedule.of_sequence ~n ~sink:0 s in
  let r = Engine.run Algorithms.future_gossip sch in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated)

let test_future_gossip_cost_at_most_n () =
  (* Theorem 6: cost <= n. *)
  let n = 6 in
  for seed = 1 to 8 do
    let rng = Prng.create (seed * 13) in
    let s = Generators.uniform_sequence rng ~n ~length:10_000 in
    let sch = Schedule.of_sequence ~n ~sink:0 s in
    let r = Engine.run Algorithms.future_gossip sch in
    match Doda_core.Cost.of_result ~n ~sink:0 s r with
    | Doda_core.Cost.Finite c ->
        Alcotest.(check bool)
          (Printf.sprintf "cost %d <= n (seed %d)" c seed)
          true (c <= n)
    | Doda_core.Cost.At_least _ -> Alcotest.fail "did not terminate"
  done

let test_future_gossip_no_transmission_before_knowledge () =
  let n = 5 in
  let rng = Prng.create 41 in
  let s = Generators.uniform_sequence rng ~n ~length:5_000 in
  let sch = Schedule.of_sequence ~n ~sink:0 s in
  let r = Engine.run Algorithms.future_gossip sch in
  (* Gossip needs at least one interaction per node before anyone can
     know everything; the first transmission cannot be at time 0 for
     n >= 3. *)
  match (Engine.transmissions r) with
  | { Engine.time; _ } :: _ -> Alcotest.(check bool) "t > 0" true (time > 0)
  | [] -> Alcotest.fail "expected transmissions"

(* ------------------------------------------------------------------ *)
(* Gathering tie-break variants                                        *)

module Gathering_variants = Doda_core.Gathering_variants

let test_variants_all_terminate () =
  let n = 12 in
  List.iter
    (fun algo ->
      let rng = Prng.create 61 in
      let s = Generators.uniform_sequence rng ~n ~length:100_000 in
      let sch = Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run algo sch in
      Alcotest.(check bool)
        (algo.Doda_core.Algorithm.name ^ " terminates")
        true
        (r.Engine.stop = Engine.All_aggregated);
      Alcotest.(check int)
        (algo.Doda_core.Algorithm.name ^ " n-1 transmissions")
        (n - 1)
        (List.length (Engine.transmissions r)))
    Gathering_variants.all

let test_variant_larger_id_receives () =
  let s = sched ~n:4 [ (2, 3) ] in
  let algo = Gathering_variants.make Gathering_variants.Larger_id in
  let r = Engine.run algo s in
  match (Engine.transmissions r) with
  | [ { Engine.sender = 2; receiver = 3; _ } ] -> ()
  | _ -> Alcotest.fail "expected 2 -> 3"

let test_variant_more_data_receives () =
  (* After 3 -> 2, node 2 carries two data; meeting node 1 (one datum),
     node 1 must send to node 2. *)
  let s = sched ~n:4 [ (2, 3); (1, 2); (0, 2); (0, 1) ] in
  let algo = Gathering_variants.make Gathering_variants.More_data in
  let r = Engine.run algo s in
  match (Engine.transmissions r) with
  | { Engine.sender = 3; receiver = 2; _ }
    :: { Engine.sender = 1; receiver = 2; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected 3 -> 2 then 1 -> 2"

let test_variant_smaller_id_matches_gathering () =
  let n = 10 in
  let rng = Prng.create 67 in
  let s = Generators.uniform_sequence rng ~n ~length:50_000 in
  let run algo = Engine.run algo (Schedule.of_sequence ~n ~sink:0 s) in
  let r1 = run Algorithms.gathering in
  let r2 = run (Gathering_variants.make Gathering_variants.Smaller_id) in
  Alcotest.(check (option int)) "same duration" r1.Engine.duration r2.Engine.duration

(* ------------------------------------------------------------------ *)
(* Kruskal tree aggregation                                            *)

let test_tree_kruskal_terminates_and_uses_its_tree () =
  let rng = Prng.create 71 in
  let n = 14 in
  let g = Doda_graph.Graph_gen.random_connected rng ~n ~extra_edges:10 in
  let s = Sequence.of_array (Array.init 100_000 (Generators.over_graph rng g)) in
  let sch = Schedule.of_sequence ~n ~sink:0 s in
  let k = Knowledge.with_underlying g Knowledge.empty in
  let algo = Doda_core.Tree_aggregation.make ~tree:Doda_core.Tree_aggregation.Kruskal () in
  let r = Engine.run ~knowledge:k algo sch in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  let tree = Doda_graph.Spanning_tree.kruskal_tree g ~root:0 in
  List.iter
    (fun tr ->
      Alcotest.(check int) "to kruskal parent"
        (Doda_graph.Spanning_tree.parent tree tr.Engine.sender)
        tr.Engine.receiver)
    (Engine.transmissions r)

(* ------------------------------------------------------------------ *)
(* meetTime policy zoo                                                 *)

module Meet_time_policies = Doda_core.Meet_time_policies

let test_policies_terminate () =
  let n = 24 in
  List.iter
    (fun algo ->
      let rng = Prng.create 101 in
      let s = Generators.uniform_sequence rng ~n ~length:500_000 in
      let r = Engine.run algo (Schedule.of_sequence ~n ~sink:0 s) in
      Alcotest.(check bool)
        (algo.Doda_core.Algorithm.name ^ " terminates")
        true
        (r.Engine.stop = Engine.All_aggregated))
    [
      Meet_time_policies.pure_greedy ~horizon:100_000;
      Meet_time_policies.sliding_window ~theta:200;
      Meet_time_policies.sliding_window ~theta:0;
    ]

let test_pure_greedy_fires_on_every_live_pair () =
  (* pure-greedy behaves like Gathering in transmission count. *)
  let n = 10 in
  let rng = Prng.create 103 in
  let s = Generators.uniform_sequence rng ~n ~length:100_000 in
  let algo = Meet_time_policies.pure_greedy ~horizon:100_000 in
  let r = Engine.run algo (Schedule.of_sequence ~n ~sink:0 s) in
  Alcotest.(check int) "n-1 transmissions" (n - 1) (List.length (Engine.transmissions r))

let test_sliding_window_waits_for_near_meetings () =
  (* Node 2 meets the sink at t = 2, within theta of t = 0: at the
     interaction {1,2} at t=0 node 2 must keep its data (it is the
     later-meeting node... check: m1 beyond, m2 = 2: sender is node 1
     whose meet is beyond theta => node 1 transmits to 2). *)
  let s = sched ~n:3 [ (1, 2); (0, 2) ] in
  let algo = Meet_time_policies.sliding_window ~theta:5 in
  let r = Engine.run algo s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  match (Engine.transmissions r) with
  | [ t1; _ ] ->
      Alcotest.(check int) "node 1 sends first" 1 t1.Engine.sender;
      Alcotest.(check int) "to node 2" 2 t1.Engine.receiver
  | _ -> Alcotest.fail "expected two transmissions"

let test_policy_validation () =
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Meet_time_policies.pure_greedy: horizon < 1") (fun () ->
      ignore (Meet_time_policies.pure_greedy ~horizon:0));
  Alcotest.check_raises "bad theta"
    (Invalid_argument "Meet_time_policies.sliding_window: negative theta") (fun () ->
      ignore (Meet_time_policies.sliding_window ~theta:(-1)))

(* ------------------------------------------------------------------ *)
(* Coin (randomized oblivious) algorithms                              *)

module Coin_algorithms = Doda_core.Coin_algorithms

let test_coin_waiting_terminates () =
  let master = Prng.create 81 in
  let algo = Coin_algorithms.coin_waiting master ~p:0.5 in
  let r = Engine.run ~max_steps:2_000_000 algo (uniform_sched 82 ~n:10) in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  List.iter
    (fun tr -> Alcotest.(check int) "receiver is sink" 0 tr.Engine.receiver)
    (Engine.transmissions r)

let test_coin_waiting_slower_than_waiting () =
  (* Skipping half the sink meetings roughly doubles the run. *)
  let n = 16 in
  let total_coin = ref 0 and total_plain = ref 0 in
  let master = Prng.create 83 in
  for seed = 1 to 8 do
    let run algo s =
      match (Engine.run ~max_steps:4_000_000 algo (uniform_sched s ~n)).duration with
      | Some d -> d
      | None -> Alcotest.fail "no termination"
    in
    total_coin := !total_coin + run (Coin_algorithms.coin_waiting master ~p:0.25) seed;
    total_plain := !total_plain + run Algorithms.waiting (seed + 500)
  done;
  Alcotest.(check bool) "coin slower" true (!total_coin > !total_plain)

let test_coin_instances_independent () =
  (* Two instances of the same coin algorithm on the same schedule make
     different choices (with overwhelming probability). *)
  let master = Prng.create 85 in
  let algo = Coin_algorithms.coin_waiting master ~p:0.5 in
  let rng = Prng.create 86 in
  let s = Generators.uniform_sequence rng ~n:8 ~length:50_000 in
  let run () = Engine.run algo (Schedule.of_sequence ~n:8 ~sink:0 s) in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "different runs" true (r1.duration <> r2.duration)

let test_coin_validation () =
  let master = Prng.create 87 in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Coin_algorithms: p must lie in (0, 1]") (fun () ->
      ignore (Coin_algorithms.coin_waiting master ~p:1.5))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_find () =
  let check name expected =
    match Algorithms.find ~n:10 name with
    | Some a -> Alcotest.(check string) name expected a.Doda_core.Algorithm.name
    | None -> Alcotest.fail ("not found: " ^ name)
  in
  check "waiting" "waiting";
  check "gathering" "gathering";
  check "tree" "tree-aggregation";
  check "full-knowledge" "full-knowledge";
  check "future-gossip" "future-gossip";
  check "waiting-greedy:50" "waiting-greedy(tau=50)";
  check "gathering-larger-id" "gathering-larger-id";
  check "gathering-more-data" "gathering-more-data";
  check "gathering-hash" "gathering-hash";
  check "tree-kruskal" "tree-aggregation(kruskal)";
  Alcotest.(check bool) "unknown" true (Algorithms.find ~n:10 "nope" = None);
  Alcotest.(check bool) "bad tau" true (Algorithms.find ~n:10 "waiting-greedy:x" = None)

let test_registry_all_terminate_uniform () =
  let n = 10 in
  List.iter
    (fun algo ->
      let rng = Prng.create 53 in
      let s = Generators.uniform_sequence rng ~n ~length:100_000 in
      let sch = Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run algo sch in
      Alcotest.(check bool)
        (algo.Doda_core.Algorithm.name ^ " terminates")
        true
        (r.Engine.stop = Engine.All_aggregated))
    (Algorithms.all_for ~n)

let () =
  Alcotest.run "algorithms"
    [
      ( "waiting",
        [
          Alcotest.test_case "transmits only to sink" `Quick
            test_waiting_transmits_only_to_sink;
          Alcotest.test_case "terminates on round robin" `Quick
            test_waiting_terminates_on_round_robin;
        ] );
      ( "gathering",
        [
          Alcotest.test_case "always transmits" `Quick test_gathering_always_transmits;
          Alcotest.test_case "prefers sink" `Quick test_gathering_prefers_sink;
          Alcotest.test_case "smaller id receives" `Quick
            test_gathering_smaller_id_receives;
          Alcotest.test_case "faster than waiting" `Slow
            test_gathering_faster_than_waiting;
        ] );
      ( "waiting-greedy",
        [
          Alcotest.test_case "delivers when meeting far" `Quick
            test_waiting_greedy_sink_receives_when_far;
          Alcotest.test_case "waits when meeting soon" `Quick
            test_waiting_greedy_waits_when_meeting_soon;
          Alcotest.test_case "acts as gathering after tau" `Quick
            test_waiting_greedy_acts_as_gathering_after_tau;
          Alcotest.test_case "terminates by tau whp" `Slow
            test_waiting_greedy_terminates_whp_by_tau;
          Alcotest.test_case "exact and capped terminate" `Slow
            test_waiting_greedy_exact_and_capped_terminate;
          Alcotest.test_case "rejects negative tau" `Quick
            test_waiting_greedy_rejects_negative_tau;
          Alcotest.test_case "doubling terminates" `Quick
            test_waiting_greedy_doubling_terminates;
          Alcotest.test_case "doubling competitive" `Slow
            test_waiting_greedy_doubling_competitive;
          Alcotest.test_case "doubling validation" `Quick
            test_waiting_greedy_doubling_validation;
        ] );
      ( "tree-aggregation",
        [
          Alcotest.test_case "on path" `Quick test_tree_aggregation_on_path;
          Alcotest.test_case "only tree edges" `Quick
            test_tree_aggregation_only_tree_edges;
          Alcotest.test_case "optimal on tree" `Quick
            test_tree_aggregation_optimal_on_tree;
          Alcotest.test_case "rejects disconnected" `Quick
            test_tree_aggregation_rejects_disconnected;
        ] );
      ( "full-knowledge",
        [
          Alcotest.test_case "on lazy schedule" `Quick
            test_full_knowledge_on_lazy_schedule;
          Alcotest.test_case "never transmits when infeasible" `Quick
            test_full_knowledge_never_transmits_when_infeasible;
        ] );
      ( "future-gossip",
        [
          Alcotest.test_case "terminates" `Quick test_future_gossip_terminates;
          Alcotest.test_case "cost at most n" `Slow test_future_gossip_cost_at_most_n;
          Alcotest.test_case "no early transmission" `Quick
            test_future_gossip_no_transmission_before_knowledge;
        ] );
      ( "gathering-variants",
        [
          Alcotest.test_case "all terminate" `Quick test_variants_all_terminate;
          Alcotest.test_case "larger id receives" `Quick
            test_variant_larger_id_receives;
          Alcotest.test_case "more data receives" `Quick
            test_variant_more_data_receives;
          Alcotest.test_case "smaller-id matches gathering" `Quick
            test_variant_smaller_id_matches_gathering;
        ] );
      ( "tree-kruskal",
        [
          Alcotest.test_case "terminates on its tree" `Quick
            test_tree_kruskal_terminates_and_uses_its_tree;
        ] );
      ( "meet-time-policies",
        [
          Alcotest.test_case "terminate" `Slow test_policies_terminate;
          Alcotest.test_case "pure greedy fires always" `Quick
            test_pure_greedy_fires_on_every_live_pair;
          Alcotest.test_case "sliding window waits" `Quick
            test_sliding_window_waits_for_near_meetings;
          Alcotest.test_case "validation" `Quick test_policy_validation;
        ] );
      ( "coin-algorithms",
        [
          Alcotest.test_case "coin waiting terminates" `Quick
            test_coin_waiting_terminates;
          Alcotest.test_case "coin slower than plain" `Slow
            test_coin_waiting_slower_than_waiting;
          Alcotest.test_case "instances independent" `Quick
            test_coin_instances_independent;
          Alcotest.test_case "validation" `Quick test_coin_validation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find by name" `Quick test_registry_find;
          Alcotest.test_case "all terminate on uniform" `Slow
            test_registry_all_terminate_uniform;
        ] );
    ]
