(* Property-based tests (qcheck) on the core invariants of the model:
   engine conservation laws, the convergecast duality, flooding
   monotonicity, cost-function properties, spanning-tree structure. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Underlying = Doda_dynamic.Underlying
module Temporal = Doda_dynamic.Temporal
module Static_graph = Doda_graph.Static_graph
module Spanning_tree = Doda_graph.Spanning_tree
module Graph_gen = Doda_graph.Graph_gen
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Brute_force = Doda_core.Brute_force
module Cost = Doda_core.Cost
module Algorithms = Doda_core.Algorithms
module Prng = Doda_prng.Prng

(* A generated problem instance: node count and a random finite
   sequence of interactions described by a seed. *)
let instance_gen =
  QCheck.Gen.(
    map3
      (fun n len seed -> (n, len, seed))
      (int_range 3 9) (int_range 1 60) (int_range 0 1_000_000))

let instance_arb =
  QCheck.make
    ~print:(fun (n, len, seed) -> Printf.sprintf "(n=%d, len=%d, seed=%d)" n len seed)
    instance_gen

let sequence_of (n, len, seed) =
  Generators.uniform_sequence (Prng.create seed) ~n ~length:len

let count = 300

(* ------------------------------------------------------------------ *)

let prop_interaction_symmetric =
  QCheck.Test.make ~count ~name:"interaction: make is symmetric"
    QCheck.(pair (int_range 0 50) (int_range 0 50))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Interaction.equal (Interaction.make a b) (Interaction.make b a))

let prop_pair_ordered_distinct =
  QCheck.Test.make ~count ~name:"prng: pair is ordered and in range"
    QCheck.(pair (int_range 2 100) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let a, b = Prng.pair rng n in
      a >= 0 && a < b && b < n)

let prop_sequence_rev_involutive =
  QCheck.Test.make ~count ~name:"sequence: rev is involutive" instance_arb
    (fun inst ->
      let s = sequence_of inst in
      Sequence.equal s (Sequence.rev (Sequence.rev s)))

let prop_underlying_edges_exact =
  QCheck.Test.make ~count ~name:"underlying: edge set equals interaction pairs"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let g = Underlying.of_sequence ~n s in
      let in_seq = Hashtbl.create 16 in
      Sequence.iteri (fun _ i -> Hashtbl.replace in_seq (Interaction.to_pair i) ()) s;
      List.for_all (fun e -> Hashtbl.mem in_seq e) (Static_graph.edges g)
      && Hashtbl.length in_seq = Static_graph.edge_count g)

let prop_flooding_monotone_in_horizon =
  QCheck.Test.make ~count ~name:"temporal: reachable set grows with horizon"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let h1 = len / 2 and h2 = len in
      let r1 = Temporal.reachable_set ~n ~src:0 ~horizon:h1 s in
      let r2 = Temporal.reachable_set ~n ~src:0 ~horizon:h2 s in
      List.for_all (fun v -> List.mem v r2) r1)

let prop_opt_matches_brute_force =
  QCheck.Test.make ~count:150 ~name:"convergecast: opt equals exhaustive search"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let start = len / 3 in
      Convergecast.opt ~n ~sink:0 s start
      = Brute_force.optimal_duration ~n ~sink:0 s ~start)

let prop_opt_monotone_in_start =
  QCheck.Test.make ~count ~name:"convergecast: opt is monotone in start time"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let o0 = Convergecast.opt ~n ~sink:0 s 0 in
      let o1 = Convergecast.opt ~n ~sink:0 s (len / 2) in
      match (o0, o1) with
      | Some a, Some b -> a <= b
      | _, None -> true
      | None, Some _ -> false)

let prop_plan_valid =
  QCheck.Test.make ~count ~name:"convergecast: extracted plan is a valid schedule"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      match Convergecast.plan ~n ~sink:0 s ~start:0 with
      | None -> QCheck.assume_fail ()
      | Some plan ->
          let ok = ref true in
          let used = Hashtbl.create 16 in
          for v = 1 to n - 1 do
            let t = plan.fire_time.(v) in
            if t < 0 then ok := false
            else begin
              if Hashtbl.mem used t then ok := false;
              Hashtbl.replace used t ();
              let i = Sequence.get s t in
              if not (Interaction.involves i v) then ok := false;
              let target = plan.fire_to.(v) in
              if target <> Interaction.other i v then ok := false;
              if target <> 0 && plan.fire_time.(target) <= t then ok := false
            end
          done;
          !ok)

let prop_engine_conservation =
  QCheck.Test.make ~count ~name:"engine: transmissions = n - owners, senders unique"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      ignore len;
      let r = Engine.run Algorithms.gathering sched in
      let owners = Engine.count_owners r in
      let senders = List.map (fun t -> t.Engine.sender) (Engine.transmissions r) in
      List.length (Engine.transmissions r) = n - owners
      && List.length (List.sort_uniq compare senders) = List.length senders
      && (not (List.mem 0 senders))
      && r.holders.(0))

let prop_engine_termination_iff_sink_only =
  QCheck.Test.make ~count ~name:"engine: All_aggregated iff only the sink owns"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run Algorithms.gathering sched in
      (r.stop = Engine.All_aggregated) = (Engine.count_owners r = 1))

let prop_full_knowledge_cost_one =
  QCheck.Test.make ~count:150 ~name:"cost: full knowledge has cost 1 when feasible"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      QCheck.assume (Convergecast.opt ~n ~sink:0 s 0 <> None);
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run Algorithms.full_knowledge sched in
      Cost.equal (Cost.of_result ~n ~sink:0 s r) (Cost.Finite 1))

let prop_cost_never_below_one =
  QCheck.Test.make ~count ~name:"cost: any terminating run costs at least 1"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run Algorithms.gathering sched in
      match r.duration with
      | None -> QCheck.assume_fail ()
      | Some _ -> Cost.to_float (Cost.of_result ~n ~sink:0 s r) >= 1.0)

let prop_t_chain_matches_opt_iteration =
  QCheck.Test.make ~count ~name:"cost: t_chain is the iterated opt" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let chain = Convergecast.t_chain ~n ~sink:0 s in
      let rec verify start = function
        | [] -> Convergecast.opt ~n ~sink:0 s start = None
        | t :: rest ->
            Convergecast.opt ~n ~sink:0 s start = Some t && verify (t + 1) rest
      in
      verify 0 chain)

let prop_spanning_tree_structure =
  QCheck.Test.make ~count ~name:"spanning tree: parents point one level up"
    QCheck.(pair (int_range 2 40) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let g = Graph_gen.random_connected rng ~n ~extra_edges:(n / 2) in
      let t = Spanning_tree.bfs_tree g ~root:0 in
      let ok = ref true in
      for v = 1 to n - 1 do
        let p = Spanning_tree.parent t v in
        if not (Static_graph.has_edge g p v) then ok := false;
        if Spanning_tree.depth t v <> Spanning_tree.depth t p + 1 then ok := false
      done;
      !ok && Static_graph.is_tree (Spanning_tree.to_graph t))

let prop_broadcast_convergecast_duality =
  QCheck.Test.make ~count ~name:"duality: convergecast feasible iff reverse broadcast"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      (* Forward broadcast completion on the reversed sequence equals a
         feasible convergecast window on the original. *)
      let rev = Sequence.rev s in
      let forward = Temporal.broadcast_completion ~n ~src:0 rev in
      let feasible = Convergecast.opt ~n ~sink:0 s 0 <> None in
      (forward <> None)
      = (feasible
        &&
        (* Broadcast on the whole reversed sequence succeeding says a
           convergecast fits somewhere in the whole window. *)
        Convergecast.feasible ~n ~sink:0 s ~lo:0 ~hi:(len - 1)))

let prop_schedule_meet_time_sound =
  QCheck.Test.make ~count ~name:"schedule: meet times point at sink interactions"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      let ok = ref true in
      for node = 1 to n - 1 do
        match Schedule.next_meet_with_sink sched ~node ~after:(-1) ~limit:(len - 1) with
        | None -> ()
        | Some t ->
            let i = Sequence.get s t in
            if not (Interaction.involves i node && Interaction.involves i 0) then
              ok := false
      done;
      !ok)

let prop_stepper_equals_run =
  QCheck.Test.make ~count ~name:"engine: stepping equals running" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let r1 = Engine.run Algorithms.gathering (Schedule.of_sequence ~n ~sink:0 s) in
      let st = Engine.start Algorithms.gathering (Schedule.of_sequence ~n ~sink:0 s) in
      let rec drive () =
        match Engine.step st with
        | Engine.Finished reason -> Engine.finish st reason
        | Engine.Stepped _ -> drive ()
      in
      let r2 = drive () in
      r1.duration = r2.duration
      && (Engine.transmissions r1) = (Engine.transmissions r2)
      && r1.stop = r2.stop)

let prop_engine_runs_validate =
  QCheck.Test.make ~count ~name:"validate: every engine log passes" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let check algo =
        let r = Engine.run algo (Schedule.of_sequence ~n ~sink:0 s) in
        Doda_core.Validate.execution ~n ~sink:0 s r.log = []
        && (r.stop <> Engine.All_aggregated
           || Doda_core.Validate.complete ~n ~sink:0 s r.log)
      in
      List.for_all check
        (Algorithms.gathering :: Algorithms.waiting
        :: Doda_core.Gathering_variants.all))

let prop_plans_validate =
  QCheck.Test.make ~count ~name:"validate: every extracted plan passes" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      match Convergecast.plan ~n ~sink:0 s ~start:0 with
      | None -> QCheck.assume_fail ()
      | Some plan -> Doda_core.Validate.plan ~n ~sink:0 s plan = [])

let prop_exact_mean_finite_and_positive =
  QCheck.Test.make ~count ~name:"exact: phase means are positive and ordered"
    QCheck.(int_range 3 80)
    (fun n ->
      let module G = Doda_stats.Geometric_sum in
      let w = G.mean (Doda_core.Theory.waiting_phases n) in
      let g = G.mean (Doda_core.Theory.gathering_phases n) in
      let b = G.mean (Doda_core.Theory.broadcast_phases n) in
      (* broadcast <= gathering <= waiting, all positive *)
      b > 0.0 && b <= g && g <= w)

let prop_metrics_activity_conserved =
  QCheck.Test.make ~count ~name:"metrics: activity sums to twice the length"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let counts = Doda_dynamic.Metrics.activity ~n s in
      Array.fold_left ( + ) 0 counts = 2 * len)

let prop_evolving_roundtrip =
  QCheck.Test.make ~count ~name:"evolving graph: window=1 roundtrips" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let eg = Doda_dynamic.Evolving_graph.of_interactions ~n ~window:1 s in
      Sequence.equal s (Doda_dynamic.Evolving_graph.to_interactions eg))

let prop_cost_boundary_exact =
  QCheck.Test.make ~count ~name:"cost: duration exactly T(i) costs i" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let chain = Convergecast.t_chain ~n ~sink:0 s in
      List.for_all
        (fun (i, ending) ->
          Cost.cost ~n ~sink:0 s ~duration:(Some ending) = Cost.Finite i)
        (List.mapi (fun idx ending -> (idx + 1, ending)) chain))

let prop_waiting_equals_coin_p1 =
  QCheck.Test.make ~count ~name:"waiting equals coin-waiting(p=1)" instance_arb
    (fun ((n, _, seed) as inst) ->
      let s = sequence_of inst in
      let master = Prng.create seed in
      let run algo = Engine.run algo (Schedule.of_sequence ~n ~sink:0 s) in
      let r1 = run Algorithms.waiting in
      let r2 = run (Doda_core.Coin_algorithms.coin_waiting master ~p:1.0) in
      r1.duration = r2.duration && (Engine.transmissions r1) = (Engine.transmissions r2))

let prop_recurrent_subset_of_underlying =
  QCheck.Test.make ~count ~name:"recurrent edges are a subset of the underlying graph"
    instance_arb (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let g = Underlying.of_sequence ~n s in
      let r = Underlying.recurrent_edges ~n s ~period:(Stdlib.max 1 (len / 2)) in
      List.for_all
        (fun (u, v) -> Static_graph.has_edge g u v)
        (Static_graph.edges r))

let prop_sink_meeting_counts_agree =
  QCheck.Test.make ~count
    ~name:"schedule sink-meeting counts agree with metrics" instance_arb
    (fun ((n, len, _) as inst) ->
      let s = sequence_of inst in
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      let counts = Schedule.meets_with_sink_upto sched len in
      let times = Doda_dynamic.Metrics.sink_meeting_times s ~sink:0 in
      counts.(0) = List.length times)

let prop_post_order_is_permutation =
  QCheck.Test.make ~count ~name:"spanning tree: post order is a permutation"
    QCheck.(pair (int_range 2 40) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let g = Graph_gen.random_connected rng ~n ~extra_edges:(n / 3) in
      let t = Spanning_tree.bfs_tree g ~root:0 in
      let order = Spanning_tree.post_order t in
      List.sort compare order = List.init n (fun i -> i)
      && (match List.rev order with root :: _ -> root = 0 | [] -> false))

let prop_timeline_shape =
  QCheck.Test.make ~count ~name:"timeline: one row per node, fixed width"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let r = Engine.run Algorithms.gathering (Schedule.of_sequence ~n ~sink:0 s) in
      let width = 32 in
      let out = Doda_sim.Timeline.render ~width ~n ~sink:0 r in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
      in
      List.length lines = n + 1
      &&
      (* every node row has the bracketed fixed-width shape *)
      List.for_all
        (fun line -> String.length line >= width + 2)
        (List.tl lines))

let prop_gathering_hash_conserves =
  QCheck.Test.make ~count ~name:"variant runs obey conservation too" instance_arb
    (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      let algo = Doda_core.Gathering_variants.make Doda_core.Gathering_variants.Hash in
      let r = Engine.run algo (Schedule.of_sequence ~n ~sink:0 s) in
      List.length (Engine.transmissions r) = n - Engine.count_owners r)

let prop_flooding_equals_opt =
  (* Epidemic aggregation completes exactly when the offline one-shot
     optimum does: both are the time by which every node has a
     time-respecting journey to the sink. Two independent
     implementations of the same quantity. *)
  QCheck.Test.make ~count ~name:"flooding completion equals offline opt"
    instance_arb (fun ((n, _, _) as inst) ->
      let s = sequence_of inst in
      Doda_core.Flooding_aggregation.sink_completion ~n ~sink:0 s
      = Convergecast.opt ~n ~sink:0 s 0)

let prop_presence_roundtrip =
  QCheck.Test.make ~count ~name:"presence: snapshots match declared intervals"
    QCheck.(pair (int_range 2 10) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let p =
        Doda_dynamic.Presence.random rng ~n ~horizon:30 ~mean_up:3.0 ~mean_down:4.0
      in
      let ok = ref true in
      for time = 0 to Doda_dynamic.Presence.span p - 1 do
        let g = Doda_dynamic.Presence.snapshot p time in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if
              Static_graph.has_edge g u v
              <> Doda_dynamic.Presence.present p ~u ~v ~time
            then ok := false
          done
        done
      done;
      !ok)

let prop_theorem2_blocks_waiting =
  (* Any valid (n, d) with l0 = 1 blocks Waiting: u_0 delivers at the
     first interaction, and every other node's path to the sink in the
     gadget runs through a spent node or never reaches it. *)
  QCheck.Test.make ~count:100 ~name:"theorem 2 sequence blocks waiting for any valid d"
    QCheck.(pair (int_range 4 12) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let d = 1 + (seed mod (n - 2)) in
      let s =
        Doda_adversary.Counterexamples.theorem2_sequence ~n ~l0:1 ~d ~periods:40
      in
      let r = Engine.run Algorithms.waiting (Schedule.of_sequence ~n ~sink:0 s) in
      r.stop <> Engine.All_aggregated)

let prop_spiteful_blocks_gathering =
  QCheck.Test.make ~count:60 ~name:"spiteful blocks gathering at any n"
    QCheck.(int_range 3 20)
    (fun n ->
      let adv = Doda_adversary.Spiteful.adversary ~n ~sink:0 in
      let r, _ =
        Doda_adversary.Duel.run ~max_steps:(50 * n * n) ~n ~sink:0
          Algorithms.gathering adv
      in
      r.stop = Engine.Step_limit)

let prop_alias_in_range =
  QCheck.Test.make ~count ~name:"alias: samples stay in range"
    QCheck.(pair (int_range 1 20) (int_range 0 1_000_000))
    (fun (k, seed) ->
      let rng = Prng.create seed in
      let w = Array.init k (fun i -> float_of_int (i + 1)) in
      let d = Prng.Alias.create w in
      let ok = ref true in
      for _ = 1 to 100 do
        let i = Prng.Alias.sample rng d in
        if i < 0 || i >= k then ok := false
      done;
      !ok)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "model",
        List.map to_alcotest
          [
            prop_interaction_symmetric;
            prop_pair_ordered_distinct;
            prop_sequence_rev_involutive;
            prop_underlying_edges_exact;
            prop_schedule_meet_time_sound;
            prop_alias_in_range;
          ] );
      ( "temporal",
        List.map to_alcotest
          [ prop_flooding_monotone_in_horizon; prop_broadcast_convergecast_duality ] );
      ( "convergecast",
        List.map to_alcotest
          [
            prop_opt_matches_brute_force;
            prop_opt_monotone_in_start;
            prop_plan_valid;
            prop_t_chain_matches_opt_iteration;
          ] );
      ( "engine",
        List.map to_alcotest
          [
            prop_engine_conservation;
            prop_engine_termination_iff_sink_only;
            prop_stepper_equals_run;
            prop_engine_runs_validate;
            prop_plans_validate;
          ] );
      ( "exact",
        List.map to_alcotest
          [
            prop_exact_mean_finite_and_positive;
            prop_metrics_activity_conserved;
            prop_evolving_roundtrip;
          ] );
      ( "cost",
        List.map to_alcotest
          [
            prop_full_knowledge_cost_one;
            prop_cost_never_below_one;
            prop_cost_boundary_exact;
          ] );
      ( "graph",
        List.map to_alcotest
          [ prop_spanning_tree_structure; prop_post_order_is_permutation ] );
      ( "adversary",
        List.map to_alcotest
          [ prop_theorem2_blocks_waiting; prop_spiteful_blocks_gathering ] );
      ( "cross-module",
        List.map to_alcotest
          [
            prop_flooding_equals_opt;
            prop_presence_roundtrip;
            prop_waiting_equals_coin_p1;
            prop_recurrent_subset_of_underlying;
            prop_sink_meeting_counts_agree;
            prop_timeline_shape;
            prop_gathering_hash_conserves;
          ] );
    ]
