(* Tests for the adversary models and the impossibility-proof
   constructions (Theorems 1, 2, 3). *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Generators = Doda_dynamic.Generators
module Underlying = Doda_dynamic.Underlying
module Static_graph = Doda_graph.Static_graph
module Engine = Doda_core.Engine
module Cost = Doda_core.Cost
module Knowledge = Doda_core.Knowledge
module Algorithms = Doda_core.Algorithms
module Adversary = Doda_adversary.Adversary
module Randomized = Doda_adversary.Randomized
module Duel = Doda_adversary.Duel
module Counterexamples = Doda_adversary.Counterexamples
module Prng = Doda_prng.Prng

(* ------------------------------------------------------------------ *)
(* Basic adversary wrappers                                            *)

let test_of_sequence_replays_and_ends () =
  let s = Sequence.of_pairs [ (0, 1); (1, 2) ] in
  let adv = Adversary.of_sequence ~name:"replay" s in
  let r, played = Duel.run ~max_steps:100 ~n:3 ~sink:0 Algorithms.waiting adv in
  Alcotest.(check bool) "stopped at end" true (r.stop = Engine.Schedule_exhausted);
  Alcotest.(check bool) "played the sequence" true (Sequence.equal s played)

let test_limit () =
  let adv = Adversary.limit 5 (Adversary.of_generator ~name:"g" (fun _ -> Interaction.make 1 2)) in
  let r, played = Duel.run ~max_steps:100 ~n:3 ~sink:0 Algorithms.waiting adv in
  Alcotest.(check int) "five steps" 5 (Sequence.length played);
  Alcotest.(check bool) "exhausted" true (r.stop = Engine.Schedule_exhausted)

let test_duel_matches_engine_on_oblivious () =
  (* Running an algorithm through Duel on a committed sequence must be
     identical to running it through the engine. *)
  let rng = Prng.create 1 in
  let n = 8 in
  let s = Generators.uniform_sequence rng ~n ~length:5_000 in
  let adv = Adversary.of_sequence ~name:"replay" s in
  let r1, _ = Duel.run ~max_steps:5_000 ~n ~sink:0 Algorithms.gathering adv in
  let sched = Doda_dynamic.Schedule.of_sequence ~n ~sink:0 s in
  let r2 = Engine.run Algorithms.gathering sched in
  Alcotest.(check (option int)) "same duration" r2.duration r1.duration;
  Alcotest.(check int) "same transmissions" (List.length (Engine.transmissions r2))
    (List.length (Engine.transmissions r1))

let test_uniform_adversary_allows_termination () =
  let rng = Prng.create 2 in
  let adv = Randomized.uniform rng ~n:8 in
  let r, _ = Duel.run ~max_steps:100_000 ~n:8 ~sink:0 Algorithms.gathering adv in
  Alcotest.(check bool) "terminates" true (r.stop = Engine.All_aggregated)

let test_weighted_adversary_sink_bias_speeds_waiting () =
  (* Open question 3: a sink-biased adversary makes Waiting much
     faster, since sink meetings dominate. *)
  let run weight seed =
    let rng = Prng.create seed in
    let sched = Randomized.sink_biased_schedule rng ~n:16 ~sink:0 ~sink_weight:weight in
    let r = Engine.run ~max_steps:2_000_000 Algorithms.waiting sched in
    match r.Engine.duration with
    | Some d -> d
    | None -> Alcotest.fail "did not terminate"
  in
  let biased = run 20.0 3 and uniformish = run 1.0 3 in
  Alcotest.(check bool) "bias helps waiting" true (biased < uniformish)

(* ------------------------------------------------------------------ *)
(* Theorem 1: adaptive adversary defeats every algorithm on 3 nodes    *)

let horizon = 3_000

let check_never_terminates_with_convergecasts name algo adv ~n ~knowledge =
  let r, played = Duel.run ?knowledge ~max_steps:horizon ~n ~sink:0 algo adv in
  Alcotest.(check bool) (name ^ ": never terminates") true
    (r.Engine.stop = Engine.Step_limit);
  (* ... while successive optimal convergecasts keep completing: the
     executable form of cost = infinity. *)
  let possible = Cost.convergecasts_within ~n ~sink:0 played ~upto:(horizon - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: many convergecasts possible (%d)" name possible)
    true (possible > horizon / 50)

let test_theorem1_defeats_no_knowledge_algorithms () =
  List.iter
    (fun algo ->
      check_never_terminates_with_convergecasts
        ("thm1 vs " ^ algo.Doda_core.Algorithm.name)
        algo
        (Counterexamples.theorem1 ())
        ~n:Counterexamples.theorem1_nodes ~knowledge:None)
    Algorithms.no_knowledge

let test_theorem1_defeats_waiting_greedy_like_memory () =
  (* Even an algorithm with memory of past interactions cannot win;
     here, a "patient gathering" that transmits only after having seen
     k interactions. *)
  let patient k =
    {
      Doda_core.Algorithm.name = Printf.sprintf "patient-%d" k;
      oblivious = false;
      requires = [];
      batch = None;
      make =
        (fun ~n:_ ~sink knowledge ->
          ignore knowledge;
          let seen = ref 0 in
          {
            Doda_core.Algorithm.observe = (fun ~time:_ _ -> incr seen);
            decide =
              (fun ~time:_ i ->
                if !seen < k then None
                else if Interaction.involves i sink then Some sink
                else Some (Interaction.u i));
          });
    }
  in
  List.iter
    (fun k ->
      check_never_terminates_with_convergecasts
        (Printf.sprintf "thm1 vs patient-%d" k)
        (patient k)
        (Counterexamples.theorem1 ())
        ~n:Counterexamples.theorem1_nodes ~knowledge:None)
    [ 0; 3; 10 ]

(* ------------------------------------------------------------------ *)
(* Theorem 3: adaptive adversary on the 4-cycle, nodes know the graph  *)

let test_theorem3_defeats_algorithms_knowing_underlying () =
  let g = Counterexamples.theorem3_graph () in
  let knowledge = Some (Knowledge.with_underlying g Knowledge.empty) in
  List.iter
    (fun algo ->
      check_never_terminates_with_convergecasts
        ("thm3 vs " ^ algo.Doda_core.Algorithm.name)
        algo
        (Counterexamples.theorem3 ())
        ~n:Counterexamples.theorem3_nodes ~knowledge)
    [ Algorithms.waiting; Algorithms.gathering; Algorithms.tree_aggregation ]

let test_theorem3_underlying_graph_is_cycle () =
  (* The sequence actually played must have the promised underlying
     graph (that is the knowledge handed to the nodes). *)
  List.iter
    (fun algo ->
      let g = Counterexamples.theorem3_graph () in
      let knowledge = Some (Knowledge.with_underlying g Knowledge.empty) in
      let _, played =
        Duel.run ?knowledge ~max_steps:horizon ~n:4 ~sink:0 algo
          (Counterexamples.theorem3 ())
      in
      let actual = Underlying.of_sequence ~n:4 played in
      Alcotest.(check bool)
        (algo.Doda_core.Algorithm.name ^ ": underlying subset of C4")
        true
        (List.for_all
           (fun (u, v) -> Static_graph.has_edge g u v)
           (Static_graph.edges actual)))
    [ Algorithms.gathering; Algorithms.tree_aggregation ]

let test_theorem3_gathering_gets_trapped_quickly () =
  (* Gathering transmits greedily, so it falls into a trap loop within
     the first few interactions. *)
  let r, played =
    Duel.run ~max_steps:200 ~n:4 ~sink:0 Algorithms.gathering
      (Counterexamples.theorem3 ())
  in
  Alcotest.(check bool) "not terminated" true (r.Engine.stop = Engine.Step_limit);
  (* Someone other than the sink still holds data. *)
  let holders = Engine.count_owners r in
  Alcotest.(check bool) "stuck holder exists" true (holders >= 2);
  Alcotest.(check int) "played 200" 200 (Sequence.length played)

(* ------------------------------------------------------------------ *)
(* Theorem 2: oblivious construction against oblivious algorithms      *)

let test_theorem2_blocks_waiting_and_gathering () =
  let n = 8 in
  (* l0 = 1: both Waiting and Gathering transmit at the first
     interaction {u_0, s} with probability 1. Block d = 1. *)
  let s = Counterexamples.theorem2_sequence ~n ~l0:1 ~d:1 ~periods:60 in
  List.iter
    (fun algo ->
      let sched = Doda_dynamic.Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run algo sched in
      Alcotest.(check bool)
        (algo.Doda_core.Algorithm.name ^ " never terminates")
        true
        (r.Engine.stop = Engine.Schedule_exhausted);
      (* Node u_1 = id 2 must still hold data: its escape path runs
         through u_0 which has already transmitted. *)
      Alcotest.(check bool) "u_1 still holds" true r.Engine.holders.(2))
    [ Algorithms.waiting; Algorithms.gathering ]

let test_theorem2_convergecasts_remain_possible () =
  let n = 6 in
  let s = Counterexamples.theorem2_sequence ~n ~l0:1 ~d:1 ~periods:80 in
  let possible =
    Cost.convergecasts_within ~n ~sink:0 s ~upto:(Sequence.length s - 1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "convergecasts possible (%d)" possible)
    true (possible >= 10)

let test_theorem2_search_deterministic () =
  (* Waiting transmits at the very first sink meeting, so l0 = 1. *)
  let n = 8 in
  match Counterexamples.theorem2_search ~trials:5 ~n Algorithms.waiting with
  | None -> Alcotest.fail "expected parameters"
  | Some p ->
      Alcotest.(check int) "l0 = 1" 1 p.Counterexamples.l0;
      Alcotest.(check (float 1e-9)) "certain transmission" 1.0
        p.Counterexamples.transmit_rate;
      Alcotest.(check (float 1e-9)) "survivor certain" 1.0 p.Counterexamples.survival;
      (* The found parameters actually block the algorithm. *)
      let s =
        Counterexamples.theorem2_sequence ~n ~l0:p.Counterexamples.l0
          ~d:p.Counterexamples.d ~periods:50
      in
      let r =
        Engine.run Algorithms.waiting (Doda_dynamic.Schedule.of_sequence ~n ~sink:0 s)
      in
      Alcotest.(check bool) "blocked" true (r.Engine.stop = Engine.Schedule_exhausted)

let test_theorem2_search_randomized () =
  (* coin-waiting(p = 0.5): P_l = 0.5^l, threshold 1/8 => l0 = 3. *)
  let n = 8 in
  let master = Prng.create 91 in
  let algo = Doda_core.Coin_algorithms.coin_waiting master ~p:0.5 in
  match Counterexamples.theorem2_search ~trials:400 ~n algo with
  | None -> Alcotest.fail "expected parameters"
  | Some p ->
      Alcotest.(check bool)
        (Printf.sprintf "l0 = %d near 3" p.Counterexamples.l0)
        true
        (p.Counterexamples.l0 >= 2 && p.Counterexamples.l0 <= 5);
      Alcotest.(check bool) "survivor likely" true (p.Counterexamples.survival > 0.5);
      (* The blocking sequence defeats the randomized algorithm in a
         substantial fraction of runs. *)
      let s =
        Counterexamples.theorem2_sequence ~n ~l0:p.Counterexamples.l0
          ~d:p.Counterexamples.d ~periods:100
      in
      let blocked = ref 0 in
      let runs = 30 in
      for _ = 1 to runs do
        let r =
          Engine.run algo (Doda_dynamic.Schedule.of_sequence ~n ~sink:0 s)
        in
        if r.Engine.stop <> Engine.All_aggregated then incr blocked
      done;
      Alcotest.(check bool)
        (Printf.sprintf "blocked %d/%d runs" !blocked runs)
        true
        (!blocked > runs / 2)

let test_theorem2_search_passive_algorithm () =
  (* An algorithm that never transmits cannot be provoked: None. *)
  let never =
    {
      Doda_core.Algorithm.name = "never";
      oblivious = true;
      requires = [];
      batch = None;
      make =
        (fun ~n:_ ~sink:_ _ ->
          {
            Doda_core.Algorithm.observe = Doda_core.Algorithm.no_observation;
            decide = (fun ~time:_ _ -> None);
          });
    }
  in
  Alcotest.(check bool) "no parameters" true
    (Counterexamples.theorem2_search ~trials:3 ~max_l:20 ~n:6 never = None)

let test_theorem2_validation () =
  Alcotest.check_raises "bad d"
    (Invalid_argument "Counterexamples.theorem2_sequence: d out of [1, n-2]")
    (fun () ->
      ignore (Counterexamples.theorem2_sequence ~n:5 ~l0:1 ~d:4 ~periods:1))

(* ------------------------------------------------------------------ *)
(* Spiteful: the generalised trap at arbitrary n                       *)

module Spiteful = Doda_adversary.Spiteful

let test_spiteful_traps_at_various_n () =
  List.iter
    (fun n ->
      List.iter
        (fun algo ->
          check_never_terminates_with_convergecasts
            (Printf.sprintf "spiteful n=%d vs %s" n algo.Doda_core.Algorithm.name)
            algo
            (Spiteful.adversary ~n ~sink:0)
            ~n ~knowledge:None)
        Algorithms.no_knowledge)
    [ 4; 7; 12 ]

let test_spiteful_freezes_after_first_transmission () =
  (* Against Gathering, exactly one transmission ever happens. *)
  let n = 6 in
  let r, _ =
    Duel.run ~max_steps:5_000 ~n ~sink:0 Algorithms.gathering
      (Spiteful.adversary ~n ~sink:0)
  in
  Alcotest.(check int) "one transmission" 1 (List.length (Engine.transmissions r));
  Alcotest.(check int) "n-1 owners left" (n - 1) (Engine.count_owners r)

let test_spiteful_respects_sink_position () =
  let n = 5 in
  let adv = Spiteful.adversary ~n ~sink:0 in
  let r, played = Duel.run ~max_steps:1_000 ~n ~sink:0 Algorithms.waiting adv in
  Alcotest.(check bool) "no termination" true (r.Engine.stop = Engine.Step_limit);
  (* The probe phase dares with sink meetings, so the sink appears. *)
  Alcotest.(check bool) "sink appears" true (Sequence.count_involving played 0 > 0)

let test_mixed_extremes () =
  let n = 8 in
  (* q = 0 behaves as the randomized adversary: terminates. *)
  let rng = Prng.create 97 in
  let adv0 = Doda_adversary.Mixed.adversary rng ~n ~sink:0 ~q:0.0 in
  let r0, _ = Duel.run ~max_steps:100_000 ~n ~sink:0 Algorithms.gathering adv0 in
  Alcotest.(check bool) "q=0 terminates" true (r0.Engine.stop = Engine.All_aggregated);
  (* q = 1 is the pure spiteful trap: never terminates. *)
  let rng = Prng.create 98 in
  let adv1 = Doda_adversary.Mixed.adversary rng ~n ~sink:0 ~q:1.0 in
  let r1, _ = Duel.run ~max_steps:20_000 ~n ~sink:0 Algorithms.gathering adv1 in
  Alcotest.(check bool) "q=1 stalls" true (r1.Engine.stop = Engine.Step_limit)

let test_mixed_monotone_slowdown () =
  let n = 10 in
  let mean_at q =
    let total = ref 0 and count = ref 0 in
    for seed = 1 to 10 do
      let rng = Prng.create (seed * 131) in
      let adv = Doda_adversary.Mixed.adversary rng ~n ~sink:0 ~q in
      let r, _ = Duel.run ~max_steps:300_000 ~n ~sink:0 Algorithms.gathering adv in
      match r.Engine.duration with
      | Some d ->
          total := !total + d;
          incr count
      | None -> ()
    done;
    Alcotest.(check int) "all terminated" 10 !count;
    float_of_int !total /. float_of_int !count
  in
  Alcotest.(check bool) "more adaptivity, slower" true (mean_at 0.8 > mean_at 0.0)

let test_mixed_validation () =
  let rng = Prng.create 99 in
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Mixed.adversary: q outside [0, 1]") (fun () ->
      ignore (Doda_adversary.Mixed.adversary rng ~n:5 ~sink:0 ~q:1.5))

let test_spiteful_validation () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Spiteful.adversary: need at least three nodes") (fun () ->
      ignore (Spiteful.adversary ~n:2 ~sink:0))

(* ------------------------------------------------------------------ *)
(* Sanity: the adaptive adversaries do not block an offline schedule   *)

let test_theorem1_sequence_admits_offline_aggregation () =
  (* The trap is online-only: the sequence played against Gathering
     admits a complete offline aggregation. *)
  let _, played =
    Duel.run ~max_steps:horizon ~n:3 ~sink:0 Algorithms.gathering
      (Counterexamples.theorem1 ())
  in
  Alcotest.(check bool) "offline feasible" true
    (Doda_core.Convergecast.opt ~n:3 ~sink:0 played 0 <> None)

let () =
  Alcotest.run "adversary"
    [
      ( "wrappers",
        [
          Alcotest.test_case "of_sequence replays" `Quick
            test_of_sequence_replays_and_ends;
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "duel matches engine" `Quick
            test_duel_matches_engine_on_oblivious;
          Alcotest.test_case "uniform allows termination" `Quick
            test_uniform_adversary_allows_termination;
          Alcotest.test_case "sink bias speeds waiting" `Slow
            test_weighted_adversary_sink_bias_speeds_waiting;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "defeats no-knowledge algorithms" `Quick
            test_theorem1_defeats_no_knowledge_algorithms;
          Alcotest.test_case "defeats memoryful algorithms" `Quick
            test_theorem1_defeats_waiting_greedy_like_memory;
          Alcotest.test_case "offline aggregation feasible" `Quick
            test_theorem1_sequence_admits_offline_aggregation;
        ] );
      ( "theorem3",
        [
          Alcotest.test_case "defeats with underlying knowledge" `Quick
            test_theorem3_defeats_algorithms_knowing_underlying;
          Alcotest.test_case "underlying is the 4-cycle" `Quick
            test_theorem3_underlying_graph_is_cycle;
          Alcotest.test_case "gathering trapped quickly" `Quick
            test_theorem3_gathering_gets_trapped_quickly;
        ] );
      ( "spiteful",
        [
          Alcotest.test_case "traps at various n" `Quick test_spiteful_traps_at_various_n;
          Alcotest.test_case "freezes after first transmission" `Quick
            test_spiteful_freezes_after_first_transmission;
          Alcotest.test_case "sink appears in probe" `Quick
            test_spiteful_respects_sink_position;
          Alcotest.test_case "validation" `Quick test_spiteful_validation;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "extremes" `Quick test_mixed_extremes;
          Alcotest.test_case "monotone slowdown" `Slow test_mixed_monotone_slowdown;
          Alcotest.test_case "validation" `Quick test_mixed_validation;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "blocks waiting and gathering" `Quick
            test_theorem2_blocks_waiting_and_gathering;
          Alcotest.test_case "convergecasts remain possible" `Quick
            test_theorem2_convergecasts_remain_possible;
          Alcotest.test_case "search on deterministic" `Quick
            test_theorem2_search_deterministic;
          Alcotest.test_case "search on randomized" `Slow
            test_theorem2_search_randomized;
          Alcotest.test_case "search on passive" `Quick
            test_theorem2_search_passive_algorithm;
          Alcotest.test_case "validation" `Quick test_theorem2_validation;
        ] );
    ]
