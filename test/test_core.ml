(* Tests for the core DODA machinery: engine semantics, the
   convergecast duality solver, the cost function, and their agreement
   with exhaustive search. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Brute_force = Doda_core.Brute_force
module Cost = Doda_core.Cost
module Knowledge = Doda_core.Knowledge
module Algorithms = Doda_core.Algorithms
module Theory = Doda_core.Theory
module Prng = Doda_prng.Prng

let seq pairs = Sequence.of_pairs pairs

let sched ?(sink = 0) ~n pairs = Schedule.of_sequence ~n ~sink (seq pairs)

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)

let test_engine_gathering_line () =
  (* 0(sink) - chain of meetings: 2 gives to 1, then 1 gives to sink. *)
  let s = sched ~n:3 [ (1, 2); (0, 1) ] in
  let r = Engine.run Algorithms.gathering s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  Alcotest.(check (option int)) "duration" (Some 1) r.duration;
  Alcotest.(check int) "two transmissions" 2 (List.length (Engine.transmissions r))

let test_engine_waiting_ignores_non_sink () =
  let s = sched ~n:3 [ (1, 2); (1, 2); (0, 2) ] in
  let r = Engine.run Algorithms.waiting s in
  (* Waiting only delivers node 2; node 1 never meets the sink. *)
  Alcotest.(check bool) "not terminated" true (r.stop = Engine.Schedule_exhausted);
  Alcotest.(check int) "one transmission" 1 (List.length (Engine.transmissions r));
  Alcotest.(check bool) "node 1 still owns" true r.holders.(1)

let test_engine_sender_loses_data () =
  let s = sched ~n:3 [ (1, 2); (1, 2); (0, 1); (0, 2) ] in
  let r = Engine.run Algorithms.gathering s in
  (* At t=0, 2 transmits to 1 (receiver is smaller id). At t=1 both
     cannot interact again usefully: 2 has no data. *)
  (match (Engine.transmissions r) with
  | { time = 0; sender = 2; receiver = 1 } :: _ -> ()
  | _ -> Alcotest.fail "unexpected first transmission");
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated)

let test_engine_max_steps () =
  let rng = Prng.create 7 in
  let s = Schedule.of_fun ~n:4 ~sink:0 (Generators.uniform rng ~n:4) in
  let r = Engine.run ~max_steps:3 Algorithms.waiting s in
  Alcotest.(check bool) "limited" true (r.steps <= 3)

let test_engine_unbounded_needs_max_steps () =
  let rng = Prng.create 7 in
  let s = Schedule.of_fun ~n:4 ~sink:0 (Generators.uniform rng ~n:4) in
  Alcotest.check_raises "missing max_steps"
    (Invalid_argument "Engine.run: max_steps is mandatory for unbounded schedules")
    (fun () -> ignore (Engine.run Algorithms.waiting s))

let test_engine_each_node_transmits_once () =
  let rng = Prng.create 11 in
  let s = Schedule.of_fun ~n:8 ~sink:0 (Generators.uniform rng ~n:8) in
  let r = Engine.run ~max_steps:100_000 Algorithms.gathering s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  let senders = List.map (fun t -> t.Engine.sender) (Engine.transmissions r) in
  let sorted = List.sort compare senders in
  Alcotest.(check (list int)) "each non-sink transmits exactly once"
    [ 1; 2; 3; 4; 5; 6; 7 ] sorted

(* ------------------------------------------------------------------ *)
(* Convergecast: duality solver vs hand-made cases                     *)

let test_convergecast_simple_path () =
  (* Convergecast needs 2 -> 1 -> 0; only the order (1,2) then (0,1)
     works. *)
  let s = seq [ (0, 1); (1, 2); (0, 1) ] in
  Alcotest.(check (option int)) "opt(0)" (Some 2)
    (Convergecast.opt ~n:3 ~sink:0 s 0);
  Alcotest.(check (option int)) "opt(1)" (Some 2) (Convergecast.opt ~n:3 ~sink:0 s 1);
  Alcotest.(check (option int)) "opt(2)" None (Convergecast.opt ~n:3 ~sink:0 s 2)

let test_convergecast_infeasible () =
  let s = seq [ (1, 2); (1, 2) ] in
  Alcotest.(check (option int)) "no sink contact" None
    (Convergecast.opt ~n:3 ~sink:0 s 0)

let test_convergecast_plan_is_valid () =
  let rng = Prng.create 3 in
  let n = 6 in
  let s = Generators.uniform_sequence rng ~n ~length:200 in
  match Convergecast.plan ~n ~sink:0 s ~start:0 with
  | None -> Alcotest.fail "expected feasible plan"
  | Some plan ->
      (* Validity: every non-sink node fires exactly once, at an
         interaction involving it, and the receiver fires later (or is
         the sink). *)
      Alcotest.(check int) "sink does not fire" (-1) plan.fire_time.(0);
      for v = 1 to n - 1 do
        let t = plan.fire_time.(v) in
        let target = plan.fire_to.(v) in
        Alcotest.(check bool) "fires somewhere" true (t >= 0);
        let i = Sequence.get s t in
        Alcotest.(check bool) "fires at own interaction" true
          (Interaction.involves i v);
        Alcotest.(check int) "fires to the partner" (Interaction.other i v) target;
        if target <> 0 then
          Alcotest.(check bool) "receiver fires later" true
            (plan.fire_time.(target) > t)
      done;
      let ending = Array.fold_left Stdlib.max (-1) plan.fire_time in
      Alcotest.(check int) "completion is the last firing" ending plan.completion;
      Alcotest.(check (option int)) "completion equals opt" (Some plan.completion)
        (Convergecast.opt ~n ~sink:0 s 0)

let test_convergecast_matches_brute_force () =
  let rng = Prng.create 99 in
  for trial = 1 to 60 do
    let n = 3 + Prng.int rng 5 in
    let len = 5 + Prng.int rng 40 in
    let s = Generators.uniform_sequence rng ~n ~length:len in
    let start = Prng.int rng (Stdlib.max 1 (len / 2)) in
    let fast = Convergecast.opt ~n ~sink:0 s start in
    let slow = Brute_force.optimal_duration ~n ~sink:0 s ~start in
    Alcotest.(check (option int))
      (Printf.sprintf "trial %d (n=%d len=%d start=%d)" trial n len start)
      slow fast
  done

let test_full_knowledge_runs_at_opt () =
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let n = 5 in
    let s = Generators.uniform_sequence rng ~n ~length:400 in
    let sch = Schedule.of_sequence ~n ~sink:0 s in
    let r = Engine.run Algorithms.full_knowledge sch in
    let expected = Convergecast.opt ~n ~sink:0 s 0 in
    Alcotest.(check (option int)) "terminates exactly at opt" expected r.duration
  done

(* ------------------------------------------------------------------ *)
(* T-chain and cost                                                    *)

let test_t_chain_increasing () =
  let rng = Prng.create 21 in
  let n = 5 in
  let s = Generators.uniform_sequence rng ~n ~length:1000 in
  let chain = Convergecast.t_chain ~n ~sink:0 s in
  Alcotest.(check bool) "non-empty" true (chain <> []);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing chain)

let test_cost_optimal_is_one () =
  let rng = Prng.create 31 in
  let n = 5 in
  let s = Generators.uniform_sequence rng ~n ~length:600 in
  let sch = Schedule.of_sequence ~n ~sink:0 s in
  let r = Engine.run Algorithms.full_knowledge sch in
  Alcotest.(check bool) "cost 1" true
    (Cost.equal (Cost.of_result ~n ~sink:0 s r) (Cost.Finite 1))

let test_cost_monotone_in_duration () =
  let rng = Prng.create 41 in
  let n = 5 in
  let s = Generators.uniform_sequence rng ~n ~length:800 in
  let c1 = Cost.cost ~n ~sink:0 s ~duration:(Some 10) in
  let c2 = Cost.cost ~n ~sink:0 s ~duration:(Some 700) in
  Alcotest.(check bool) "larger duration, larger cost" true
    (Cost.to_float c1 <= Cost.to_float c2)

let test_cost_unterminated_is_lower_bound () =
  let rng = Prng.create 51 in
  let n = 4 in
  let s = Generators.uniform_sequence rng ~n ~length:500 in
  match Cost.cost ~n ~sink:0 s ~duration:None with
  | Cost.At_least k -> Alcotest.(check bool) "positive" true (k >= 1)
  | Cost.Finite _ -> Alcotest.fail "expected a lower bound"

let test_convergecasts_within () =
  let s = seq [ (0, 1); (0, 2); (0, 1); (0, 2) ] in
  (* n=3: each convergecast needs both 1 and 2 to meet the sink. *)
  Alcotest.(check int) "two convergecasts" 2
    (Cost.convergecasts_within ~n:3 ~sink:0 s ~upto:3);
  Alcotest.(check int) "one convergecast by time 1" 1
    (Cost.convergecasts_within ~n:3 ~sink:0 s ~upto:2)

(* ------------------------------------------------------------------ *)
(* Flooding aggregation (the unconstrained counterfactual)             *)

module Flooding_aggregation = Doda_core.Flooding_aggregation

let test_flooding_simple_chain () =
  (* 3's datum must relay 3 -> 2 -> 1 -> 0; epidemic exchange does it
     along the same chain while also spreading copies. *)
  let s = seq [ (2, 3); (1, 2); (0, 1) ] in
  Alcotest.(check (option int)) "completes at 2" (Some 2)
    (Flooding_aggregation.sink_completion ~n:4 ~sink:0 s)

let test_flooding_counts_exchanges () =
  let s = seq [ (1, 2); (1, 2); (0, 1) ] in
  let sched = Schedule.of_sequence ~n:3 ~sink:0 s in
  let r = Flooding_aggregation.run sched in
  Alcotest.(check bool) "completed" true r.completed;
  (* Second {1,2} moves nothing: sets already equal. *)
  Alcotest.(check int) "two effective exchanges" 2 r.exchanges

let test_flooding_incomplete () =
  let s = seq [ (1, 2) ] in
  let sched = Schedule.of_sequence ~n:3 ~sink:0 s in
  let r = Flooding_aggregation.run sched in
  Alcotest.(check bool) "not completed" false r.completed;
  Alcotest.(check (option int)) "no duration" None r.duration

let test_flooding_large_n_bitset () =
  (* n > 63 exercises the multi-word bitset. *)
  let n = 100 in
  let rng = Prng.create 51 in
  let s = Generators.uniform_sequence rng ~n ~length:200_000 in
  let flood = Flooding_aggregation.sink_completion ~n ~sink:0 s in
  Alcotest.(check bool) "completes" true (flood <> None);
  Alcotest.(check (option int)) "equals opt" (Convergecast.opt ~n ~sink:0 s 0) flood

(* ------------------------------------------------------------------ *)
(* Theory formulas                                                     *)

let test_harmonic () =
  Alcotest.(check (float 1e-9)) "H(1)" 1.0 (Theory.harmonic 1);
  Alcotest.(check (float 1e-9)) "H(4)" (25.0 /. 12.0) (Theory.harmonic 4);
  Alcotest.(check (float 1e-9)) "H(0)" 0.0 (Theory.harmonic 0)

let test_expected_gathering_closed_form () =
  (* n(n-1) sum 1/(i(i+1)) over i=1..n-1 equals n(n-1)(1-1/n). *)
  let n = 17 in
  let direct = ref 0.0 in
  for i = 1 to n - 1 do
    direct := !direct +. (float_of_int (n * (n - 1)) /. float_of_int (i * (i + 1)))
  done;
  Alcotest.(check (float 1e-6)) "telescoped" !direct (Theory.expected_gathering n)

let test_recommended_tau_monotone () =
  Alcotest.(check bool) "tau grows" true
    (Theory.recommended_tau 100 < Theory.recommended_tau 200);
  Alcotest.(check bool) "positive" true (Theory.recommended_tau 2 >= 1)

let test_tau_for_f_minimised_at_sqrt_nlogn () =
  let n = 256 in
  let opt_f = sqrt (float_of_int n *. log (float_of_int n)) in
  let at_opt = Theory.tau_for_f ~n ~f:opt_f in
  Alcotest.(check bool) "smaller f is worse" true
    (Theory.tau_for_f ~n ~f:(opt_f /. 4.0) > at_opt);
  Alcotest.(check bool) "larger f is worse" true
    (Theory.tau_for_f ~n ~f:(opt_f *. 4.0) > at_opt)

(* ------------------------------------------------------------------ *)
(* Engine misbehaviour containment                                     *)

let rogue_algorithm name decide =
  {
    Doda_core.Algorithm.name;
    oblivious = true;
    requires = [];
    batch = None;
    make =
      (fun ~n:_ ~sink:_ _ ->
        { Doda_core.Algorithm.observe = Doda_core.Algorithm.no_observation; decide });
  }

let test_engine_rejects_non_endpoint () =
  let s = sched ~n:4 [ (1, 2) ] in
  let rogue = rogue_algorithm "rogue-endpoint" (fun ~time:_ _ -> Some 3) in
  Alcotest.check_raises "non endpoint"
    (Invalid_argument "Engine.step: rogue-endpoint returned a non-endpoint receiver")
    (fun () -> ignore (Engine.run rogue s))

let test_engine_rejects_sink_sender () =
  let s = sched ~n:3 [ (0, 1) ] in
  (* Receiver 1 means the sink (0) is the sender. *)
  let rogue = rogue_algorithm "rogue-sink" (fun ~time:_ i -> Some (Interaction.v i)) in
  Alcotest.check_raises "sink sender"
    (Invalid_argument "Engine.step: rogue-sink made the sink transmit") (fun () ->
      ignore (Engine.run rogue s))

let test_engine_ignores_decide_without_data () =
  (* decide must not even be consulted when an endpoint is empty: a
     rogue decision on a dead pair cannot corrupt the run. *)
  let s = sched ~n:3 [ (1, 2); (1, 2) ] in
  let calls = ref 0 in
  let counting =
    rogue_algorithm "counting" (fun ~time:_ i ->
        incr calls;
        Some (Interaction.u i))
  in
  let r = Engine.run counting s in
  Alcotest.(check int) "decide once" 1 !calls;
  Alcotest.(check int) "one transmission" 1 (List.length (Engine.transmissions r))

let test_engine_record_count_matches_all () =
  (* `Count recording must change nothing about the run except that the
     transmission log is dropped — a determinism regression test for
     the engine's fast path, across algorithms and stop reasons. *)
  let check_pair name (full : Engine.result) (count : Engine.result) =
    Alcotest.(check bool) (name ^ ": same stop") true (full.stop = count.stop);
    Alcotest.(check (option int)) (name ^ ": same duration") full.duration
      count.duration;
    Alcotest.(check int) (name ^ ": same steps") full.steps count.steps;
    Alcotest.(check int)
      (name ^ ": same transmission count")
      full.transmission_count count.transmission_count;
    Alcotest.(check int)
      (name ^ ": full log length agrees")
      full.transmission_count
      (List.length (Engine.transmissions full));
    Alcotest.(check (list string)) (name ^ ": count log empty") []
      (List.map (fun _ -> "tr") (Engine.transmissions count));
    Alcotest.(check (array bool)) (name ^ ": same holders") full.holders
      count.holders
  in
  let n = 24 in
  List.iter
    (fun (name, algo, max_steps) ->
      let run record =
        let rng = Prng.create 2016 in
        let sched =
          Schedule.of_fun ~n ~sink:0 (Generators.uniform rng ~n)
        in
        Engine.run ~record ~max_steps algo sched
      in
      check_pair name (run `All) (run `Count))
    [
      ("gathering", Algorithms.gathering, 100_000);
      ("waiting", Algorithms.waiting, 100_000);
      ("waiting-greedy", Algorithms.waiting_greedy ~tau:400, 100_000);
      ("step-limited waiting", Algorithms.waiting, 40);
    ];
  (* Finite schedule exhaustion under both modes. *)
  let finite record =
    Engine.run ~record Algorithms.gathering (sched ~n:3 [ (1, 2); (1, 2) ])
  in
  check_pair "exhausted" (finite `All) (finite `Count)

(* ------------------------------------------------------------------ *)
(* Stepper API                                                         *)

let sched_of s n = Schedule.of_sequence ~n ~sink:0 s

let test_stepper_matches_run () =
  let rng = Prng.create 61 in
  let n = 8 in
  let s = Generators.uniform_sequence rng ~n ~length:5_000 in
  let run_result = Engine.run Algorithms.gathering (sched_of s n) in
  let st = Engine.start Algorithms.gathering (sched_of s n) in
  let rec drive () =
    match Engine.step st with
    | Engine.Finished reason -> Engine.finish st reason
    | Engine.Stepped _ -> drive ()
  in
  let stepped_result = drive () in
  Alcotest.(check (option int)) "same duration" run_result.duration
    stepped_result.duration;
  Alcotest.(check int) "same transmissions"
    (List.length (Engine.transmissions run_result))
    (List.length (Engine.transmissions stepped_result))

let test_stepper_intermediate_state () =
  let s = sched ~n:3 [ (1, 2); (0, 1) ] in
  let st = Engine.start Algorithms.gathering s in
  Alcotest.(check int) "three owners" 3 (Engine.owners st);
  (match Engine.step st with
  | Engine.Stepped (Some { Engine.sender = 2; receiver = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected 2 -> 1 at step 1");
  Alcotest.(check int) "two owners" 2 (Engine.owners st);
  Alcotest.(check bool) "2 no longer owns" false (Engine.owns st 2);
  Alcotest.(check int) "time 1" 1 (Engine.time st);
  (match Engine.step st with
  | Engine.Stepped (Some _) -> ()
  | _ -> Alcotest.fail "expected transmission at step 2");
  match Engine.step st with
  | Engine.Finished Engine.All_aggregated -> ()
  | _ -> Alcotest.fail "expected completion"

let test_stepper_snapshot_is_copy () =
  let s = sched ~n:3 [ (1, 2) ] in
  let st = Engine.start Algorithms.gathering s in
  let snap = Engine.holders_snapshot st in
  snap.(0) <- false;
  Alcotest.(check bool) "state unaffected" true (Engine.owns st 0)

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)

module Validate = Doda_core.Validate
module Run_log = Doda_core.Run_log

(* Hand-built logs enter the validator through the flat representation. *)
let vlog = Run_log.of_list

let violation_testable =
  Alcotest.testable
    (fun ppf v -> Validate.pp_violation ppf v)
    (fun a b -> a = b)

let test_validate_accepts_engine_run () =
  let rng = Prng.create 71 in
  let n = 8 in
  let s = Generators.uniform_sequence rng ~n ~length:10_000 in
  let r = Engine.run Algorithms.gathering (Schedule.of_sequence ~n ~sink:0 s) in
  Alcotest.(check (list violation_testable)) "no violations" []
    (Validate.execution ~n ~sink:0 s r.log);
  Alcotest.(check bool) "complete" true (Validate.complete ~n ~sink:0 s r.log)

let test_validate_flags_corruptions () =
  let s = seq [ (1, 2); (0, 1) ] in
  let ok = [ { Engine.time = 0; sender = 2; receiver = 1 };
             { Engine.time = 1; sender = 1; receiver = 0 } ] in
  Alcotest.(check int) "baseline valid" 0
    (List.length (Validate.execution ~n:3 ~sink:0 s (vlog ok)));
  let bad_endpoint = [ { Engine.time = 0; sender = 2; receiver = 0 } ] in
  Alcotest.(check bool) "wrong interaction flagged" true
    (List.mem (Validate.Wrong_interaction 0)
       (Validate.execution ~n:3 ~sink:0 s (vlog bad_endpoint)));
  let sink_sends = [ { Engine.time = 1; sender = 0; receiver = 1 } ] in
  Alcotest.(check bool) "sink transmission flagged" true
    (List.mem (Validate.Sink_transmitted 0)
       (Validate.execution ~n:3 ~sink:0 s (vlog sink_sends)));
  let out_of_order =
    [ { Engine.time = 1; sender = 1; receiver = 0 };
      { Engine.time = 0; sender = 2; receiver = 1 } ]
  in
  Alcotest.(check bool) "order flagged" true
    (List.mem (Validate.Out_of_order 1)
       (Validate.execution ~n:3 ~sink:0 s (vlog out_of_order)));
  let bad_time = [ { Engine.time = 9; sender = 1; receiver = 0 } ] in
  Alcotest.(check bool) "bad time flagged" true
    (List.mem (Validate.Bad_time 0) (Validate.execution ~n:3 ~sink:0 s (vlog bad_time)))

let test_validate_flags_reuse () =
  let s = seq [ (1, 2); (1, 2); (0, 1) ] in
  (* 2 sends at t=0; then 2 "receives" at t=1: receiver without data. *)
  let receiver_dead =
    [ { Engine.time = 0; sender = 2; receiver = 1 };
      { Engine.time = 1; sender = 1; receiver = 2 } ]
  in
  Alcotest.(check bool) "dead receiver flagged" true
    (List.mem (Validate.Receiver_without_data 1)
       (Validate.execution ~n:3 ~sink:0 s (vlog receiver_dead)))

let test_validate_incomplete () =
  let s = seq [ (0, 1) ] in
  let partial = [ { Engine.time = 0; sender = 1; receiver = 0 } ] in
  (* valid but node 2 never transmitted *)
  Alcotest.(check int) "valid" 0
    (List.length (Validate.execution ~n:3 ~sink:0 s (vlog partial)));
  Alcotest.(check bool) "not complete" false
    (Validate.complete ~n:3 ~sink:0 s (vlog partial))

let test_validate_plan () =
  let rng = Prng.create 73 in
  let n = 7 in
  let s = Generators.uniform_sequence rng ~n ~length:500 in
  match Convergecast.plan ~n ~sink:0 s ~start:0 with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
      Alcotest.(check int) "plan validates" 0
        (List.length (Validate.plan ~n ~sink:0 s plan))

(* ------------------------------------------------------------------ *)
(* Exact phases                                                        *)

module Geometric_sum = Doda_stats.Geometric_sum

let test_phases_match_closed_forms () =
  List.iter
    (fun n ->
      Alcotest.(check (float 1e-6)) "waiting" (Theory.expected_waiting n)
        (Geometric_sum.mean (Theory.waiting_phases n));
      Alcotest.(check (float 1e-6)) "gathering" (Theory.expected_gathering n)
        (Geometric_sum.mean (Theory.gathering_phases n));
      Alcotest.(check (float 1e-6)) "broadcast" (Theory.expected_broadcast n)
        (Geometric_sum.mean (Theory.broadcast_phases n)))
    [ 3; 8; 33; 100 ]

let test_phases_are_probabilities () =
  let check_all name phases =
    Array.iter
      (fun p ->
        Alcotest.(check bool) (name ^ " in (0,1]") true (p > 0.0 && p <= 1.0))
      phases
  in
  check_all "waiting" (Theory.waiting_phases 12);
  check_all "gathering" (Theory.gathering_phases 12);
  check_all "broadcast" (Theory.broadcast_phases 12);
  (* Gathering's first phase is certain. *)
  Alcotest.(check (float 1e-9)) "first gathering phase" 1.0
    (Theory.gathering_phases 12).(0)

(* ------------------------------------------------------------------ *)
(* Knowledge construction                                              *)

let test_knowledge_missing_oracle () =
  let rng = Prng.create 1 in
  let s = Schedule.of_fun ~n:4 ~sink:0 (Generators.uniform rng ~n:4) in
  Alcotest.check_raises "own future needs finite schedule"
    (Invalid_argument "Knowledge.for_schedule: Own_future requires a finite schedule")
    (fun () -> ignore (Knowledge.for_schedule s [ Knowledge.Own_future ]))

let test_knowledge_satisfies () =
  let s = sched ~n:3 [ (0, 1); (0, 2) ] in
  let k = Knowledge.for_schedule s [ Knowledge.Meet_time; Knowledge.Full_schedule ] in
  Alcotest.(check bool) "satisfies" true
    (Knowledge.satisfies k [ Knowledge.Meet_time ]);
  Alcotest.(check bool) "does not satisfy underlying" false
    (Knowledge.satisfies k [ Knowledge.Underlying_graph ])

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)

let test_minimal_network () =
  (* n = 2: a single interaction completes everything. *)
  let s = sched ~n:2 [ (0, 1) ] in
  let r = Engine.run Algorithms.gathering s in
  Alcotest.(check bool) "terminated" true (r.stop = Engine.All_aggregated);
  Alcotest.(check (option int)) "at time 0" (Some 0) r.duration

let test_opt_at_last_index () =
  let s = seq [ (1, 2); (0, 1); (0, 2) ] in
  (* Starting at the very last interaction: only node 2 could deliver,
     node 1 cannot. *)
  Alcotest.(check (option int)) "opt at end" None (Convergecast.opt ~n:3 ~sink:0 s 2);
  Alcotest.(check bool) "feasible lo>hi is false" false
    (Convergecast.feasible ~n:3 ~sink:0 s ~lo:2 ~hi:1)

let test_cost_on_infeasible_sequence () =
  let s = seq [ (1, 2) ] in
  (* No convergecast fits at all: T(1) is beyond the horizon, so any
     terminating duration costs 1 and no termination is At_least 1. *)
  Alcotest.(check bool) "terminated cost" true
    (Cost.equal (Cost.cost ~n:3 ~sink:0 s ~duration:(Some 0)) (Cost.Finite 1));
  Alcotest.(check bool) "unterminated cost" true
    (Cost.equal (Cost.cost ~n:3 ~sink:0 s ~duration:None) (Cost.At_least 1))

let test_cost_formatting () =
  Alcotest.(check string) "finite" "3" (Format.asprintf "%a" Cost.pp (Cost.Finite 3));
  Alcotest.(check string) "at least" ">=2"
    (Format.asprintf "%a" Cost.pp (Cost.At_least 2));
  Alcotest.(check (float 1e-9)) "to_float" 2.0 (Cost.to_float (Cost.At_least 2))

let test_brute_force_guard () =
  let s = seq [ (0, 1) ] in
  Alcotest.check_raises "dense too large"
    (Invalid_argument "Brute_force: n too large for the dense subset search")
    (fun () -> ignore (Brute_force.optimal_duration_dense ~n:25 ~sink:0 s ~start:0));
  Alcotest.check_raises "sparse too large"
    (Invalid_argument "Brute_force: n too large for subset search (62-bit masks)")
    (fun () -> ignore (Brute_force.optimal_duration ~n:62 ~sink:0 s ~start:0));
  (* n = 25 now dispatches to the sparse backing instead of raising. *)
  Alcotest.(check (option int)) "sparse n=25"
    None
    (Brute_force.optimal_duration ~n:25 ~sink:0 s ~start:0)

let test_brute_force_reachable_states () =
  (* One interaction {1,2} on n=3: either nothing, 1->2, or 2->1. *)
  let s = seq [ (1, 2) ] in
  let states = Brute_force.reachable_states ~n:3 ~sink:0 s in
  Alcotest.(check (list int)) "three states" [ 0b011; 0b101; 0b111 ] states

let test_schedule_meet_limit_before_after () =
  let s = sched ~n:3 [ (0, 1); (0, 2) ] in
  (* Underlying schedule type via engine knowledge: query with a limit
     below the next occurrence. *)
  Alcotest.(check (option int)) "limit below after" None
    (Schedule.next_meet_with_sink s ~node:2 ~after:5 ~limit:3)

let () =
  Alcotest.run "core"
    [
      ( "engine",
        [
          Alcotest.test_case "gathering on a line" `Quick test_engine_gathering_line;
          Alcotest.test_case "waiting ignores non-sink" `Quick
            test_engine_waiting_ignores_non_sink;
          Alcotest.test_case "sender loses data" `Quick test_engine_sender_loses_data;
          Alcotest.test_case "max steps respected" `Quick test_engine_max_steps;
          Alcotest.test_case "unbounded needs max_steps" `Quick
            test_engine_unbounded_needs_max_steps;
          Alcotest.test_case "each node transmits once" `Quick
            test_engine_each_node_transmits_once;
          Alcotest.test_case "record `Count matches `All" `Quick
            test_engine_record_count_matches_all;
        ] );
      ( "convergecast",
        [
          Alcotest.test_case "simple path" `Quick test_convergecast_simple_path;
          Alcotest.test_case "infeasible" `Quick test_convergecast_infeasible;
          Alcotest.test_case "plan validity" `Quick test_convergecast_plan_is_valid;
          Alcotest.test_case "matches brute force" `Slow
            test_convergecast_matches_brute_force;
          Alcotest.test_case "full knowledge runs at opt" `Slow
            test_full_knowledge_runs_at_opt;
        ] );
      ( "cost",
        [
          Alcotest.test_case "t-chain increasing" `Quick test_t_chain_increasing;
          Alcotest.test_case "optimal algorithm costs 1" `Quick test_cost_optimal_is_one;
          Alcotest.test_case "monotone in duration" `Quick test_cost_monotone_in_duration;
          Alcotest.test_case "unterminated lower bound" `Quick
            test_cost_unterminated_is_lower_bound;
          Alcotest.test_case "convergecasts within" `Quick test_convergecasts_within;
        ] );
      ( "flooding-aggregation",
        [
          Alcotest.test_case "simple chain" `Quick test_flooding_simple_chain;
          Alcotest.test_case "counts exchanges" `Quick test_flooding_counts_exchanges;
          Alcotest.test_case "incomplete" `Quick test_flooding_incomplete;
          Alcotest.test_case "large n bitset" `Quick test_flooding_large_n_bitset;
        ] );
      ( "theory",
        [
          Alcotest.test_case "harmonic numbers" `Quick test_harmonic;
          Alcotest.test_case "gathering closed form" `Quick
            test_expected_gathering_closed_form;
          Alcotest.test_case "recommended tau monotone" `Quick
            test_recommended_tau_monotone;
          Alcotest.test_case "tau_for_f minimised" `Quick
            test_tau_for_f_minimised_at_sqrt_nlogn;
        ] );
      ( "misbehaviour",
        [
          Alcotest.test_case "rejects non-endpoint" `Quick
            test_engine_rejects_non_endpoint;
          Alcotest.test_case "rejects sink sender" `Quick
            test_engine_rejects_sink_sender;
          Alcotest.test_case "ignores decide without data" `Quick
            test_engine_ignores_decide_without_data;
        ] );
      ( "stepper",
        [
          Alcotest.test_case "matches run" `Quick test_stepper_matches_run;
          Alcotest.test_case "intermediate state" `Quick
            test_stepper_intermediate_state;
          Alcotest.test_case "snapshot is a copy" `Quick test_stepper_snapshot_is_copy;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts engine run" `Quick test_validate_accepts_engine_run;
          Alcotest.test_case "flags corruptions" `Quick test_validate_flags_corruptions;
          Alcotest.test_case "flags reuse" `Quick test_validate_flags_reuse;
          Alcotest.test_case "incomplete" `Quick test_validate_incomplete;
          Alcotest.test_case "validates plans" `Quick test_validate_plan;
        ] );
      ( "exact-phases",
        [
          Alcotest.test_case "match closed forms" `Quick test_phases_match_closed_forms;
          Alcotest.test_case "are probabilities" `Quick test_phases_are_probabilities;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "minimal network" `Quick test_minimal_network;
          Alcotest.test_case "opt at last index" `Quick test_opt_at_last_index;
          Alcotest.test_case "cost on infeasible" `Quick
            test_cost_on_infeasible_sequence;
          Alcotest.test_case "cost formatting" `Quick test_cost_formatting;
          Alcotest.test_case "brute force guard" `Quick test_brute_force_guard;
          Alcotest.test_case "brute force states" `Quick
            test_brute_force_reachable_states;
          Alcotest.test_case "meet limit below after" `Quick
            test_schedule_meet_limit_before_after;
        ] );
      ( "knowledge",
        [
          Alcotest.test_case "missing oracle" `Quick test_knowledge_missing_oracle;
          Alcotest.test_case "satisfies" `Quick test_knowledge_satisfies;
        ] );
    ]
