(* Batch engine differentials: the lockstep bit-parallel paths must be
   result-identical — stop reason, duration, steps, transmission log,
   holder set, and for coin algorithms the PRNG draw sequence — to
   running the scalar [Engine.run] once per replication or per
   algorithm. Also covers the remainder batches (R not a multiple of
   the word width) and live-mask early termination. *)

module Interaction = Doda_dynamic.Interaction
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine
module Batch_engine = Doda_core.Batch_engine
module Run_log = Doda_core.Run_log
module Algorithms = Doda_core.Algorithms
module Gathering_variants = Doda_core.Gathering_variants
module Coin_algorithms = Doda_core.Coin_algorithms
module Waiting_greedy = Doda_core.Waiting_greedy
module Meet_time_policies = Doda_core.Meet_time_policies
module Theory = Doda_core.Theory
module Prng = Doda_prng.Prng

let same_result (a : Engine.result) (b : Engine.result) =
  a.stop = b.stop && a.duration = b.duration && a.steps = b.steps
  && a.transmission_count = b.transmission_count
  && a.holders = b.holders
  && Run_log.to_list a.log = Run_log.to_list b.log

let frozen_of (n, len, seed) =
  let rng = Prng.create seed in
  let s = Generators.uniform_sequence rng ~n ~length:len in
  let sink = Prng.int rng n in
  Schedule.freeze (Schedule.of_sequence ~n ~sink s)

let instance_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n len seed -> (n, len, seed))
        (int_range 3 12) (int_range 5 500) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, len, seed) ->
      Printf.sprintf "(n=%d, len=%d, seed=%d)" n len seed)
    gen

(* Deterministic batch-capable algorithms: every replication of a
   batch must equal the scalar run. *)
let deterministic_algos n =
  [
    Algorithms.waiting;
    Algorithms.gathering;
    Algorithms.waiting_greedy ~tau:(Theory.recommended_tau n);
    Waiting_greedy.doubling ~tau0:4 ();
    Meet_time_policies.pure_greedy ~horizon:(20 * n);
    Meet_time_policies.sliding_window ~theta:(2 * n);
  ]
  @ Gathering_variants.all

let prop_run_reps_matches_scalar =
  QCheck.Test.make ~count:60
    ~name:"batch: run_reps = scalar Engine.run (deterministic algos)"
    instance_arb
    (fun ((n, _, _) as inst) ->
      let sched = frozen_of inst in
      let r = 5 in
      List.for_all
        (fun algo ->
          let scalar = Engine.run algo sched in
          let batch = Batch_engine.run_reps algo sched r in
          Array.length batch = r
          && Array.for_all (fun b -> same_result scalar b) batch)
        (deterministic_algos n))

(* Remainder handling: batch sizes around the 63-bit word width (and
   the issue's nominal 1/63/64/65/130) all agree with scalar runs. *)
let test_remainder_widths () =
  let sched = frozen_of (9, 300, 42) in
  let algo = Algorithms.waiting_greedy ~tau:(Theory.recommended_tau 9) in
  let scalar = Engine.run algo sched in
  List.iter
    (fun r ->
      let batch = Batch_engine.run_reps algo sched r in
      Alcotest.(check int) (Printf.sprintf "R=%d count" r) r (Array.length batch);
      Array.iteri
        (fun k b ->
          Alcotest.(check bool)
            (Printf.sprintf "R=%d rep %d identical" r k)
            true (same_result scalar b))
        batch)
    [ 1; 62; 63; 64; 65; 130 ]

(* Coin algorithms: scalar replication [i] splits the algorithm's
   master stream on its [make]; handing the batch [Prng.split_n] of an
   identically-seeded master must reproduce every draw. *)
let prop_coin_reps_match_scalar =
  QCheck.Test.make ~count:40
    ~name:"batch: coin run_reps reproduces scalar streams" instance_arb
    (fun inst ->
      let sched = frozen_of inst in
      let r = 70 in
      List.for_all
        (fun (mk, p) ->
          let scalar_algo = mk (Prng.create 1234) ~p in
          let batch_algo = mk (Prng.create 1234) ~p in
          let scalars = Array.init r (fun _ -> Engine.run scalar_algo sched) in
          (* [mk] captured the batch master but the batch path never
             calls [make]; split it exactly as scalar runs would. *)
          let rngs = Prng.split_n (Prng.create 1234) r in
          let batch = Batch_engine.run_reps ~rngs batch_algo sched r in
          ignore batch_algo;
          Array.for_all2 same_result scalars batch)
        [
          (Coin_algorithms.coin_waiting, 0.4);
          (Coin_algorithms.coin_gathering, 0.25);
        ])

(* Sweep: one lockstep pass over the schedule equals consecutive
   scalar runs, algorithm by algorithm — including generic lanes
   (full-knowledge) and coin lanes, whose master-stream splits happen
   in the same order in both paths. *)
let sweep_rivals n master =
  [
    Algorithms.waiting;
    Algorithms.gathering;
    Gathering_variants.make Gathering_variants.More_data;
    Gathering_variants.make Gathering_variants.Hash;
    Algorithms.waiting_greedy ~tau:(Theory.recommended_tau n);
    Waiting_greedy.doubling ();
    Meet_time_policies.pure_greedy ~horizon:(10 * n * n);
    Meet_time_policies.sliding_window ~theta:n;
    Coin_algorithms.coin_waiting master ~p:0.3;
    Algorithms.full_knowledge;
  ]

let prop_sweep_matches_scalar =
  QCheck.Test.make ~count:40 ~name:"batch: sweep = consecutive scalar runs"
    instance_arb
    (fun ((n, _, _) as inst) ->
      let sched = frozen_of inst in
      let scalars =
        List.map
          (fun algo -> Engine.run algo sched)
          (sweep_rivals n (Prng.create 77))
      in
      let batch = Batch_engine.sweep (sweep_rivals n (Prng.create 77)) sched in
      List.length scalars = Array.length batch
      && List.for_all2 same_result scalars (Array.to_list batch))

(* Same sweep over a live generator schedule: the lazy stepper oracle
   must not change any decision relative to the eager scalar oracle. *)
let prop_sweep_generator_matches_scalar =
  QCheck.Test.make ~count:25
    ~name:"batch: sweep on generator schedule = scalar runs" instance_arb
    (fun (n, len, seed) ->
      let rng = Prng.create seed in
      let s = Generators.uniform_sequence rng ~n ~length:(Stdlib.max 2 len) in
      let sink = Prng.int rng n in
      let gen t = Doda_dynamic.Sequence.get s (t mod Doda_dynamic.Sequence.length s) in
      let max_steps = 4 * len in
      let scalars =
        List.map
          (fun algo ->
            Engine.run ~max_steps algo (Schedule.of_fun ~n ~sink gen))
          (sweep_rivals n (Prng.create 99))
      in
      let batch =
        Batch_engine.sweep ~max_steps
          (sweep_rivals n (Prng.create 99))
          (Schedule.of_fun ~n ~sink gen)
      in
      List.for_all2 same_result scalars (Array.to_list batch))

(* run_reps over a generator schedule exercises the stepper decode
   path and the Step_limit stop reason. *)
let prop_run_reps_generator =
  QCheck.Test.make ~count:25
    ~name:"batch: run_reps on generator schedule = scalar run" instance_arb
    (fun (n, len, seed) ->
      let rng = Prng.create seed in
      let s = Generators.uniform_sequence rng ~n ~length:(Stdlib.max 2 len) in
      let sink = Prng.int rng n in
      let gen t = Doda_dynamic.Sequence.get s (t mod Doda_dynamic.Sequence.length s) in
      let max_steps = 2 * len in
      List.for_all
        (fun algo ->
          let scalar =
            Engine.run ~max_steps algo (Schedule.of_fun ~n ~sink gen)
          in
          let batch =
            Batch_engine.run_reps ~max_steps algo
              (Schedule.of_fun ~n ~sink gen)
              3
          in
          Array.for_all (fun b -> same_result scalar b) batch)
        [
          Algorithms.waiting;
          Algorithms.waiting_greedy ~tau:(Theory.recommended_tau n);
        ])

(* ------------------------------------------------------------------ *)
(* Streamed (chunked) batch: one chunk decode drives all lanes. The
   streamed pass must be bit-identical to the frozen pass and to
   scalar runs — across widths around the word boundary and with
   blocks far smaller than the schedule, so the ring recycles many
   times mid-run. *)

let sequence_of (n, len, seed) =
  let rng = Prng.create seed in
  let s = Generators.uniform_sequence rng ~n ~length:len in
  let sink = Prng.int rng n in
  (s, sink)

let chunked_of ~block (n, len, seed) =
  let s, sink = sequence_of (n, len, seed) in
  Schedule.of_fun_chunked ~block ~length:(Doda_dynamic.Sequence.length s) ~n
    ~sink
    (fun t -> Doda_dynamic.Sequence.get s t)

let widths = [ 1; 62; 63; 64; 65; 130 ]

let prop_streamed_reps_match_frozen =
  QCheck.Test.make ~count:25
    ~name:"batch: streamed run_reps = frozen run_reps = scalar (deterministic)"
    instance_arb
    (fun ((n, _, seed) as inst) ->
      let frozen = frozen_of inst in
      let block = 1 + (seed mod 7) in
      List.for_all
        (fun algo ->
          let scalar = Engine.run algo frozen in
          List.for_all
            (fun r ->
              let froz = Batch_engine.run_reps algo frozen r in
              let stream =
                Batch_engine.run_reps algo (chunked_of ~block inst) r
              in
              Array.length stream = r
              && Array.for_all2 same_result froz stream
              && Array.for_all (fun b -> same_result scalar b) stream)
            widths)
        (* Meet-time policies are excluded by design: their oracle
           needs replay, which a chunked schedule refuses. *)
        (ignore n;
         [ Algorithms.waiting; Algorithms.gathering ]
         @ Gathering_variants.all))

let prop_streamed_coin_reps_match_frozen =
  QCheck.Test.make ~count:20
    ~name:"batch: streamed coin run_reps = frozen run_reps (per-rep streams)"
    instance_arb
    (fun ((_, _, seed) as inst) ->
      let frozen = frozen_of inst in
      let block = 1 + (seed mod 5) in
      List.for_all
        (fun (mk, p) ->
          List.for_all
            (fun r ->
              let rngs = Prng.split_n (Prng.create 1234) r in
              let froz =
                Batch_engine.run_reps ~rngs (mk (Prng.create 1234) ~p) frozen r
              in
              let rngs = Prng.split_n (Prng.create 1234) r in
              let stream =
                Batch_engine.run_reps ~rngs
                  (mk (Prng.create 1234) ~p)
                  (chunked_of ~block inst) r
              in
              Array.for_all2 same_result froz stream)
            widths)
        [
          (Coin_algorithms.coin_waiting, 0.4);
          (Coin_algorithms.coin_gathering, 0.25);
        ])

(* Error paths, pinned verbatim: a batch-incapable algorithm must be
   named, and the message must point at the scalar fallback. *)
let test_no_batch_rule_messages () =
  let sched = frozen_of (6, 50, 1) in
  let expect_engine =
    "Batch_engine.run_reps: full-knowledge has no batch rule (Token_sink / \
     Coin_sink / Coin_gather / Gather / Meet_policy); fall back to the \
     scalar Engine.run per replication (Experiment.replicate_par)"
  in
  Alcotest.check_raises "Batch_engine.run_reps names algo and fallback"
    (Invalid_argument expect_engine) (fun () ->
      ignore (Batch_engine.run_reps Algorithms.full_knowledge sched 3));
  let expect_experiment =
    "Experiment.replicate_batched: full-knowledge has no batch rule; fall \
     back to the scalar path — Experiment.replicate_par with Engine.run per \
     replication"
  in
  Alcotest.check_raises "Experiment.replicate_batched names algo and fallback"
    (Invalid_argument expect_experiment) (fun () ->
      ignore
        (Doda_sim.Experiment.replicate_batched ~jobs:1 ~replications:3 ~seed:1
           Algorithms.full_knowledge sched))

(* replicate_batched on a non-frozen schedule: the frozen-only
   restriction is lifted — a chunked schedule runs single-pass on the
   caller and must equal the frozen fan-out result. *)
let prop_replicate_batched_chunked =
  QCheck.Test.make ~count:15
    ~name:"batch: replicate_batched chunked = frozen" instance_arb
    (fun ((_, _, seed) as inst) ->
      let frozen = frozen_of inst in
      let on_frozen =
        Doda_sim.Experiment.replicate_batched ~jobs:1 ~record:`All
          ~replications:70 ~seed:5 Algorithms.gathering frozen
      in
      let on_chunked =
        Doda_sim.Experiment.replicate_batched ~jobs:1 ~record:`All
          ~replications:70 ~seed:5 Algorithms.gathering
          (chunked_of ~block:(1 + (seed mod 9)) inst)
      in
      Array.for_all2 same_result on_frozen on_chunked)

(* `Count recording drops the log but nothing else. *)
let prop_count_mode =
  QCheck.Test.make ~count:30 ~name:"batch: `Count = `All minus the log"
    instance_arb
    (fun ((n, _, _) as inst) ->
      let sched = frozen_of inst in
      let algo = Algorithms.gathering in
      let full = Batch_engine.run_reps ~record:`All algo sched 4 in
      let counted = Batch_engine.run_reps ~record:`Count algo sched 4 in
      ignore n;
      Array.for_all2
        (fun (a : Engine.result) (b : Engine.result) ->
          a.stop = b.stop && a.duration = b.duration && a.steps = b.steps
          && a.transmission_count = b.transmission_count
          && a.holders = b.holders
          && Run_log.length b.log = 0)
        full counted)

(* Live-mask early termination: once every replication has aggregated
   the batch stops decoding, so a schedule whose tail is junk is never
   read past the last useful step. *)
let test_live_mask_early_stop () =
  let n = 4 and sink = 0 in
  let meets = [ (0, 1); (0, 2); (0, 3) ] in
  let filler = List.init 1000 (fun _ -> (1, 2)) in
  let s =
    Doda_dynamic.Sequence.of_list
      (List.map (fun (a, b) -> Interaction.make a b) (meets @ filler))
  in
  let sched = Schedule.freeze (Schedule.of_sequence ~n ~sink s) in
  let stats = Batch_engine.stats () in
  let r = 200 in
  let results = Batch_engine.run_reps ~stats Algorithms.waiting sched r in
  Alcotest.(check int) "decodes stop at aggregation" 3 stats.decodes;
  Alcotest.(check int) "every live rep stepped per decode" (3 * r)
    stats.lane_steps;
  Array.iter
    (fun (b : Engine.result) ->
      Alcotest.(check bool) "aggregated" true (b.stop = Engine.All_aggregated);
      Alcotest.(check int) "steps" 3 b.steps)
    results

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "batch"
    [
      ( "run_reps",
        List.map to_alcotest
          [
            prop_run_reps_matches_scalar;
            prop_coin_reps_match_scalar;
            prop_run_reps_generator;
            prop_count_mode;
          ]
        @ [
            Alcotest.test_case "remainder widths" `Quick test_remainder_widths;
            Alcotest.test_case "live-mask early stop" `Quick
              test_live_mask_early_stop;
          ] );
      ( "streamed",
        List.map to_alcotest
          [
            prop_streamed_reps_match_frozen;
            prop_streamed_coin_reps_match_frozen;
            prop_replicate_batched_chunked;
          ]
        @ [
            Alcotest.test_case "no-batch-rule messages" `Quick
              test_no_batch_rule_messages;
          ] );
      ( "sweep",
        List.map to_alcotest
          [ prop_sweep_matches_scalar; prop_sweep_generator_matches_scalar ] );
    ]
