(* Properties of the packed-int interaction kernel: the immediate
   encoding round-trips, its order agrees with the accessors, and a
   frozen schedule shared across algorithms behaves exactly like a
   schedule rebuilt for every run. Also cross-validates the bitvector
   brute-force sweep against the original set-based implementation. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Engine = Doda_core.Engine
module Algorithms = Doda_core.Algorithms
module Theory = Doda_core.Theory
module Brute_force = Doda_core.Brute_force
module Prng = Doda_prng.Prng

let count = 300

(* Distinct node pair up to the largest id the packing supports. *)
let pair_arb =
  let gen =
    QCheck.Gen.(
      map2
        (fun a b -> (a, b))
        (int_range 0 Interaction.max_node_id)
        (int_range 0 Interaction.max_node_id))
  in
  QCheck.make ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b) gen

let prop_roundtrip =
  QCheck.Test.make ~count ~name:"packed: to_int/of_int round-trips" pair_arb
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let i = Interaction.make a b in
      let j = Interaction.of_int (Interaction.to_int i) in
      Interaction.equal i j
      && Interaction.u j = Stdlib.min a b
      && Interaction.v j = Stdlib.max a b)

let prop_of_int_rejects_junk =
  QCheck.Test.make ~count ~name:"packed: of_int rejects non-interactions"
    QCheck.(int_range 0 Interaction.max_node_id)
    (fun v ->
      (* u = v is never a valid packing (self-interaction), and u > v
         breaks normalisation: both must be refused. *)
      let self = (v lsl 31) lor v in
      let ok p = match Interaction.of_int p with exception _ -> false | _ -> true in
      (not (ok self))
      && (v = 0 || not (ok ((v lsl 31) lor (v - 1)))))

let prop_order_consistent =
  QCheck.Test.make ~count ~name:"packed: compare is lexicographic on (u, v)"
    QCheck.(pair pair_arb pair_arb)
    (fun ((a1, b1), (a2, b2)) ->
      QCheck.assume (a1 <> b1 && a2 <> b2);
      let i1 = Interaction.make a1 b1 and i2 = Interaction.make a2 b2 in
      let lex =
        match Stdlib.compare (Interaction.u i1) (Interaction.u i2) with
        | 0 -> Stdlib.compare (Interaction.v i1) (Interaction.v i2)
        | c -> c
      in
      let sign c = Stdlib.compare c 0 in
      sign (Interaction.compare i1 i2) = sign lex
      && Interaction.equal i1 i2 = (Interaction.compare i1 i2 = 0)
      && ((not (Interaction.equal i1 i2))
         || Interaction.hash i1 = Interaction.hash i2))

(* ------------------------------------------------------------------ *)
(* Frozen shared schedule vs per-run rebuilt schedules.                *)

let instance_gen =
  QCheck.Gen.(
    map3
      (fun n len seed -> (n, len, seed))
      (int_range 3 10) (int_range 10 400) (int_range 0 1_000_000))

let instance_arb =
  QCheck.make
    ~print:(fun (n, len, seed) -> Printf.sprintf "(n=%d, len=%d, seed=%d)" n len seed)
    instance_gen

let algos_for n =
  [
    Algorithms.waiting;
    Algorithms.gathering;
    Algorithms.waiting_greedy ~tau:(Theory.recommended_tau n);
    Algorithms.full_knowledge;
  ]

let same_result (a : Engine.result) (b : Engine.result) =
  a.duration = b.duration
  && a.transmission_count = b.transmission_count
  && a.holders = b.holders

let prop_frozen_shared_equals_rebuilt =
  QCheck.Test.make ~count:150
    ~name:"schedule: frozen shared run = per-run rebuilt run" instance_arb
    (fun (n, len, seed) ->
      let s = Generators.uniform_sequence (Prng.create seed) ~n ~length:len in
      let shared = Schedule.freeze (Schedule.of_sequence ~n ~sink:0 s) in
      List.for_all
        (fun algo ->
          let fresh = Schedule.of_sequence ~n ~sink:0 s in
          same_result
            (Engine.run ~record:`Count algo shared)
            (Engine.run ~record:`Count algo fresh))
        (algos_for n))

let prop_freeze_preserves_content =
  QCheck.Test.make ~count:150 ~name:"schedule: freeze preserves content and oracle"
    instance_arb
    (fun (n, len, seed) ->
      let s = Generators.uniform_sequence (Prng.create seed) ~n ~length:len in
      let live = Schedule.of_sequence ~n ~sink:0 s in
      let frozen = Schedule.freeze live in
      Schedule.is_frozen frozen
      && Schedule.length frozen = Some len
      && List.for_all
           (fun t ->
             Interaction.equal (Schedule.get_exn live t) (Schedule.get_exn frozen t))
           (List.init len (fun t -> t))
      && List.for_all
           (fun node ->
             List.for_all
               (fun after ->
                 Schedule.next_meet_with_sink live ~node ~after ~limit:len
                 = Schedule.next_meet_with_sink frozen ~node ~after ~limit:len)
               [ 0; len / 2; len ])
           (List.init n (fun u -> u)))

(* ------------------------------------------------------------------ *)
(* Bitvector brute force vs the original set-based sweep.              *)

module Int_set = Set.Make (Int)

let ref_successors ~sink mask a b =
  let bit x = 1 lsl x in
  if mask land bit a <> 0 && mask land bit b <> 0 then begin
    let acc = [ mask ] in
    let acc = if a <> sink then mask lxor bit a :: acc else acc in
    if b <> sink then mask lxor bit b :: acc else acc
  end
  else [ mask ]

let ref_step ~sink states i =
  let a = Interaction.u i and b = Interaction.v i in
  Int_set.fold
    (fun mask acc ->
      List.fold_left
        (fun acc m -> Int_set.add m acc)
        acc
        (ref_successors ~sink mask a b))
    states Int_set.empty

let ref_optimal_duration ~n ~sink s ~start =
  let goal = 1 lsl sink in
  let full = (1 lsl n) - 1 in
  if full = goal then Some start
  else begin
    let len = Sequence.length s in
    let states = ref (Int_set.singleton full) in
    let result = ref None in
    let t = ref start in
    while !result = None && !t < len do
      states := ref_step ~sink !states (Sequence.get s !t);
      if Int_set.mem goal !states then result := Some !t;
      incr t
    done;
    !result
  end

let ref_reachable_states ~n ~sink s =
  let full = (1 lsl n) - 1 in
  let states = ref (Int_set.singleton full) in
  Sequence.iteri (fun _ i -> states := ref_step ~sink !states i) s;
  Int_set.elements !states

let small_instance_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n len seed -> (n, len, seed))
        (int_range 2 7) (int_range 1 40) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, len, seed) -> Printf.sprintf "(n=%d, len=%d, seed=%d)" n len seed)
    gen

let prop_brute_force_matches_reference =
  QCheck.Test.make ~count:200
    ~name:"brute force: bitvector sweep = set-based reference" small_instance_arb
    (fun (n, len, seed) ->
      let rng = Prng.create seed in
      let s = Generators.uniform_sequence rng ~n ~length:len in
      let sink = Prng.int rng n in
      let start = Prng.int rng len in
      Brute_force.optimal_duration ~n ~sink s ~start
      = ref_optimal_duration ~n ~sink s ~start
      && Brute_force.reachable_states ~n ~sink s = ref_reachable_states ~n ~sink s)

(* ------------------------------------------------------------------ *)

let to_alcotest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "packed"
    [
      ( "encoding",
        List.map to_alcotest
          [ prop_roundtrip; prop_of_int_rejects_junk; prop_order_consistent ] );
      ( "schedule",
        List.map to_alcotest
          [ prop_frozen_shared_equals_rebuilt; prop_freeze_preserves_content ] );
      ( "brute-force",
        List.map to_alcotest [ prop_brute_force_matches_reference ] );
    ]
