(* The million-node run-core pieces, cross-checked against the
   materialised baselines they replace: chunked streaming schedules
   must be run-identical to [of_fun]/[of_sequence] ones, the sparse
   brute-force backing must agree with the dense bitvector, checkpoint
   resume must reproduce an uninterrupted sweep bit-identically, and
   the packed-encoding node-count guard and resource gauges must hold
   their contracts. *)

module Interaction = Doda_dynamic.Interaction
module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Generators = Doda_dynamic.Generators
module Trace = Doda_dynamic.Trace
module Engine = Doda_core.Engine
module Batch_engine = Doda_core.Batch_engine
module Run_log = Doda_core.Run_log
module Algorithms = Doda_core.Algorithms
module Brute_force = Doda_core.Brute_force
module Coin_algorithms = Doda_core.Coin_algorithms
module Experiment = Doda_sim.Experiment
module Checkpoint = Doda_sim.Checkpoint
module Pool = Doda_sim.Pool
module Instrument = Doda_obs.Instrument
module Metrics = Doda_obs.Metrics
module Resource = Doda_obs.Resource
module Prng = Doda_prng.Prng

let same_result (a : Engine.result) (b : Engine.result) =
  a.stop = b.stop && a.duration = b.duration && a.steps = b.steps
  && a.transmission_count = b.transmission_count
  && a.holders = b.holders
  && Run_log.to_list a.log = Run_log.to_list b.log

let instance_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n block seed -> (n, block, seed))
        (int_range 3 12) (int_range 1 9) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, block, seed) ->
      Printf.sprintf "(n=%d, block=%d, seed=%d)" n block seed)
    gen

(* Chunked vs materialised, unbounded generators: the same draw stream
   behind [of_fun] and [of_fun_chunked] (tiny blocks, to cross refill
   boundaries often) must produce identical runs — stop reason,
   duration, steps, log, holders. *)
let prop_chunked_matches_of_fun =
  QCheck.Test.make ~count:100
    ~name:"chunked schedule = of_fun schedule (gathering, waiting)"
    instance_arb
    (fun (n, block, seed) ->
      let max_steps = (40 * n * n) + 100 in
      List.for_all
        (fun algo ->
          let lazy_sched =
            Schedule.of_fun ~n ~sink:0
              (Generators.uniform (Prng.create seed) ~n)
          in
          let chunked =
            Schedule.of_fun_chunked ~block ~n ~sink:0
              (Generators.uniform (Prng.create seed) ~n)
          in
          let a = Engine.run ~record:`All ~max_steps algo lazy_sched in
          let b = Engine.run ~record:`All ~max_steps algo chunked in
          same_result a b)
        [ Algorithms.gathering; Algorithms.waiting ])

(* Finite chunked ([?length], the [Trace.stream] shape) vs the same
   interactions as an eager [of_sequence]: identical runs including
   the exhaustion stop. *)
let prop_finite_chunked_matches_sequence =
  QCheck.Test.make ~count:100
    ~name:"finite chunked schedule = of_sequence schedule"
    instance_arb
    (fun (n, block, seed) ->
      let len = 3 * n in
      let s = Generators.uniform_sequence (Prng.create seed) ~n ~length:len in
      let eager = Schedule.of_sequence ~n ~sink:0 s in
      let chunked =
        Schedule.of_fun_chunked ~block ~length:len ~n ~sink:0
          (fun t -> Sequence.get s t)
      in
      let a = Engine.run ~record:`All Algorithms.waiting eager in
      let b = Engine.run ~record:`All Algorithms.waiting chunked in
      same_result a b)

(* The batch engine's generator decode path reads through
   [stepper_get], which must serve chunked schedules too: lockstep
   replications over a chunked schedule equal the scalar runs. *)
let prop_batch_on_chunked =
  QCheck.Test.make ~count:60
    ~name:"batch run_reps on chunked schedule = scalar Engine.run"
    instance_arb
    (fun (n, block, seed) ->
      let max_steps = (40 * n * n) + 100 in
      let chunked () =
        Schedule.of_fun_chunked ~block ~n ~sink:0
          (Generators.uniform (Prng.create seed) ~n)
      in
      let scalar = Engine.run ~max_steps Algorithms.gathering (chunked ()) in
      let batch =
        Batch_engine.run_reps ~max_steps Algorithms.gathering (chunked ()) 5
      in
      Array.for_all (fun b -> same_result scalar b) batch)

(* The pipelined producer must not change a single draw: a prefetched
   chunked schedule is run-identical to a plain one, both with an
   inline submit (every fill stolen by the consumer) and through a
   real worker pool ([Pool.pipeline]). *)
let prop_prefetch_matches_plain =
  QCheck.Test.make ~count:40
    ~name:"prefetched chunked schedule = plain chunked schedule"
    instance_arb
    (fun (n, block, seed) ->
      let max_steps = (40 * n * n) + 100 in
      let chunked () =
        Schedule.of_fun_chunked ~block ~n ~sink:0
          (Generators.uniform (Prng.create seed) ~n)
      in
      let run sched = Engine.run ~record:`All ~max_steps Algorithms.gathering sched in
      let plain = run (chunked ()) in
      let inline =
        let s = chunked () in
        Schedule.chunk_prefetch s ~submit:(fun f -> f ()) ~now:(fun () -> 0);
        run s
      in
      let pooled =
        Pool.with_pool ~jobs:2 (fun pool ->
            let s = chunked () in
            Pool.pipeline pool s;
            run s)
      in
      same_result plain inline && same_result plain pooled)

(* Chunk-stream counters: refills count every installed block (and so
   are deterministic at any job count); the pipeline counters only
   ever credit a subset of them. *)
let test_chunk_stats () =
  let len = 100 and block = 8 in
  let blocks = (len + block - 1) / block in
  let mk () =
    Schedule.of_fun_chunked ~block ~length:len ~n:4 ~sink:0 (fun t ->
        Interaction.make 0 ((t mod 3) + 1))
  in
  let drain s =
    for t = 0 to len - 1 do
      ignore (Schedule.get_exn s t)
    done;
    Schedule.chunk_stats s
  in
  let plain = drain (mk ()) in
  Alcotest.(check int) "refills = ceil(len/block)" blocks plain.Schedule.refills;
  Alcotest.(check int) "no producer, nothing prefetched" 0
    plain.Schedule.prefetched;
  let pf = mk () in
  Schedule.chunk_prefetch pf ~submit:(fun f -> f ()) ~now:(fun () -> 0);
  Schedule.chunk_prefetch pf ~submit:(fun f -> f ()) ~now:(fun () -> 0);
  (* idempotent: the second call must not add a second producer *)
  let piped = drain pf in
  Alcotest.(check int) "refills unchanged under prefetch" blocks
    piped.Schedule.refills;
  Alcotest.(check bool) "prefetched in (0, refills]" true
    (piped.Schedule.prefetched > 0
    && piped.Schedule.prefetched <= piped.Schedule.refills);
  let z = Schedule.chunk_stats (Schedule.of_fun ~n:4 ~sink:0 (fun _ -> Interaction.dummy)) in
  Alcotest.(check int) "non-chunked schedules report zero refills" 0
    z.Schedule.refills

(* Generator-call discipline: exactly once per index, in increasing
   order, never more than one block past the highest time read. *)
let test_chunked_gen_discipline () =
  let calls = ref [] in
  let block = 8 in
  let sched =
    Schedule.of_fun_chunked ~block ~n:4 ~sink:0 (fun t ->
        calls := t :: !calls;
        Interaction.make 0 ((t mod 3) + 1))
  in
  ignore (Schedule.get_exn sched 0);
  let highest = List.fold_left Stdlib.max (-1) !calls in
  Alcotest.(check bool) "at most one block decoded ahead" true
    (highest < block);
  ignore (Schedule.get_exn sched 20);
  let sorted = List.sort compare !calls in
  Alcotest.(check (list int)) "each index decoded exactly once, in order"
    (List.init (List.length sorted) Fun.id)
    (List.rev !calls)

let test_chunked_errors () =
  let mk () =
    Schedule.of_fun_chunked ~block:4 ~n:4 ~sink:0 (fun t ->
        Interaction.make 0 ((t mod 3) + 1))
  in
  let rewound = mk () in
  ignore (Schedule.get_exn rewound 10);
  (* The message must name the failing operation, explain forward-only,
     and point at a replayable alternative (no --stream). *)
  (match Schedule.get_exn rewound 0 with
  | exception Invalid_argument msg ->
      let has needle =
        let nl = String.length needle and ml = String.length msg in
        let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
        Alcotest.(check bool)
          (Printf.sprintf "rewind message mentions %S" needle)
          true (at 0)
      in
      has "Schedule.get_exn";
      has "forward-only";
      has "time 0 is before the current block at 8";
      has "--stream"
  | _ -> Alcotest.fail "rewind should raise Invalid_argument");
  let raises name f =
    match f (mk ()) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should raise Invalid_argument" name
  in
  raises "freeze" (fun s -> ignore (Schedule.freeze s));
  raises "prefix" (fun s -> ignore (Schedule.prefix s 3));
  raises "next_meet_with_sink" (fun s ->
      ignore (Schedule.next_meet_with_sink s ~node:1 ~after:0 ~limit:10));
  raises "meets_with_sink_upto" (fun s ->
      ignore (Schedule.meets_with_sink_upto s 3));
  (* Finite horizon: reading past [length] is an ordinary end. *)
  let fin =
    Schedule.of_fun_chunked ~block:4 ~length:6 ~n:4 ~sink:0 (fun t ->
        Interaction.make 0 ((t mod 3) + 1))
  in
  Alcotest.(check (option int)) "finite length" (Some 6) (Schedule.length fin);
  Alcotest.(check bool) "get past end is None" true
    (Schedule.get fin 6 = None)

(* Satellite (a): the packed encoding bounds n; constructors must fail
   fast — before allocating per-node state — with a message naming the
   limit. *)
let test_node_count_guard () =
  let over = Interaction.max_node_id + 2 in
  let expect f =
    match f () with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          "error names the encoding limit" true
          (String.length msg > 0
          && String.sub msg 0 (Stdlib.min 11 (String.length msg))
             = "Schedule: n")
    | _ -> Alcotest.fail "oversized n should raise Invalid_argument"
  in
  expect (fun () ->
      Schedule.of_fun ~n:over ~sink:0 (fun _ -> Interaction.dummy));
  expect (fun () ->
      Schedule.of_fun_chunked ~n:over ~sink:0 (fun _ -> Interaction.dummy));
  (* The largest representable n is accepted (no arrays of that size
     are allocated up front). *)
  let s =
    Schedule.of_fun_chunked ~n:(Interaction.max_node_id + 1) ~sink:0
      (fun _ -> Interaction.dummy)
  in
  Alcotest.(check int) "max n accepted" (Interaction.max_node_id + 1)
    (Schedule.n s)

(* Sparse vs dense brute force: identical optima and reachable-state
   sets wherever the dense bitvector is defined. *)
let bf_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun n len seed -> (n, len, seed))
        (int_range 3 9) (int_range 3 40) (int_range 0 1_000_000))
  in
  QCheck.make
    ~print:(fun (n, len, seed) ->
      Printf.sprintf "(n=%d, len=%d, seed=%d)" n len seed)
    gen

let prop_sparse_matches_dense =
  QCheck.Test.make ~count:150
    ~name:"brute force: sparse backing = dense backing"
    bf_arb
    (fun (n, len, seed) ->
      let rng = Prng.create seed in
      let s = Generators.uniform_sequence rng ~n ~length:len in
      let sink = Prng.int rng n in
      Brute_force.optimal_duration_dense ~n ~sink s ~start:0
      = Brute_force.optimal_duration_sparse ~n ~sink s ~start:0
      && Brute_force.reachable_states_dense ~n ~sink s
         = Brute_force.reachable_states_sparse ~n ~sink s)

(* ------------------------------------------------------------------ *)
(* Checkpoints.                                                       *)

let temp_path () =
  let path = Filename.temp_file "doda_ckpt" ".txt" in
  Sys.remove path;
  path

let test_checkpoint_roundtrip () =
  let path = temp_path () in
  let cp = Checkpoint.create ~path ~key:"sweep v1 test" in
  Alcotest.(check int) "fresh file is empty" 0 (Checkpoint.completed cp);
  Checkpoint.record cp 0 "d41";
  Checkpoint.record cp 2 "f";
  Checkpoint.close cp;
  let cp = Checkpoint.create ~path ~key:"sweep v1 test" in
  Alcotest.(check int) "two slots survive reopen" 2 (Checkpoint.completed cp);
  Alcotest.(check (option string)) "slot 0" (Some "d41") (Checkpoint.find cp 0);
  Alcotest.(check (option string)) "slot 1" None (Checkpoint.find cp 1);
  Alcotest.(check (option string)) "slot 2" (Some "f") (Checkpoint.find cp 2);
  (* A sub view addresses the parent's slots at an offset. *)
  let view = Checkpoint.sub cp ~base:10 in
  Checkpoint.record view 2 "d7";
  Alcotest.(check (option string)) "sub slot 2 = parent slot 12" (Some "d7")
    (Checkpoint.find cp 12);
  Checkpoint.close cp;
  Sys.remove path

let test_checkpoint_key_mismatch () =
  let path = temp_path () in
  let cp = Checkpoint.create ~path ~key:"key A" in
  Checkpoint.record cp 0 "d1";
  Checkpoint.close cp;
  let cp = Checkpoint.create ~path ~key:"key B" in
  Alcotest.(check int) "mismatched key restarts empty" 0
    (Checkpoint.completed cp);
  Checkpoint.close cp;
  Sys.remove path

let test_checkpoint_torn_line () =
  let path = temp_path () in
  let cp = Checkpoint.create ~path ~key:"torn" in
  Checkpoint.record cp 0 "d5";
  Checkpoint.close cp;
  (* Simulate a crash mid-append: a final line without its newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "1 d9";
  close_out oc;
  let cp = Checkpoint.create ~path ~key:"torn" in
  Alcotest.(check (option string)) "complete slot kept" (Some "d5")
    (Checkpoint.find cp 0);
  Alcotest.(check (option string)) "torn slot dropped" None
    (Checkpoint.find cp 1);
  (* The dropped slot can be re-recorded after the salvage. *)
  Checkpoint.record cp 1 "d9";
  Checkpoint.close cp;
  let cp = Checkpoint.create ~path ~key:"torn" in
  Alcotest.(check (option string)) "re-recorded slot" (Some "d9")
    (Checkpoint.find cp 1);
  Checkpoint.close cp;
  Sys.remove path

(* Kill-and-resume, end to end: a checkpointed sweep interrupted after
   k replications and resumed must equal — sample for sample — both
   its own uninterrupted run and the never-checkpointed baseline. *)
let test_checkpoint_resume_bit_identical () =
  let n = 10 and reps = 8 and seed = 2016 in
  let factory rng =
    Schedule.of_fun ~n ~sink:0 (Generators.uniform rng ~n)
  in
  let run ?checkpoint () =
    Experiment.run_schedule_factory ?checkpoint ~jobs:1 ~replications:reps
      ~seed ~max_steps:(40 * n * n) ~label:"resume" ~n factory
      Algorithms.gathering
  in
  let baseline = run () in
  let path = temp_path () in
  let key = "resume-test v1" in
  let cp = Checkpoint.create ~path ~key in
  let full = run ~checkpoint:cp () in
  Checkpoint.close cp;
  Alcotest.(check (array (float 0.0))) "checkpointed = baseline"
    baseline.Experiment.samples full.Experiment.samples;
  (* Interrupt: keep only the header and the first 3 recorded slots. *)
  let lines =
    let ic = open_in path in
    let rec all acc =
      match input_line ic with
      | line -> all (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    all []
  in
  let kept = List.filteri (fun i _ -> i < 4) lines in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  close_out oc;
  let cp = Checkpoint.create ~path ~key in
  Alcotest.(check int) "3 slots survive the interruption" 3
    (Checkpoint.completed cp);
  let resumed = run ~checkpoint:cp () in
  Checkpoint.close cp;
  Alcotest.(check (array (float 0.0))) "resumed = baseline"
    baseline.Experiment.samples resumed.Experiment.samples;
  Alcotest.(check int) "failures preserved" baseline.Experiment.failures
    resumed.Experiment.failures;
  Sys.remove path

(* Same kill-and-resume discipline for the streamed batched sweep:
   one shared chunked schedule, lockstep lanes, a coin algorithm so
   every lane actually consumes its own slot stream. The interrupted
   run must rebuild the identical schedule (first master split) and
   hand the surviving lanes exactly their original streams. *)
let test_batched_factory_resume_bit_identical () =
  let n = 10 and reps = 8 and seed = 2016 in
  let algo = Coin_algorithms.coin_waiting (Prng.create 77) ~p:0.4 in
  let factory rng =
    Schedule.of_fun_chunked ~block:16 ~n ~sink:0 (Generators.uniform rng ~n)
  in
  let run ?checkpoint () =
    Experiment.run_batched_factory ?checkpoint ~replications:reps ~seed
      ~max_steps:(40 * n * n) ~label:"batch-resume" ~n factory algo
  in
  let baseline = run () in
  let path = temp_path () in
  let key = "batch-resume-test v1" in
  let cp = Checkpoint.create ~path ~key in
  let full = run ~checkpoint:cp () in
  Checkpoint.close cp;
  Alcotest.(check (array (float 0.0))) "checkpointed = baseline"
    baseline.Experiment.samples full.Experiment.samples;
  (* Interrupt: keep only the header and the first 3 recorded slots. *)
  let lines =
    let ic = open_in path in
    let rec all acc =
      match input_line ic with
      | line -> all (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    all []
  in
  let kept = List.filteri (fun i _ -> i < 4) lines in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) kept;
  close_out oc;
  let cp = Checkpoint.create ~path ~key in
  Alcotest.(check int) "3 slots survive the interruption" 3
    (Checkpoint.completed cp);
  let resumed = run ~checkpoint:cp () in
  Checkpoint.close cp;
  Alcotest.(check (array (float 0.0))) "resumed = baseline"
    baseline.Experiment.samples resumed.Experiment.samples;
  Alcotest.(check int) "failures preserved" baseline.Experiment.failures
    resumed.Experiment.failures;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Satellite (b): resource gauges.                                    *)

let test_resource_probes () =
  Alcotest.(check bool) "heap_words positive" true (Resource.heap_words () > 0);
  Alcotest.(check bool) "top_heap >= heap" true
    (Resource.top_heap_words () >= Resource.heap_words ());
  if Sys.file_exists "/proc/self/status" then begin
    (match Resource.rss_bytes () with
    | Some b -> Alcotest.(check bool) "rss positive" true (b > 0)
    | None -> Alcotest.fail "rss_bytes should parse /proc/self/status");
    (* No ordering check against the current rss: the kernel commits
       the high-water mark lazily, so the two reads can race. *)
    match Resource.rss_peak_bytes () with
    | Some peak -> Alcotest.(check bool) "peak positive" true (peak > 0)
    | None -> Alcotest.fail "rss_peak_bytes should parse /proc/self/status"
  end

let gauge_value ins name =
  List.assoc_opt name (Metrics.dump (Instrument.metrics ins))

let test_instrument_resources () =
  let ins = Instrument.create ~resources:true () in
  Instrument.with_span ins "work" (fun () -> ignore (Array.make 1000 0));
  (match gauge_value ins "obs.heap_words" with
  | Some (Metrics.Gauge_v (Some v)) ->
      Alcotest.(check bool) "heap gauge sampled" true (v > 0)
  | _ -> Alcotest.fail "obs.heap_words gauge missing after span");
  (* Default instruments sample nothing: the sweep --metrics summary
     stays byte-identical across job counts. *)
  let plain = Instrument.create () in
  Instrument.with_span plain "work" Fun.id;
  Alcotest.(check bool) "no gauges without ~resources" true
    (gauge_value plain "obs.heap_words" = None);
  if Sys.file_exists "/proc/self/status" then
    match gauge_value ins "obs.rss_bytes" with
    | Some (Metrics.Gauge_v (Some v)) ->
        Alcotest.(check bool) "rss gauge sampled" true (v > 0)
    | _ -> Alcotest.fail "obs.rss_bytes gauge missing after span"

(* ------------------------------------------------------------------ *)
(* Trace streaming: the two-pass reader serves the same interactions
   as the eager loader, with the same length and max node.            *)

let test_trace_stream_matches_load () =
  let n = 7 in
  let s = Generators.uniform_sequence (Prng.create 99) ~n ~length:50 in
  let path = Filename.temp_file "doda_trace" ".txt" in
  Trace.save path s;
  let loaded = Trace.load path in
  let gen, total, max_node = Trace.stream path in
  Alcotest.(check int) "length" (Sequence.length loaded) total;
  Alcotest.(check int) "max node" (Sequence.max_node loaded) max_node;
  for t = 0 to total - 1 do
    if not (Interaction.equal (gen t) (Sequence.get loaded t)) then
      Alcotest.failf "interaction %d differs" t
  done;
  Sys.remove path

let () =
  Alcotest.run "scale"
    [
      ( "chunked",
        [
          QCheck_alcotest.to_alcotest prop_chunked_matches_of_fun;
          QCheck_alcotest.to_alcotest prop_finite_chunked_matches_sequence;
          QCheck_alcotest.to_alcotest prop_batch_on_chunked;
          QCheck_alcotest.to_alcotest prop_prefetch_matches_plain;
          Alcotest.test_case "chunk stats" `Quick test_chunk_stats;
          Alcotest.test_case "generator call discipline" `Quick
            test_chunked_gen_discipline;
          Alcotest.test_case "forward-only and oracle errors" `Quick
            test_chunked_errors;
          Alcotest.test_case "node-count guard" `Quick test_node_count_guard;
        ] );
      ( "sparse",
        [ QCheck_alcotest.to_alcotest prop_sparse_matches_dense ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip and sub views" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "key mismatch restarts" `Quick
            test_checkpoint_key_mismatch;
          Alcotest.test_case "torn final line dropped" `Quick
            test_checkpoint_torn_line;
          Alcotest.test_case "kill-and-resume bit-identical" `Quick
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "batched sweep kill-and-resume bit-identical"
            `Quick test_batched_factory_resume_bit_identical;
        ] );
      ( "resources",
        [
          Alcotest.test_case "probes" `Quick test_resource_probes;
          Alcotest.test_case "instrument gauges" `Quick
            test_instrument_resources;
        ] );
      ( "trace",
        [
          Alcotest.test_case "stream matches load" `Quick
            test_trace_stream_matches_load;
        ] );
    ]
