(* Tests for the dynamic-graph model: interactions, sequences,
   schedules (with meetTime index), generators, underlying graphs,
   temporal reachability, mobility, trace I/O. *)

module Interaction = Doda_dynamic.Interaction
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Generators = Doda_dynamic.Generators
module Underlying = Doda_dynamic.Underlying
module Temporal = Doda_dynamic.Temporal
module Mobility = Doda_dynamic.Mobility
module Trace = Doda_dynamic.Trace
module Vec = Doda_dynamic.Vec
module Static_graph = Doda_graph.Static_graph
module Prng = Doda_prng.Prng

let seq pairs = Sequence.of_pairs pairs

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_basic () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 50" 50 (Vec.get v 50);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Vec.set v 0 42;
  Alcotest.(check int) "set" 42 (Vec.get v 0);
  Alcotest.(check int) "to_array length" 100 (Array.length (Vec.to_array v));
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_array ~dummy:0 [| 1; 2; 3 |] in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 3))

(* ------------------------------------------------------------------ *)
(* Interaction                                                         *)

let test_interaction_normalised () =
  let i = Interaction.make 5 2 in
  Alcotest.(check int) "u" 2 (Interaction.u i);
  Alcotest.(check int) "v" 5 (Interaction.v i);
  Alcotest.(check bool) "involves 5" true (Interaction.involves i 5);
  Alcotest.(check bool) "involves 3" false (Interaction.involves i 3);
  Alcotest.(check int) "other of 2" 5 (Interaction.other i 2);
  Alcotest.(check bool) "equal" true
    (Interaction.equal (Interaction.make 2 5) (Interaction.make 5 2))

let test_interaction_rejects_self () =
  Alcotest.check_raises "self"
    (Invalid_argument "Interaction.make: self-interaction") (fun () ->
      ignore (Interaction.make 3 3))

let test_interaction_other_rejects_stranger () =
  let i = Interaction.make 1 2 in
  Alcotest.check_raises "stranger"
    (Invalid_argument "Interaction.other: node not an endpoint") (fun () ->
      ignore (Interaction.other i 7))

(* ------------------------------------------------------------------ *)
(* Sequence                                                            *)

let test_sequence_ops () =
  let s = seq [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check int) "length" 3 (Sequence.length s);
  Alcotest.(check bool) "get" true
    (Interaction.equal (Sequence.get s 1) (Interaction.make 1 2));
  Alcotest.(check int) "max node" 2 (Sequence.max_node s);
  Alcotest.(check int) "count involving 1" 2 (Sequence.count_involving s 1);
  let r = Sequence.rev s in
  Alcotest.(check bool) "rev first" true
    (Interaction.equal (Sequence.get r 0) (Interaction.make 0 2));
  let doubled = Sequence.repeat s 2 in
  Alcotest.(check int) "repeat" 6 (Sequence.length doubled);
  let s2 = Sequence.sub s ~pos:1 ~len:2 in
  Alcotest.(check int) "sub" 2 (Sequence.length s2)

let test_sequence_interactions_of () =
  let s = seq [ (0, 1); (1, 2); (0, 2); (1, 2) ] in
  let future = Sequence.interactions_of s 2 in
  Alcotest.(check (list int)) "times for node 2" [ 1; 2; 3 ]
    (List.map fst future)

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)

let test_schedule_finite () =
  let s = Schedule.of_sequence ~n:3 ~sink:0 (seq [ (0, 1); (1, 2) ]) in
  Alcotest.(check (option int)) "length" (Some 2) (Schedule.length s);
  Alcotest.(check bool) "get 0" true
    (Interaction.equal (Option.get (Schedule.get s 0)) (Interaction.make 0 1));
  Alcotest.(check bool) "past end" true (Schedule.get s 2 = None)

let test_schedule_lazy_materialisation () =
  let calls = ref 0 in
  let gen t =
    incr calls;
    Alcotest.(check int) "in order" (!calls - 1) t;
    Interaction.make (t mod 2) 2
  in
  let s = Schedule.of_fun ~n:3 ~sink:0 gen in
  ignore (Schedule.get s 4);
  Alcotest.(check int) "five calls" 5 !calls;
  ignore (Schedule.get s 2);
  Alcotest.(check int) "memoised" 5 !calls;
  Alcotest.(check int) "materialized" 5 (Schedule.materialized s)

let test_schedule_meet_time () =
  (* sink 0; node 2 meets it at 1 and 4; node 1 at 2. *)
  let s =
    Schedule.of_sequence ~n:3 ~sink:0
      (seq [ (1, 2); (0, 2); (0, 1); (1, 2); (0, 2) ])
  in
  let meet node after limit = Schedule.next_meet_with_sink s ~node ~after ~limit in
  Alcotest.(check (option int)) "node2 after -1" (Some 1) (meet 2 (-1) 10);
  Alcotest.(check (option int)) "node2 after 1" (Some 4) (meet 2 1 10);
  Alcotest.(check (option int)) "node2 after 4" None (meet 2 4 10);
  Alcotest.(check (option int)) "node1 after 0" (Some 2) (meet 1 0 10);
  Alcotest.(check (option int)) "capped" None (meet 2 1 3);
  (* The sink's meet time is the identity (clipped by limit). *)
  Alcotest.(check (option int)) "sink" (Some 3) (meet 0 2 10)

let test_schedule_meet_time_matches_scan () =
  let rng = Prng.create 3 in
  let n = 8 in
  let raw = Generators.uniform_sequence rng ~n ~length:2000 in
  let s = Schedule.of_sequence ~n ~sink:0 raw in
  let naive node after limit =
    let rec scan t =
      if t > limit || t >= Sequence.length raw then None
      else
        let i = Sequence.get raw t in
        if Interaction.involves i node && Interaction.involves i 0 then Some t
        else scan (t + 1)
    in
    scan (after + 1)
  in
  for trial = 1 to 200 do
    let node = 1 + Prng.int rng (n - 1) in
    let after = Prng.int rng 1500 - 1 in
    let limit = after + 1 + Prng.int rng 400 in
    let limit = Stdlib.min limit 1999 in
    Alcotest.(check (option int))
      (Printf.sprintf "trial %d" trial)
      (naive node after limit)
      (Schedule.next_meet_with_sink s ~node ~after ~limit)
  done

let test_schedule_prefix () =
  let rng = Prng.create 4 in
  let s = Schedule.of_fun ~n:5 ~sink:0 (Generators.uniform rng ~n:5) in
  let p = Schedule.prefix s 50 in
  Alcotest.(check int) "prefix length" 50 (Sequence.length p);
  (* Prefix matches the schedule. *)
  for t = 0 to 49 do
    Alcotest.(check bool) "same" true
      (Interaction.equal (Sequence.get p t) (Option.get (Schedule.get s t)))
  done

let test_schedule_meets_upto () =
  let s =
    Schedule.of_sequence ~n:4 ~sink:0
      (seq [ (0, 1); (0, 2); (1, 2); (0, 1); (0, 3) ])
  in
  let counts = Schedule.meets_with_sink_upto s 4 in
  Alcotest.(check int) "node1" 2 counts.(1);
  Alcotest.(check int) "node2" 1 counts.(2);
  Alcotest.(check int) "node3" 0 counts.(3);
  Alcotest.(check int) "sink total" 3 counts.(0)

let test_schedule_rejects_big_ids () =
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Schedule: interaction mentions a node id >= n") (fun () ->
      ignore (Schedule.of_sequence ~n:3 ~sink:0 (seq [ (0, 5) ])))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let test_round_robin_covers_all_pairs () =
  let n = 5 in
  let gen = Generators.round_robin ~n in
  let period = n * (n - 1) / 2 in
  let seen = Hashtbl.create 16 in
  for t = 0 to period - 1 do
    Hashtbl.replace seen (Interaction.to_pair (gen t)) ()
  done;
  Alcotest.(check int) "all pairs in one period" period (Hashtbl.length seen);
  (* Periodicity. *)
  Alcotest.(check bool) "periodic" true
    (Interaction.equal (gen 0) (gen period))

let test_all_pairs () =
  let s = Generators.all_pairs ~n:4 in
  Alcotest.(check int) "6 pairs" 6 (Sequence.length s)

let test_uniform_statistics () =
  let rng = Prng.create 5 in
  let n = 6 in
  let counts = Hashtbl.create 16 in
  let draws = 60_000 in
  for t = 0 to draws - 1 do
    let i = Generators.uniform rng ~n t in
    let key = Interaction.to_pair i in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all pairs occur" 15 (Hashtbl.length counts);
  let expected = float_of_int draws /. 15.0 in
  Hashtbl.iter
    (fun _ c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "within 10%" true (dev < 0.1))
    counts

let test_weighted_nodes_bias () =
  let rng = Prng.create 6 in
  let weights = [| 10.0; 1.0; 1.0; 1.0 |] in
  let gen = Generators.weighted_nodes rng ~weights in
  let with0 = ref 0 in
  let draws = 20_000 in
  for t = 0 to draws - 1 do
    if Interaction.involves (gen t) 0 then incr with0
  done;
  let frac = float_of_int !with0 /. float_of_int draws in
  Alcotest.(check bool) "node 0 in most interactions" true (frac > 0.8)

let test_over_graph_respects_edges () =
  let rng = Prng.create 7 in
  let g = Static_graph.path 5 in
  let gen = Generators.over_graph rng g in
  for t = 0 to 999 do
    let i = gen t in
    Alcotest.(check bool) "edge of graph" true
      (Static_graph.has_edge g (Interaction.u i) (Interaction.v i))
  done

let test_periodic_and_stitch () =
  let base = seq [ (0, 1); (1, 2) ] in
  let gen = Generators.periodic base in
  Alcotest.(check bool) "wraps" true (Interaction.equal (gen 2) (gen 0));
  let stitched =
    Generators.stitch [ (2, Generators.periodic base); (1, fun _ -> Interaction.make 0 2) ]
  in
  Alcotest.(check bool) "first segment" true
    (Interaction.equal (stitched 0) (Interaction.make 0 1));
  Alcotest.(check bool) "second segment" true
    (Interaction.equal (stitched 2) (Interaction.make 0 2));
  (* last segment runs forever *)
  Alcotest.(check bool) "beyond" true
    (Interaction.equal (stitched 10) (Interaction.make 0 2))

let test_markov_edges_valid_and_bursty () =
  let rng = Prng.create 31 in
  let n = 10 in
  let gen = Generators.markov_edges rng ~n ~p_on:0.02 ~p_off:0.3 in
  let s = Sequence.of_array (Array.init 5_000 gen) in
  Alcotest.(check bool) "ids in range" true (Sequence.max_node s < n);
  (* Burstiness: a sticky edge process repeats the same pair in
     consecutive steps far more often than i.i.d. uniform sampling
     (uniform: 1/45 ~ 2.2%). *)
  let repeats = ref 0 in
  for t = 1 to Sequence.length s - 1 do
    if Interaction.equal (Sequence.get s t) (Sequence.get s (t - 1)) then incr repeats
  done;
  let frac = float_of_int !repeats /. float_of_int (Sequence.length s - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "repeat fraction %.3f exceeds uniform" frac)
    true (frac > 0.05)

let test_markov_edges_validation () =
  let rng = Prng.create 32 in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Generators.markov_edges: probabilities must lie in (0, 1]")
    (fun () ->
      let _gen : int -> Interaction.t =
        Generators.markov_edges rng ~n:5 ~p_on:0.0 ~p_off:0.5
      in
      ())

let test_of_snapshots () =
  let g1 = Static_graph.of_edges 3 [ (0, 1) ] in
  let g2 = Static_graph.of_edges 3 [ (1, 2); (0, 2) ] in
  let s = Generators.of_snapshots [ g1; g2 ] in
  Alcotest.(check int) "three interactions" 3 (Sequence.length s)

(* ------------------------------------------------------------------ *)
(* Underlying graph                                                    *)

let test_underlying () =
  let s = seq [ (0, 1); (1, 2); (0, 1) ] in
  let g = Underlying.of_sequence ~n:4 s in
  Alcotest.(check int) "two edges" 2 (Static_graph.edge_count g);
  Alcotest.(check bool) "has 0-1" true (Static_graph.has_edge g 0 1);
  Alcotest.(check bool) "isolated 3" true (Static_graph.degree g 3 = 0)

let test_recurrent_edges () =
  (* Edge (0,1) appears every 2 steps; (2,3) only once. *)
  let s = seq [ (0, 1); (2, 3); (0, 1); (1, 2); (0, 1); (1, 2) ] in
  let g = Underlying.recurrent_edges ~n:4 s ~period:3 in
  Alcotest.(check bool) "0-1 recurrent" true (Static_graph.has_edge g 0 1);
  Alcotest.(check bool) "2-3 not recurrent" false (Static_graph.has_edge g 2 3)

(* ------------------------------------------------------------------ *)
(* Temporal                                                            *)

let test_earliest_arrival () =
  let s = seq [ (0, 1); (1, 2); (2, 3) ] in
  let arr = Temporal.earliest_arrival ~n:4 ~src:0 s in
  Alcotest.(check (option int)) "src" (Some (-1)) arr.(0);
  Alcotest.(check (option int)) "node1" (Some 0) arr.(1);
  Alcotest.(check (option int)) "node2" (Some 1) arr.(2);
  Alcotest.(check (option int)) "node3" (Some 2) arr.(3)

let test_earliest_arrival_order_matters () =
  (* Reversed order: info cannot flow backwards in time. *)
  let s = seq [ (2, 3); (1, 2); (0, 1) ] in
  let arr = Temporal.earliest_arrival ~n:4 ~src:0 s in
  Alcotest.(check (option int)) "node1 reached" (Some 2) arr.(1);
  Alcotest.(check (option int)) "node3 unreachable" None arr.(3)

let test_broadcast_completion () =
  let s = seq [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check (option int)) "completes at 2" (Some 2)
    (Temporal.broadcast_completion ~n:4 ~src:0 s);
  Alcotest.(check (option int)) "from 3 incomplete" None
    (Temporal.broadcast_completion ~n:4 ~src:3 (seq [ (0, 1) ]))

let test_temporal_connectivity () =
  let n = 4 in
  let connected = Sequence.repeat (Generators.all_pairs ~n) 2 in
  Alcotest.(check bool) "repeated all-pairs connected" true
    (Temporal.temporally_connected ~n connected);
  Alcotest.(check bool) "single pass may fail" false
    (Temporal.temporally_connected ~n (seq [ (0, 1) ]))

let test_foremost_journey () =
  let s = seq [ (0, 1); (2, 3); (1, 2) ] in
  (match Temporal.foremost_journey ~n:4 ~src:0 ~dst:2 s with
  | Some [ (0, _); (2, _) ] -> ()
  | Some j ->
      Alcotest.fail
        (Printf.sprintf "unexpected journey of %d hops" (List.length j))
  | None -> Alcotest.fail "journey expected");
  Alcotest.(check bool) "same node trivial" true
    (Temporal.foremost_journey ~n:4 ~src:1 ~dst:1 s = Some []);
  Alcotest.(check bool) "unreachable" true
    (Temporal.foremost_journey ~n:4 ~src:3 ~dst:0 s = None)

let test_reverse_flood_duality_window () =
  (* Window sensitivity: {1,2} then {0,1}: convergecast needs both. *)
  let s = seq [ (1, 2); (0, 1) ] in
  Alcotest.(check bool) "full window works" true
    (Temporal.reverse_flood_all_informed ~n:3 ~src:0 s ~lo:0 ~hi:1);
  Alcotest.(check bool) "partial window fails" false
    (Temporal.reverse_flood_all_informed ~n:3 ~src:0 s ~lo:1 ~hi:1)

let test_reachable_set () =
  let s = seq [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ]
    (Temporal.reachable_set ~n:5 ~src:0 s);
  Alcotest.(check (list int)) "horizon 1" [ 0; 1 ]
    (Temporal.reachable_set ~n:5 ~src:0 ~horizon:1 s)

(* ------------------------------------------------------------------ *)
(* Evolving graphs                                                     *)

module Evolving_graph = Doda_dynamic.Evolving_graph

let test_evolving_roundtrip_single_edge () =
  (* The paper's reduction: snapshots with one edge each flatten to the
     same interaction sequence. *)
  let snaps =
    [
      Static_graph.of_edges 3 [ (0, 1) ];
      Static_graph.of_edges 3 [ (1, 2) ];
      Static_graph.of_edges 3 [ (0, 2) ];
    ]
  in
  let eg = Evolving_graph.make ~n:3 snaps in
  let s = Evolving_graph.to_interactions eg in
  Alcotest.(check bool) "flattening" true
    (Sequence.equal s (seq [ (0, 1); (1, 2); (0, 2) ]))

let test_evolving_of_interactions_windows () =
  let s = seq [ (0, 1); (1, 2); (0, 2); (0, 1); (2, 3) ] in
  let eg = Evolving_graph.of_interactions ~n:4 ~window:2 s in
  Alcotest.(check int) "three buckets" 3 (Evolving_graph.length eg);
  Alcotest.(check int) "bucket 0 edges" 2
    (Static_graph.edge_count (Evolving_graph.snapshot eg 0));
  (* last partial bucket has one interaction *)
  Alcotest.(check int) "bucket 2 edges" 1
    (Static_graph.edge_count (Evolving_graph.snapshot eg 2))

let test_evolving_union_and_lifetimes () =
  let snaps =
    [ Static_graph.of_edges 3 [ (0, 1); (1, 2) ]; Static_graph.of_edges 3 [ (0, 1) ] ]
  in
  let eg = Evolving_graph.make ~n:3 snaps in
  Alcotest.(check int) "union edges" 2
    (Static_graph.edge_count (Evolving_graph.union eg));
  Alcotest.(check (list (pair (pair int int) int))) "lifetimes"
    [ ((0, 1), 2); ((1, 2), 1) ]
    (Evolving_graph.edge_lifetimes eg)

let test_evolving_always_connected () =
  let connected = Evolving_graph.make ~n:3 [ Static_graph.path 3; Static_graph.cycle 3 ] in
  Alcotest.(check bool) "connected" true (Evolving_graph.always_connected connected);
  let broken =
    Evolving_graph.make ~n:3 [ Static_graph.path 3; Static_graph.of_edges 3 [ (0, 1) ] ]
  in
  Alcotest.(check bool) "broken" false (Evolving_graph.always_connected broken)

let test_evolving_rejects_bad_snapshot () =
  Alcotest.check_raises "wrong node count"
    (Invalid_argument "Evolving_graph.make: snapshot with wrong node count")
    (fun () -> ignore (Evolving_graph.make ~n:3 [ Static_graph.path 4 ]))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

module Metrics = Doda_dynamic.Metrics

let test_metrics_activity () =
  let s = seq [ (0, 1); (1, 2); (0, 1) ] in
  Alcotest.(check (array int)) "activity" [| 2; 3; 1; 0 |] (Metrics.activity ~n:4 s)

let test_metrics_pair_counts () =
  let s = seq [ (0, 1); (1, 2); (1, 0) ] in
  Alcotest.(check (list (pair (pair int int) int))) "counts"
    [ ((0, 1), 2); ((1, 2), 1) ]
    (Metrics.pair_counts s)

let test_metrics_inter_contact () =
  let s = seq [ (0, 1); (1, 2); (0, 1); (0, 1) ] in
  Alcotest.(check (list int)) "gaps" [ 2; 1 ] (Metrics.inter_contact_times s ~u:0 ~v:1);
  Alcotest.(check (list int)) "no repeat" [] (Metrics.inter_contact_times s ~u:1 ~v:2);
  Alcotest.(check (option (float 1e-9))) "mean" (Some 1.5)
    (Metrics.mean_inter_contact s ~u:0 ~v:1)

let test_metrics_sink_meetings_and_density () =
  let s = seq [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check (list int)) "sink meetings" [ 0; 2 ]
    (Metrics.sink_meeting_times s ~sink:0);
  Alcotest.(check (float 1e-9)) "density" 1.0 (Metrics.temporal_density ~n:3 s)

let test_metrics_skew () =
  (* Node 0 in every interaction of a star-like trace. *)
  let s = seq [ (0, 1); (0, 2); (0, 3) ] in
  let skew = Metrics.activity_skew ~n:4 s in
  Alcotest.(check (float 1e-9)) "skew 2" 2.0 skew;
  Alcotest.(check bool) "summary nonempty" true
    (String.length (Metrics.summary ~n:4 ~sink:0 s) > 0)

(* ------------------------------------------------------------------ *)
(* Presence (interval TVGs)                                            *)

module Presence = Doda_dynamic.Presence

let test_presence_intervals () =
  let p = Presence.create ~n:4 in
  Presence.add_interval p ~u:0 ~v:1 ~start:2 ~stop:5;
  Presence.add_interval p ~u:1 ~v:0 ~start:8 ~stop:9;
  Presence.add_interval p ~u:2 ~v:3 ~start:0 ~stop:3;
  Alcotest.(check int) "span" 9 (Presence.span p);
  Alcotest.(check bool) "absent before" false (Presence.present p ~u:0 ~v:1 ~time:1);
  Alcotest.(check bool) "present" true (Presence.present p ~u:0 ~v:1 ~time:4);
  Alcotest.(check bool) "stop exclusive" false (Presence.present p ~u:0 ~v:1 ~time:5);
  Alcotest.(check bool) "second interval" true (Presence.present p ~u:0 ~v:1 ~time:8);
  Alcotest.(check bool) "orientation-free" true (Presence.present p ~u:1 ~v:0 ~time:8)

let test_presence_snapshot_and_flatten () =
  let p = Presence.create ~n:3 in
  Presence.add_interval p ~u:0 ~v:1 ~start:0 ~stop:2;
  Presence.add_interval p ~u:1 ~v:2 ~start:1 ~stop:2;
  let g0 = Presence.snapshot p 0 in
  Alcotest.(check int) "t=0 one edge" 1 (Static_graph.edge_count g0);
  let g1 = Presence.snapshot p 1 in
  Alcotest.(check int) "t=1 two edges" 2 (Static_graph.edge_count g1);
  let s = Presence.to_interactions p in
  (* t=0 contributes (0,1); t=1 contributes (0,1) and (1,2). *)
  Alcotest.(check int) "flattened" 3 (Sequence.length s)

let test_presence_validation () =
  let p = Presence.create ~n:3 in
  Alcotest.check_raises "empty interval"
    (Invalid_argument "Presence.add_interval: need 0 <= start < stop") (fun () ->
      Presence.add_interval p ~u:0 ~v:1 ~start:3 ~stop:3);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Presence.add_interval: self-loop") (fun () ->
      Presence.add_interval p ~u:1 ~v:1 ~start:0 ~stop:1)

let test_presence_random_within_horizon () =
  let rng = Prng.create 41 in
  let p = Presence.random rng ~n:6 ~horizon:50 ~mean_up:2.0 ~mean_down:3.0 in
  Alcotest.(check bool) "span within horizon" true (Presence.span p <= 50);
  (* Conversions agree. *)
  let eg = Presence.to_evolving p in
  Alcotest.(check int) "evolving length" (Presence.span p)
    (Doda_dynamic.Evolving_graph.length eg)

(* ------------------------------------------------------------------ *)
(* Mobility                                                            *)

let test_random_waypoint_generates_valid () =
  let rng = Prng.create 8 in
  let gen = Mobility.random_waypoint rng ~n:10 in
  for t = 0 to 99 do
    let i = gen t in
    Alcotest.(check bool) "valid ids" true (Interaction.v i < 10)
  done

let test_community_intra_bias () =
  let rng = Prng.create 9 in
  let gen = Mobility.community rng ~n:12 ~communities:3 ~p_intra:0.9 in
  let intra = ref 0 in
  let draws = 5_000 in
  for t = 0 to draws - 1 do
    let i = gen t in
    if Interaction.u i mod 3 = Interaction.v i mod 3 then incr intra
  done;
  let frac = float_of_int !intra /. float_of_int draws in
  Alcotest.(check bool) "mostly intra" true (frac > 0.8)

let test_grid_walkers_valid () =
  let rng = Prng.create 10 in
  let gen = Mobility.grid_walkers rng ~n:8 ~rows:3 ~cols:3 in
  for t = 0 to 49 do
    let i = gen t in
    Alcotest.(check bool) "valid ids" true (Interaction.v i < 8)
  done

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_roundtrip () =
  let rng = Prng.create 11 in
  let s = Generators.uniform_sequence rng ~n:6 ~length:100 in
  let path = Filename.temp_file "doda" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path s;
      let s2 = Trace.load path in
      Alcotest.(check bool) "roundtrip" true (Sequence.equal s s2))

let test_trace_parse () =
  Alcotest.(check bool) "comment skipped" true (Trace.parse_line "# hello" = None);
  Alcotest.(check bool) "blank skipped" true (Trace.parse_line "   " = None);
  Alcotest.(check bool) "parses" true (Trace.parse_line "3 1 2" = Some (3, 1, 2))

let test_trace_rejects_gap () =
  Alcotest.check_raises "gap" (Failure "Trace: line 2: expected time 1, got 5")
    (fun () -> ignore (Trace.of_lines [ "0 1 2"; "5 0 1" ]))

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)

let test_empty_sequence_operations () =
  let empty = Sequence.of_list [] in
  Alcotest.(check int) "length" 0 (Sequence.length empty);
  Alcotest.(check int) "max node" (-1) (Sequence.max_node empty);
  Alcotest.(check bool) "rev" true (Sequence.equal empty (Sequence.rev empty));
  Alcotest.(check int) "repeat 0" 0
    (Sequence.length (Sequence.repeat (seq [ (0, 1) ]) 0));
  let eg = Doda_dynamic.Evolving_graph.of_interactions ~n:3 ~window:5 empty in
  Alcotest.(check int) "no buckets" 0 (Doda_dynamic.Evolving_graph.length eg)

let test_metrics_empty_sequence () =
  let empty = Sequence.of_list [] in
  Alcotest.(check (array int)) "activity zero" [| 0; 0; 0 |]
    (Metrics.activity ~n:3 empty);
  Alcotest.(check (float 1e-9)) "density zero" 0.0
    (Metrics.temporal_density ~n:3 empty);
  Alcotest.check_raises "skew undefined"
    (Invalid_argument "Metrics.activity_skew: empty sequence") (fun () ->
      ignore (Metrics.activity_skew ~n:3 empty))

let test_interaction_rejects_negative () =
  Alcotest.check_raises "negative id"
    (Invalid_argument "Interaction.make: negative node id") (fun () ->
      ignore (Interaction.make (-1) 2))

let test_temporal_on_empty_sequence () =
  let empty = Sequence.of_list [] in
  Alcotest.(check (option int)) "no broadcast" None
    (Temporal.broadcast_completion ~n:3 ~src:0 empty);
  Alcotest.(check (list int)) "only source reachable" [ 0 ]
    (Temporal.reachable_set ~n:3 ~src:0 empty)

let test_schedule_single_pair_repeat () =
  (* The same pair forever: node 2 never meets the sink. *)
  let s = Schedule.of_fun ~n:3 ~sink:0 (fun _ -> Interaction.make 1 2) in
  Alcotest.(check (option int)) "never meets" None
    (Schedule.next_meet_with_sink s ~node:2 ~after:(-1) ~limit:500)

let () =
  Alcotest.run "dynamic"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "normalised" `Quick test_interaction_normalised;
          Alcotest.test_case "rejects self" `Quick test_interaction_rejects_self;
          Alcotest.test_case "other rejects stranger" `Quick
            test_interaction_other_rejects_stranger;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "operations" `Quick test_sequence_ops;
          Alcotest.test_case "interactions_of" `Quick test_sequence_interactions_of;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "finite" `Quick test_schedule_finite;
          Alcotest.test_case "lazy materialisation" `Quick
            test_schedule_lazy_materialisation;
          Alcotest.test_case "meet time" `Quick test_schedule_meet_time;
          Alcotest.test_case "meet time vs scan" `Slow
            test_schedule_meet_time_matches_scan;
          Alcotest.test_case "prefix" `Quick test_schedule_prefix;
          Alcotest.test_case "meets upto" `Quick test_schedule_meets_upto;
          Alcotest.test_case "rejects big ids" `Quick test_schedule_rejects_big_ids;
        ] );
      ( "generators",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_covers_all_pairs;
          Alcotest.test_case "all pairs" `Quick test_all_pairs;
          Alcotest.test_case "uniform statistics" `Slow test_uniform_statistics;
          Alcotest.test_case "weighted bias" `Slow test_weighted_nodes_bias;
          Alcotest.test_case "over graph" `Quick test_over_graph_respects_edges;
          Alcotest.test_case "periodic and stitch" `Quick test_periodic_and_stitch;
          Alcotest.test_case "markov edges" `Quick test_markov_edges_valid_and_bursty;
          Alcotest.test_case "markov validation" `Quick test_markov_edges_validation;
          Alcotest.test_case "of snapshots" `Quick test_of_snapshots;
        ] );
      ( "underlying",
        [
          Alcotest.test_case "basic" `Quick test_underlying;
          Alcotest.test_case "recurrent edges" `Quick test_recurrent_edges;
        ] );
      ( "temporal",
        [
          Alcotest.test_case "earliest arrival" `Quick test_earliest_arrival;
          Alcotest.test_case "order matters" `Quick test_earliest_arrival_order_matters;
          Alcotest.test_case "broadcast completion" `Quick test_broadcast_completion;
          Alcotest.test_case "temporal connectivity" `Quick test_temporal_connectivity;
          Alcotest.test_case "foremost journey" `Quick test_foremost_journey;
          Alcotest.test_case "reverse flood window" `Quick
            test_reverse_flood_duality_window;
          Alcotest.test_case "reachable set" `Quick test_reachable_set;
        ] );
      ( "evolving-graph",
        [
          Alcotest.test_case "single-edge roundtrip" `Quick
            test_evolving_roundtrip_single_edge;
          Alcotest.test_case "windowed buckets" `Quick
            test_evolving_of_interactions_windows;
          Alcotest.test_case "union and lifetimes" `Quick
            test_evolving_union_and_lifetimes;
          Alcotest.test_case "always connected" `Quick test_evolving_always_connected;
          Alcotest.test_case "rejects bad snapshot" `Quick
            test_evolving_rejects_bad_snapshot;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "activity" `Quick test_metrics_activity;
          Alcotest.test_case "pair counts" `Quick test_metrics_pair_counts;
          Alcotest.test_case "inter-contact" `Quick test_metrics_inter_contact;
          Alcotest.test_case "sink meetings and density" `Quick
            test_metrics_sink_meetings_and_density;
          Alcotest.test_case "skew" `Quick test_metrics_skew;
        ] );
      ( "presence",
        [
          Alcotest.test_case "intervals" `Quick test_presence_intervals;
          Alcotest.test_case "snapshot and flatten" `Quick
            test_presence_snapshot_and_flatten;
          Alcotest.test_case "validation" `Quick test_presence_validation;
          Alcotest.test_case "random within horizon" `Quick
            test_presence_random_within_horizon;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "random waypoint" `Quick test_random_waypoint_generates_valid;
          Alcotest.test_case "community bias" `Slow test_community_intra_bias;
          Alcotest.test_case "grid walkers" `Quick test_grid_walkers_valid;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence_operations;
          Alcotest.test_case "metrics on empty" `Quick test_metrics_empty_sequence;
          Alcotest.test_case "negative id rejected" `Quick
            test_interaction_rejects_negative;
          Alcotest.test_case "temporal on empty" `Quick test_temporal_on_empty_sequence;
          Alcotest.test_case "single pair repeat" `Quick
            test_schedule_single_pair_repeat;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "parse" `Quick test_trace_parse;
          Alcotest.test_case "rejects gap" `Quick test_trace_rejects_gap;
        ] );
    ]
