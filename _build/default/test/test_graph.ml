(* Tests for the static-graph substrate. *)

module Static_graph = Doda_graph.Static_graph
module Traversal = Doda_graph.Traversal
module Spanning_tree = Doda_graph.Spanning_tree
module Graph_gen = Doda_graph.Graph_gen
module Prng = Doda_prng.Prng

let test_build_and_query () =
  let g = Static_graph.of_edges 4 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check int) "n" 4 (Static_graph.n g);
  Alcotest.(check int) "edges" 3 (Static_graph.edge_count g);
  Alcotest.(check bool) "has 0-1" true (Static_graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Static_graph.has_edge g 1 0);
  Alcotest.(check bool) "no 0-3" false (Static_graph.has_edge g 0 3);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 2 ] (Static_graph.neighbors g 1);
  Alcotest.(check int) "degree of 3" 0 (Static_graph.degree g 3)

let test_duplicate_edges_ignored () =
  let g = Static_graph.create 3 in
  Static_graph.add_edge g 0 1;
  Static_graph.add_edge g 1 0;
  Static_graph.add_edge g 0 1;
  Alcotest.(check int) "one edge" 1 (Static_graph.edge_count g)

let test_self_loop_rejected () =
  let g = Static_graph.create 3 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Static_graph.add_edge: self-loop") (fun () ->
      Static_graph.add_edge g 1 1)

let test_edges_sorted () =
  let g = Static_graph.of_edges 4 [ (3, 2); (1, 0); (2, 0) ] in
  Alcotest.(check (list (pair int int))) "sorted edges"
    [ (0, 1); (0, 2); (2, 3) ] (Static_graph.edges g)

let test_families () =
  Alcotest.(check int) "complete 5" 10 (Static_graph.edge_count (Static_graph.complete 5));
  Alcotest.(check int) "path 5" 4 (Static_graph.edge_count (Static_graph.path 5));
  Alcotest.(check int) "cycle 5" 5 (Static_graph.edge_count (Static_graph.cycle 5));
  Alcotest.(check int) "star 5" 4 (Static_graph.edge_count (Static_graph.star 5));
  Alcotest.(check int) "grid 3x4 edges" 17
    (Static_graph.edge_count (Static_graph.grid 3 4));
  Alcotest.(check bool) "path is tree" true (Static_graph.is_tree (Static_graph.path 6));
  Alcotest.(check bool) "cycle is not tree" false
    (Static_graph.is_tree (Static_graph.cycle 6))

let test_equal_and_copy () =
  let g = Static_graph.cycle 5 in
  let h = Static_graph.copy g in
  Alcotest.(check bool) "copy equal" true (Static_graph.equal g h);
  Static_graph.add_edge h 0 2;
  Alcotest.(check bool) "copy detached" false (Static_graph.equal g h)

let test_bfs_distances () =
  let g = Static_graph.path 5 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |]
    (Traversal.bfs_distances g 0);
  let g2 = Static_graph.of_edges 4 [ (0, 1) ] in
  let d = Traversal.bfs_distances g2 0 in
  Alcotest.(check int) "unreachable" (-1) d.(3)

let test_connectivity_components () =
  let g = Static_graph.of_edges 6 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check bool) "not connected" false (Traversal.connected g);
  Alcotest.(check int) "three components" 3 (Traversal.component_count g);
  let labels = Traversal.components g in
  Alcotest.(check bool) "0 and 2 together" true (labels.(0) = labels.(2));
  Alcotest.(check bool) "0 and 3 apart" true (labels.(0) <> labels.(3))

let test_diameter () =
  Alcotest.(check int) "path diameter" 4 (Traversal.diameter (Static_graph.path 5));
  Alcotest.(check int) "cycle diameter" 3 (Traversal.diameter (Static_graph.cycle 6));
  Alcotest.(check int) "complete diameter" 1
    (Traversal.diameter (Static_graph.complete 4))

let test_bfs_tree_shape () =
  let g = Static_graph.cycle 6 in
  let t = Spanning_tree.bfs_tree g ~root:0 in
  Alcotest.(check int) "root" 0 (Spanning_tree.root t);
  Alcotest.(check int) "root parent is itself" 0 (Spanning_tree.parent t 0);
  Alcotest.(check int) "size" 6 (Spanning_tree.size t);
  Alcotest.(check int) "n-1 edges" 5 (List.length (Spanning_tree.edges t));
  (* BFS from 0 on a 6-cycle: depth of opposite node is 3. *)
  Alcotest.(check int) "depth of 3" 3 (Spanning_tree.depth t 3);
  Alcotest.(check int) "whole tree" 6 (Spanning_tree.subtree_size t 0)

let test_bfs_tree_deterministic () =
  let rng = Prng.create 5 in
  let g = Graph_gen.random_connected rng ~n:30 ~extra_edges:20 in
  let t1 = Spanning_tree.bfs_tree g ~root:0 in
  let t2 = Spanning_tree.bfs_tree (Static_graph.copy g) ~root:0 in
  for u = 0 to 29 do
    Alcotest.(check int) "same parent" (Spanning_tree.parent t1 u)
      (Spanning_tree.parent t2 u)
  done

let test_post_order_children_first () =
  let g = Static_graph.of_edges 5 [ (0, 1); (0, 2); (1, 3); (1, 4) ] in
  let t = Spanning_tree.bfs_tree g ~root:0 in
  let order = Spanning_tree.post_order t in
  Alcotest.(check int) "all nodes" 5 (List.length order);
  let position v =
    let rec find i = function
      | [] -> Alcotest.fail "node missing from post order"
      | x :: rest -> if x = v then i else find (i + 1) rest
    in
    find 0 order
  in
  Alcotest.(check bool) "3 before 1" true (position 3 < position 1);
  Alcotest.(check bool) "1 before 0" true (position 1 < position 0)

let test_leaves () =
  let g = Static_graph.star 5 in
  let t = Spanning_tree.bfs_tree g ~root:0 in
  Alcotest.(check (list int)) "leaves" [ 1; 2; 3; 4 ] (Spanning_tree.leaves t)

let test_tree_edge () =
  let g = Static_graph.cycle 4 in
  let t = Spanning_tree.bfs_tree g ~root:0 in
  Alcotest.(check bool) "0-1 tree edge" true (Spanning_tree.is_tree_edge t 0 1);
  (* The cycle-closing edge is not in the tree: on C4 rooted at 0, the
     edge 2-3 closes the cycle (both at depth <= 2 via different arms). *)
  Alcotest.(check int) "tree has 3 edges" 3 (List.length (Spanning_tree.edges t))

let test_union_find () =
  let module Uf = Doda_graph.Union_find in
  let uf = Uf.create 6 in
  Alcotest.(check int) "six sets" 6 (Uf.count uf);
  Alcotest.(check bool) "union 0 1" true (Uf.union uf 0 1);
  Alcotest.(check bool) "union 1 2" true (Uf.union uf 1 2);
  Alcotest.(check bool) "redundant" false (Uf.union uf 0 2);
  Alcotest.(check bool) "connected" true (Uf.connected uf 0 2);
  Alcotest.(check bool) "not connected" false (Uf.connected uf 0 5);
  Alcotest.(check int) "four sets" 4 (Uf.count uf)

let test_kruskal_tree_valid () =
  let rng = Prng.create 12 in
  for _ = 1 to 10 do
    let g = Graph_gen.random_connected rng ~n:20 ~extra_edges:15 in
    let t = Spanning_tree.kruskal_tree g ~root:0 in
    Alcotest.(check int) "size" 20 (Spanning_tree.size t);
    Alcotest.(check bool) "is a tree" true
      (Static_graph.is_tree (Spanning_tree.to_graph t));
    (* every tree edge is a graph edge *)
    List.iter
      (fun (p, c) ->
        Alcotest.(check bool) "edge of graph" true (Static_graph.has_edge g p c))
      (Spanning_tree.edges t)
  done

let test_kruskal_lexicographic () =
  (* On C4, Kruskal keeps edges (0,1) (0,3) (1,2) and drops (2,3). *)
  let g = Static_graph.cycle 4 in
  let t = Spanning_tree.kruskal_tree g ~root:0 in
  Alcotest.(check bool) "2-3 dropped" false (Spanning_tree.is_tree_edge t 2 3);
  Alcotest.(check bool) "0-1 kept" true (Spanning_tree.is_tree_edge t 0 1)

let test_kruskal_rejects_disconnected () =
  let g = Static_graph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Spanning_tree.kruskal_tree: disconnected graph") (fun () ->
      ignore (Spanning_tree.kruskal_tree g ~root:0))

let test_random_tree_is_tree () =
  let rng = Prng.create 6 in
  for n = 1 to 40 do
    let g = Graph_gen.random_tree rng ~n in
    Alcotest.(check bool) (Printf.sprintf "tree on %d" n) true (Static_graph.is_tree g)
  done

let test_random_connected () =
  let rng = Prng.create 7 in
  let g = Graph_gen.random_connected rng ~n:25 ~extra_edges:10 in
  Alcotest.(check bool) "connected" true (Traversal.connected g);
  Alcotest.(check int) "edge count" 34 (Static_graph.edge_count g)

let test_gnm_edge_count () =
  let rng = Prng.create 8 in
  let g = Graph_gen.gnm rng ~n:10 ~m:20 in
  Alcotest.(check int) "m edges" 20 (Static_graph.edge_count g);
  Alcotest.check_raises "too many"
    (Invalid_argument "Graph_gen.gnm: too many edges requested") (fun () ->
      ignore (Graph_gen.gnm rng ~n:4 ~m:10))

let test_erdos_renyi_density () =
  let rng = Prng.create 9 in
  let g = Graph_gen.erdos_renyi rng ~n:100 ~p:0.3 in
  let expected = 0.3 *. float_of_int (100 * 99 / 2) in
  let actual = float_of_int (Static_graph.edge_count g) in
  Alcotest.(check bool) "density near p" true
    (Float.abs (actual -. expected) /. expected < 0.15)

let test_random_geometric_radius () =
  let rng = Prng.create 10 in
  let g, pos = Graph_gen.random_geometric rng ~n:50 ~radius:0.25 in
  Alcotest.(check int) "positions" 50 (Array.length pos);
  Static_graph.fold_edges
    (fun u v () ->
      let xu, yu = pos.(u) and xv, yv = pos.(v) in
      let d = sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0)) in
      Alcotest.(check bool) "within radius" true (d <= 0.25))
    g ()

let () =
  Alcotest.run "graph"
    [
      ( "static",
        [
          Alcotest.test_case "build and query" `Quick test_build_and_query;
          Alcotest.test_case "duplicates ignored" `Quick test_duplicate_edges_ignored;
          Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "edges sorted" `Quick test_edges_sorted;
          Alcotest.test_case "families" `Quick test_families;
          Alcotest.test_case "equal and copy" `Quick test_equal_and_copy;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "connectivity" `Quick test_connectivity_components;
          Alcotest.test_case "diameter" `Quick test_diameter;
        ] );
      ( "spanning-tree",
        [
          Alcotest.test_case "bfs tree shape" `Quick test_bfs_tree_shape;
          Alcotest.test_case "deterministic" `Quick test_bfs_tree_deterministic;
          Alcotest.test_case "post order" `Quick test_post_order_children_first;
          Alcotest.test_case "leaves" `Quick test_leaves;
          Alcotest.test_case "tree edges" `Quick test_tree_edge;
        ] );
      ( "union-find",
        [ Alcotest.test_case "basic" `Quick test_union_find ] );
      ( "kruskal",
        [
          Alcotest.test_case "valid tree" `Quick test_kruskal_tree_valid;
          Alcotest.test_case "lexicographic" `Quick test_kruskal_lexicographic;
          Alcotest.test_case "rejects disconnected" `Quick
            test_kruskal_rejects_disconnected;
        ] );
      ( "generators",
        [
          Alcotest.test_case "random tree" `Quick test_random_tree_is_tree;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "gnm" `Quick test_gnm_edge_count;
          Alcotest.test_case "erdos renyi" `Quick test_erdos_renyi_density;
          Alcotest.test_case "random geometric" `Quick test_random_geometric_radius;
        ] );
    ]
