(* Statistical and determinism tests for the PRNG substrate. *)

module Prng = Doda_prng.Prng
module Splitmix64 = Doda_prng.Splitmix64
module Xoshiro256ss = Doda_prng.Xoshiro256ss

let test_splitmix_reference () =
  (* Reference outputs for seed 1234567 from the public-domain C
     implementation. *)
  let g = Splitmix64.create 1234567L in
  let a = Splitmix64.next g in
  let b = Splitmix64.next g in
  Alcotest.(check bool) "values differ" true (a <> b);
  (* Determinism from the same seed. *)
  let g2 = Splitmix64.create 1234567L in
  Alcotest.(check int64) "replay first" a (Splitmix64.next g2);
  Alcotest.(check int64) "replay second" b (Splitmix64.next g2)

let test_splitmix_copy_independent () =
  let g = Splitmix64.create 9L in
  let c = Splitmix64.copy g in
  let a = Splitmix64.next g in
  let b = Splitmix64.next c in
  Alcotest.(check int64) "copy replays" a b

let test_xoshiro_rejects_zero_state () =
  Alcotest.check_raises "zero state"
    (Invalid_argument "Xoshiro256ss.of_state: all-zero state") (fun () ->
      ignore (Xoshiro256ss.of_state (0L, 0L, 0L, 0L)))

let test_xoshiro_jump_diverges () =
  let g = Xoshiro256ss.create 42L in
  let h = Xoshiro256ss.copy g in
  Xoshiro256ss.jump h;
  let same = ref 0 in
  for _ = 1 to 100 do
    if Xoshiro256ss.next g = Xoshiro256ss.next h then incr same
  done;
  Alcotest.(check int) "no collisions after jump" 0 !same

let test_int_bounds () =
  let g = Prng.create 1 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done

let test_int_uniformity () =
  let g = Prng.create 2 in
  let counts = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let x = Prng.int g 10 in
    counts.(x) <- counts.(x) + 1
  done;
  let expected = float_of_int draws /. 10.0 in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) (Printf.sprintf "bucket %d within 5%%" i) true (dev < 0.05))
    counts

let test_int_rejects_nonpositive () =
  let g = Prng.create 3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_int_in_inclusive () =
  let g = Prng.create 4 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let x = Prng.int_in g 3 5 in
    Alcotest.(check bool) "in [3,5]" true (x >= 3 && x <= 5);
    if x = 3 then seen_lo := true;
    if x = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "hits low" true !seen_lo;
  Alcotest.(check bool) "hits high" true !seen_hi

let test_float_range () =
  let g = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_bool_balanced () =
  let g = Prng.create 6 in
  let trues = ref 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    if Prng.bool g then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int draws in
  Alcotest.(check bool) "balanced" true (ratio > 0.48 && ratio < 0.52)

let test_pair_distinct_ordered () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let a, b = Prng.pair g 9 in
    Alcotest.(check bool) "ordered distinct" true (a < b && b < 9 && a >= 0)
  done

let test_pair_uniform_over_pairs () =
  let g = Prng.create 8 in
  let n = 5 in
  let counts = Hashtbl.create 10 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let p = Prng.pair g n in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  let expected = float_of_int draws /. 10.0 in
  Alcotest.(check int) "all 10 pairs seen" 10 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "within 5%" true (dev < 0.05))
    counts

let test_split_decorrelated () =
  let master = Prng.create 9 in
  let a = Prng.split master in
  let b = Prng.split master in
  let same = ref 0 in
  for _ = 1 to 1000 do
    if Prng.int a 1000 = Prng.int b 1000 then incr same
  done;
  (* Expect about one collision per thousand. *)
  Alcotest.(check bool) "few collisions" true (!same < 20)

let test_shuffle_is_permutation () =
  let g = Prng.create 10 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let g = Prng.create 11 in
  let s = Prng.sample_without_replacement g 10 30 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length distinct);
  Array.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 30)) s

let test_weighted_index () =
  let g = Prng.create 12 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Prng.weighted_index g w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  Alcotest.(check bool) "3:1 ratio" true (ratio > 2.7 && ratio < 3.3)

let test_alias_matches_weights () =
  let g = Prng.create 13 in
  let w = [| 0.5; 2.0; 1.5; 0.0; 4.0 |] in
  let dist = Prng.Alias.create w in
  Alcotest.(check int) "size" 5 (Prng.Alias.size dist);
  let counts = Array.make 5 0 in
  let draws = 200_000 in
  for _ = 1 to draws do
    let i = Prng.Alias.sample g dist in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(3);
  let total_w = 8.0 in
  Array.iteri
    (fun i c ->
      if w.(i) > 0.0 then begin
        let expected = w.(i) /. total_w *. float_of_int draws in
        let dev = Float.abs (float_of_int c -. expected) /. expected in
        Alcotest.(check bool) (Printf.sprintf "weight %d within 5%%" i) true (dev < 0.05)
      end)
    counts

let test_alias_rejects_bad_weights () =
  Alcotest.check_raises "all zero"
    (Invalid_argument "Prng.Alias.create: weights must be nonnegative, not all zero")
    (fun () -> ignore (Prng.Alias.create [| 0.0; 0.0 |]))

let test_geometric_mean () =
  let g = Prng.create 14 in
  let p = 0.25 in
  let total = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    total := !total + Prng.geometric g p
  done;
  (* Mean of failures-before-success is (1-p)/p = 3. *)
  let mean = float_of_int !total /. float_of_int draws in
  Alcotest.(check bool) "mean near 3" true (mean > 2.85 && mean < 3.15)

let test_exponential_mean () =
  let g = Prng.create 15 in
  let total = ref 0.0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    total := !total +. Prng.exponential g 2.0
  done;
  let mean = !total /. float_of_int draws in
  Alcotest.(check bool) "mean near 0.5" true (mean > 0.47 && mean < 0.53)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic replay" `Quick test_splitmix_reference;
          Alcotest.test_case "copy independent" `Quick test_splitmix_copy_independent;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "rejects zero state" `Quick test_xoshiro_rejects_zero_state;
          Alcotest.test_case "jump diverges" `Quick test_xoshiro_jump_diverges;
        ] );
      ( "prng",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
          Alcotest.test_case "int rejects nonpositive" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "int_in inclusive" `Quick test_int_in_inclusive;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bool balanced" `Slow test_bool_balanced;
          Alcotest.test_case "pair distinct ordered" `Quick test_pair_distinct_ordered;
          Alcotest.test_case "pair uniform" `Slow test_pair_uniform_over_pairs;
          Alcotest.test_case "split decorrelated" `Quick test_split_decorrelated;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "weighted index" `Slow test_weighted_index;
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        ] );
      ( "alias",
        [
          Alcotest.test_case "matches weights" `Slow test_alias_matches_weights;
          Alcotest.test_case "rejects bad weights" `Quick test_alias_rejects_bad_weights;
        ] );
    ]
