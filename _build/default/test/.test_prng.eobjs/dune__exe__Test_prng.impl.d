test/test_prng.ml: Alcotest Array Doda_prng Float Hashtbl List Option Printf
