test/test_graph.ml: Alcotest Array Doda_graph Doda_prng Float List Printf
