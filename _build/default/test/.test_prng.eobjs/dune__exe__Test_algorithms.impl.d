test/test_algorithms.ml: Alcotest Array Doda_core Doda_dynamic Doda_graph Doda_prng List Printf
