test/test_properties.ml: Alcotest Array Doda_adversary Doda_core Doda_dynamic Doda_graph Doda_prng Doda_sim Doda_stats Hashtbl List Printf QCheck QCheck_alcotest Stdlib String
