test/test_stats.ml: Alcotest Array Doda_prng Doda_stats Float List String
