test/test_dynamic.ml: Alcotest Array Doda_dynamic Doda_graph Doda_prng Filename Float Fun Hashtbl List Option Printf Stdlib String Sys
