test/test_sim.ml: Alcotest Array Doda_core Doda_dynamic Doda_prng Doda_sim Filename Fun List Printf String Sys
