test/test_core.ml: Alcotest Array Doda_core Doda_dynamic Doda_prng Doda_stats Format List Printf Stdlib
