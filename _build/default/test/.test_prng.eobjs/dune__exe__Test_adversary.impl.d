test/test_adversary.ml: Alcotest Array Doda_adversary Doda_core Doda_dynamic Doda_graph Doda_prng List Printf
