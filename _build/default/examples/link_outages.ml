(* Link outages: aggregation on a time-varying graph with up/down link
   phases.

   Every pair of nodes alternates between connected phases (mean length
   up) and outages (mean length down), the interval-based TVG model of
   Casteigts et al.; flattening its snapshots gives a sequence in the
   paper's model. We sweep the outage length and watch each strategy
   degrade — and compare with epidemic flooding, the counterfactual
   where nodes could retransmit freely (no energy constraint).

     dune exec examples/link_outages.exe *)

module Prng = Doda_prng.Prng
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Presence = Doda_dynamic.Presence
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Flooding_aggregation = Doda_core.Flooding_aggregation
module Algorithms = Doda_core.Algorithms
module Table = Doda_sim.Table

let () =
  let n = 12 and sink = 0 in
  Format.printf
    "link-outage TVG, %d nodes; links alternate up (mean 3) / down@." n;
  let t =
    Table.create
      ~header:
        [ "mean outage"; "waiting"; "gathering"; "wait-greedy"; "1-shot optimal";
          "flooding (no constraint)" ]
  in
  List.iter
    (fun mean_down ->
      let rng = Prng.create (int_of_float (mean_down *. 1000.0)) in
      let p = Presence.random rng ~n ~horizon:4000 ~mean_up:3.0 ~mean_down in
      let trace = Presence.to_interactions p in
      let run algo =
        let sched = Schedule.of_sequence ~n ~sink trace in
        match (Engine.run algo sched).Engine.duration with
        | Some d -> string_of_int (d + 1)
        | None -> "never"
      in
      let opt =
        match Convergecast.opt ~n ~sink trace 0 with
        | Some o -> string_of_int (o + 1)
        | None -> "never"
      in
      let flood =
        match Flooding_aggregation.sink_completion ~n ~sink trace with
        | Some f -> string_of_int (f + 1)
        | None -> "never"
      in
      Table.add_row t
        [
          Printf.sprintf "%.0f" mean_down;
          run Algorithms.waiting;
          run Algorithms.gathering;
          run (Algorithms.waiting_greedy_recommended n);
          opt;
          flood;
        ])
    [ 2.0; 8.0; 32.0; 128.0 ];
  Table.print t;
  Format.printf
    "@.Longer outages stretch everyone; the one-shot optimum and the@.\
     unconstrained flooding coincide — journeys, not energy, are the@.\
     binding constraint once links are scarce.@."
