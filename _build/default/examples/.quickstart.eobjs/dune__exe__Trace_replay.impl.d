examples/trace_replay.ml: Array Doda_core Doda_dynamic Doda_graph Doda_prng Doda_sim Filename Format List Sys
