examples/link_outages.mli:
