examples/vehicular.mli:
