examples/adversary_showdown.ml: Array Doda_adversary Doda_core Doda_dynamic Doda_sim Format List String
