examples/quickstart.ml: Doda_core Doda_dynamic Doda_prng Format
