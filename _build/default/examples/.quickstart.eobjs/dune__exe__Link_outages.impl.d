examples/link_outages.ml: Doda_core Doda_dynamic Doda_prng Doda_sim Format List Printf
