examples/vehicular.ml: Array Doda_core Doda_dynamic Doda_graph Doda_prng Doda_sim Float Format List Printf String
