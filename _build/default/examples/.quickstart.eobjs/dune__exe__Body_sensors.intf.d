examples/body_sensors.mli:
