examples/quickstart.mli:
