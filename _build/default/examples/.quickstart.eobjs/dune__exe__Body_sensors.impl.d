examples/body_sensors.ml: Array Doda_core Doda_dynamic Doda_graph Doda_prng Doda_sim Format List
