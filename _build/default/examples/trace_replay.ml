(* Trace workflow: generate, archive, reload and dissect a contact
   trace, then replay it against the algorithms.

   This is the workflow for working with externally collected contact
   traces (the library reads the simple `time u v` format): inspect the
   workload's shape first — activity skew, inter-contact gaps, sink
   exposure, snapshot connectivity — because that shape decides which
   aggregation strategy wins.

     dune exec examples/trace_replay.exe *)

module Prng = Doda_prng.Prng
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Mobility = Doda_dynamic.Mobility
module Trace = Doda_dynamic.Trace
module Metrics = Doda_dynamic.Metrics
module Evolving_graph = Doda_dynamic.Evolving_graph
module Static_graph = Doda_graph.Static_graph
module Engine = Doda_core.Engine
module Cost = Doda_core.Cost
module Algorithms = Doda_core.Algorithms
module Table = Doda_sim.Table
module Timeline = Doda_sim.Timeline

let () =
  let n = 15 and sink = 0 in
  let rng = Prng.create 123 in

  (* A clustered workload: three communities, mostly-internal chatter. *)
  let gen = Mobility.community rng ~n ~communities:3 ~p_intra:0.85 in
  let trace = Sequence.of_array (Array.init 20_000 gen) in

  (* Archive and reload — the round trip is exact. *)
  let path = Filename.temp_file "doda_example" ".trace" in
  Trace.save path trace;
  let trace = Trace.load path in
  Sys.remove path;
  Format.printf "trace of %d interactions round-tripped through %s@.@."
    (Sequence.length trace) (Filename.basename path);

  (* Workload shape. *)
  print_string (Metrics.summary ~n ~sink trace);
  (match Metrics.mean_inter_contact trace ~u:1 ~v:4 with
  | Some gap ->
      Format.printf "mean inter-contact of community pair {1,4}: %.1f@." gap
  | None -> Format.printf "pair {1,4} met at most once@.");
  (match Metrics.mean_inter_contact trace ~u:1 ~v:2 with
  | Some gap ->
      Format.printf "mean inter-contact of cross pair {1,2}: %.1f@." gap
  | None -> Format.printf "pair {1,2} met at most once@.");

  (* As an evolving graph: how connected is each 500-contact window? *)
  let eg = Evolving_graph.of_interactions ~n ~window:500 trace in
  let connected =
    List.length
      (List.filter
         (fun i -> Doda_graph.Traversal.connected (Evolving_graph.snapshot eg i))
         (List.init (Evolving_graph.length eg) (fun i -> i)))
  in
  Format.printf "@.%d of %d evolving-graph windows are connected@.@." connected
    (Evolving_graph.length eg);

  (* Replay. *)
  let t = Table.create ~header:[ "algorithm"; "done at"; "cost" ] in
  let best = ref None in
  List.iter
    (fun algo ->
      let sched = Schedule.of_sequence ~n ~sink trace in
      let r = Engine.run algo sched in
      (match (r.Engine.duration, !best) with
      | Some d, None -> best := Some (algo.Doda_core.Algorithm.name, r, d)
      | Some d, Some (_, _, d') when d < d' ->
          best := Some (algo.Doda_core.Algorithm.name, r, d)
      | _ -> ());
      Table.add_row t
        [
          algo.Doda_core.Algorithm.name;
          (match r.Engine.duration with
          | Some d -> string_of_int (d + 1)
          | None -> "never");
          Format.asprintf "%a" Cost.pp (Cost.of_result ~n ~sink trace r);
        ])
    (Algorithms.all_for ~n);
  Table.print t;

  match !best with
  | Some (name, r, _) ->
      Format.printf "@.timeline of the fastest online algorithm (%s):@." name;
      print_string (Timeline.render ~n ~sink r)
  | None -> ()
