(* Vehicular ad-hoc aggregation: the paper's second motivating
   scenario.

   Cars drive around a Manhattan-style street grid and exchange data
   opportunistically when they share an intersection; one designated
   roadside unit (node 0, the sink, also mobile here for simplicity)
   must end up with the aggregate. We look at how the interaction
   structure (the street grid, the cars' clustering) changes which
   strategy wins, and we inspect temporal-graph structure: journeys,
   reachability, and how long a convergecast takes as traffic
   progresses.

     dune exec examples/vehicular.exe *)

module Prng = Doda_prng.Prng
module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Mobility = Doda_dynamic.Mobility
module Temporal = Doda_dynamic.Temporal
module Underlying = Doda_dynamic.Underlying
module Static_graph = Doda_graph.Static_graph
module Traversal = Doda_graph.Traversal
module Engine = Doda_core.Engine
module Convergecast = Doda_core.Convergecast
module Algorithms = Doda_core.Algorithms
module Table = Doda_sim.Table

let () =
  let n = 20 and sink = 0 in
  let rng = Prng.create 99 in
  let gen = Mobility.grid_walkers rng ~n ~rows:6 ~cols:6 in
  let trace = Sequence.of_array (Array.init 30_000 gen) in

  Format.printf "vehicular network: %d cars on a 6x6 street grid@.@." n;

  (* Temporal structure of the first 2000 contacts. *)
  let window = Sequence.sub trace ~pos:0 ~len:2000 in
  Format.printf "first %d contacts:@." (Sequence.length window);
  Format.printf "  temporally connected: %b@."
    (Temporal.temporally_connected ~n window);
  (match Temporal.broadcast_completion ~n ~src:sink window with
  | Some t -> Format.printf "  flooding from the RSU reaches everyone by: %d@." t
  | None -> Format.printf "  flooding from the RSU does not complete@.");
  (match Temporal.foremost_journey ~n ~src:(n - 1) ~dst:sink window with
  | Some hops ->
      Format.printf "  foremost journey car %d -> RSU: %d hops, arriving at %d@."
        (n - 1) (List.length hops)
        (match List.rev hops with (t, _) :: _ -> t | [] -> 0)
  | None -> Format.printf "  car %d 's data cannot reach the RSU in this window@." (n - 1));

  let g = Underlying.of_sequence ~n window in
  Format.printf "  underlying graph: %d edges, diameter %s@.@."
    (Static_graph.edge_count g)
    (if Traversal.connected g then string_of_int (Traversal.diameter g) else "inf");

  (* How the offline optimum evolves as rush hour progresses: the
     T-chain of successive optimal convergecasts. *)
  let chain = Convergecast.t_chain ~n ~sink trace in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  Format.printf "successive optimal convergecasts end at: %s ...@.@."
    (String.concat ", " (List.map string_of_int (take 8 chain)));

  (* Head-to-head on the common trace. *)
  let t = Table.create ~header:[ "algorithm"; "done at"; "vs optimal" ] in
  let optimum =
    match Convergecast.opt ~n ~sink trace 0 with
    | Some e -> float_of_int (e + 1)
    | None -> Float.nan
  in
  List.iter
    (fun algo ->
      let sched = Schedule.of_sequence ~n ~sink trace in
      let r = Engine.run algo sched in
      match r.Engine.duration with
      | Some d ->
          Table.add_row t
            [
              algo.Doda_core.Algorithm.name;
              string_of_int (d + 1);
              Printf.sprintf "%.2fx" (float_of_int (d + 1) /. optimum);
            ]
      | None -> Table.add_row t [ algo.Doda_core.Algorithm.name; "never"; "-" ])
    [
      Algorithms.waiting;
      Algorithms.gathering;
      Algorithms.waiting_greedy_recommended n;
      Algorithms.tree_aggregation;
      Algorithms.full_knowledge;
    ];
  Table.print t
