(* The impossibility results, live.

   Theorems 1-3 of the paper say that against adaptive (or crafted
   oblivious) adversaries, no online algorithm can aggregate: the
   adversary watches what the algorithm commits to and locks the
   receiver away from the sink forever — while an offline scheduler,
   knowing the future, would have finished over and over again.

   This example plays the literal proof constructions against the
   paper's algorithms and prints the growing gap.

     dune exec examples/adversary_showdown.exe *)

module Sequence = Doda_dynamic.Sequence
module Schedule = Doda_dynamic.Schedule
module Engine = Doda_core.Engine
module Cost = Doda_core.Cost
module Knowledge = Doda_core.Knowledge
module Algorithms = Doda_core.Algorithms
module Duel = Doda_adversary.Duel
module Counterexamples = Doda_adversary.Counterexamples
module Table = Doda_sim.Table

let show_duel ~title ~n ~knowledge adversary_of algos =
  Format.printf "@.--- %s ---@." title;
  let t =
    Table.create
      ~header:[ "algorithm"; "horizon"; "terminated"; "optimal convergecasts"; "cost" ]
  in
  List.iter
    (fun algo ->
      List.iter
        (fun horizon ->
          let r, played =
            Duel.run ?knowledge ~max_steps:horizon ~n ~sink:0 algo (adversary_of ())
          in
          let possible =
            Cost.convergecasts_within ~n ~sink:0 played ~upto:(horizon - 1)
          in
          Table.add_row t
            [
              algo.Doda_core.Algorithm.name;
              string_of_int horizon;
              (if r.Engine.stop = Engine.All_aggregated then "yes" else "no");
              string_of_int possible;
              Format.asprintf "%a" Cost.pp (Cost.of_result ~n ~sink:0 played r);
            ])
        [ 300; 3000 ])
    algos;
  Table.print t

let () =
  Format.printf
    "Impossibility, executed: the adversary reacts to each transmission@.";

  show_duel ~title:"Theorem 1: three nodes, no knowledge"
    ~n:Counterexamples.theorem1_nodes ~knowledge:None
    (fun () -> Counterexamples.theorem1 ())
    [ Algorithms.waiting; Algorithms.gathering ];

  show_duel ~title:"Theorem 3: 4-cycle, nodes know the underlying graph"
    ~n:Counterexamples.theorem3_nodes
    ~knowledge:
      (Some
         (Knowledge.with_underlying (Counterexamples.theorem3_graph ())
            Knowledge.empty))
    (fun () -> Counterexamples.theorem3 ())
    [ Algorithms.gathering; Algorithms.tree_aggregation ];

  (* Theorem 2 is an oblivious construction: the whole sequence is
     committed upfront, yet it still defeats Waiting and Gathering. *)
  Format.printf "@.--- Theorem 2: oblivious ring-block sequence (n = 8) ---@.";
  let n = 8 in
  let s = Counterexamples.theorem2_sequence ~n ~l0:1 ~d:1 ~periods:100 in
  let t = Table.create ~header:[ "algorithm"; "terminated"; "stuck node"; "cost" ] in
  List.iter
    (fun algo ->
      let sched = Schedule.of_sequence ~n ~sink:0 s in
      let r = Engine.run algo sched in
      let stuck =
        let holders = ref [] in
        Array.iteri (fun v h -> if h && v <> 0 then holders := v :: !holders) r.holders;
        String.concat "," (List.map string_of_int (List.rev !holders))
      in
      Table.add_row t
        [
          algo.Doda_core.Algorithm.name;
          (if r.Engine.stop = Engine.All_aggregated then "yes" else "no");
          stuck;
          Format.asprintf "%a" Cost.pp (Cost.of_result ~n ~sink:0 s r);
        ])
    [ Algorithms.waiting; Algorithms.gathering ];
  Table.print t;
  Format.printf
    "@.In every case the algorithm is frozen while the offline optimum@.\
     keeps completing: the online cost is unbounded, as the theorems state.@."
