(** Random graph generators, for building underlying topologies that
    interaction sequences are then drawn from. *)

val erdos_renyi : Doda_prng.Prng.t -> n:int -> p:float -> Static_graph.t
(** [erdos_renyi rng ~n ~p] includes each of the [n(n-1)/2] edges
    independently with probability [p]. *)

val random_tree : Doda_prng.Prng.t -> n:int -> Static_graph.t
(** [random_tree rng ~n] is a uniform random labelled tree, generated
    from a random Prüfer sequence ([n >= 1]). *)

val random_connected : Doda_prng.Prng.t -> n:int -> extra_edges:int -> Static_graph.t
(** [random_connected rng ~n ~extra_edges] is a random tree plus
    [extra_edges] additional distinct random edges (clipped to the
    number of available non-tree slots). *)

val gnm : Doda_prng.Prng.t -> n:int -> m:int -> Static_graph.t
(** [gnm rng ~n ~m] draws [m] distinct edges uniformly.
    @raise Invalid_argument if [m] exceeds [n(n-1)/2]. *)

val random_geometric :
  Doda_prng.Prng.t -> n:int -> radius:float -> Static_graph.t * (float * float) array
(** [random_geometric rng ~n ~radius] scatters [n] points uniformly in
    the unit square and connects points within [radius]; also returns
    the positions (reused by the mobility generators). *)
