module Int_set = Set.Make (Int)

type t = { size : int; mutable nedges : int; adj : Int_set.t array }

let create size =
  if size < 0 then invalid_arg "Static_graph.create: negative size";
  { size; nedges = 0; adj = Array.make size Int_set.empty }

let n g = g.size
let edge_count g = g.nedges

let check_node g u name =
  if u < 0 || u >= g.size then invalid_arg ("Static_graph." ^ name ^ ": node out of range")

let add_edge g u v =
  check_node g u "add_edge";
  check_node g v "add_edge";
  if u = v then invalid_arg "Static_graph.add_edge: self-loop";
  if not (Int_set.mem v g.adj.(u)) then begin
    g.adj.(u) <- Int_set.add v g.adj.(u);
    g.adj.(v) <- Int_set.add u g.adj.(v);
    g.nedges <- g.nedges + 1
  end

let of_edges size edge_list =
  let g = create size in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let has_edge g u v =
  check_node g u "has_edge";
  check_node g v "has_edge";
  Int_set.mem v g.adj.(u)

let neighbors g u =
  check_node g u "neighbors";
  Int_set.elements g.adj.(u)

let degree g u =
  check_node g u "degree";
  Int_set.cardinal g.adj.(u)

let fold_edges f g acc =
  let acc = ref acc in
  for u = 0 to g.size - 1 do
    Int_set.iter (fun v -> if u < v then acc := f u v !acc) g.adj.(u)
  done;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let copy g = { size = g.size; nedges = g.nedges; adj = Array.copy g.adj }

let equal g1 g2 =
  g1.size = g2.size && g1.nedges = g2.nedges
  && Array.for_all2 Int_set.equal g1.adj g2.adj

let complete size =
  let g = create size in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      add_edge g u v
    done
  done;
  g

let path size =
  let g = create size in
  for u = 0 to size - 2 do
    add_edge g u (u + 1)
  done;
  g

let cycle size =
  if size < 3 then invalid_arg "Static_graph.cycle: need at least 3 nodes";
  let g = path size in
  add_edge g (size - 1) 0;
  g

let star size =
  let g = create size in
  for u = 1 to size - 1 do
    add_edge g 0 u
  done;
  g

let grid rows cols =
  let g = create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then add_edge g (id r c) (id (r + 1) c)
    done
  done;
  g

(* Connectivity via iterative DFS; defined here rather than in
   Traversal to keep [is_tree] self-contained. *)
let connected g =
  if g.size = 0 then true
  else begin
    let seen = Array.make g.size false in
    let stack = Stack.create () in
    Stack.push 0 stack;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let u = Stack.pop stack in
      Int_set.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Stack.push v stack
          end)
        g.adj.(u)
    done;
    !count = g.size
  end

let is_tree g = g.nedges = g.size - 1 && connected g

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d nodes, %d edges:@," g.size g.nedges;
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -- %d@," u v) (edges g);
  Format.fprintf ppf "@]"
