module Prng = Doda_prng.Prng

let erdos_renyi rng ~n ~p =
  let g = Static_graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng p then Static_graph.add_edge g u v
    done
  done;
  g

(* Decode a uniformly random Prüfer sequence into a labelled tree. *)
let random_tree rng ~n =
  if n <= 0 then invalid_arg "Graph_gen.random_tree: n must be positive";
  let g = Static_graph.create n in
  if n = 1 then g
  else if n = 2 then begin
    Static_graph.add_edge g 0 1;
    g
  end
  else begin
    let prufer = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    let degree = Array.make n 1 in
    Array.iter (fun x -> degree.(x) <- degree.(x) + 1) prufer;
    let module Iset = Set.Make (Int) in
    let leaves = ref Iset.empty in
    for u = 0 to n - 1 do
      if degree.(u) = 1 then leaves := Iset.add u !leaves
    done;
    Array.iter
      (fun v ->
        let leaf = Iset.min_elt !leaves in
        leaves := Iset.remove leaf !leaves;
        Static_graph.add_edge g leaf v;
        degree.(v) <- degree.(v) - 1;
        if degree.(v) = 1 then leaves := Iset.add v !leaves)
      prufer;
    let u = Iset.min_elt !leaves in
    let v = Iset.max_elt !leaves in
    Static_graph.add_edge g u v;
    g
  end

let random_connected rng ~n ~extra_edges =
  let g = random_tree rng ~n in
  let max_edges = n * (n - 1) / 2 in
  let budget = Stdlib.min extra_edges (max_edges - Static_graph.edge_count g) in
  let added = ref 0 in
  while !added < budget do
    let u, v = Prng.pair rng n in
    if not (Static_graph.has_edge g u v) then begin
      Static_graph.add_edge g u v;
      incr added
    end
  done;
  g

let gnm rng ~n ~m =
  let max_edges = n * (n - 1) / 2 in
  if m > max_edges then invalid_arg "Graph_gen.gnm: too many edges requested";
  let g = Static_graph.create n in
  while Static_graph.edge_count g < m do
    let u, v = Prng.pair rng n in
    Static_graph.add_edge g u v
  done;
  g

let random_geometric rng ~n ~radius =
  let positions = Array.init n (fun _ -> (Prng.float rng 1.0, Prng.float rng 1.0)) in
  let g = Static_graph.create n in
  let r2 = radius *. radius in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let xu, yu = positions.(u) and xv, yv = positions.(v) in
      let dx = xu -. xv and dy = yu -. yv in
      if (dx *. dx) +. (dy *. dy) <= r2 then Static_graph.add_edge g u v
    done
  done;
  (g, positions)
