let bfs g src =
  let size = Static_graph.n g in
  let dist = Array.make size (-1) in
  let parent = Array.make size (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  parent.(src) <- src;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.push v queue
        end)
      (Static_graph.neighbors g u)
  done;
  (dist, parent)

let bfs_distances g src = fst (bfs g src)
let bfs_parents g src = snd (bfs g src)

let connected g =
  Static_graph.n g = 0
  || Array.for_all (fun d -> d >= 0) (bfs_distances g 0)

let components g =
  let size = Static_graph.n g in
  let label = Array.make size (-1) in
  let next = ref 0 in
  for u = 0 to size - 1 do
    if label.(u) < 0 then begin
      let id = !next in
      incr next;
      let queue = Queue.create () in
      label.(u) <- id;
      Queue.push u queue;
      while not (Queue.is_empty queue) do
        let w = Queue.pop queue in
        List.iter
          (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- id;
              Queue.push v queue
            end)
          (Static_graph.neighbors g w)
      done
    end
  done;
  label

let component_count g =
  let labels = components g in
  Array.fold_left Stdlib.max (-1) labels + 1

let eccentricity g u =
  let dist = bfs_distances g u in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Traversal.eccentricity: disconnected graph"
      else Stdlib.max acc d)
    0 dist

let diameter g =
  if Static_graph.n g = 0 then invalid_arg "Traversal.diameter: empty graph";
  let best = ref 0 in
  for u = 0 to Static_graph.n g - 1 do
    best := Stdlib.max !best (eccentricity g u)
  done;
  !best
