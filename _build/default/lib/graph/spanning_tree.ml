type t = {
  tree_root : int;
  parents : int array;
  child_lists : int list array;
  depths : int array;
}

let bfs_tree g ~root =
  let parents = Traversal.bfs_parents g root in
  if Array.exists (fun p -> p < 0) parents then
    invalid_arg "Spanning_tree.bfs_tree: disconnected graph";
  let size = Array.length parents in
  let child_lists = Array.make size [] in
  for u = size - 1 downto 0 do
    if u <> root then child_lists.(parents.(u)) <- u :: child_lists.(parents.(u))
  done;
  let depths = Traversal.bfs_distances g root in
  { tree_root = root; parents; child_lists; depths }

let kruskal_tree g ~root =
  let uf = Union_find.create (Static_graph.n g) in
  let kept =
    List.filter (fun (u, v) -> Union_find.union uf u v) (Static_graph.edges g)
  in
  if Union_find.count uf <> 1 then
    invalid_arg "Spanning_tree.kruskal_tree: disconnected graph";
  bfs_tree (Static_graph.of_edges (Static_graph.n g) kept) ~root

let root t = t.tree_root
let parent t u = t.parents.(u)
let children t u = t.child_lists.(u)
let depth t u = t.depths.(u)
let size t = Array.length t.parents

let rec subtree_size t u =
  List.fold_left (fun acc c -> acc + subtree_size t c) 1 t.child_lists.(u)

let is_tree_edge t u v = (u <> v) && (t.parents.(u) = v || t.parents.(v) = u)

let edges t =
  let acc = ref [] in
  for u = size t - 1 downto 0 do
    if u <> t.tree_root then acc := (t.parents.(u), u) :: !acc
  done;
  !acc

let to_graph t =
  Static_graph.of_edges (size t) (List.map (fun (p, c) -> (p, c)) (edges t))

let leaves t =
  let acc = ref [] in
  for u = size t - 1 downto 0 do
    if t.child_lists.(u) = [] then acc := u :: !acc
  done;
  !acc

let post_order t =
  let rec visit u acc =
    u :: List.fold_left (fun acc c -> visit c acc) acc (List.rev t.child_lists.(u))
  in
  List.rev (visit t.tree_root [])
