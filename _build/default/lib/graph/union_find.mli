(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] puts each of [0 .. n-1] in its own set. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]; returns [false] when
    they were already together. *)

val connected : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets. *)
