(** Simple undirected graphs on nodes [0 .. n-1].

    This is the substrate for the "underlying graph" knowledge of
    Section 3.2 of the paper: the graph whose edges are the pairs that
    interact at least once in a sequence. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph; duplicate edges and both
    orientations are accepted, self-loops are rejected.
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val n : t -> int
(** Number of nodes. *)

val edge_count : t -> int
(** Number of (undirected) edges. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts edge [{u,v}] if absent.
    @raise Invalid_argument on out-of-range endpoints or [u = v]. *)

val has_edge : t -> int -> int -> bool
(** Membership test, orientation-insensitive. *)

val neighbors : t -> int -> int list
(** [neighbors g u] lists [u]'s neighbours in increasing id order. *)

val degree : t -> int -> int

val edges : t -> (int * int) list
(** All edges, smaller endpoint first, lexicographically sorted. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g acc] folds over edges with smaller endpoint first. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same node count and same edge set. *)

val complete : int -> t
(** [complete n] is the clique on [n] nodes. *)

val path : int -> t
(** [path n] is the path [0 - 1 - ... - n-1]. *)

val cycle : int -> t
(** [cycle n] is the cycle on [n] nodes ([n >= 3]).
    @raise Invalid_argument if [n < 3]. *)

val star : int -> t
(** [star n] connects node [0] to every other node. *)

val grid : int -> int -> t
(** [grid rows cols] is the 2D lattice; node [(r, c)] has id
    [r * cols + c]. *)

val is_tree : t -> bool
(** Connected and [n - 1] edges. *)

val pp : Format.formatter -> t -> unit
