lib/graph/graph_gen.ml: Array Doda_prng Int Set Static_graph Stdlib
