lib/graph/spanning_tree.mli: Static_graph
