lib/graph/spanning_tree.ml: Array List Static_graph Traversal Union_find
