lib/graph/static_graph.ml: Array Format Int List Set Stack
