lib/graph/static_graph.mli: Format
