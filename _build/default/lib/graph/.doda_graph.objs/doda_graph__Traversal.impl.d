lib/graph/traversal.ml: Array List Queue Static_graph Stdlib
