lib/graph/graph_gen.mli: Doda_prng Static_graph
