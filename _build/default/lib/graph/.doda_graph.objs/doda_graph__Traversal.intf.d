lib/graph/traversal.mli: Static_graph
