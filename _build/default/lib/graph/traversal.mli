(** Graph traversals: BFS distances, connected components, and
    reachability. *)

val bfs_distances : Static_graph.t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable nodes get [-1]. *)

val bfs_parents : Static_graph.t -> int -> int array
(** [bfs_parents g src] is a BFS parent array rooted at [src]:
    [parent.(src) = src], unreachable nodes get [-1]. Siblings are
    visited in increasing id order, so the result is deterministic —
    this matters for Theorem 4/5, where all nodes must compute the
    {e same} spanning tree locally. *)

val connected : Static_graph.t -> bool
(** True iff every node is reachable from node [0] (vacuously true for
    the empty graph). *)

val components : Static_graph.t -> int array
(** [components g] labels each node with a component id in
    [0 .. k-1]; nodes share a label iff connected. *)

val component_count : Static_graph.t -> int

val eccentricity : Static_graph.t -> int -> int
(** Largest finite BFS distance from the node.
    @raise Invalid_argument if some node is unreachable. *)

val diameter : Static_graph.t -> int
(** Largest eccentricity. @raise Invalid_argument if disconnected. *)
