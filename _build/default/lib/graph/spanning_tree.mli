(** Rooted spanning trees.

    The algorithm of Theorems 4 and 5 has every node locally compute
    the {e same} spanning tree of the underlying graph from shared
    knowledge; determinism of the construction is therefore part of the
    contract. *)

type t
(** A rooted spanning tree of a graph, with parent/children access. *)

val bfs_tree : Static_graph.t -> root:int -> t
(** [bfs_tree g ~root] is the deterministic BFS spanning tree rooted at
    [root] (ties broken by increasing node id).
    @raise Invalid_argument if [g] is disconnected. *)

val kruskal_tree : Static_graph.t -> root:int -> t
(** [kruskal_tree g ~root] is the deterministic spanning tree made of
    the lexicographically smallest acyclic edge set (Kruskal over unit
    weights, edges scanned in sorted order), rooted at [root]. A
    different — typically deeper — deterministic choice than
    {!bfs_tree}, used to measure how tree choice affects the
    Theorem 4/5 algorithm. @raise Invalid_argument if [g] is
    disconnected. *)

val root : t -> int

val parent : t -> int -> int
(** [parent t u] is [u]'s parent; [parent t (root t) = root t]. *)

val children : t -> int -> int list
(** Children in increasing id order. *)

val depth : t -> int -> int
(** Hop distance to the root. *)

val subtree_size : t -> int -> int
(** Number of nodes in the subtree rooted at [u], including [u]. *)

val size : t -> int
(** Total number of nodes. *)

val is_tree_edge : t -> int -> int -> bool
(** [is_tree_edge t u v] holds iff one of [u], [v] is the parent of the
    other. *)

val edges : t -> (int * int) list
(** Tree edges as (parent, child) pairs, sorted by child id. *)

val to_graph : t -> Static_graph.t
(** Forget the rooting. *)

val leaves : t -> int list
(** Nodes with no children, in increasing id order. *)

val post_order : t -> int list
(** A post-order listing (children before parents); within a node,
    children are visited in increasing id order. *)
