(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, 2014).

    A tiny, fast, 64-bit generator with a single 64-bit word of state.
    It is primarily used here to seed {!Xoshiro256ss} from a single
    integer, and to derive independent child seeds ({i splitting}) so
    that replications of an experiment use decorrelated streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialised with [seed].
    Any seed is acceptable, including [0L]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64-bit output. *)

val split : t -> int64
(** [split g] advances [g] and returns a value suitable as the seed of
    an independent child generator. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g], evolving
    independently afterwards. *)
