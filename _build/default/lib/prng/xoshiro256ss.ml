type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let create seed =
  let sm = Splitmix64.create seed in
  {
    s0 = Splitmix64.next sm;
    s1 = Splitmix64.next sm;
    s2 = Splitmix64.next sm;
    s3 = Splitmix64.next sm;
  }

let of_state (s0, s1, s2, s3) =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Xoshiro256ss.of_state: all-zero state";
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let next g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump g =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.(logand word (shift_left 1L b)) <> 0L then begin
          s0 := Int64.logxor !s0 g.s0;
          s1 := Int64.logxor !s1 g.s1;
          s2 := Int64.logxor !s2 g.s2;
          s3 := Int64.logxor !s3 g.s3
        end;
        ignore (next g)
      done)
    jump_table;
  g.s0 <- !s0;
  g.s1 <- !s1;
  g.s2 <- !s2;
  g.s3 <- !s3
