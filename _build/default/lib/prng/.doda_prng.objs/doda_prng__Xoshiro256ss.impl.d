lib/prng/xoshiro256ss.ml: Array Int64 Splitmix64
