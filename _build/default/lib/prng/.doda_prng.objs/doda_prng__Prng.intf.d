lib/prng/prng.mli:
