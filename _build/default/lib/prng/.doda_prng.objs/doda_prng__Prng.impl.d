lib/prng/prng.ml: Array Float Int64 Queue Splitmix64 Xoshiro256ss
