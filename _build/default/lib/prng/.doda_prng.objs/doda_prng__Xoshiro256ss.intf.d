lib/prng/xoshiro256ss.mli:
