type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy g = { state = g.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

(* A distinct finalizer for split seeds, so that a child seeded with
   [split g] does not replay the parent's stream. *)
let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  Int64.(logxor z (shift_right_logical z 33))

let split g = mix_gamma (next g)
