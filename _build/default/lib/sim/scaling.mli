(** Asymptotic-shape checks over sweeps of [n].

    Given measurements at increasing [n], compare against a predicted
    form [p(n)]: the ratio [measured / p(n)] should stabilise to a
    constant if the prediction has the right shape, and the fitted
    log–log slope estimates the polynomial exponent. *)

type point = { n : int; mean : float; std_error : float; success : float }

val point_of : Experiment.measurement -> point

val points_of : Experiment.measurement list -> point list

val exponent : point list -> Doda_stats.Regression.fit
(** Log–log fit of mean vs [n]; the slope is the empirical exponent. *)

val ratios : predicted:(int -> float) -> point list -> (int * float) list
(** [(n, measured / predicted n)] per point. *)

val ratio_stability : predicted:(int -> float) -> point list -> float * float
(** Mean and coefficient of variation of the ratios: a small CV
    (< ~0.2) indicates the predicted shape holds with a stable
    constant. *)
