module Prng = Doda_prng.Prng
module Engine = Doda_core.Engine

type measurement = {
  label : string;
  n : int;
  samples : float array;
  failures : int;
}

let replicate ~replications ~seed f =
  let master = Prng.create seed in
  Array.init replications (fun _ -> f (Prng.split master))

let of_results ~label ~n results =
  let samples = ref [] in
  let failures = ref 0 in
  Array.iter
    (fun (r : Engine.result) ->
      match r.duration with
      | Some d -> samples := float_of_int (d + 1) :: !samples
      | None -> incr failures)
    results;
  { label; n; samples = Array.of_list (List.rev !samples); failures = !failures }

let run_schedule_factory ?(replications = 20) ?(seed = 42) ~max_steps ~label ~n
    factory algo =
  let results =
    replicate ~replications ~seed (fun rng ->
        Engine.run ~max_steps algo (factory rng))
  in
  of_results ~label ~n results

let run_uniform ?replications ?seed ?(sink = 0) ?max_steps ~n
    (algo : Doda_core.Algorithm.t) =
  let max_steps =
    match max_steps with Some m -> m | None -> (200 * n * n) + 10_000
  in
  run_schedule_factory ?replications ?seed ~max_steps ~label:algo.name ~n
    (fun rng -> Doda_adversary.Randomized.uniform_schedule rng ~n ~sink)
    algo

let mean m =
  if Array.length m.samples = 0 then
    invalid_arg ("Experiment.mean: no successful runs for " ^ m.label);
  Doda_stats.Descriptive.mean m.samples

let summary m = Doda_stats.Descriptive.summarize m.samples

let success_rate m =
  let total = Array.length m.samples + m.failures in
  if total = 0 then 0.0 else float_of_int (Array.length m.samples) /. float_of_int total
