lib/sim/table.mli:
