lib/sim/timeline.ml: Array Buffer Bytes Doda_core List Printf Stdlib
