lib/sim/timeline.mli: Doda_core
