lib/sim/workload.mli: Doda_dynamic
