lib/sim/workload.ml: Array Doda_dynamic Doda_prng Printf Stdlib String
