lib/sim/csv.mli:
