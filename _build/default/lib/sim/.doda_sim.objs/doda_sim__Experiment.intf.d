lib/sim/experiment.mli: Doda_core Doda_dynamic Doda_prng Doda_stats
