lib/sim/experiment.ml: Array Doda_adversary Doda_core Doda_prng Doda_stats List
