lib/sim/analysis.ml: Array Doda_core Fun List Stdlib
