lib/sim/scaling.mli: Doda_stats Experiment
