lib/sim/scaling.ml: Array Doda_stats Experiment List
