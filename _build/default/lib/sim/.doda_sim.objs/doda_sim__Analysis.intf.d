lib/sim/analysis.mli: Doda_core
