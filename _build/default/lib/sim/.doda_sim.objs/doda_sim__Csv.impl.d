lib/sim/csv.ml: Buffer Fun List String
