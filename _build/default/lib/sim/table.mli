(** Aligned plain-text tables for experiment reports. *)

type t

val create : header:string list -> t
(** @raise Invalid_argument on an empty header. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rows : t -> string list list -> unit

val header_row : t -> string list

val rows : t -> string list list
(** Data rows, in insertion order. *)

val render : t -> string
(** Right-pads cells; columns separated by two spaces; a rule under the
    header. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : float -> string
(** Compact numeric formatting: integers render without decimals,
    others with up to two. *)

val cell_ratio : float -> string
(** Three-decimal format for ratios. *)
