(** ASCII timeline of an execution: when each node transmitted and to
    whom, on a compressed time axis. Used by the examples and by
    [doda run --timeline]. *)

val render : ?width:int -> n:int -> sink:int -> Doda_core.Engine.result -> string
(** [render ~n ~sink result] draws one row per node: ['.'] while the
    node still owns data, ['>'] at (the bucket of) its transmission,
    [' '] afterwards; the sink row shows ['#'] marks when it receives.
    [width] is the number of axis buckets (default 64). Nodes that
    never transmitted keep ['.'] to the end of the axis. *)

val transmissions_table : Doda_core.Engine.result -> string
(** The raw transmission log, one line per transmission:
    [t=12  5 -> 0]. *)
