(** Replicated measurements of algorithm runs.

    A measurement runs an algorithm several times against independently
    seeded schedules and collects the number of interactions to
    termination. The unit reported is "interactions processed until the
    final transmission, inclusive" — [duration + 1] — matching the
    paper's "terminates in [X] interactions". *)

type measurement = {
  label : string;
  n : int;  (** number of nodes *)
  samples : float array;  (** interactions to completion, terminated runs *)
  failures : int;  (** runs that did not terminate within their budget *)
}

val replicate : replications:int -> seed:int -> (Doda_prng.Prng.t -> 'a) -> 'a array
(** [replicate ~replications ~seed f] calls [f] once per replication
    with independent split streams derived from [seed]. *)

val of_results : label:string -> n:int -> Doda_core.Engine.result array -> measurement

val run_uniform :
  ?replications:int -> ?seed:int -> ?sink:int -> ?max_steps:int ->
  n:int -> Doda_core.Algorithm.t -> measurement
(** [run_uniform ~n algo] measures [algo] against the uniform
    randomized adversary. Defaults: 20 replications, seed 42, sink 0,
    [max_steps = 200 * n^2 + 10_000] (an order of magnitude above the
    slowest expected algorithm, Waiting). *)

val run_schedule_factory :
  ?replications:int -> ?seed:int -> max_steps:int ->
  label:string -> n:int ->
  (Doda_prng.Prng.t -> Doda_dynamic.Schedule.t) ->
  Doda_core.Algorithm.t -> measurement
(** Generic form: a fresh schedule per replication. *)

val mean : measurement -> float
(** Mean of the samples. @raise Invalid_argument if every run failed. *)

val summary : measurement -> Doda_stats.Descriptive.summary

val success_rate : measurement -> float
