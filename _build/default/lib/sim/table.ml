type t = { header : string list; mutable rows : string list list }

let create ~header =
  if header = [] then invalid_arg "Table.create: empty header";
  { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let header_row t = t.header
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- Stdlib.max widths.(c) (String.length cell)))
    all;
  let line cells =
    String.concat "  "
      (List.mapi
         (fun c cell -> cell ^ String.make (widths.(c) - String.length cell) ' ')
         cells)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let cell_ratio x = Printf.sprintf "%.3f" x
