module Engine = Doda_core.Engine

let aggregation_parent ~n (r : Engine.result) =
  let parent = Array.make n (-1) in
  List.iter (fun tr -> parent.(tr.Engine.sender) <- tr.Engine.receiver) r.transmissions;
  parent

(* For each node, the time at which it transmitted (-1 if never). *)
let fire_times ~n (r : Engine.result) =
  let fire = Array.make n (-1) in
  List.iter (fun tr -> fire.(tr.Engine.sender) <- tr.Engine.time) r.transmissions;
  fire

let datum_route ~n ~sink (r : Engine.result) v =
  let parent = aggregation_parent ~n r in
  let fire = fire_times ~n r in
  let rec walk carrier acc =
    if carrier = sink || parent.(carrier) < 0 then List.rev acc
    else
      let next = parent.(carrier) in
      walk next ((fire.(carrier), next) :: acc)
  in
  if v = sink then [] else walk v []

let delivery_times ~n ~sink r =
  Array.init n (fun v ->
      if v = sink then None
      else
        match List.rev (datum_route ~n ~sink r v) with
        | (t, carrier) :: _ when carrier = sink -> Some t
        | _ -> None)

let hop_counts ~n ~sink r =
  Array.init n (fun v -> List.length (datum_route ~n ~sink r v))

let mean_delivery_time ~n ~sink r =
  let times =
    Array.to_list (delivery_times ~n ~sink r) |> List.filter_map Fun.id
  in
  match times with
  | [] -> None
  | _ ->
      let total = List.fold_left ( + ) 0 times in
      Some (float_of_int total /. float_of_int (List.length times))

let max_hops ~n ~sink r =
  Array.fold_left Stdlib.max 0 (hop_counts ~n ~sink r)
