(** Descriptive statistics over float samples.

    Used throughout the experiment harness to summarise replicated
    measurements (interaction counts, costs, ratios). *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n - 1]); [0.] for samples
    of size one. @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val std_error : float array -> float
(** Standard error of the mean, [stddev / sqrt n]. *)

val min : float array -> float
(** Smallest sample. @raise Invalid_argument on an empty array. *)

val max : float array -> float
(** Largest sample. @raise Invalid_argument on an empty array. *)

val median : float array -> float
(** The 0.5 quantile; input is not modified. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the [q]-quantile ([0. <= q <= 1.]) using linear
    interpolation between order statistics; input is not modified. *)

val total : float array -> float
(** Sum of all samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  std_error : float;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}
(** All the common statistics in one pass-friendly record. *)

val summarize : float array -> summary
(** [summarize xs] computes a {!summary}. @raise Invalid_argument on an
    empty array. *)

val of_ints : int array -> float array
(** Convenience conversion for measured counts. *)
