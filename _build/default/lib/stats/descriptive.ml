let check xs name =
  if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty sample")

let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check xs "mean";
  total xs /. float_of_int (Array.length xs)

let variance xs =
  check xs "variance";
  let n = Array.length xs in
  if n = 1 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let std_error xs = stddev xs /. sqrt (float_of_int (Array.length xs))

let min xs =
  check xs "min";
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check xs "max";
  Array.fold_left Stdlib.max xs.(0) xs

let quantile xs q =
  check xs "quantile";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  stddev : float;
  std_error : float;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

let summarize xs =
  check xs "summarize";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let q p =
    let n = Array.length sorted in
    if n = 1 then sorted.(0)
    else
      let pos = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    std_error = std_error xs;
    min = sorted.(0);
    q25 = q 0.25;
    median = q 0.5;
    q75 = q 0.75;
    max = sorted.(Array.length sorted - 1);
  }

let of_ints xs = Array.map float_of_int xs
