(** Confidence intervals for replicated measurements.

    Both a normal-approximation interval and a nonparametric bootstrap
    (used in the benches, where termination-time distributions are
    skewed). *)

type interval = { center : float; lower : float; upper : float }

val normal_mean : ?confidence:float -> float array -> interval
(** [normal_mean xs] is the normal-approximation CI for the mean
    (default 95%). @raise Invalid_argument on an empty sample. *)

val bootstrap_mean :
  ?confidence:float -> ?resamples:int -> Doda_prng.Prng.t -> float array -> interval
(** [bootstrap_mean rng xs] is a percentile-bootstrap CI for the mean
    (default 95%, 1000 resamples). *)

val pp : Format.formatter -> interval -> unit
(** Renders as [center [lower, upper]]. *)

val contains : interval -> float -> bool
(** [contains iv x] tests [lower <= x <= upper]. *)
