(** Least-squares fits used to check asymptotic shapes empirically.

    The central tool of the experiment suite: to validate a bound like
    "Gathering terminates in O(n^2) interactions" we sweep [n], measure
    mean termination time [y(n)], and fit [log y = a log n + b]. The
    fitted slope [a] is the empirical exponent and must match the
    theorem (2 for Gathering, ~2 + log-factor for Waiting, 1.5 + for
    Waiting Greedy). *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination of the fit. *)
  residual_stddev : float;
}

val linear : (float * float) array -> fit
(** [linear points] fits [y = slope * x + intercept] by ordinary least
    squares. @raise Invalid_argument with fewer than two points or zero
    x-variance. *)

val log_log : (float * float) array -> fit
(** [log_log points] fits [log y = slope * log x + intercept]; the
    slope estimates the polynomial exponent of [y] in [x]. All
    coordinates must be positive. *)

val ratio_stability : (float * float) array -> float * float
(** [ratio_stability points] returns mean and coefficient of variation
    of [y/x] over the points. A small coefficient of variation means
    [y = Theta(x)] with a stable constant — the check used when the
    predicted form (e.g. [n log n]) is known exactly. *)

val evaluate : fit -> float -> float
(** [evaluate f x] is [f.slope *. x +. f.intercept]. *)
