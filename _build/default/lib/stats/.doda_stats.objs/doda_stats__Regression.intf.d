lib/stats/regression.mli:
