lib/stats/geometric_sum.mli:
