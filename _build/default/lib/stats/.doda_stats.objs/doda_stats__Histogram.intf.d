lib/stats/histogram.mli:
