lib/stats/histogram.ml: Array Buffer Descriptive Printf Stdlib String
