lib/stats/descriptive.mli:
