lib/stats/ci.mli: Doda_prng Format
