lib/stats/ci.ml: Array Descriptive Doda_prng Format
