lib/stats/geometric_sum.ml: Array Float
