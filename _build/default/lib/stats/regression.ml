type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  residual_stddev : float;
}

let linear points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. mx) ** 2.0)) 0.0 points in
  let sxy =
    Array.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0.0 points
  in
  if sxx = 0.0 then invalid_arg "Regression.linear: zero variance in x";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res =
    Array.fold_left
      (fun a (x, y) -> a +. ((y -. ((slope *. x) +. intercept)) ** 2.0))
      0.0 points
  in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. my) ** 2.0)) 0.0 points in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  let residual_stddev =
    if n > 2 then sqrt (ss_res /. float_of_int (n - 2)) else 0.0
  in
  { slope; intercept; r2; residual_stddev }

let log_log points =
  let logged =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Regression.log_log: coordinates must be positive";
        (log x, log y))
      points
  in
  linear logged

let ratio_stability points =
  if Array.length points = 0 then invalid_arg "Regression.ratio_stability: empty";
  let ratios =
    Array.map
      (fun (x, y) ->
        if x = 0.0 then invalid_arg "Regression.ratio_stability: zero x";
        y /. x)
      points
  in
  let m = Descriptive.mean ratios in
  let cv = if m = 0.0 then 0.0 else Descriptive.stddev ratios /. Float.abs m in
  (m, cv)

let evaluate f x = (f.slope *. x) +. f.intercept
