let check ps =
  Array.iter
    (fun p ->
      if p <= 0.0 || p > 1.0 then
        invalid_arg "Geometric_sum: probabilities must lie in (0, 1]")
    ps

let mean ps =
  check ps;
  Array.fold_left (fun acc p -> acc +. (1.0 /. p)) 0.0 ps

let variance ps =
  check ps;
  Array.fold_left (fun acc p -> acc +. ((1.0 -. p) /. (p *. p))) 0.0 ps

let pmf ~phases ~upto =
  check phases;
  if upto < 0 then invalid_arg "Geometric_sum.pmf: negative support";
  let m = Array.length phases in
  let mass = Array.make (upto + 1) 0.0 in
  if m = 0 then begin
    mass.(0) <- 1.0;
    mass
  end
  else begin
    (* alive.(k) = P(exactly k phases complete, process still running)
       after t interactions; absorption at step t+1 from state m-1 with
       probability phases.(m-1). *)
    let alive = Array.make m 0.0 in
    alive.(0) <- 1.0;
    for t = 1 to upto do
      mass.(t) <- alive.(m - 1) *. phases.(m - 1);
      for k = m - 1 downto 1 do
        alive.(k) <-
          (alive.(k) *. (1.0 -. phases.(k))) +. (alive.(k - 1) *. phases.(k - 1))
      done;
      alive.(0) <- alive.(0) *. (1.0 -. phases.(0))
    done;
    mass
  end

let cdf_of_pmf pmf =
  let cdf = Array.make (Array.length pmf) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf

let quantile ~cdf q =
  let len = Array.length cdf in
  let rec search t =
    if t >= len then
      invalid_arg "Geometric_sum.quantile: support too short for requested quantile"
    else if cdf.(t) >= q then t
    else search (t + 1)
  in
  search 0

let ks_distance ~cdf ~samples =
  let count = Array.length samples in
  if count = 0 then invalid_arg "Geometric_sum.ks_distance: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let len = Array.length cdf in
  (* Discrete support: the statistic is the sup over integers of
     |F_emp(t) - F(t)|; a two-pointer walk computes F_emp at every t. *)
  let worst = ref 0.0 in
  let i = ref 0 in
  for t = 0 to len - 1 do
    while !i < count && sorted.(!i) <= float_of_int t do
      incr i
    done;
    let empirical = float_of_int !i /. float_of_int count in
    worst := Float.max !worst (Float.abs (empirical -. cdf.(t)))
  done;
  (* Samples beyond the represented support: the exact CDF is treated
     as its boundary value. *)
  if !i < count && len > 0 then
    worst :=
      Float.max !worst
        (Float.abs (1.0 -. cdf.(len - 1)));
  !worst
