type interval = { center : float; lower : float; upper : float }

(* Two-sided standard-normal quantile for the usual confidence levels,
   with linear interpolation elsewhere; adequate for reporting. *)
let z_of_confidence c =
  let table =
    [ (0.80, 1.2816); (0.90, 1.6449); (0.95, 1.9600); (0.98, 2.3263); (0.99, 2.5758) ]
  in
  let rec lookup = function
    | [] -> 1.96
    | [ (_, z) ] -> z
    | (c1, z1) :: ((c2, z2) :: _ as rest) ->
        if c <= c1 then z1
        else if c < c2 then z1 +. ((z2 -. z1) *. (c -. c1) /. (c2 -. c1))
        else lookup rest
  in
  lookup table

let normal_mean ?(confidence = 0.95) xs =
  let m = Descriptive.mean xs in
  let se = Descriptive.std_error xs in
  let z = z_of_confidence confidence in
  { center = m; lower = m -. (z *. se); upper = m +. (z *. se) }

let bootstrap_mean ?(confidence = 0.95) ?(resamples = 1000) rng xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ci.bootstrap_mean: empty sample";
  let means =
    Array.init resamples (fun _ ->
        let acc = ref 0.0 in
        for _ = 1 to n do
          acc := !acc +. xs.(Doda_prng.Prng.int rng n)
        done;
        !acc /. float_of_int n)
  in
  let alpha = 1.0 -. confidence in
  {
    center = Descriptive.mean xs;
    lower = Descriptive.quantile means (alpha /. 2.0);
    upper = Descriptive.quantile means (1.0 -. (alpha /. 2.0));
  }

let pp ppf iv =
  Format.fprintf ppf "%.1f [%.1f, %.1f]" iv.center iv.lower iv.upper

let contains iv x = iv.lower <= x && x <= iv.upper
