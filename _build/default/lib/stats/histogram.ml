type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add h x =
  h.total <- h.total + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let i = int_of_float ((x -. h.lo) /. h.width) in
    let i = Stdlib.min i (Array.length h.counts - 1) in
    h.counts.(i) <- h.counts.(i) + 1
  end

let of_samples ?(bins = 20) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_samples: empty sample";
  let lo = Descriptive.min xs and hi = Descriptive.max xs in
  let hi = if hi = lo then lo +. 1.0 else hi +. ((hi -. lo) *. 1e-9) in
  let h = create ~lo ~hi ~bins in
  Array.iter (add h) xs;
  h

let count h = h.total
let underflow h = h.under
let overflow h = h.over
let bins h = Array.length h.counts
let bin_count h i = h.counts.(i)

let bin_bounds h i =
  let lo = h.lo +. (float_of_int i *. h.width) in
  (lo, lo +. h.width)

let render ?(width = 50) h =
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds h i in
      let bar_len = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%12.1f, %12.1f) %6d %s\n" lo hi c (String.make bar_len '#')))
    h.counts;
  if h.under > 0 then Buffer.add_string buf (Printf.sprintf "underflow: %d\n" h.under);
  if h.over > 0 then Buffer.add_string buf (Printf.sprintf "overflow: %d\n" h.over);
  Buffer.contents buf
