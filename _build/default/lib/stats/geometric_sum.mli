(** Sums of independent geometric random variables.

    The termination time of every phase-based process in the paper
    (Waiting, Gathering, broadcast, sink-meeting counts) is a sum
    [X = G_1 + ... + G_m] of independent geometrics, [G_i] counting
    trials up to and including the first success at probability [p_i].
    This module computes the {e exact} finite-[n] distribution — mean,
    variance, probability mass, quantiles — so experiments can be
    checked against the true law rather than only the asymptotic bound.
    See [Doda_core.Theory] for the model's phase vectors. *)

val mean : float array -> float
(** [mean ps] is [sum 1/p_i]. @raise Invalid_argument if some
    [p_i] is outside (0, 1]. *)

val variance : float array -> float
(** [sum (1 - p_i)/p_i^2]. *)

val pmf : phases:float array -> upto:int -> float array
(** [pmf ~phases ~upto] is the exact probability mass function of the
    sum on support [0 .. upto]: entry [t] is [P(X = t)]. Computed by
    dynamic programming in O(upto * m). Mass beyond [upto] is simply
    not represented (the array sums to [P(X <= upto)]). *)

val cdf_of_pmf : float array -> float array
(** Running sum. *)

val quantile : cdf:float array -> float -> int
(** [quantile ~cdf q] is the smallest [t] with [cdf.(t) >= q].
    @raise Invalid_argument if the represented mass never reaches [q]
    (increase [upto]). *)

val ks_distance : cdf:float array -> samples:float array -> float
(** Kolmogorov–Smirnov distance between the exact CDF and the
    empirical CDF of [samples] (values beyond the CDF support are
    treated as mass at the boundary). @raise Invalid_argument on an
    empty sample. *)
