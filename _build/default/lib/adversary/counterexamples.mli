(** The adversary constructions from the paper's impossibility proofs.

    Each is implemented literally, extended to cover every possible
    behaviour of the algorithm under attack (the proofs sketch the
    cases that matter; an executable adversary must answer all of
    them). Played via {!Duel.run}, they prevent termination of any
    algorithm while keeping one optimal convergecast per period
    possible — so the cost grows without bound with the horizon, the
    executable form of [cost_A(I) = ∞]. *)

val theorem1 : unit -> Adversary.t
(** Theorem 1: adaptive adversary on 3 nodes — sink [0], [a = 1],
    [b = 2]. Opens with [{a, b}]; as soon as one of [a], [b] commits
    its data the other is locked away from the sink forever. Defeats
    {e every} DODA algorithm without knowledge. *)

val theorem1_nodes : int
(** Number of nodes the construction uses (3). *)

val theorem3 : unit -> Adversary.t
(** Theorem 3: adaptive adversary on 4 nodes — sink [0] and
    [u1, u2, u3 = 1, 2, 3] — whose played sequence has the cycle
    [s - u1 - u2 - u3 - s] as underlying graph. Defeats every
    algorithm even when nodes know that underlying graph. Pair with
    [Knowledge.with_underlying (theorem3_graph ())]. *)

val theorem3_nodes : int
(** Number of nodes the construction uses (4). *)

val theorem3_graph : unit -> Doda_graph.Static_graph.t
(** The 4-cycle underlying graph the construction commits to. *)

type theorem2_parameters = {
  l0 : int;  (** prefix length at which someone transmits w.h.p. *)
  d : int;  (** index of the node the gadget cuts off *)
  survival : float;  (** estimated probability [u_d] still owns data *)
  transmit_rate : float;
      (** estimated probability at least one node transmits during the
          prefix — must be high for the trap to arm *)
}

val theorem2_search :
  ?trials:int -> ?max_l:int -> n:int ->
  Doda_core.Algorithm.t -> theorem2_parameters option
(** [theorem2_search ~n algo] executes the {e procedure} of the
    Theorem 2 proof against a concrete (possibly randomized) oblivious
    algorithm: it estimates [P_l] — the probability that no node
    transmits when [algo] runs on the prefix [I^l] of sink meetings
    [{u_0, s}, {u_1, s}, ...] — by Monte-Carlo over [trials] fresh
    instances (default 100), takes [l0] as the first length with
    [P_l < 1/n], and picks [d] in [\[1, n-2\]] as the node most likely
    to still own data after the prefix. [None] when no [l] up to
    [max_l] (default [8 n]) makes a transmission likely — the
    algorithm is so passive the trap (and, against such algorithms,
    the rest of the proof's argument) does not arm.

    Pair with {!theorem2_sequence} to materialise the blocking
    sequence. @raise Invalid_argument if [n < 4]. *)

val theorem2_sequence : n:int -> l0:int -> d:int -> periods:int -> Doda_dynamic.Sequence.t
(** Theorem 2: the {e oblivious} construction against randomized
    oblivious algorithms, materialised for [periods] repetitions.
    Nodes are the sink [0] and [u_0 .. u_{n-2}] (node [u_i] has id
    [i + 1]). The sequence starts with [l0] interactions
    [{u_0, s}, {u_1, s}, ...] (indices mod [n - 1]); by choice of
    [l0], some node transmits during this prefix w.h.p. It continues
    with repetitions of the blocking gadget [I']: a path
    [u_i - u_{i+1}] over all [i] except [i = d - 1], which is replaced
    by [{u_{d-1}, s}] — node [u_d]'s data can then only reach the sink
    through a chain containing a node that has already spent its
    transmission. @raise Invalid_argument if [n < 3], [l0 < 0],
    [d] outside [\[1, n-2\]], or [periods < 0]. *)
