type view = {
  time : int;
  holders : bool array;
  last_transmission : Doda_core.Engine.transmission option;
}

type t = { name : string; next : view -> Doda_dynamic.Interaction.t option }

let of_sequence ~name s =
  {
    name;
    next =
      (fun view ->
        if view.time < Doda_dynamic.Sequence.length s then
          Some (Doda_dynamic.Sequence.get s view.time)
        else None);
  }

let of_generator ~name gen = { name; next = (fun view -> Some (gen view.time)) }

let of_schedule sched =
  {
    name = "schedule";
    next = (fun view -> Doda_dynamic.Schedule.get sched view.time);
  }

let limit k adv =
  {
    name = Printf.sprintf "%s|%d" adv.name k;
    next = (fun view -> if view.time >= k then None else adv.next view);
  }
