(** Plays an algorithm against an (adaptive) adversary.

    Unlike {!Doda_core.Engine.run}, the interaction at time [t] is
    chosen {e during} the run, after the adversary has seen everything
    up to [t - 1] — the adaptive online adversary of Section 2.2. The
    model rules enforced are identical to the engine's. The recorded
    sequence is returned so offline analyses (cost, optimal
    convergecasts) can be applied to exactly what the adversary
    played. *)

val run :
  ?knowledge:Doda_core.Knowledge.t ->
  max_steps:int ->
  n:int -> sink:int ->
  Doda_core.Algorithm.t -> Adversary.t ->
  Doda_core.Engine.result * Doda_dynamic.Sequence.t
(** [run ~max_steps ~n ~sink algo adv] stops at aggregation, adversary
    exhaustion, or [max_steps]. [knowledge] defaults to
    {!Doda_core.Knowledge.empty} — an adaptive adversary's future does
    not exist ahead of time, so no future-dependent oracle can be
    offered; underlying-graph knowledge can be injected by the caller
    when the adversary guarantees it by construction.

    @raise Invalid_argument on knowledge the algorithm requires but the
    caller did not supply, on invalid [n]/[sink], or on an adversary
    returning an interaction mentioning ids [>= n]. *)
