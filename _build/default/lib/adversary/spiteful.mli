(** A heuristic adaptive adversary for arbitrary [n], generalising the
    trap mechanism of the Theorem 1 / Theorem 3 constructions.

    Strategy. While no node has committed a transmission, the adversary
    {e probes}: it cycles through non-sink pairs and an occasional sink
    meeting, daring the algorithm to act. The moment some node [x] has
    transmitted (so [x] owns nothing and can never receive), the
    adversary {e freezes}: it only ever schedules [{h, x}] for each
    remaining data owner [h] and [{x, sink}]. Online, no further
    transmission is possible — [x] is empty in every scheduled pair —
    yet offline each period admits a full convergecast (fresh data:
    every [h] relays through [x], then [x] delivers), so the cost of
    the trapped algorithm grows without bound.

    Against algorithms that never transmit at all, the probe phase
    itself runs forever while convergecasts keep completing — the same
    unbounded cost.

    This is an experimental generalisation (the paper proves the
    3-node case); the [spite] bench measures it against every
    algorithm in the registry that works without future knowledge. *)

val adversary : n:int -> sink:int -> Adversary.t
(** @raise Invalid_argument if [n < 3] or [sink] out of range. *)
