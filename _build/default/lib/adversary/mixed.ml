module Prng = Doda_prng.Prng
module Interaction = Doda_dynamic.Interaction

let adversary rng ~n ~sink ~q =
  if q < 0.0 || q > 1.0 then invalid_arg "Mixed.adversary: q outside [0, 1]";
  let spiteful = Spiteful.adversary ~n ~sink in
  let next (view : Adversary.view) =
    if Prng.bernoulli rng q then spiteful.Adversary.next view
    else begin
      let a, b = Prng.pair rng n in
      Some (Interaction.make a b)
    end
  in
  { Adversary.name = Printf.sprintf "mixed(q=%.2f)" q; next }
