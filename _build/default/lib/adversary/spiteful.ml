module Interaction = Doda_dynamic.Interaction

let adversary ~n ~sink =
  if n < 3 then invalid_arg "Spiteful.adversary: need at least three nodes";
  if sink < 0 || sink >= n then invalid_arg "Spiteful.adversary: sink out of range";
  (* Probe cycle: every non-sink pair in order, then one sink meeting —
     enough recurrence for offline convergecasts, one dare per cycle
     for the algorithm. *)
  let probe =
    let pairs = ref [] in
    for u = n - 1 downto 0 do
      for v = n - 1 downto u + 1 do
        if u <> sink && v <> sink then pairs := Interaction.make u v :: !pairs
      done
    done;
    let envoy = if sink = 0 then 1 else 0 in
    Array.of_list (!pairs @ [ Interaction.make envoy sink ])
  in
  let position = ref 0 in
  let trapped = ref None in
  let next (view : Adversary.view) =
    (match !trapped with
    | Some _ -> ()
    | None ->
        (* Freeze on the first node that spent its transmission. *)
        let x = ref (-1) in
        Array.iteri
          (fun v holds -> if (not holds) && v <> sink && !x < 0 then x := v)
          view.holders;
        if !x >= 0 then begin
          trapped := Some !x;
          position := 0
        end);
    let interaction =
      match !trapped with
      | None -> probe.(!position mod Array.length probe)
      | Some x ->
          (* Only pairs through the empty node [x]: online-dead,
             offline-routable. *)
          let cycle = ref [ Interaction.make x sink ] in
          for h = n - 1 downto 0 do
            if h <> sink && h <> x && view.holders.(h) then
              cycle := Interaction.make h x :: !cycle
          done;
          let cycle = Array.of_list !cycle in
          cycle.(!position mod Array.length cycle)
    in
    incr position;
    Some interaction
  in
  { Adversary.name = Printf.sprintf "spiteful(n=%d)" n; next }
