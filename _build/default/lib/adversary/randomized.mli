(** The randomized adversary (Section 4) and its non-uniform variant
    (open question 3 of the paper's conclusion). *)

val uniform : Doda_prng.Prng.t -> n:int -> Adversary.t
(** Each interaction drawn uniformly among the [n(n-1)/2] pairs. *)

val uniform_schedule : Doda_prng.Prng.t -> n:int -> sink:int -> Doda_dynamic.Schedule.t
(** The same adversary as a lazy {!Doda_dynamic.Schedule.t}, which is
    what knowledge-using algorithms (meetTime, full knowledge) run
    against: the oracle and the execution observe one consistent
    draw. *)

val weighted : Doda_prng.Prng.t -> weights:float array -> Adversary.t
(** Endpoints drawn (distinctly) proportionally to per-node weights. *)

val weighted_schedule :
  Doda_prng.Prng.t -> weights:float array -> sink:int -> Doda_dynamic.Schedule.t

val sink_biased : Doda_prng.Prng.t -> n:int -> sink_weight:float -> Adversary.t
(** All nodes weight 1, the sink weighted [sink_weight]: a one-knob
    non-uniform adversary ([sink_weight = 1.] recovers near-uniform
    pair sampling up to the two-endpoint draw). *)

val sink_biased_schedule :
  Doda_prng.Prng.t -> n:int -> sink:int -> sink_weight:float -> Doda_dynamic.Schedule.t
