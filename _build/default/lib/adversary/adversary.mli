(** Adversaries (Section 2.2): the entity choosing which interaction
    occurs at each time step.

    - the {e oblivious} adversary commits to the whole sequence before
      the execution starts ({!of_sequence}, {!of_generator});
    - the {e adaptive online} adversary observes the execution so far
      and picks the next interaction accordingly (a [next] function
      over the {!view});
    - the {e randomized} adversary draws interactions uniformly
      ({!Randomized}).

    Adaptive adversaries are played against an algorithm by
    {!Duel.run}. *)

type view = {
  time : int;  (** Time of the interaction about to be chosen. *)
  holders : bool array;  (** Current data ownership; do not mutate. *)
  last_transmission : Doda_core.Engine.transmission option;
      (** The most recent transmission, if any — what the adaptive
          adversary of the paper reacts to. *)
}

type t = {
  name : string;
  next : view -> Doda_dynamic.Interaction.t option;
      (** [None] ends the execution (finite adversaries). *)
}

val of_sequence : name:string -> Doda_dynamic.Sequence.t -> t
(** Oblivious adversary replaying a committed finite sequence. *)

val of_generator : name:string -> (int -> Doda_dynamic.Interaction.t) -> t
(** Oblivious adversary from a time-indexed generator (never ends). *)

val of_schedule : Doda_dynamic.Schedule.t -> t
(** Oblivious adversary replaying a schedule ([None] past a finite
    end). *)

val limit : int -> t -> t
(** [limit k adv] plays [adv] for at most [k] interactions. *)
