lib/adversary/spiteful.ml: Adversary Array Doda_dynamic Printf
