lib/adversary/mixed.mli: Adversary Doda_prng
