lib/adversary/adversary.ml: Doda_core Doda_dynamic Printf
