lib/adversary/mixed.ml: Adversary Doda_dynamic Doda_prng Printf Spiteful
