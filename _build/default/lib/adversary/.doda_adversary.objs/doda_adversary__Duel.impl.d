lib/adversary/duel.ml: Adversary Array Doda_core Doda_dynamic List Option Printf
