lib/adversary/counterexamples.mli: Adversary Doda_core Doda_dynamic Doda_graph
