lib/adversary/randomized.ml: Adversary Array Doda_dynamic
