lib/adversary/duel.mli: Adversary Doda_core Doda_dynamic
