lib/adversary/randomized.mli: Adversary Doda_dynamic Doda_prng
