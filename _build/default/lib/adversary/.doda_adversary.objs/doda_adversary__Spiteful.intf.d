lib/adversary/spiteful.mli: Adversary
