lib/adversary/counterexamples.ml: Adversary Array Doda_core Doda_dynamic Doda_graph List
