lib/adversary/adversary.mli: Doda_core Doda_dynamic
