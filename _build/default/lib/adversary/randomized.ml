module Generators = Doda_dynamic.Generators
module Schedule = Doda_dynamic.Schedule

let uniform rng ~n =
  Adversary.of_generator ~name:"randomized-uniform" (Generators.uniform rng ~n)

let uniform_schedule rng ~n ~sink =
  Schedule.of_fun ~n ~sink (Generators.uniform rng ~n)

let weighted rng ~weights =
  Adversary.of_generator ~name:"randomized-weighted"
    (Generators.weighted_nodes rng ~weights)

let weighted_schedule rng ~weights ~sink =
  Schedule.of_fun ~n:(Array.length weights) ~sink
    (Generators.weighted_nodes rng ~weights)

let sink_weights ~n ~sink ~sink_weight =
  Array.init n (fun u -> if u = sink then sink_weight else 1.0)

let sink_biased rng ~n ~sink_weight =
  (* By convention the biased node is node 0 when used through the
     adversary interface; prefer [sink_biased_schedule] which names the
     sink explicitly. *)
  Adversary.of_generator ~name:"randomized-sink-biased"
    (Generators.weighted_nodes rng
       ~weights:(sink_weights ~n ~sink:0 ~sink_weight))

let sink_biased_schedule rng ~n ~sink ~sink_weight =
  Schedule.of_fun ~n ~sink
    (Generators.weighted_nodes rng ~weights:(sink_weights ~n ~sink ~sink_weight))
