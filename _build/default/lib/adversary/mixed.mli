(** Interpolation between the randomized and the adaptive adversary.

    The paper's two extreme adversaries behave very differently: the
    uniform randomized one lets Gathering finish in Θ(n²), while a
    fully adaptive one stalls every algorithm forever (Theorem 1,
    {!Spiteful}). [mixed q] plays the spiteful rule with probability
    [q] at each step and a uniform random pair otherwise, measuring how
    much adaptivity the adversary needs before online aggregation
    degrades — an experimental angle on the paper's closing question
    about adversary power ([mixed] bench). For [q < 1] termination
    still happens almost surely (uniform moves eventually connect the
    holders to the sink); the slowdown grows as [q -> 1]. *)

val adversary :
  Doda_prng.Prng.t -> n:int -> sink:int -> q:float -> Adversary.t
(** @raise Invalid_argument if [q] is outside [0, 1], [n < 3] or
    [sink] out of range. *)
