(** The spanning-tree algorithm of Theorems 4 and 5.

    All nodes are given the underlying graph and deterministically
    compute the same spanning tree rooted at the sink. A node transmits
    to its tree parent as soon as it has received the data of all its
    tree children; transmissions happen only along tree edges.

    If every edge of the underlying graph occurs infinitely often
    (Theorem 4), the algorithm terminates with finite cost; if the
    underlying graph {e is} a tree (Theorem 5), it is optimal
    (cost 1): its unique transmission order is forced, so no offline
    schedule can do better. On non-tree graphs its cost is unbounded —
    experiment E9 exhibits the gap.

    The per-node memory is a count of children heard from, so this
    algorithm is {e not} oblivious. *)

type tree_choice =
  | Bfs  (** shallow BFS tree, ties by node id (the default) *)
  | Kruskal  (** lexicographically-least edge set; typically deeper *)

val make : ?tree:tree_choice -> unit -> Algorithm.t
(** Requires {!Knowledge.Underlying_graph}; the graph must be
    connected (otherwise instance creation raises
    [Invalid_argument]). Which deterministic tree the nodes agree on is
    an implementation degree of freedom the theorems leave open; the
    [variants] bench measures its impact. *)

val algorithm : Algorithm.t
(** [make ()] — BFS tree. *)
