let harmonic k =
  let acc = ref 0.0 in
  for i = 1 to k do
    acc := !acc +. (1.0 /. float_of_int i)
  done;
  !acc

let expected_broadcast n = float_of_int (n - 1) *. harmonic (n - 1)

let broadcast_variance_bound n = float_of_int (n * n)

let expected_waiting n =
  float_of_int (n * (n - 1)) /. 2.0 *. harmonic (n - 1)

let expected_gathering n =
  (* n(n-1) * sum_{i=1}^{n-1} 1/(i(i+1)) telescopes to n(n-1)(1 - 1/n). *)
  let nf = float_of_int n in
  nf *. (nf -. 1.0) *. (1.0 -. (1.0 /. nf))

let expected_last_meet n = float_of_int (n * (n - 1)) /. 2.0

let expected_sink_meetings ~n ~k =
  if k < 0 || k > n - 1 then invalid_arg "Theory.expected_sink_meetings: bad k";
  float_of_int (n * (n - 1)) /. 2.0 *. (harmonic (n - 1) -. harmonic (n - 1 - k))

let waiting_greedy_phase1 ~n ~f =
  let nf = float_of_int n in
  nf *. nf *. log nf /. (2.0 *. f)

let tau_for_f ~n ~f =
  let nf = float_of_int n in
  let bound = Float.max (nf *. f) (nf *. nf *. log nf /. f) in
  Stdlib.max 1 (int_of_float (Float.ceil bound))

let pair_count n = float_of_int (n * (n - 1))

let waiting_phases n =
  Array.init (n - 1) (fun i -> 2.0 *. float_of_int (n - i - 1) /. pair_count n)

let gathering_phases n =
  Array.init (n - 1) (fun i ->
      float_of_int ((n - i) * (n - i - 1)) /. pair_count n)

let broadcast_phases n =
  Array.init (n - 1) (fun i ->
      2.0 *. float_of_int ((i + 1) * (n - i - 1)) /. pair_count n)

let recommended_tau n =
  let nf = float_of_int n in
  let tau = (nf ** 1.5) *. sqrt (log nf) in
  Stdlib.max 1 (int_of_float (Float.ceil tau))
