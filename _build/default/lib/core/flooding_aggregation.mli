(** Aggregation {e without} the transmit-once constraint — the
    counterfactual that quantifies what the paper's energy constraint
    costs.

    The DODA model forbids a node from transmitting twice, which is
    what makes the problem hard (Theorem 7's Ω(n²) bound hinges on the
    last owner having to meet the sink in person). If nodes could
    retransmit freely, data would spread epidemically and the sink
    would collect everything in Θ(n log n) interactions — matching the
    full-knowledge optimum, but {e online and knowledge-free}.

    This module simulates that unconstrained régime: every node keeps a
    set of datum ids; an interaction unions the two sets into both
    endpoints; the run completes when the sink's set is full. The
    [price] bench compares it against the transmit-once algorithms:
    the gap between knowledge-free flooding (Θ(n log n)) and
    knowledge-free Gathering (Θ(n²)) is the price of single
    transmission. *)

type result = {
  completed : bool;
  duration : int option;  (** Time the sink became complete. *)
  steps : int;
  exchanges : int;  (** Interactions that actually moved data. *)
}

val run : ?max_steps:int -> Doda_dynamic.Schedule.t -> result
(** [run sched] floods from all nodes toward everyone and stops when
    the sink holds all [n] data. [max_steps] as in {!Engine.run}:
    defaults to the schedule length, mandatory for generators. *)

val sink_completion :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> int option
(** Pure offline variant over a finite sequence: first time the sink
    holds all data under epidemic exchange. Equals
    [run] on the corresponding schedule. *)
