(** Closed-form predictions from the paper's proofs, used by the
    benches and tests to compare measurements against theory.

    All formulas are for the randomized adversary on [n] nodes, where
    each interaction is drawn uniformly among the [n(n-1)/2] pairs. *)

val harmonic : int -> float
(** [harmonic k] is [H(k) = 1 + 1/2 + ... + 1/k]; [0.] for [k <= 0]. *)

val expected_broadcast : int -> float
(** Theorem 8: [E(X) = (n-1) H(n-1)] interactions for a broadcast
    (hence also for the full-knowledge convergecast). *)

val broadcast_variance_bound : int -> float
(** The [O(n^2)] variance bound from the proof of Theorem 8, with the
    explicit constant of its integral bound: [n^2]. *)

val expected_waiting : int -> float
(** Theorem 9: [E(X_W) = (n(n-1)/2) H(n-1)]. *)

val expected_gathering : int -> float
(** Theorem 9: [E(X_G) = n(n-1) * sum 1/(i(i+1)) = n(n-1)(1 - 1/n)]. *)

val expected_last_meet : int -> float
(** Theorem 7: the final transmission alone waits [n(n-1)/2]
    interactions in expectation. *)

val expected_sink_meetings : n:int -> k:int -> float
(** Lemma 1: expected interactions until the sink has met [k] distinct
    nodes: [(n(n-1)/2) (H(n-1) - H(n-1-k))], for [0 <= k <= n-1]. *)

val waiting_greedy_phase1 : n:int -> f:float -> float
(** Theorem 10, first phase: [n^2 log n / (2 f)] expected interactions
    for all of [L^c] to meet the [f] nodes of [L]. *)

val recommended_tau : int -> int
(** Corollary 3: [tau = n^{3/2} sqrt(log n)], the optimum of
    [max(n f, n^2 log n / f)] at [f = sqrt(n log n)] (natural log;
    rounded up; at least 1). *)

val tau_for_f : n:int -> f:float -> int
(** Theorem 10 with an explicit [f]: [max(n f, n^2 log n / f)],
    rounded up. *)

(** {1 Exact phase decompositions}

    Termination times under the randomized adversary are sums of
    independent geometrics; these are the per-phase success
    probabilities, to be fed to [Doda_stats.Geometric_sum] for exact
    finite-[n] means, variances, probability masses and quantiles. *)

val waiting_phases : int -> float array
(** Phase [i] (0-based): [2(n-i-1) / (n(n-1))] — the remaining
    data-owning nodes' chance of meeting the sink. *)

val gathering_phases : int -> float array
(** Phase [i]: [(n-i)(n-i-1) / (n(n-1))] — any two of the remaining
    owners meeting. *)

val broadcast_phases : int -> float array
(** Phase [i]: [2(i+1)(n-i-1) / (n(n-1))] — informed meets
    uninformed. *)
