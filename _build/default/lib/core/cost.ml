type t = Finite of int | At_least of int

let cost ~n ~sink s ~duration =
  let chain = Convergecast.t_chain ~n ~sink s in
  match duration with
  | Some d ->
      (* Chain values are increasing; the first T(i) >= d gives the
         cost. If d exceeds all finite T values, the next convergecast
         ends beyond the sequence (or never), hence after d: the cost
         is one past the chain length. *)
      let rec scan i = function
        | [] -> Finite i
        | ending :: rest -> if d <= ending then Finite i else scan (i + 1) rest
      in
      scan 1 chain
  | None -> At_least (List.length chain + 1)

let convergecasts_within ~n ~sink s ~upto =
  let chain = Convergecast.t_chain ~n ~sink s in
  List.length (List.filter (fun ending -> ending <= upto) chain)

let of_result ~n ~sink s (r : Engine.result) = cost ~n ~sink s ~duration:r.duration

let pp ppf = function
  | Finite i -> Format.fprintf ppf "%d" i
  | At_least i -> Format.fprintf ppf ">=%d" i

let equal a b =
  match (a, b) with
  | Finite x, Finite y | At_least x, At_least y -> x = y
  | Finite _, At_least _ | At_least _, Finite _ -> false

let to_float = function Finite i | At_least i -> float_of_int i
