(** The future-gossip algorithm of Theorem 6 ([DODA(future)]).

    Each node initially knows its own future (all its interactions,
    with times). Whenever two nodes interact they merge what they know
    — control information is free in the model, and the union of all
    futures is the entire sequence. Once a node knows all [n] futures
    it can reconstruct the whole execution, {e simulate the gossip
    itself} to compute the deterministic time [t*] at which the last
    node completes its knowledge, and follow the optimal convergecast
    plan starting at [t* + 1]. All complete nodes compute the same
    [t*] and the same plan, so the transmissions are consistent.

    Theorem 6 shows this costs at most [n] convergecasts; under the
    randomized adversary it terminates in [Theta(n log n)] interactions
    (Corollary 1). Requires a finite schedule (the adversary commits to
    the sequence — the oblivious/randomized setting the theorem
    addresses). *)

val algorithm : Algorithm.t
