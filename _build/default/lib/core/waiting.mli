(** The Waiting algorithm (Section 4): a node transmits only when
    interacting with the sink. Oblivious, no knowledge. Under the
    randomized adversary it terminates in [O(n^2 log n)] interactions
    in expectation (Theorem 9) — a coupon-collector pattern on the
    sink's meetings. *)

val algorithm : Algorithm.t
