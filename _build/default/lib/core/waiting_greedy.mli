(** The Waiting Greedy algorithm [WG_tau] (Section 4.3).

    At interaction [{u1, u2}] at time [t], with [m_i = u_i.meetTime(t)]
    (and [meetTime] the identity for the sink):

    - output [u1] (i.e. [u2] transmits) if [m1 <= m2] and [tau < m2];
    - output [u2] if [m1 > m2] and [tau < m1];
    - no transmission otherwise.

    The node with the later next sink-meeting transmits, provided that
    meeting falls after the deadline [tau]. With
    [tau = Theta(n^{3/2} sqrt(log n))] (Corollary 3) the algorithm
    terminates by time [tau] w.h.p. under the randomized adversary, and
    no algorithm in [DODA(meetTime)] does better (Theorem 11).

    Implementation note: the [meetTime] oracle is consulted with cap
    [tau], which keeps lazily generated schedules lazy. The cap changes
    no decision except when {e both} meet times exceed [tau] — there
    the paper transmits from the node with the larger meet time, two
    values the analysis itself treats as exchangeable (proof of
    Theorem 11: "using this information ... is the same as choosing
    the sender randomly"); we pick the sender by a deterministic hash
    of [(t, u1, u2)], which keeps runs reproducible. Pass [~exact:true]
    to consult the oracle up to the full schedule horizon instead
    (finite schedules only). *)

val make : ?exact:bool -> tau:int -> unit -> Algorithm.t
(** [make ~tau ()] is [WG_tau]. @raise Invalid_argument if [tau < 0]. *)

val with_recommended_tau : ?exact:bool -> int -> Algorithm.t
(** [with_recommended_tau n] is [WG_tau] with
    [tau = Theory.recommended_tau n]. *)

val doubling : ?tau0:int -> unit -> Algorithm.t
(** Waiting Greedy without knowing [n] (the paper's [tau] needs
    [n^{3/2} sqrt(log n)], i.e. global knowledge): run [WG_tau] with
    deadline schedule [tau_k = tau0 * 2^k] — while the current time is
    below [tau_k], decisions are those of [WG_{tau_k}]; once it passes,
    the deadline doubles. At most [log2(tau/tau0)] extra rounds are
    spent beyond the right deadline, so termination stays within a
    constant factor of the known-[n] optimum while requiring only the
    [meetTime] oracle. [tau0] defaults to 16. An experimental
    extension (the paper leaves knowledge-free tuning open);
    experiment E6 compares it against the tuned version.
    @raise Invalid_argument if [tau0 < 1]. *)
