let waiting = Waiting.algorithm
let gathering = Gathering.algorithm
let tree_aggregation = Tree_aggregation.algorithm
let full_knowledge = Full_knowledge.algorithm
let future_gossip = Future_gossip.algorithm
let waiting_greedy ~tau = Waiting_greedy.make ~tau ()
let waiting_greedy_recommended n = Waiting_greedy.with_recommended_tau n

let no_knowledge = [ waiting; gathering ]

let all_for ~n =
  [
    waiting;
    gathering;
    waiting_greedy_recommended n;
    tree_aggregation;
    full_knowledge;
    future_gossip;
  ]

let names =
  [
    "waiting";
    "gathering";
    "gathering-larger-id";
    "gathering-more-data";
    "gathering-hash";
    "waiting-greedy";
    "waiting-greedy:TAU";
    "waiting-greedy-doubling";
    "tree";
    "tree-kruskal";
    "full-knowledge";
    "future-gossip";
  ]

let find ~n name =
  match name with
  | "waiting" -> Some waiting
  | "gathering" -> Some gathering
  | "gathering-larger-id" -> Some (Gathering_variants.make Gathering_variants.Larger_id)
  | "gathering-more-data" -> Some (Gathering_variants.make Gathering_variants.More_data)
  | "gathering-hash" -> Some (Gathering_variants.make Gathering_variants.Hash)
  | "waiting-greedy" -> Some (waiting_greedy_recommended n)
  | "waiting-greedy-doubling" -> Some (Waiting_greedy.doubling ())
  | "tree" -> Some tree_aggregation
  | "tree-kruskal" -> Some (Tree_aggregation.make ~tree:Tree_aggregation.Kruskal ())
  | "full-knowledge" -> Some full_knowledge
  | "future-gossip" -> Some future_gossip
  | _ -> (
      match String.index_opt name ':' with
      | Some i when String.sub name 0 i = "waiting-greedy" -> (
          let arg = String.sub name (i + 1) (String.length name - i - 1) in
          match int_of_string_opt arg with
          | Some tau when tau >= 0 -> Some (waiting_greedy ~tau)
          | _ -> None)
      | _ -> None)
