module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

module Int_set = Set.Make (Int)

let check_n n =
  if n > 20 then invalid_arg "Brute_force: n too large for subset search";
  if n < 1 then invalid_arg "Brute_force: n must be positive"

(* From ownership state [mask] at interaction {a, b}, the possible
   successor states: do nothing, or (when both endpoints own data and
   the sender is not the sink) one endpoint transmits to the other. *)
let successors ~sink mask a b =
  let bit x = 1 lsl x in
  if mask land bit a <> 0 && mask land bit b <> 0 then begin
    let acc = [ mask ] in
    let acc = if a <> sink then mask lxor bit a :: acc else acc in
    let acc = if b <> sink then mask lxor bit b :: acc else acc in
    acc
  end
  else [ mask ]

let optimal_duration ~n ~sink s ~start =
  check_n n;
  let goal = 1 lsl sink in
  let full = (1 lsl n) - 1 in
  if full = goal then Some start
  else begin
    let len = Sequence.length s in
    let states = ref (Int_set.singleton full) in
    let result = ref None in
    let t = ref start in
    while !result = None && !t < len do
      let i = Sequence.get s !t in
      let a = Interaction.u i and b = Interaction.v i in
      let next =
        Int_set.fold
          (fun mask acc ->
            List.fold_left
              (fun acc m -> Int_set.add m acc)
              acc
              (successors ~sink mask a b))
          !states Int_set.empty
      in
      states := next;
      if Int_set.mem goal next then result := Some !t;
      incr t
    done;
    !result
  end

let reachable_states ~n ~sink s =
  check_n n;
  let full = (1 lsl n) - 1 in
  let states = ref (Int_set.singleton full) in
  Sequence.iteri
    (fun _ i ->
      let a = Interaction.u i and b = Interaction.v i in
      states :=
        Int_set.fold
          (fun mask acc ->
            List.fold_left
              (fun acc m -> Int_set.add m acc)
              acc
              (successors ~sink mask a b))
          !states Int_set.empty)
    s;
  Int_set.elements !states
