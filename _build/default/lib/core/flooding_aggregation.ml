module Schedule = Doda_dynamic.Schedule
module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

type result = {
  completed : bool;
  duration : int option;
  steps : int;
  exchanges : int;
}

(* Data sets as bitsets over int arrays (n can exceed 63). *)
let words n = (n + 62) / 63

let make_sets n =
  Array.init n (fun v ->
      let set = Array.make (words n) 0 in
      set.(v / 63) <- 1 lsl (v mod 63);
      set)

let union_into dst src =
  let changed = ref false in
  Array.iteri
    (fun w bits ->
      let merged = dst.(w) lor bits in
      if merged <> dst.(w) then begin
        dst.(w) <- merged;
        changed := true
      end)
    src;
  !changed

let popcount set =
  Array.fold_left
    (fun acc word ->
      let rec count w acc = if w = 0 then acc else count (w land (w - 1)) (acc + 1) in
      count word acc)
    0 set

let run ?max_steps sched =
  let n = Schedule.n sched in
  let sink = Schedule.sink sched in
  let limit =
    match (max_steps, Schedule.length sched) with
    | Some m, Some len -> Stdlib.min m len
    | Some m, None -> m
    | None, Some len -> len
    | None, None ->
        invalid_arg "Flooding_aggregation.run: max_steps mandatory for generators"
  in
  let sets = make_sets n in
  let sink_count = ref 1 in
  let exchanges = ref 0 in
  let steps = ref 0 in
  let duration = ref None in
  let exhausted = ref false in
  while (not !exhausted) && !duration = None && !steps < limit do
    match Schedule.get sched !steps with
    | None -> exhausted := true
    | Some i ->
        let a = Interaction.u i and b = Interaction.v i in
        let moved_ab = union_into sets.(b) sets.(a) in
        let moved_ba = union_into sets.(a) sets.(b) in
        if moved_ab || moved_ba then begin
          incr exchanges;
          if a = sink || b = sink then begin
            sink_count := popcount sets.(sink);
            if !sink_count = n then duration := Some !steps
          end
        end;
        incr steps
  done;
  {
    completed = !duration <> None;
    duration = !duration;
    steps = !steps;
    exchanges = !exchanges;
  }

let sink_completion ~n ~sink s =
  let sched = Schedule.of_sequence ~n ~sink s in
  (run sched).duration
