(** The Gathering algorithm (Section 4): a node transmits whenever it
    can — to the sink if present, otherwise to the interacting partner
    (the endpoint with the smaller identifier receives, matching the
    paper's tie-breaking on ordered inputs). Oblivious, no knowledge.

    Terminates in [O(n^2)] expected interactions under the randomized
    adversary (Theorem 9), which is optimal among algorithms without
    knowledge (Theorem 7 / Corollary 2). *)

val algorithm : Algorithm.t
