(** Alternative policies over the [meetTime] oracle.

    Theorem 11 says Waiting Greedy with
    [tau = Theta(n^{3/2} sqrt(log n))] is optimal among algorithms
    knowing only [meetTime]. These competitors make the claim
    falsifiable in experiments ([policies] bench): each uses the same
    oracle, none should beat the tuned WG.

    - {!pure_greedy}: the node with the later next sink-meeting always
      transmits — WG without a deadline guard ([tau = 0] relative
      ordering at every interaction). Aggressive: it spends
      transmissions on pairs that would both have met the sink soon.
    - {!sliding_window}: transmit only when the sender's next meeting
      is more than [theta] away from {e now} — a relative deadline
      instead of WG's absolute one. Patient: stragglers keep waiting
      near the end instead of falling back to Gathering. *)

val pure_greedy : horizon:int -> Algorithm.t
(** [horizon] caps the oracle lookahead (meet times beyond it compare
    as "late", ties by a deterministic coin).
    @raise Invalid_argument if [horizon < 1]. *)

val sliding_window : theta:int -> Algorithm.t
(** Sender = the endpoint with the later meet time, but only if that
    meet time exceeds [time + theta].
    @raise Invalid_argument if [theta < 0]. *)
