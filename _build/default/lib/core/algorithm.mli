(** The interface of distributed online data aggregation algorithms.

    A DODA algorithm (Section 2.1) takes an interaction [I_t = {u, v}]
    and its time [t] and outputs [u], [v] or [⊥]: the output node, if
    any, {e receives} the other node's data. The engine consults
    {!instance.decide} only when both endpoints still own data (the
    paper ignores the output otherwise), and returning [Some r] is a
    commitment: the engine applies the transmission, so an instance may
    update its internal memory inside [decide].

    [instance.observe] is called on {e every} interaction, before any
    [decide], and models the exchange of control information between
    the interacting nodes (the paper allows nodes to "exchange control
    information before deciding whether they transmit"); it is where
    non-oblivious algorithms update per-node memory. *)

type instance = {
  observe : time:int -> Doda_dynamic.Interaction.t -> unit;
      (** Control-information exchange; invoked on every interaction. *)
  decide : time:int -> Doda_dynamic.Interaction.t -> int option;
      (** [decide ~time i] is [Some receiver] (an endpoint of [i]) or
          [None]. Only invoked when both endpoints own data. *)
}

type t = {
  name : string;
  oblivious : bool;
      (** True when the algorithm keeps no per-node memory between
          interactions (the class [D∅ODA] of the paper). *)
  requires : Knowledge.requirement list;
      (** Oracles the algorithm needs; checked by the engine. *)
  make : n:int -> sink:int -> Knowledge.t -> instance;
      (** Fresh instance for one run.
          @raise Invalid_argument when knowledge is insufficient. *)
}

val no_observation : time:int -> Doda_dynamic.Interaction.t -> unit
(** A no-op [observe], for oblivious algorithms. *)

val check_knowledge : string -> Knowledge.t -> Knowledge.requirement list -> unit
(** @raise Invalid_argument naming the algorithm and the missing
    oracles when the knowledge does not satisfy the requirements. *)
