type instance = {
  observe : time:int -> Doda_dynamic.Interaction.t -> unit;
  decide : time:int -> Doda_dynamic.Interaction.t -> int option;
}

type t = {
  name : string;
  oblivious : bool;
  requires : Knowledge.requirement list;
  make : n:int -> sink:int -> Knowledge.t -> instance;
}

let no_observation ~time:_ _ = ()

let check_knowledge name knowledge requirements =
  match Knowledge.missing knowledge requirements with
  | [] -> ()
  | miss ->
      let names = String.concat ", " (List.map Knowledge.requirement_name miss) in
      invalid_arg (Printf.sprintf "%s: missing knowledge: %s" name names)
