module Sequence = Doda_dynamic.Sequence
module Interaction = Doda_dynamic.Interaction

type violation =
  | Out_of_order of int
  | Bad_time of int
  | Wrong_interaction of int
  | Sender_without_data of int
  | Receiver_without_data of int
  | Sink_transmitted of int
  | Duplicate_sender of int

let pp_violation ppf v =
  let p fmt = Format.fprintf ppf fmt in
  match v with
  | Out_of_order i -> p "transmission #%d out of time order" i
  | Bad_time i -> p "transmission #%d outside the sequence" i
  | Wrong_interaction i -> p "transmission #%d does not match I_t" i
  | Sender_without_data i -> p "transmission #%d: sender already transmitted" i
  | Receiver_without_data i -> p "transmission #%d: receiver already transmitted" i
  | Sink_transmitted i -> p "transmission #%d: sink as sender" i
  | Duplicate_sender i -> p "transmission #%d: sender transmits twice" i

let execution ~n ~sink s transmissions =
  let holds = Array.make n true in
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  let previous_time = ref (-1) in
  List.iteri
    (fun idx (tr : Engine.transmission) ->
      if tr.time <= !previous_time then flag (Out_of_order idx);
      previous_time := Stdlib.max !previous_time tr.time;
      if tr.time < 0 || tr.time >= Sequence.length s then flag (Bad_time idx)
      else begin
        let i = Sequence.get s tr.time in
        if
          not
            (Interaction.involves i tr.sender
            && Interaction.involves i tr.receiver
            && tr.sender <> tr.receiver)
        then flag (Wrong_interaction idx)
      end;
      if tr.sender = sink then flag (Sink_transmitted idx);
      if tr.sender >= 0 && tr.sender < n then begin
        if not holds.(tr.sender) then flag (Sender_without_data idx);
        (* A sender without data is also a duplicate if it appeared as
           sender before; distinguish for clearer reports. *)
        if
          List.exists
            (fun (other : Engine.transmission) ->
              other != tr && other.sender = tr.sender && other.time < tr.time)
            transmissions
          && not holds.(tr.sender)
        then flag (Duplicate_sender idx)
      end;
      if tr.receiver >= 0 && tr.receiver < n && not holds.(tr.receiver) then
        flag (Receiver_without_data idx);
      if tr.sender >= 0 && tr.sender < n then holds.(tr.sender) <- false)
    transmissions;
  List.rev !violations

let complete ~n ~sink s transmissions =
  execution ~n ~sink s transmissions = []
  && List.length transmissions = n - 1
  &&
  let sent = Array.make n false in
  List.iter (fun (tr : Engine.transmission) -> sent.(tr.sender) <- true) transmissions;
  let all = ref true in
  for v = 0 to n - 1 do
    if v <> sink && not sent.(v) then all := false
  done;
  !all

let plan ~n ~sink s (p : Convergecast.plan) =
  let log = ref [] in
  for v = 0 to n - 1 do
    if v <> sink && p.Convergecast.fire_time.(v) >= 0 then
      log :=
        {
          Engine.time = p.Convergecast.fire_time.(v);
          sender = v;
          receiver = p.Convergecast.fire_to.(v);
        }
        :: !log
  done;
  let chronological =
    List.sort
      (fun (a : Engine.transmission) b -> Int.compare a.time b.time)
      !log
  in
  execution ~n ~sink s chronological
