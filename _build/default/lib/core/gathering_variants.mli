(** Tie-break variants of the Gathering algorithm.

    The paper's Gathering transmits whenever possible and breaks the
    symmetry between two data-owning nodes by identifier (the smaller
    one receives). The choice does not affect the O(n^2) bound
    (Theorem 9's analysis never uses it), but it does change constants
    and the distribution of aggregation depth — these variants make
    that measurable (bench experiment [variants]).

    [More_data] routes the merged datum toward the endpoint already
    carrying more aggregated items (ties to the smaller id); the
    instance tracks payload sizes itself, so the variant is
    memoryful. *)

type tiebreak =
  | Smaller_id  (** the paper's choice: smaller identifier receives *)
  | Larger_id
  | More_data  (** heavier payload receives *)
  | Hash  (** pseudo-random per (time, pair) coin *)

val tiebreak_name : tiebreak -> string

val make : tiebreak -> Algorithm.t

val all : Algorithm.t list
(** One instance per tie-break. *)
