(** The full-knowledge optimal algorithm (Theorem 8 / Corollary 1).

    Given the entire sequence of interactions, the optimal schedule is
    computed upfront ({!Convergecast.plan}) and followed verbatim, so
    the run terminates exactly at [opt(0)] — [Theta(n log n)]
    interactions w.h.p. under the randomized adversary.

    On a lazily generated schedule the plan is computed over a
    geometrically grown prefix, up to [horizon] interactions (default
    [64 * n^2], far beyond the w.h.p. bound). If no convergecast fits
    within the horizon the instance never transmits. *)

val make : ?horizon:int -> unit -> Algorithm.t

val algorithm : Algorithm.t
(** [make ()] with the default horizon. *)
