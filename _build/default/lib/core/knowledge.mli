(** Node knowledge (Section 2.1 of the paper).

    By default a node only knows its identifier and whether it is the
    sink. A DODA algorithm may additionally require oracles; this
    module names them ({!requirement}) and bundles their
    implementations ({!t}). Oracles are derived from the schedule that
    drives the run ({!for_schedule}), or injected directly when known
    by construction ({!with_underlying}). *)

type requirement =
  | Meet_time
      (** [u.meetTime t]: first time [> t] at which [u] interacts with
          the sink (Section 4.3). *)
  | Underlying_graph
      (** The underlying graph of the whole sequence (Section 3.2). *)
  | Own_future
      (** Each node's own future interactions with times (Section 3.3). *)
  | Full_schedule  (** The entire sequence of interactions. *)

val requirement_name : requirement -> string

type t = {
  underlying : Doda_graph.Static_graph.t option;
  meet_time : (node:int -> time:int -> limit:int -> int option) option;
      (** [meet_time ~node ~time ~limit] is the first interaction time
          in [(time, limit]] at which [node] meets the sink, [None] if
          there is none up to [limit]. The cap keeps lazily generated
          schedules lazy; callers that need the uncapped value pass a
          horizon-sized limit. *)
  future_of : (int -> (int * Doda_dynamic.Interaction.t) list) option;
      (** Whole future of a node, from time 0, in time order. *)
  full : Doda_dynamic.Schedule.t option;
}

val empty : t
(** No oracles at all — the knowledge of Waiting and Gathering. *)

val for_schedule : Doda_dynamic.Schedule.t -> requirement list -> t
(** [for_schedule sched reqs] builds exactly the requested oracles from
    [sched]. [Own_future] and [Underlying_graph] need a finite
    schedule. @raise Invalid_argument when a requested oracle cannot be
    built. *)

val with_underlying : Doda_graph.Static_graph.t -> t -> t
(** Injects an underlying graph known by construction (e.g. when the
    schedule is drawn over a fixed graph), without scanning the
    schedule. *)

val satisfies : t -> requirement list -> bool
(** Do all the requested oracles have implementations? *)

val missing : t -> requirement list -> requirement list
