(** The cost function of Section 2.3.

    [cost_A(I) = min { i | duration(A, I) <= T(i) }] where [T(i)] is
    the ending time of [i] successive optimal convergecasts. It counts
    how many optimal aggregations the offline algorithm could have
    completed while [A] was still running: an algorithm is optimal iff
    its cost is 1.

    Analyses here run over the finite recorded prefix of an execution,
    so a cost that the definition makes infinite surfaces as a lower
    bound ([At_least]): on the recorded horizon we cannot distinguish
    "the next convergecast ends beyond the horizon" from "ends never". *)

type t =
  | Finite of int
  | At_least of int
      (** The algorithm had not terminated within the analysed prefix;
          the true cost is at least this many convergecasts (and is
          exactly the paper's [i_max] when the next [T] is truly
          infinite). *)

val cost :
  n:int -> sink:int -> Doda_dynamic.Sequence.t -> duration:int option -> t
(** [cost ~n ~sink s ~duration] evaluates the definition over [s].
    [duration = Some d] is the algorithm's termination time;
    [None] means it had not terminated after the whole of [s]. *)

val convergecasts_within : n:int -> sink:int -> Doda_dynamic.Sequence.t -> upto:int -> int
(** Largest [i] such that [T(i) <= upto] — the number of successive
    optimal convergecasts that complete by time [upto]. *)

val of_result : n:int -> sink:int -> Doda_dynamic.Sequence.t -> Engine.result -> t
(** Cost of an engine run, analysed against the sequence that drove it
    (usually [Schedule.prefix sched result.steps], or longer). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val to_float : t -> float
(** Numeric value for aggregation in experiments ([At_least k] maps to
    [k]). *)
