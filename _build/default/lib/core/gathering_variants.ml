module Interaction = Doda_dynamic.Interaction

type tiebreak = Smaller_id | Larger_id | More_data | Hash

let tiebreak_name = function
  | Smaller_id -> "smaller-id"
  | Larger_id -> "larger-id"
  | More_data -> "more-data"
  | Hash -> "hash"

let hash_coin ~time a b =
  let h = (time * 0x9E3779B1) lxor (a * 0x85EBCA77) lxor (b * 0xC2B2AE3D) in
  let h = (h lxor (h lsr 13)) * 0x27D4EB2F land max_int in
  h land 1 = 0

let make tiebreak =
  {
    Algorithm.name = "gathering-" ^ tiebreak_name tiebreak;
    oblivious = (match tiebreak with More_data -> false | _ -> true);
    requires = [];
    make =
      (fun ~n ~sink _knowledge ->
        let payload = Array.make n 1 in
        let receiver_of ~time u v =
          match tiebreak with
          | Smaller_id -> u
          | Larger_id -> v
          | Hash -> if hash_coin ~time u v then u else v
          | More_data ->
              if payload.(u) > payload.(v) then u
              else if payload.(v) > payload.(u) then v
              else u
        in
        {
          Algorithm.observe = Algorithm.no_observation;
          decide =
            (fun ~time i ->
              let u = Interaction.u i and v = Interaction.v i in
              let receiver =
                if u = sink || v = sink then sink else receiver_of ~time u v
              in
              let sender = Interaction.other i receiver in
              payload.(receiver) <- payload.(receiver) + payload.(sender);
              payload.(sender) <- 0;
              Some receiver);
        });
  }

let all = List.map make [ Smaller_id; Larger_id; More_data; Hash ]
