(** Registry of the paper's algorithms, for CLIs, experiments and
    tests that iterate over "every algorithm". *)

val waiting : Algorithm.t
val gathering : Algorithm.t
val tree_aggregation : Algorithm.t
val full_knowledge : Algorithm.t
val future_gossip : Algorithm.t

val waiting_greedy : tau:int -> Algorithm.t
val waiting_greedy_recommended : int -> Algorithm.t
(** [waiting_greedy_recommended n] uses [tau = Theory.recommended_tau n]. *)

val no_knowledge : Algorithm.t list
(** Algorithms needing no oracle: Waiting, Gathering. *)

val all_for : n:int -> Algorithm.t list
(** Every registry algorithm, with Waiting Greedy instantiated at the
    recommended [tau] for [n]. *)

val find : n:int -> string -> Algorithm.t option
(** Lookup by CLI name: ["waiting"], ["gathering"], ["waiting-greedy"],
    ["waiting-greedy:TAU"], ["tree"], ["full-knowledge"],
    ["future-gossip"]. *)

val names : string list
(** The accepted CLI names. *)
