(** Randomized oblivious algorithms (the class Theorem 2 attacks).

    The paper's Theorem 2 concerns {e randomized} algorithms in
    [D∅ODA]: oblivious nodes whose transmission decisions are coin
    flips. These two give the adversary-search implementation
    ({!Doda_adversary.Counterexamples}-style) a live target, and serve
    as baselines for how randomisation trades off against the
    deterministic strategies.

    Instances draw their coins from a child stream split off the
    [Prng.t] given at construction, so distinct instances of the same
    algorithm value behave independently while a fixed master seed
    keeps whole experiments reproducible. *)

val coin_waiting : Doda_prng.Prng.t -> p:float -> Algorithm.t
(** Like Waiting, but on each sink meeting the node transmits only
    with probability [p] ([p = 1] is Waiting).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val coin_gathering : Doda_prng.Prng.t -> p:float -> Algorithm.t
(** Transmits to the sink whenever met; between two non-sink owners,
    transmits (to the smaller id) only with probability [p]
    ([p = 1] is Gathering). @raise Invalid_argument unless
    [0 < p <= 1]. *)
