lib/core/convergecast.mli: Doda_dynamic
