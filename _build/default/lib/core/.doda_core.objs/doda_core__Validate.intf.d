lib/core/validate.mli: Convergecast Doda_dynamic Engine Format
