lib/core/waiting.ml: Algorithm Doda_dynamic
