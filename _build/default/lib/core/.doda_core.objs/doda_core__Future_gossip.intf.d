lib/core/future_gossip.mli: Algorithm
