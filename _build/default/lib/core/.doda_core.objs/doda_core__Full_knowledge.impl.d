lib/core/full_knowledge.ml: Algorithm Array Convergecast Doda_dynamic Knowledge Option
