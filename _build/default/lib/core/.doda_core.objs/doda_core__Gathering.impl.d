lib/core/gathering.ml: Algorithm Doda_dynamic
