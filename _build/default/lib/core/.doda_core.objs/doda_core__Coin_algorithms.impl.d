lib/core/coin_algorithms.ml: Algorithm Doda_dynamic Doda_prng Printf
