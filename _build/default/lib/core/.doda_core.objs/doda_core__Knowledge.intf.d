lib/core/knowledge.mli: Doda_dynamic Doda_graph
