lib/core/meet_time_policies.ml: Algorithm Doda_dynamic Knowledge Option Printf
