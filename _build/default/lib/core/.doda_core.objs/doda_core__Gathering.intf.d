lib/core/gathering.mli: Algorithm
