lib/core/tree_aggregation.ml: Algorithm Array Doda_dynamic Doda_graph Knowledge List Option
