lib/core/gathering_variants.ml: Algorithm Array Doda_dynamic List
