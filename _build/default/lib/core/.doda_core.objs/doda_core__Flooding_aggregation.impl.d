lib/core/flooding_aggregation.ml: Array Doda_dynamic Stdlib
