lib/core/knowledge.ml: Doda_dynamic Doda_graph List Printf
