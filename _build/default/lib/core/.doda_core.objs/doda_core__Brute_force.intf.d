lib/core/brute_force.mli: Doda_dynamic
