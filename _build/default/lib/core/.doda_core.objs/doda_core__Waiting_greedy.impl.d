lib/core/waiting_greedy.ml: Algorithm Doda_dynamic Knowledge Option Printf Theory
