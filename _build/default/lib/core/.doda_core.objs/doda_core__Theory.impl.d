lib/core/theory.ml: Array Float Stdlib
