lib/core/meet_time_policies.mli: Algorithm
