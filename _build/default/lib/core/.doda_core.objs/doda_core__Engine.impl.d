lib/core/engine.ml: Algorithm Array Doda_dynamic Format Knowledge List Printf Stdlib
