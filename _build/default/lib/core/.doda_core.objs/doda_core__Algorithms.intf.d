lib/core/algorithms.mli: Algorithm
