lib/core/gathering_variants.mli: Algorithm
