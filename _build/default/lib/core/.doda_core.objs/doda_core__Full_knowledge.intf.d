lib/core/full_knowledge.mli: Algorithm
