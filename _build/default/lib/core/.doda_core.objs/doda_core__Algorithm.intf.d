lib/core/algorithm.mli: Doda_dynamic Knowledge
