lib/core/coin_algorithms.mli: Algorithm Doda_prng
