lib/core/convergecast.ml: Array Doda_dynamic List Stdlib
