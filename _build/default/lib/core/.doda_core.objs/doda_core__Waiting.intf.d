lib/core/waiting.mli: Algorithm
