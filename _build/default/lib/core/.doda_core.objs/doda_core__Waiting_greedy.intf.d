lib/core/waiting_greedy.mli: Algorithm
