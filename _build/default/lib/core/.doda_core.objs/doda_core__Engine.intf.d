lib/core/engine.mli: Algorithm Doda_dynamic Format Knowledge
