lib/core/validate.ml: Array Convergecast Doda_dynamic Engine Format Int List Stdlib
