lib/core/flooding_aggregation.mli: Doda_dynamic
