lib/core/brute_force.ml: Doda_dynamic Int List Set
