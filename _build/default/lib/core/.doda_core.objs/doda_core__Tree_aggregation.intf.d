lib/core/tree_aggregation.mli: Algorithm
