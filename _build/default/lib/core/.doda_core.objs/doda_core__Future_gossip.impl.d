lib/core/future_gossip.ml: Algorithm Array Convergecast Doda_dynamic Hashtbl Knowledge Lazy List Option
