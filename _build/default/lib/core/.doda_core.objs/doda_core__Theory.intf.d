lib/core/theory.mli:
