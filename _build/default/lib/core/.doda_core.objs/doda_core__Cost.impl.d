lib/core/cost.ml: Convergecast Engine Format List
