lib/core/algorithm.ml: Doda_dynamic Knowledge List Printf String
