lib/core/cost.mli: Doda_dynamic Engine Format
