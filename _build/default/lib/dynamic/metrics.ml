let activity ~n s =
  let counts = Array.make n 0 in
  Sequence.iteri
    (fun _ i ->
      counts.(Interaction.u i) <- counts.(Interaction.u i) + 1;
      counts.(Interaction.v i) <- counts.(Interaction.v i) + 1)
    s;
  counts

let pair_counts s =
  let counts = Hashtbl.create 97 in
  Sequence.iteri
    (fun _ i ->
      let key = Interaction.to_pair i in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    s;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts [])

let contact_times s ~u ~v =
  let acc = ref [] in
  Sequence.iteri
    (fun t i ->
      if Interaction.involves i u && Interaction.involves i v then acc := t :: !acc)
    s;
  List.rev !acc

let inter_contact_times s ~u ~v =
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  gaps (contact_times s ~u ~v)

let sink_meeting_times s ~sink =
  let acc = ref [] in
  Sequence.iteri (fun t i -> if Interaction.involves i sink then acc := t :: !acc) s;
  List.rev !acc

let mean_inter_contact s ~u ~v =
  match inter_contact_times s ~u ~v with
  | [] -> None
  | gaps ->
      let total = List.fold_left ( + ) 0 gaps in
      Some (float_of_int total /. float_of_int (List.length gaps))

let activity_skew ~n s =
  if Sequence.length s = 0 then invalid_arg "Metrics.activity_skew: empty sequence";
  let counts = activity ~n s in
  let max_c = Array.fold_left Stdlib.max 0 counts in
  let mean_c =
    float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int n
  in
  float_of_int max_c /. mean_c

let temporal_density ~n s =
  let pairs = List.length (pair_counts s) in
  float_of_int pairs /. float_of_int (n * (n - 1) / 2)

let summary ~n ~sink s =
  let buf = Buffer.create 256 in
  let len = Sequence.length s in
  Buffer.add_string buf (Printf.sprintf "interactions: %d on %d nodes\n" len n);
  if len > 0 then begin
    Buffer.add_string buf
      (Printf.sprintf "temporal density: %.3f (distinct pairs / all pairs)\n"
         (temporal_density ~n s));
    Buffer.add_string buf
      (Printf.sprintf "activity skew (max/mean): %.2f\n" (activity_skew ~n s));
    let meets = sink_meeting_times s ~sink in
    Buffer.add_string buf
      (Printf.sprintf "sink meetings: %d (%.1f%% of interactions)\n"
         (List.length meets)
         (100.0 *. float_of_int (List.length meets) /. float_of_int len))
  end;
  Buffer.contents buf
