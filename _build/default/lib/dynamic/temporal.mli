(** Temporal reachability over interaction sequences.

    Flooding (greedy dissemination) is optimal for broadcast in this
    model: informed nodes never lose information, so informing at every
    opportunity dominates any other schedule. The paper's Theorem 8
    exploits the dual fact that a convergecast on [I_t .. I_T] exists
    iff flooding from the sink succeeds on the reversed subsequence;
    {!reverse_flood_all_informed} is that predicate, and the optimal
    offline algorithm in [lib/core] is built on it. *)

val earliest_arrival :
  n:int -> src:int -> ?start:int -> Sequence.t -> int option array
(** [earliest_arrival ~n ~src s] floods forward from [src], starting at
    index [start] (default 0). Entry [v] is [Some t] where [t] is the
    index of the interaction that informed [v] ([Some (start - 1)] for
    [src] itself), or [None] if [v] is never informed. *)

val broadcast_completion : n:int -> src:int -> ?start:int -> Sequence.t -> int option
(** [broadcast_completion ~n ~src s] is the smallest index [t] such
    that flooding from [src] over [I_start .. I_t] informs all [n]
    nodes, or [None] if the sequence is too short. *)

val reverse_flood_all_informed :
  n:int -> src:int -> Sequence.t -> lo:int -> hi:int -> bool
(** [reverse_flood_all_informed ~n ~src s ~lo ~hi] floods from [src]
    processing [I_hi, I_{hi-1}, ..., I_lo] and reports whether all
    nodes end up informed — equivalently (by the duality), whether a
    complete convergecast to [src] fits within [I_lo .. I_hi]. *)

val temporally_connected : n:int -> Sequence.t -> bool
(** True iff broadcast from every node completes within the sequence. *)

val foremost_journey :
  n:int -> src:int -> dst:int -> ?start:int -> Sequence.t ->
  (int * Interaction.t) list option
(** [foremost_journey ~n ~src ~dst s] is a journey (time-respecting
    path) from [src] to [dst] arriving as early as possible, as a list
    of [(time, interaction)] hops in increasing time order; [Some []]
    when [src = dst]. *)

val reachable_set : n:int -> src:int -> ?start:int -> ?horizon:int -> Sequence.t -> int list
(** Nodes informed by flooding from [src] using interactions with
    indices in [\[start, horizon)] (default: the whole sequence), in
    increasing id order; includes [src]. *)
