(** A pairwise interaction — the atom of the paper's dynamic-graph
    model. A dynamic graph is a couple [(V, I)] where [I = (I_t)] is a
    sequence of interactions and the index [t] of an interaction is its
    time of occurrence. *)

type t = private { u : int; v : int }
(** An unordered pair of distinct node ids, normalised so [u < v]. *)

val make : int -> int -> t
(** [make a b] is the interaction [{a, b}].
    @raise Invalid_argument if [a = b] or either is negative. *)

val u : t -> int
(** Smaller endpoint. *)

val v : t -> int
(** Larger endpoint. *)

val involves : t -> int -> bool
(** [involves i x] holds iff [x] is an endpoint of [i]. *)

val other : t -> int -> int
(** [other i x] is the endpoint that is not [x].
    @raise Invalid_argument if [x] is not an endpoint. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_pair : t -> int * int
(** [(u, v)] with [u < v]. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{u,v}]. *)

val to_string : t -> string

val dummy : t
(** A fixed placeholder value ([{0,1}]) for array initialisation; never
    meaningful. *)
