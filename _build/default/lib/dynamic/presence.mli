(** Interval-based time-varying graphs: every edge carries a set of
    presence intervals — the continuous-flavoured TVG model the paper
    cites (Casteigts et al.) — with conversions into the paper's
    one-interaction-per-step sequences via snapshot flattening.

    Times are discrete; an interval [\[start, stop)] makes the edge
    present at times [start .. stop - 1]. *)

type t

val create : n:int -> t
(** Empty presence structure on [n] nodes.
    @raise Invalid_argument if [n < 2]. *)

val add_interval : t -> u:int -> v:int -> start:int -> stop:int -> unit
(** Declare edge [{u, v}] present on [\[start, stop)]. Overlapping
    intervals are allowed (their union is what counts).
    @raise Invalid_argument on bad endpoints, [u = v], negative
    [start], or [stop <= start]. *)

val n : t -> int

val span : t -> int
(** One past the last time any edge is present (0 when empty). *)

val present : t -> u:int -> v:int -> time:int -> bool

val snapshot : t -> int -> Doda_graph.Static_graph.t
(** The static graph of edges present at the given time. *)

val to_evolving : ?horizon:int -> t -> Evolving_graph.t
(** Snapshots at times [0 .. horizon - 1] (default {!span}). *)

val to_interactions : ?horizon:int -> t -> Sequence.t
(** Flattened snapshots, lexicographic within each time — the paper's
    reduction applied to a TVG. *)

val random :
  Doda_prng.Prng.t ->
  n:int -> horizon:int -> mean_up:float -> mean_down:float -> t
(** [random rng ~n ~horizon ~mean_up ~mean_down] gives every pair
    alternating down/up phases with geometric lengths of the given
    means, truncated to [horizon] — a standard synthetic TVG workload.
    @raise Invalid_argument on non-positive parameters. *)
