(** Growable arrays (OCaml 5.1 predates [Dynarray]); used for lazily
    materialised interaction schedules and their indexes. *)

type 'a t

val create : dummy:'a -> 'a t
(** [create ~dummy] is an empty vector; [dummy] fills unused capacity
    and is never observable. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val push : 'a t -> 'a -> unit

val last : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val to_array : 'a t -> 'a array

val of_array : dummy:'a -> 'a array -> 'a t

val iter : ('a -> unit) -> 'a t -> unit

val clear : 'a t -> unit
(** Resets length to zero (capacity retained). *)
