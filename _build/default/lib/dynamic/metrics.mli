(** Descriptive metrics of interaction sequences — the quantities one
    inspects to understand which DODA algorithm a workload favours
    (how often the sink appears, how bursty contacts are, how skewed
    node activity is). *)

val activity : n:int -> Sequence.t -> int array
(** Per-node interaction counts. *)

val pair_counts : Sequence.t -> ((int * int) * int) list
(** Contact counts per unordered pair, sorted by pair. *)

val inter_contact_times : Sequence.t -> u:int -> v:int -> int list
(** Gaps between successive contacts of the pair [{u, v}], in order;
    empty when the pair meets fewer than twice. *)

val sink_meeting_times : Sequence.t -> sink:int -> int list
(** Times of all interactions involving [sink]. *)

val mean_inter_contact : Sequence.t -> u:int -> v:int -> float option
(** Mean of {!inter_contact_times}; [None] when undefined. *)

val activity_skew : n:int -> Sequence.t -> float
(** Max over mean per-node activity: 1.0 for perfectly balanced
    workloads, larger when a few nodes dominate.
    @raise Invalid_argument on an empty sequence. *)

val temporal_density : n:int -> Sequence.t -> float
(** Fraction of distinct pairs that interact at least once: 1.0 when
    the underlying graph is complete. *)

val summary : n:int -> sink:int -> Sequence.t -> string
(** Human-readable report of all the above. *)
