(** Mobility-driven interaction generators.

    These model the paper's motivating scenarios (sensors on a human
    body, cars in a city): node positions evolve and each time unit one
    pair of nodes currently in contact range interacts. They produce
    generator functions for {!Schedule.of_fun}. *)

type waypoint_params = {
  radius : float;  (** contact range, in unit-square units *)
  speed : float;  (** distance travelled per time unit *)
  pause : int;  (** time units to pause on reaching a waypoint *)
}

val default_waypoint : waypoint_params
(** radius 0.2, speed 0.02, pause 3. *)

val random_waypoint :
  ?params:waypoint_params -> Doda_prng.Prng.t -> n:int -> int -> Interaction.t
(** [random_waypoint rng ~n] simulates [n] nodes doing random-waypoint
    motion in the unit square; each call advances the simulation until
    at least one pair is within contact range, then returns a uniformly
    random such pair. @raise Invalid_argument if [n < 2]. *)

val community :
  Doda_prng.Prng.t ->
  n:int -> communities:int -> p_intra:float -> int -> Interaction.t
(** [community rng ~n ~communities ~p_intra] partitions nodes into
    [communities] groups round-robin; with probability [p_intra] the
    interaction is drawn inside a uniformly random group with at least
    two members, otherwise between two distinct groups. Models social /
    vehicular clustering. @raise Invalid_argument if [n < 2],
    [communities < 1], or [p_intra] outside [0, 1]. *)

val grid_walkers :
  Doda_prng.Prng.t -> n:int -> rows:int -> cols:int -> int -> Interaction.t
(** [grid_walkers rng ~n ~rows ~cols] moves [n] walkers on a grid of
    cells (a Manhattan street plan); each step every walker moves to a
    uniformly random cell among its own and its neighbours (a {e lazy}
    walk — walkers that always move would preserve the parity of
    [r + c] and the contact graph would split in two), and a uniformly
    random pair of co-located walkers interacts (steps repeat until
    such a pair exists).
    @raise Invalid_argument if [n < 2] or the grid is empty. *)
