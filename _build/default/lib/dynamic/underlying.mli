(** The underlying graph of a sequence (Section 3.2): the static graph
    whose edge set is the pairs that interact at least once. *)

val of_sequence : n:int -> Sequence.t -> Doda_graph.Static_graph.t
(** [of_sequence ~n s] is the underlying graph of [s] on [n] nodes. *)

val of_schedule_prefix : Schedule.t -> int -> Doda_graph.Static_graph.t
(** Underlying graph of the first [k] interactions of a schedule. *)

val recurrent_edges : n:int -> Sequence.t -> period:int -> Doda_graph.Static_graph.t
(** [recurrent_edges ~n s ~period] keeps only edges that appear in
    {e every} window of [period] consecutive interactions that fits in
    [s] — a finite-horizon proxy for "interactions occurring infinitely
    often" (Theorem 4). With [period >= length s] this is
    {!of_sequence}. *)
