module Static_graph = Doda_graph.Static_graph
module Traversal = Doda_graph.Traversal

type t = { node_count : int; snapshots : Static_graph.t array }

let make ~n snapshots =
  List.iter
    (fun g ->
      if Static_graph.n g <> n then
        invalid_arg "Evolving_graph.make: snapshot with wrong node count")
    snapshots;
  { node_count = n; snapshots = Array.of_list snapshots }

let n t = t.node_count
let length t = Array.length t.snapshots

let snapshot t i =
  if i < 0 || i >= Array.length t.snapshots then
    invalid_arg "Evolving_graph.snapshot: index out of range";
  t.snapshots.(i)

let to_interactions t =
  Generators.of_snapshots (Array.to_list t.snapshots)

let of_interactions ~n ~window s =
  if window <= 0 then invalid_arg "Evolving_graph.of_interactions: window <= 0";
  let len = Sequence.length s in
  let buckets = (len + window - 1) / window in
  let snapshots =
    List.init buckets (fun b ->
        let pos = b * window in
        let size = Stdlib.min window (len - pos) in
        Underlying.of_sequence ~n (Sequence.sub s ~pos ~len:size))
  in
  { node_count = n; snapshots = Array.of_list snapshots }

let union t =
  let g = Static_graph.create t.node_count in
  Array.iter
    (fun snap ->
      List.iter (fun (u, v) -> Static_graph.add_edge g u v) (Static_graph.edges snap))
    t.snapshots;
  g

let always_connected t =
  Array.for_all Traversal.connected t.snapshots

let edge_lifetimes t =
  let counts = Hashtbl.create 97 in
  Array.iter
    (fun snap ->
      List.iter
        (fun e -> Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
        (Static_graph.edges snap))
    t.snapshots;
  List.sort compare (Hashtbl.fold (fun e c acc -> (e, c) :: acc) counts [])
