let to_channel oc s =
  Sequence.iteri
    (fun t i ->
      Printf.fprintf oc "%d %d %d\n" t (Interaction.u i) (Interaction.v i))
    s

let save path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc s)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ t; u; v ] -> (
        match (int_of_string_opt t, int_of_string_opt u, int_of_string_opt v) with
        | Some t, Some u, Some v -> Some (t, u, v)
        | _ -> failwith ("Trace: malformed line: " ^ line))
    | _ -> failwith ("Trace: malformed line: " ^ line)

let of_lines lines =
  let interactions = ref [] in
  let expected = ref 0 in
  List.iteri
    (fun lineno line ->
      match parse_line line with
      | None -> ()
      | Some (t, u, v) ->
          if t <> !expected then
            failwith
              (Printf.sprintf "Trace: line %d: expected time %d, got %d"
                 (lineno + 1) !expected t);
          incr expected;
          interactions := Interaction.make u v :: !interactions)
    lines;
  Sequence.of_list (List.rev !interactions)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))
