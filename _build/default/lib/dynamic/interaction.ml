type t = { u : int; v : int }

let make a b =
  if a = b then invalid_arg "Interaction.make: self-interaction";
  if a < 0 || b < 0 then invalid_arg "Interaction.make: negative node id";
  if a < b then { u = a; v = b } else { u = b; v = a }

let u i = i.u
let v i = i.v
let involves i x = i.u = x || i.v = x

let other i x =
  if x = i.u then i.v
  else if x = i.v then i.u
  else invalid_arg "Interaction.other: node not an endpoint"

let equal a b = a.u = b.u && a.v = b.v

let compare a b =
  let c = Int.compare a.u b.u in
  if c <> 0 then c else Int.compare a.v b.v

let hash i = (i.u * 1000003) lxor i.v
let to_pair i = (i.u, i.v)
let pp ppf i = Format.fprintf ppf "{%d,%d}" i.u i.v
let to_string i = Printf.sprintf "{%d,%d}" i.u i.v
let dummy = { u = 0; v = 1 }
