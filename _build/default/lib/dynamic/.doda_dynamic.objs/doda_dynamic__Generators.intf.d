lib/dynamic/generators.mli: Doda_graph Doda_prng Interaction Sequence
