lib/dynamic/mobility.mli: Doda_prng Interaction
