lib/dynamic/underlying.ml: Doda_graph Hashtbl Interaction Schedule Sequence Stdlib
