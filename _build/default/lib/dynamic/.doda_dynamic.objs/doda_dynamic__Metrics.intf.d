lib/dynamic/metrics.mli: Sequence
