lib/dynamic/sequence.mli: Format Interaction
