lib/dynamic/evolving_graph.ml: Array Doda_graph Generators Hashtbl List Option Sequence Stdlib Underlying
