lib/dynamic/sequence.ml: Array Format Interaction List Stdlib
