lib/dynamic/temporal.ml: Array Interaction Sequence Stdlib
