lib/dynamic/metrics.ml: Array Buffer Hashtbl Interaction List Option Printf Sequence Stdlib
