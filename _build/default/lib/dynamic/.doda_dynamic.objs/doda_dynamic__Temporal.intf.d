lib/dynamic/temporal.mli: Interaction Sequence
