lib/dynamic/schedule.ml: Array Interaction Sequence Stdlib Vec
