lib/dynamic/presence.mli: Doda_graph Doda_prng Evolving_graph Sequence
