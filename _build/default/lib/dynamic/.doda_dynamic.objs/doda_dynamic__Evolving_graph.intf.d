lib/dynamic/evolving_graph.mli: Doda_graph Sequence
