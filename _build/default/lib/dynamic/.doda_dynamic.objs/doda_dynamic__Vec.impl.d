lib/dynamic/vec.ml: Array Stdlib
