lib/dynamic/mobility.ml: Array Doda_prng Interaction List Stdlib
