lib/dynamic/vec.mli:
