lib/dynamic/interaction.mli: Format
