lib/dynamic/schedule.mli: Interaction Sequence
