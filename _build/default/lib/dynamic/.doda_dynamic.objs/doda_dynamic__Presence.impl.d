lib/dynamic/presence.ml: Doda_graph Doda_prng Evolving_graph Hashtbl List Stdlib
