lib/dynamic/interaction.ml: Format Int Printf
