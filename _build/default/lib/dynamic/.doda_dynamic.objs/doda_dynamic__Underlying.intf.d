lib/dynamic/underlying.mli: Doda_graph Schedule Sequence
