lib/dynamic/trace.mli: Sequence
