lib/dynamic/generators.ml: Array Doda_graph Doda_prng Interaction List Sequence
