lib/dynamic/trace.ml: Fun Interaction List Printf Sequence String
