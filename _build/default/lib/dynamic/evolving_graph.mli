(** Evolving graphs: the classical dynamic-graph model (a sequence of
    static snapshots), and conversions to and from the paper's
    single-interaction-per-step model.

    The paper's sequence-of-interactions model is the special case of
    an evolving graph where every snapshot has exactly one edge
    (Section 1); these conversions make that relationship executable,
    and let externally defined evolving-graph workloads drive the DODA
    algorithms. *)

type t

val make : n:int -> Doda_graph.Static_graph.t list -> t
(** [make ~n snapshots] checks every snapshot has [n] nodes.
    @raise Invalid_argument otherwise. *)

val n : t -> int

val length : t -> int
(** Number of snapshots. *)

val snapshot : t -> int -> Doda_graph.Static_graph.t
(** @raise Invalid_argument out of range. *)

val to_interactions : t -> Sequence.t
(** Flattens each snapshot to its edges in lexicographic order, one
    interaction per time unit — the paper's reduction. *)

val of_interactions : n:int -> window:int -> Sequence.t -> t
(** [of_interactions ~n ~window s] buckets [s] into consecutive windows
    of [window] interactions and takes each bucket's underlying graph
    as a snapshot — the usual way contact traces are rendered as
    evolving graphs. The last partial bucket is kept.
    @raise Invalid_argument if [window <= 0]. *)

val union : t -> Doda_graph.Static_graph.t
(** Union of all snapshots (the underlying graph). *)

val always_connected : t -> bool
(** Every snapshot connected (the "1-interval connectivity" assumption
    common in the literature); vacuously true when empty. *)

val edge_lifetimes : t -> ((int * int) * int) list
(** For each edge of the union, in how many snapshots it appears;
    sorted by edge. *)
