module Static_graph = Doda_graph.Static_graph

let of_sequence ~n s =
  let g = Static_graph.create n in
  Sequence.iteri (fun _ i -> Static_graph.add_edge g (Interaction.u i) (Interaction.v i)) s;
  g

let of_schedule_prefix sched k =
  of_sequence ~n:(Schedule.n sched) (Schedule.prefix sched k)

let recurrent_edges ~n s ~period =
  if period <= 0 then invalid_arg "Underlying.recurrent_edges: period must be positive";
  let len = Sequence.length s in
  if period >= len then of_sequence ~n s
  else begin
    (* Sliding window: an edge is recurrent if its maximal gap between
       consecutive occurrences (including the borders) is < period. *)
    let last_seen = Hashtbl.create 97 in
    let max_gap = Hashtbl.create 97 in
    Sequence.iteri
      (fun t i ->
        let key = Interaction.to_pair i in
        let previous = try Hashtbl.find last_seen key with Not_found -> -1 in
        let gap = t - previous in
        let current = try Hashtbl.find max_gap key with Not_found -> 0 in
        Hashtbl.replace max_gap key (Stdlib.max current gap);
        Hashtbl.replace last_seen key t)
      s;
    let g = Static_graph.create n in
    Hashtbl.iter
      (fun (u, v) t ->
        let closing_gap = len - t in
        let worst = Stdlib.max closing_gap (Hashtbl.find max_gap (u, v)) in
        if worst <= period then Static_graph.add_edge g u v)
      last_seen;
    g
  end
