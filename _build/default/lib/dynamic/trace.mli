(** Contact-trace I/O: interaction sequences as plain text, one
    interaction per line ([time u v], whitespace-separated, [#]
    comments). Lets experiments replay externally collected contact
    traces and archive generated ones. *)

val save : string -> Sequence.t -> unit
(** [save path s] writes [s]; times are the sequence indices. *)

val load : string -> Sequence.t
(** [load path] parses a trace. Lines must be sorted by time; times
    must be exactly [0, 1, 2, ...] (the model has one interaction per
    time unit). @raise Failure with a line-numbered message on
    malformed input. *)

val parse_line : string -> (int * int * int) option
(** [parse_line l] is [Some (t, u, v)], or [None] for blank/comment
    lines. @raise Failure on malformed content. *)

val to_channel : out_channel -> Sequence.t -> unit
val of_lines : string list -> Sequence.t
(** @raise Failure like {!load}. *)
