let check_src ~n src =
  if src < 0 || src >= n then invalid_arg "Temporal: source out of range"

let earliest_arrival ~n ~src ?(start = 0) s =
  check_src ~n src;
  let arrival = Array.make n None in
  arrival.(src) <- Some (start - 1);
  let informed = Array.make n false in
  informed.(src) <- true;
  let len = Sequence.length s in
  for t = start to len - 1 do
    let i = Sequence.get s t in
    let a = Interaction.u i and b = Interaction.v i in
    if informed.(a) && not informed.(b) then begin
      informed.(b) <- true;
      arrival.(b) <- Some t
    end
    else if informed.(b) && not informed.(a) then begin
      informed.(a) <- true;
      arrival.(a) <- Some t
    end
  done;
  arrival

let broadcast_completion ~n ~src ?(start = 0) s =
  check_src ~n src;
  let informed = Array.make n false in
  informed.(src) <- true;
  let count = ref 1 in
  let len = Sequence.length s in
  let result = ref None in
  let t = ref start in
  while !result = None && !t < len do
    let i = Sequence.get s !t in
    let a = Interaction.u i and b = Interaction.v i in
    let newly =
      if informed.(a) && not informed.(b) then (informed.(b) <- true; true)
      else if informed.(b) && not informed.(a) then (informed.(a) <- true; true)
      else false
    in
    if newly then begin
      incr count;
      if !count = n then result := Some !t
    end;
    incr t
  done;
  !result

let reverse_flood_all_informed ~n ~src s ~lo ~hi =
  check_src ~n src;
  if lo < 0 || hi >= Sequence.length s then
    invalid_arg "Temporal.reverse_flood_all_informed: window out of bounds";
  let informed = Array.make n false in
  informed.(src) <- true;
  let count = ref 1 in
  let t = ref hi in
  while !count < n && !t >= lo do
    let i = Sequence.get s !t in
    let a = Interaction.u i and b = Interaction.v i in
    if informed.(a) && not informed.(b) then begin
      informed.(b) <- true;
      incr count
    end
    else if informed.(b) && not informed.(a) then begin
      informed.(a) <- true;
      incr count
    end;
    decr t
  done;
  !count = n

let temporally_connected ~n s =
  let ok = ref true in
  let src = ref 0 in
  while !ok && !src < n do
    if broadcast_completion ~n ~src:!src s = None then ok := false;
    incr src
  done;
  !ok

let foremost_journey ~n ~src ~dst ?(start = 0) s =
  check_src ~n src;
  check_src ~n dst;
  if src = dst then Some []
  else begin
    let arrival = earliest_arrival ~n ~src ~start s in
    match arrival.(dst) with
    | None -> None
    | Some _ ->
        (* Walk predecessors: the hop informing [v] at time [t] came
           from the other endpoint of [I_t]. *)
        let rec backtrack v acc =
          if v = src then acc
          else
            match arrival.(v) with
            | None | Some (-1) -> assert false
            | Some t ->
                let i = Sequence.get s t in
                backtrack (Interaction.other i v) ((t, i) :: acc)
        in
        Some (backtrack dst [])
  end

let reachable_set ~n ~src ?(start = 0) ?horizon s =
  check_src ~n src;
  let stop = match horizon with None -> Sequence.length s | Some h -> Stdlib.min h (Sequence.length s) in
  let informed = Array.make n false in
  informed.(src) <- true;
  for t = start to stop - 1 do
    let i = Sequence.get s t in
    let a = Interaction.u i and b = Interaction.v i in
    if informed.(a) && not informed.(b) then informed.(b) <- true
    else if informed.(b) && not informed.(a) then informed.(a) <- true
  done;
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if informed.(v) then acc := v :: !acc
  done;
  !acc
