module Prng = Doda_prng.Prng

type waypoint_params = { radius : float; speed : float; pause : int }

let default_waypoint = { radius = 0.2; speed = 0.02; pause = 3 }

type walker = {
  mutable x : float;
  mutable y : float;
  mutable goal_x : float;
  mutable goal_y : float;
  mutable pause_left : int;
}

let random_waypoint ?(params = default_waypoint) rng ~n =
  if n < 2 then invalid_arg "Mobility.random_waypoint: need at least two nodes";
  let fresh_goal w =
    w.goal_x <- Prng.float rng 1.0;
    w.goal_y <- Prng.float rng 1.0
  in
  let walkers =
    Array.init n (fun _ ->
        let w =
          {
            x = Prng.float rng 1.0;
            y = Prng.float rng 1.0;
            goal_x = 0.0;
            goal_y = 0.0;
            pause_left = 0;
          }
        in
        fresh_goal w;
        w)
  in
  let advance w =
    if w.pause_left > 0 then w.pause_left <- w.pause_left - 1
    else begin
      let dx = w.goal_x -. w.x and dy = w.goal_y -. w.y in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
      if dist <= params.speed then begin
        w.x <- w.goal_x;
        w.y <- w.goal_y;
        w.pause_left <- params.pause;
        fresh_goal w
      end
      else begin
        w.x <- w.x +. (params.speed *. dx /. dist);
        w.y <- w.y +. (params.speed *. dy /. dist)
      end
    end
  in
  let r2 = params.radius *. params.radius in
  let in_range a b =
    let dx = a.x -. b.x and dy = a.y -. b.y in
    (dx *. dx) +. (dy *. dy) <= r2
  in
  let contacts = ref [] in
  let collect () =
    contacts := [];
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if in_range walkers.(a) walkers.(b) then contacts := (a, b) :: !contacts
      done
    done
  in
  fun _t ->
    Array.iter advance walkers;
    collect ();
    while !contacts = [] do
      Array.iter advance walkers;
      collect ()
    done;
    let pairs = Array.of_list !contacts in
    let a, b = Prng.choose rng pairs in
    Interaction.make a b

let community rng ~n ~communities ~p_intra =
  if n < 2 then invalid_arg "Mobility.community: need at least two nodes";
  if communities < 1 then invalid_arg "Mobility.community: need at least one group";
  if p_intra < 0.0 || p_intra > 1.0 then
    invalid_arg "Mobility.community: p_intra outside [0, 1]";
  let communities = Stdlib.min communities n in
  let members = Array.make communities [] in
  for u = n - 1 downto 0 do
    let c = u mod communities in
    members.(c) <- u :: members.(c)
  done;
  let members = Array.map Array.of_list members in
  let big = (* groups with >= 2 members, for intra draws *)
    Array.of_list
      (List.filter
         (fun c -> Array.length members.(c) >= 2)
         (List.init communities (fun c -> c)))
  in
  let intra_possible = Array.length big > 0 in
  let inter_possible = communities >= 2 in
  fun _t ->
    let intra =
      if not inter_possible then true
      else if not intra_possible then false
      else Prng.bernoulli rng p_intra
    in
    if intra then begin
      let group = members.(Prng.choose rng big) in
      let i, j = Prng.pair rng (Array.length group) in
      Interaction.make group.(i) group.(j)
    end
    else begin
      let rec draw () =
        let c1 = Prng.int rng communities and c2 = Prng.int rng communities in
        if c1 = c2 then draw ()
        else
          Interaction.make
            (Prng.choose rng members.(c1))
            (Prng.choose rng members.(c2))
      in
      draw ()
    end

let grid_walkers rng ~n ~rows ~cols =
  if n < 2 then invalid_arg "Mobility.grid_walkers: need at least two nodes";
  if rows < 1 || cols < 1 then invalid_arg "Mobility.grid_walkers: empty grid";
  let cell = Array.init n (fun _ -> (Prng.int rng rows, Prng.int rng cols)) in
  (* Lazy walk: staying put is allowed, otherwise walkers that all
     move each step keep the parity of r+c invariant and the contact
     graph splits into two components that can never interact. *)
  let step u =
    let r, c = cell.(u) in
    let moves =
      List.filter
        (fun (r, c) -> r >= 0 && r < rows && c >= 0 && c < cols)
        [ (r, c); (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]
    in
    cell.(u) <- Prng.choose rng (Array.of_list moves)
  in
  let colocated () =
    let acc = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if cell.(a) = cell.(b) then acc := (a, b) :: !acc
      done
    done;
    !acc
  in
  fun _t ->
    let rec advance () =
      for u = 0 to n - 1 do
        step u
      done;
      match colocated () with
      | [] -> advance ()
      | pairs ->
          let a, b = Prng.choose rng (Array.of_list pairs) in
          Interaction.make a b
    in
    advance ()
