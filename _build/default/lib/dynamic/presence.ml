module Static_graph = Doda_graph.Static_graph
module Prng = Doda_prng.Prng

type t = {
  node_count : int;
  intervals : (int * int, (int * int) list ref) Hashtbl.t;
      (* edge -> intervals, unordered, possibly overlapping *)
  mutable horizon : int;
}

let create ~n =
  if n < 2 then invalid_arg "Presence.create: need at least two nodes";
  { node_count = n; intervals = Hashtbl.create 97; horizon = 0 }

let n t = t.node_count
let span t = t.horizon

let key u v = if u < v then (u, v) else (v, u)

let add_interval t ~u ~v ~start ~stop =
  if u = v then invalid_arg "Presence.add_interval: self-loop";
  if u < 0 || v < 0 || u >= t.node_count || v >= t.node_count then
    invalid_arg "Presence.add_interval: node out of range";
  if start < 0 || stop <= start then
    invalid_arg "Presence.add_interval: need 0 <= start < stop";
  let k = key u v in
  (match Hashtbl.find_opt t.intervals k with
  | Some l -> l := (start, stop) :: !l
  | None -> Hashtbl.add t.intervals k (ref [ (start, stop) ]));
  t.horizon <- Stdlib.max t.horizon stop

let present t ~u ~v ~time =
  match Hashtbl.find_opt t.intervals (key u v) with
  | None -> false
  | Some l -> List.exists (fun (a, b) -> a <= time && time < b) !l

let snapshot t time =
  let g = Static_graph.create t.node_count in
  Hashtbl.iter
    (fun (u, v) l ->
      if List.exists (fun (a, b) -> a <= time && time < b) !l then
        Static_graph.add_edge g u v)
    t.intervals;
  g

let to_evolving ?horizon t =
  let horizon = match horizon with Some h -> h | None -> span t in
  Evolving_graph.make ~n:t.node_count
    (List.init horizon (fun time -> snapshot t time))

let to_interactions ?horizon t =
  Evolving_graph.to_interactions (to_evolving ?horizon t)

let random rng ~n ~horizon ~mean_up ~mean_down =
  if mean_up <= 0.0 || mean_down <= 0.0 then
    invalid_arg "Presence.random: means must be positive";
  if horizon <= 0 then invalid_arg "Presence.random: horizon must be positive";
  let t = create ~n in
  let phase mean = 1 + Prng.geometric rng (1.0 /. (mean +. 1.0)) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      (* Alternate down/up phases from time 0 with a random initial
         offset so edges are not synchronised. *)
      let clock = ref (Prng.int rng (1 + int_of_float mean_down)) in
      while !clock < horizon do
        let up = phase mean_up in
        let start = !clock in
        let stop = Stdlib.min horizon (start + up) in
        if stop > start then add_interval t ~u ~v ~start ~stop;
        clock := stop + phase mean_down
      done
    done
  done;
  t
